/**
 * @file
 * Serving throughput: precision x micro-batch sweep.
 *
 * The serving counterpart of Figure 6d: a closed-loop client drives the
 * inference Server and we sweep the serving precision (Ms8 / Ms16 /
 * Ms32f) against the micro-batch bound B. Two effects should be visible:
 *   - along B: request throughput rises as the per-request queue and
 *     wakeup bookkeeping is amortized over each kernel sweep (the §5.4
 *     mini-batching argument replayed at serving time);
 *   - along precision: serving GNPS rises as the model stream shrinks
 *     (§3: inference is the dot half of the step and is bound on the
 *     model bytes).
 *
 * Besides the usual table/CSV output, this bench emits a machine-readable
 * JSON sweep (one object per cell) for plotting pipelines.
 */
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "buckwild/buckwild.h"
#include "core/model_io.h"
#include "obs/export.h"
#include "serve/serve.h"

namespace {

using namespace buckwild;

struct Cell
{
    serve::Precision precision;
    std::size_t max_batch = 0;
    double req_per_s = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double mean_batch = 0.0;
    double gnps = 0.0;
};

/// Drives `requests` dense requests through a fresh server in a closed
/// loop (single client, pipelined window, vectored zero-copy submits) and
/// returns the measured cell.
Cell
run_cell(const serve::ModelRegistry& registry,
         const dataset::DenseProblem& load, std::size_t max_batch,
         std::size_t requests)
{
    serve::ServerConfig cfg;
    cfg.max_batch = max_batch;
    serve::Server server(registry, cfg);

    constexpr std::size_t kWindow = 64;
    std::vector<serve::ReplySlot> slots(kWindow);
    std::size_t head = 0, tail = 0;
    Stopwatch wall;
    while (head < requests || tail < head) {
        const std::size_t want =
            std::min(kWindow - (head - tail), requests - head);
        if (want == 0) {
            if (!slots[tail % kWindow].wait())
                fatal("bench request failed: " +
                      slots[tail % kWindow].error);
            ++tail;
            continue;
        }
        std::vector<serve::ViewRequest> burst;
        burst.reserve(want);
        for (std::size_t k = 0; k < want; ++k) {
            serve::ReplySlot& slot = slots[(head + k) % kWindow];
            slot.reset();
            serve::ViewRequest view;
            view.dense = load.row((head + k) % load.examples);
            view.length = load.dim;
            view.slot = &slot;
            burst.push_back(view);
        }
        std::size_t sent = 0;
        while (sent < want)
            sent += server.submit_views(burst.data() + sent, want - sent);
        head += want;
    }
    const double seconds = wall.seconds();
    server.stop();

    const auto metrics = server.metrics();
    Cell cell;
    cell.max_batch = max_batch;
    cell.req_per_s = static_cast<double>(requests) / seconds;
    cell.p50_us = metrics.latency_percentile(50) * 1e6;
    cell.p99_us = metrics.latency_percentile(99) * 1e6;
    cell.mean_batch = metrics.mean_batch_size();
    cell.gnps = metrics.gnps();
    return cell;
}

} // namespace

int
main()
{
    using namespace buckwild;
    bench::banner("Serving throughput — precision x micro-batch sweep",
                  "req/s rises with B (bookkeeping amortized); GNPS rises "
                  "as the model stream narrows (Ms32f -> Ms8)");

    // A quick in-process model: what matters here is the serving data
    // movement, not the model's quality.
    const std::size_t dim = 256;
    const auto problem = dataset::generate_logistic_dense(dim, 2048, 17);
    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature("D32fM32f");
    cfg.epochs = 2;
    cfg.record_loss_trace = false;
    core::Trainer trainer(cfg);
    trainer.fit(problem);
    core::SavedModel saved;
    saved.signature = cfg.signature;
    saved.loss = cfg.loss;
    saved.weights = trainer.model();

    const std::size_t requests = 30000;
    const std::vector<serve::Precision> precisions = {
        serve::Precision::kInt8, serve::Precision::kInt16,
        serve::Precision::kFloat32};
    const std::vector<std::size_t> batches = {1, 4, 16, 64};

    std::vector<Cell> cells;
    for (const serve::Precision precision : precisions) {
        serve::ModelRegistry registry;
        registry.publish(saved, precision);
        TablePrinter table("serving, n = " + std::to_string(dim) + ", " +
                               to_string(precision),
                           {"B", "req/s", "p50 us", "p99 us", "mean B",
                            "GNPS"});
        for (const std::size_t b : batches) {
            Cell cell = run_cell(registry, problem, b, requests);
            cell.precision = precision;
            table.add_row({std::to_string(b), format_num(cell.req_per_s, 4),
                           format_num(cell.p50_us, 3),
                           format_num(cell.p99_us, 3),
                           format_num(cell.mean_batch, 3),
                           format_num(cell.gnps, 3)});
            cells.push_back(cell);
        }
        bench::emit(table);
    }

    // Machine-readable sweep for plotting pipelines, via the shared
    // obs JSON writer (same escaping/number formatting as --metrics-out).
    std::printf("-- json --\n");
    obs::JsonWriter json(std::cout);
    json.begin_array();
    for (const Cell& cell : cells) {
        std::cout << '\n';
        json.begin_object();
        json.key("precision").value(to_string(cell.precision));
        json.key("batch").value(cell.max_batch);
        json.key("req_per_s").value(cell.req_per_s);
        json.key("p50_us").value(cell.p50_us);
        json.key("p99_us").value(cell.p99_us);
        json.key("mean_batch").value(cell.mean_batch);
        json.key("gnps").value(cell.gnps);
        json.end_object();
    }
    json.end_array();
    std::cout << '\n';
    return 0;
}
