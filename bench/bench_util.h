/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Every binary in bench/ regenerates one table or figure of the paper
 * (see DESIGN.md's experiment index): it prints the same rows/series the
 * paper reports, measured on this machine or on the simulators. Headers
 * announce which experiment is being reproduced and what shape to expect.
 */
#ifndef BUCKWILD_BENCH_BENCH_UTIL_H
#define BUCKWILD_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "util/stopwatch.h"
#include "util/table.h"

namespace buckwild::bench {

/// True when BUCKWILD_CSV=1: benches should ALSO emit machine-readable
/// CSV after each table (for plotting pipelines).
inline bool
csv_requested()
{
    const char* env = std::getenv("BUCKWILD_CSV");
    return env != nullptr && env[0] == '1';
}

/// Prints a table, and its CSV twin when BUCKWILD_CSV=1.
inline void
emit(const TablePrinter& table)
{
    table.print(std::cout);
    if (csv_requested()) {
        std::cout << "-- csv --\n";
        table.print_csv(std::cout);
    }
}

/// Prints the standard experiment banner.
inline void
banner(const std::string& experiment, const std::string& expectation)
{
    std::printf("==========================================================="
                "=====\n%s\n", experiment.c_str());
    std::printf("expected shape: %s\n", expectation.c_str());
    std::printf("==========================================================="
                "=====\n");
}

/// Measures GNPS of `body`, which must process `numbers` dataset numbers
/// per call.
inline double
measure_gnps(double numbers, const std::function<void(std::size_t)>& body,
             double min_seconds = 0.05)
{
    const double sec = measure_seconds_per_call(body, min_seconds);
    return numbers / sec / 1e9;
}

} // namespace buckwild::bench

#endif // BUCKWILD_BENCH_BENCH_UTIL_H
