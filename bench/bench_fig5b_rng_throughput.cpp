/**
 * @file
 * Figure 5b: hardware efficiency of the rounding-randomness strategies.
 *
 * Measures end-to-end training throughput (GNPS) of D8M8 Buckwild! under
 * each strategy, plus the raw generator rates.
 *
 * Expected shape: biased fastest; Mersenne-per-write slowest (the PRNG
 * dominates); XORSHIFT-per-write in between; shared randomness within a
 * few percent of biased — "allowing us to match the hardware efficiency
 * of the [biased] version".
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"
#include "rng/avx2_xorshift.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 5b — rounding strategies, hardware efficiency",
                  "biased ~ shared > xorshift/write > mersenne/write");

    // Raw generator rates first (words/second).
    {
        TablePrinter gen_table("raw generator throughput",
                               {"generator", "32-bit words / s"});
        rng::MersenneSource mt(1);
        volatile std::uint32_t sink = 0;
        double sec = measure_seconds_per_call(
            [&](std::size_t) {
                for (int i = 0; i < 4096; ++i) sink = sink + mt.next_word();
            },
            0.05);
        gen_table.add_row({"Mersenne twister", format_si(4096.0 / sec)});

        rng::XorshiftSource xs(1);
        sec = measure_seconds_per_call(
            [&](std::size_t) {
                for (int i = 0; i < 4096; ++i) sink = sink + xs.next_word();
            },
            0.05);
        gen_table.add_row({"XORSHIFT (scalar)", format_si(4096.0 / sec)});

        rng::Avx2Xorshift128Plus vec(1);
        alignas(32) std::uint32_t words[8];
        sec = measure_seconds_per_call(
            [&](std::size_t) {
                for (int i = 0; i < 512; ++i) {
                    vec.fill(words, 8);
                    sink = sink + words[0];
                }
            },
            0.05);
        gen_table.add_row({"XORSHIFT (AVX2, 256b/step)",
                           format_si(512.0 * 8.0 / sec)});
        bench::emit(gen_table);
    }

    // End-to-end D8M8 training throughput per strategy.
    const auto problem = dataset::generate_logistic_dense(1 << 13, 512, 3);
    TablePrinter table("Fig 5b: D8M8 training throughput per strategy",
                       {"strategy", "GNPS", "vs biased"});
    double biased_gnps = 0.0;
    const std::pair<const char*, core::RoundingStrategy> cases[] = {
        {"biased", core::RoundingStrategy::kBiased},
        {"mersenne/write", core::RoundingStrategy::kMersennePerWrite},
        {"xorshift/write", core::RoundingStrategy::kXorshiftPerWrite},
        {"shared xorshift", core::RoundingStrategy::kSharedXorshift},
    };
    for (const auto& [name, strategy] : cases) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature("D8M8");
        cfg.rounding = strategy;
        cfg.epochs = 3;
        cfg.record_loss_trace = false;
        core::Trainer trainer(cfg);
        const double gnps = trainer.fit(problem).gnps();
        if (strategy == core::RoundingStrategy::kBiased) biased_gnps = gnps;
        table.add_row({name, format_num(gnps, 3),
                       format_num(gnps / biased_gnps, 3)});
    }
    bench::emit(table);
    return 0;
}
