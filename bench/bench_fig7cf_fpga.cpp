/**
 * @file
 * Figure 7c/7f and the §8 FPGA study.
 *
 * 7c: the 2-stage vs 3-stage pipeline structures;
 * 7f: throughput and area vs precision for tuned designs;
 * §8 text: the mini-batch / plain-SGD crossover near ~100 DRAM bursts
 *     per example, and GNPS/watt vs the CPU.
 *
 * Expected shape: lower precision -> higher throughput (up to ~2.5x in
 * the paper's designs) AND lower area; halving only the dataset
 * precision already helps both; FPGA GNPS/W > CPU GNPS/W (0.339 vs
 * 0.143 in the paper).
 */
#include "bench/bench_util.h"
#include "fpga/search.h"

int
main()
{
    using namespace buckwild;
    using namespace buckwild::fpga;
    bench::banner("Figure 7c/7f + §8 — FPGA designs",
                  "lower precision: more throughput, less area; "
                  "mini-batch wins until ~100 bursts/example; FPGA "
                  "GNPS/W > CPU");

    const Device device;

    // ---- Fig 7f: tuned design per precision pair.
    TablePrinter fig7f("Fig 7f: tuned designs per precision",
                       {"D bits", "M bits", "GNPS", "vs D32M32", "DSP%",
                        "BRAM%", "GNPS/W"});
    double base_gnps = 0.0;
    const int pairs[][2] = {{32, 32}, {16, 16}, {8, 16}, {8, 8}, {4, 4}};
    for (const auto& p : pairs) {
        SearchSpace space;
        space.dataset_bits = p[0];
        space.model_bits = p[1];
        space.model_size = 1 << 14;
        const auto best = best_design(space, device);
        if (base_gnps == 0.0) base_gnps = best.throughput.gnps;
        fig7f.add_row({std::to_string(p[0]), std::to_string(p[1]),
                       format_num(best.throughput.gnps, 3),
                       format_num(best.throughput.gnps / base_gnps, 3),
                       format_num(100 * best.resources.dsp_frac(device), 3),
                       format_num(100 * best.resources.bram_frac(device),
                                  3),
                       format_num(best.gnps_per_watt(), 3)});
    }
    bench::emit(fig7f);

    // ---- Fig 7c: stage structures at fixed precision/lanes.
    TablePrinter fig7c("Fig 7c: 2-stage vs 3-stage (D8M8, 64 lanes, B=4)",
                       {"shape", "compute elem/cyc", "GNPS", "BRAM kbit"});
    for (auto shape :
         {PipelineShape::kTwoStage, PipelineShape::kThreeStage}) {
        DesignPoint d;
        d.lanes = 64;
        d.batch_size = 4;
        d.shape = shape;
        d.model_size = 1 << 14;
        const auto t = estimate_throughput(d, device);
        const auto r = estimate_resources(d, device);
        fig7c.add_row({to_string(shape),
                       format_num(t.compute_elements_per_cycle, 3),
                       format_num(t.gnps, 3),
                       format_num(r.bram_kbits, 4)});
    }
    bench::emit(fig7c);

    // ---- §8 crossover: plain vs mini-batch across model sizes.
    TablePrinter cross("mini-batch crossover (D8, 256 lanes)",
                       {"model size", "bursts/example", "plain GNPS",
                        "B=16 GNPS", "batch wins?"});
    for (std::size_t n :
         {1u << 9, 1u << 11, 1u << 13, 1u << 15, 1u << 18}) {
        DesignPoint d;
        d.lanes = 256;
        d.model_size = n;
        d.shape = PipelineShape::kThreeStage;
        d.batch_size = 1;
        const auto plain = estimate_throughput(d, device);
        d.batch_size = 16;
        const auto batched = estimate_throughput(d, device);
        cross.add_row(
            {format_si(static_cast<double>(n)),
             format_num(plain.bursts_per_example, 3),
             format_num(plain.gnps, 3), format_num(batched.gnps, 3),
             batched.gnps > plain.gnps * 1.02 ? "yes" : "no (>=100 bursts)"});
    }
    bench::emit(cross);

    // ---- §8 efficiency comparison.
    SearchSpace space;
    space.dataset_bits = 8;
    space.model_bits = 8;
    const auto best = best_design(space, device);
    std::printf("\ntuned D8M8 design: %s -> %.3f GNPS/W "
                "(paper: FPGA 0.339, Xeon 0.143)\n",
                best.design.to_string().c_str(), best.gnps_per_watt());
    return 0;
}
