/**
 * @file
 * Table 3: summary of the optimizations discussed in the paper, each with
 * a quick measurement (or simulation) of its effect in this repository.
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"
#include "cachesim/sgd_trace.h"
#include "isa/proxy_kernels.h"
#include "simd/dense_avx2.h"
#include "rng/xorshift.h"

namespace {

using namespace buckwild;

double
train_gnps(const dataset::DenseProblem& problem, const char* sig,
           simd::Impl impl, core::RoundingStrategy rounding,
           std::size_t batch)
{
    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature(sig);
    cfg.impl = impl;
    cfg.rounding = rounding;
    cfg.batch_size = batch;
    cfg.epochs = 3;
    cfg.record_loss_trace = false;
    core::Trainer trainer(cfg);
    return trainer.fit(problem).gnps();
}

} // namespace

int
main()
{
    bench::banner("Table 3 — summary of optimizations",
                  "each row: when it helps and its measured effect here");

    const auto problem = dataset::generate_logistic_dense(1 << 12, 1024, 4);
    const auto small = dataset::generate_logistic_dense(1 << 10, 2048, 4);

    TablePrinter table("Table 3",
                       {"optimization", "beneficial when", "stat. eff. loss",
                        "measured effect"});

    // Optimized SIMD (§5.1).
    {
        const double naive = train_gnps(problem, "D8M8", simd::Impl::kNaive,
                                        core::RoundingStrategy::kBiased, 1);
        const double avx = train_gnps(problem, "D8M8", simd::Impl::kAvx2,
                                      core::RoundingStrategy::kBiased, 1);
        table.add_row({"Optimized SIMD", "Always", "None",
                       format_num(avx / naive, 3) + "x vs compiler"});
    }
    // Fast PRNG (§5.2).
    {
        const double mt = train_gnps(
            problem, "D8M8", simd::Impl::kAvx2,
            core::RoundingStrategy::kMersennePerWrite, 1);
        const double shared = train_gnps(
            problem, "D8M8", simd::Impl::kAvx2,
            core::RoundingStrategy::kSharedXorshift, 1);
        table.add_row({"Fast PRNG (shared XORSHIFT)",
                       "Using unbiased rounding", "Negligible",
                       format_num(shared / mt, 3) + "x vs Mersenne/write"});
    }
    // No prefetching (§5.3) — simulated.
    {
        cachesim::SgdWorkload work;
        work.model_size = 1 << 10;
        work.iterations_per_core = 32;
        cachesim::ChipConfig chip;
        chip.prefetcher = cachesim::Prefetcher::kNextLine;
        const auto on = simulate_sgd(chip, work);
        chip.prefetcher = cachesim::Prefetcher::kNone;
        const auto off = simulate_sgd(chip, work);
        table.add_row({"No prefetching", "Communication-bound",
                       "Negligible",
                       format_num(on.wall_cycles / off.wall_cycles, 3) +
                           "x (simulated, small model)"});
    }
    // Mini-batch (§5.4).
    {
        const double b1 = train_gnps(small, "D8M8", simd::Impl::kAvx2,
                                     core::RoundingStrategy::kBiased, 1);
        const double b64 = train_gnps(small, "D8M8", simd::Impl::kAvx2,
                                      core::RoundingStrategy::kBiased, 64);
        table.add_row({"Mini-batch", "Communication-bound", "Possible",
                       format_num(b64 / b1, 3) + "x at B=64 (small model)"});
    }
    // New instructions (§6.1) — proxy timing.
    {
        constexpr std::size_t kN = 1 << 16;
        rng::Xorshift128 gen(9);
        AlignedBuffer<std::int8_t> x(kN), w(kN);
        for (std::size_t i = 0; i < kN; ++i)
            x[i] = static_cast<std::int8_t>(gen() % 255 - 127);
        const auto cs = simd::make_scalar_d8m8(0.5f);
        const auto dither = simd::biased_fixed(simd::kShiftD8M8);
        volatile float sink = 0;
        const double base = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink +
                       simd::avx2::dot_d8m8(x.data(), w.data(), kN, 1.0f);
                simd::avx2::axpy_d8m8(w.data(), x.data(), kN, cs, dither);
            },
            0.04);
        const double proxy = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink +
                       isa::dot_d8m8_fused_proxy(x.data(), w.data(), kN);
                isa::axpy_d8m8_fused_proxy(w.data(), x.data(), kN, cs);
            },
            0.04);
        table.add_row({"New instructions", "Always", "None",
                       format_num(base / proxy, 3) + "x (proxy method)"});
    }
    // Obstinate cache (§6.2) — simulated.
    {
        cachesim::SgdWorkload work;
        work.model_size = 1 << 10;
        work.iterations_per_core = 32;
        cachesim::ChipConfig chip;
        const auto q0 = simulate_sgd(chip, work);
        chip.obstinacy = 0.95;
        const auto q95 = simulate_sgd(chip, work);
        table.add_row({"Obstinate cache", "Communication-bound",
                       "Negligible",
                       format_num(q0.wall_cycles / q95.wall_cycles, 3) +
                           "x at q=0.95 (simulated)"});
    }
    bench::emit(table);
    return 0;
}
