/**
 * @file
 * Extension: the C (communication) axis of the DMGC model.
 *
 * The paper classifies Seide et al.'s 1-bit SGD as Cs1 (Table 1) but its
 * experiments stay on the implicit-communication side. This bench fills
 * in the explicit-communication corner: synchronous data-parallel SGD
 * with gradient exchange at Cs32 / Cs8 / Cs1 (with and without error
 * feedback), reporting convergence and communication volume.
 *
 * Expected shape: Cs1 with error feedback tracks Cs32's loss at ~1/32 of
 * the traffic; without feedback it visibly degrades.
 */
#include "bench/bench_util.h"
#include "core/comm_sgd.h"
#include "dataset/problem.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Extension — explicit communication precision (Cs term)",
                  "Cs1 + error feedback ~ Cs32 quality at ~1/32 traffic");

    const auto problem = dataset::generate_logistic_dense(512, 4096, 17);

    TablePrinter table("synchronous data-parallel SGD, 8 workers",
                       {"signature", "error feedback", "final loss",
                        "accuracy", "KB/worker/round"});
    auto run = [&](int bits, bool feedback) {
        core::CommSgdConfig cfg;
        cfg.workers = 8;
        cfg.comm_bits = bits;
        cfg.error_feedback = feedback;
        cfg.epochs = 12;
        cfg.batch_per_worker = 8;
        cfg.step_size = 0.5f;
        const auto r = train_comm_sgd(problem, cfg);
        table.add_row({r.signature, feedback ? "yes" : "no",
                       format_num(r.final_loss), format_num(r.accuracy),
                       format_num(r.bytes_per_round / 1024.0, 3)});
    };
    run(32, true);
    run(8, true);
    run(1, true);
    run(1, false);
    bench::emit(table);
    return 0;
}
