/**
 * @file
 * Figure 5a: statistical efficiency of the rounding-randomness
 * strategies (§5.2): biased rounding vs unbiased rounding with Mersenne
 * twister, fresh XORSHIFT, and shared XORSHIFT randomness.
 *
 * Expected shape: the three unbiased strategies converge to nearly the
 * same loss; biased rounding converges worse (or stalls) when the model
 * precision bites.
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 5a — rounding strategies, statistical efficiency",
                  "Mersenne ~ XORSHIFT ~ shared; biased worse at low "
                  "precision / small steps");

    const auto problem = dataset::generate_logistic_dense(512, 4000, 2017);

    struct Case
    {
        const char* name;
        core::RoundingStrategy strategy;
    };
    const Case cases[] = {
        {"biased (nearest)", core::RoundingStrategy::kBiased},
        {"unbiased, Mersenne/write",
         core::RoundingStrategy::kMersennePerWrite},
        {"unbiased, XORSHIFT/write",
         core::RoundingStrategy::kXorshiftPerWrite},
        {"unbiased, shared XORSHIFT",
         core::RoundingStrategy::kSharedXorshift},
    };

    // Small steps on a float-dataset/8-bit-model signature: the regime
    // where nearest rounding visibly loses (sub-half-quantum updates).
    TablePrinter table("Fig 5a: loss trace, D32fM8, eta = 0.008",
                       {"strategy", "epoch 2", "epoch 10", "epoch 20",
                        "final", "accuracy"});
    for (const auto& c : cases) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature("D32fM8");
        cfg.rounding = c.strategy;
        cfg.epochs = 25;
        cfg.step_size = 0.008f;
        cfg.step_decay = 1.0f;
        core::Trainer trainer(cfg);
        const auto m = trainer.fit(problem);
        table.add_row({c.name, format_num(m.loss_trace[1]),
                       format_num(m.loss_trace[9]),
                       format_num(m.loss_trace[19]),
                       format_num(m.final_loss), format_num(m.accuracy)});
    }
    bench::emit(table);

    // And the D8M8 regime of the paper's headline configuration.
    TablePrinter table8("Fig 5a (cont.): final loss, D8M8, eta = 0.15",
                        {"strategy", "final loss", "accuracy"});
    for (const auto& c : cases) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature("D8M8");
        cfg.rounding = c.strategy;
        cfg.epochs = 12;
        cfg.step_size = 0.15f;
        core::Trainer trainer(cfg);
        const auto m = trainer.fit(problem);
        table8.add_row({c.name, format_num(m.final_loss),
                        format_num(m.accuracy)});
    }
    bench::emit(table8);
    return 0;
}
