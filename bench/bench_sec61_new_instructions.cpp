/**
 * @file
 * §6.1: new vector ALU instructions, evaluated by the proxy method.
 *
 * Times the real hand-optimized D8M8 inner loop against the fused-
 * instruction proxies (dot in one vpmaddwd-class instruction, AXPY in a
 * vpmullw+add pair), plus the instruction-count model.
 *
 * Expected shape: "these new instructions consistently improved
 * throughput by 5% - 15%" — modest, because the loop is mostly
 * memory-bound once hand-optimized.
 */
#include <cstdint>

#include "bench/bench_util.h"
#include "isa/cost_model.h"
#include "isa/proxy_kernels.h"
#include "rng/xorshift.h"
#include "simd/dense_avx2.h"
#include "util/aligned_buffer.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Section 6.1 — proposed fused instructions (proxy timing)",
                  "5-15% throughput gain over the hand-optimized AVX2 loop");

    TablePrinter table("fused-instruction proxy vs hand-optimized AVX2, "
                       "D8M8",
                       {"model size", "avx2 GNPS", "proxy GNPS", "gain"});
    for (std::size_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
        rng::Xorshift128 gen(3);
        AlignedBuffer<std::int8_t> x(n), w(n);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = static_cast<std::int8_t>(gen() % 255 - 127);
            w[i] = static_cast<std::int8_t>(gen() % 255 - 127);
        }
        const auto cs = simd::make_scalar_d8m8(0.5f);
        const auto dither = simd::biased_fixed(simd::kShiftD8M8);
        volatile float sink = 0.0f;

        const double base_sec = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink +
                       simd::avx2::dot_d8m8(x.data(), w.data(), n, 1.0f);
                simd::avx2::axpy_d8m8(w.data(), x.data(), n, cs, dither);
            },
            0.04);
        const double proxy_sec = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink + isa::dot_d8m8_fused_proxy(x.data(), w.data(),
                                                        n);
                isa::axpy_d8m8_fused_proxy(w.data(), x.data(), n, cs);
            },
            0.04);
        const double base = n / base_sec / 1e9;
        const double proxy = n / proxy_sec / 1e9;
        table.add_row({format_si(static_cast<double>(n)),
                       format_num(base, 3), format_num(proxy, 3),
                       format_num(proxy / base, 3)});
    }
    bench::emit(table);

    // Instruction-count model view.
    TablePrinter cost("instruction-count model (per processed number)",
                      {"strategy", "D8M8", "D16M16", "D4M4"});
    for (auto strategy : {isa::Strategy::kCompilerFloatCast,
                          isa::Strategy::kHandAvx2,
                          isa::Strategy::kProposedIsa}) {
        auto cell = [&](int d, int m) -> std::string {
            if ((d == 4 || m == 4) && strategy != isa::Strategy::kProposedIsa)
                return "n/a";
            return format_num(isa::loop_cost(d, m, strategy).per_element(),
                              3);
        };
        cost.add_row({isa::to_string(strategy), cell(8, 8), cell(16, 16),
                      cell(4, 4)});
    }
    bench::emit(cost);
    return 0;
}
