/**
 * @file
 * Figure 2: throughput bounds as the model size changes.
 *
 * Two views of the same phenomenon:
 *  (a) the DMGC performance model (§4) at 18 threads — the bandwidth
 *      bound is flat in n, the communication bound collapses p(n) for
 *      small n;
 *  (b) the cycle-level cache simulator — the mechanism: coherence
 *      ownership transfers serialize on small shared models.
 *
 * Expected shape: throughput rises with model size and saturates
 * (bandwidth-bound) around n ~ 256K; below that it is communication-
 * bound and falls as n shrinks.
 */
#include "bench/bench_util.h"
#include "cachesim/sgd_trace.h"
#include "dmgc/perf_model.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 2 — throughput vs model size (D8M8, 18 threads)",
                  "communication-bound below ~256K, flat bandwidth-bound "
                  "above");

    const auto model = dmgc::PerfModel::paper_model();
    const auto sig = dmgc::parse_signature("D8M8");

    TablePrinter table("Fig 2 data series",
                       {"model size n", "p(n)", "model GNPS (18t)",
                        "sim cycles/number", "sim regime"});

    for (std::size_t n = 1 << 8; n <= (1 << 22); n <<= 2) {
        const double p = model.parallel_fraction(n);
        const double predicted = model.predict_gnps(sig, 18, n);

        // Simulator point (kept small: iterations scale down with n so
        // every row costs roughly the same wall time).
        cachesim::ChipConfig chip;
        cachesim::SgdWorkload work;
        work.model_size = n;
        work.iterations_per_core =
            std::max<std::size_t>(2, (1 << 16) / std::max<std::size_t>(n, 1));
        const auto sim = simulate_sgd(chip, work);
        const bool comm_bound =
            sim.serialization_cycles >= sim.bandwidth_cycles &&
            sim.serialization_cycles >= sim.core_cycles_max * 0.9;

        table.add_row({format_si(static_cast<double>(n)), format_num(p, 3),
                       format_num(predicted, 3),
                       format_num(sim.wall_cycles / sim.numbers_processed,
                                  3),
                       comm_bound ? "communication" : "bandwidth/compute"});
    }
    bench::emit(table);
    return 0;
}
