/**
 * @file
 * Table 1: DMGC signatures of previous algorithms.
 *
 * Regenerates the paper's classification of prior low-precision systems
 * from the taxonomy registry, and demonstrates the parse/format
 * round-trip for each entry.
 */
#include "bench/bench_util.h"
#include "dmgc/taxonomy.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Table 1 — DMGC signatures of previous algorithms",
                  "static taxonomy; signatures must round-trip through the "
                  "parser");

    TablePrinter table("Table 1", {"paper", "DMGC signature", "round-trip",
                                   "what is quantized"});
    for (const auto& entry : dmgc::prior_work_taxonomy()) {
        table.add_row({entry.paper, entry.signature_text,
                       entry.signature.to_string(), entry.note});
    }
    bench::emit(table);
    return 0;
}
