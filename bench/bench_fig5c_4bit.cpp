/**
 * @file
 * Figure 5c: hypothetical 4-bit SGD (D4M4) vs D8M8, via the paper's
 * proxy-instruction methodology (§6.1): nibble-packed data processed
 * with 8-bit-latency instructions over half the bytes.
 *
 * Expected shape: D4M4 ~2x faster than D8M8 across model sizes (it
 * halves both memory traffic and vector count).
 */
#include <cstdint>

#include "bench/bench_util.h"
#include "isa/nibble_kernels.h"
#include "isa/proxy_kernels.h"
#include "rng/xorshift.h"
#include "simd/dense_avx2.h"
#include "util/aligned_buffer.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 5c — hypothetical 4-bit (D4M4) vs D8M8 throughput",
                  "D4M4 ~2x faster across sizes (proxy timing; outputs of "
                  "proxy kernels are invalid by design)");

    TablePrinter table("Fig 5c: dot+AXPY inner-loop throughput",
                       {"model size", "D8M8 GNPS", "D4M4 GNPS (proxy)",
                        "speedup"});

    for (std::size_t n : {1u << 12, 1u << 14, 1u << 16, 1u << 18}) {
        rng::Xorshift128 gen(7);
        AlignedBuffer<std::int8_t> x8(n), w8(n);
        for (std::size_t i = 0; i < n; ++i) {
            x8[i] = static_cast<std::int8_t>(gen() % 255 - 127);
            w8[i] = static_cast<std::int8_t>(gen() % 255 - 127);
        }
        AlignedBuffer<std::uint8_t> x4(n / 2), w4(n / 2);
        for (std::size_t i = 0; i < n / 2; ++i) {
            x4[i] = static_cast<std::uint8_t>(gen());
            w4[i] = static_cast<std::uint8_t>(gen());
        }

        const auto cs8 = simd::make_scalar_d8m8(0.5f);
        const auto dither = simd::biased_fixed(simd::kShiftD8M8);
        volatile float sink = 0.0f;
        const double sec8 = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink +
                       simd::avx2::dot_d8m8(x8.data(), w8.data(), n, 1.0f);
                simd::avx2::axpy_d8m8(w8.data(), x8.data(), n, cs8, dither);
            },
            0.04);

        const double sec4 = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink + isa::dot_d4m4_proxy(x4.data(), w4.data(), n);
                isa::axpy_d4m4_proxy(w4.data(), x4.data(), n, cs8);
            },
            0.04);

        const double g8 = n / sec8 / 1e9;
        const double g4 = n / sec4 / 1e9;
        table.add_row({format_si(static_cast<double>(n)), format_num(g8, 3),
                       format_num(g4, 3), format_num(g4 / g8, 3)});
    }
    bench::emit(table);

    std::printf("\n(statistical side: see bench_fig7b_lenet, which sweeps "
                "model precision down to 4 bits)\n");
    return 0;
}
