/**
 * @file
 * Extension: parameter-server scaling — workers x communication codec,
 * in-process threads vs real multi-process sockets.
 *
 * The sharded parameter server executes the DMGC C axis for real (threads,
 * messages, asynchrony) where bench_ext_comm_precision only emulates the
 * communication pattern. Three sections:
 *
 *  1. Codec tiers over REAL SOCKETS: train_cluster_multiprocess forks
 *     2 shard + 2 worker processes over loopback TCP per tier — the
 *     bytes/round column is actual framed wire traffic. (Runs first:
 *     fork() must happen before any section spawns threads.)
 *  2. The same codec tiers in-process, plus the worker-count sweep at a
 *     fixed total round budget (rounds per worker shrink as workers grow,
 *     so every cell applies the same number of gradients).
 *  3. An encode/decode microbench per tier: ns per call on a dense
 *     gradient, isolating codec cost from fabric cost.
 *
 * Expected shape: along the precision axis the push traffic collapses
 * ~32x/4x (Cs32 -> Cs1 / Cs8) while final accuracy stays within a point —
 * error feedback absorbs both the quantization error and the cross-shard
 * staleness; CsQ4's gamma-coded payload lands >= 2x under Cs8; socket
 * rows match the in-process rows on convergence (same round loop, only
 * the fabric differs).
 */
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/problem.h"
#include "obs/export.h"
#include "ps/node.h"
#include "ps/ps.h"

namespace {

using namespace buckwild;

struct Cell
{
    std::string mode; ///< "inproc" or "socket"
    std::size_t workers = 0;
    ps::ClusterResult result;
};

ps::ClusterConfig
cell_config(std::size_t workers, const ps::Codec& codec,
            std::size_t total_rounds)
{
    ps::ClusterConfig cfg;
    cfg.workers = workers;
    cfg.shards = 2;
    cfg.codec = codec;
    cfg.rounds = total_rounds / workers;
    cfg.batch = 16;
    cfg.tau = 8;
    cfg.step_size = 0.25f;
    return cfg;
}

void
add_result_row(TablePrinter& table, const Cell& cell)
{
    const auto& r = cell.result;
    const double rps =
        r.wall_seconds > 0.0
            ? static_cast<double>(r.rounds) / r.wall_seconds
            : 0.0;
    table.add_row(
        {r.comm, format_num(r.final_loss), format_num(r.accuracy),
         format_num(r.bytes_per_round, 4), format_num(rps, 4),
         std::to_string(r.metrics.total_gated()),
         std::to_string(r.metrics.max_staleness()),
         format_num(r.wall_seconds, 3)});
}

/// ns per encode_gradient / decode_gradient call on an `n`-coordinate
/// gradient (error feedback on, residual carried across calls — the
/// steady state a worker round sees).
void
codec_ns(const ps::Codec& codec, std::size_t n, double* encode_ns,
         double* decode_ns)
{
    std::vector<float> g(n);
    rng::Xorshift128Plus rng(4242);
    for (std::size_t k = 0; k < n; ++k)
        g[k] = rng::to_unit_float(static_cast<std::uint32_t>(rng() >> 32)) -
               0.5f;
    std::vector<float> residual(n, 0.0f);
    rng::Xorshift128Plus dither(77);
    ps::WireGradient wire =
        ps::encode_gradient(g.data(), n, codec, residual.data(), &dither);
    *encode_ns = measure_seconds_per_call(
                     [&](std::size_t) {
                         wire = ps::encode_gradient(g.data(), n, codec,
                                                    residual.data(), &dither);
                     },
                     0.02) *
                 1e9;
    std::vector<float> decoded;
    *decode_ns = measure_seconds_per_call(
                     [&](std::size_t) { decoded = ps::decode_gradient(wire); },
                     0.02) *
                 1e9;
}

} // namespace

int
main()
{
    using namespace buckwild;
    bench::banner("Extension — parameter-server scaling "
                  "(codec tiers, sockets vs in-process, worker sweep)",
                  "bytes/round collapses ~32x Cs32 -> Cs1 and >= 2x "
                  "Cs8 -> CsQ4 at matched accuracy; socket and in-process "
                  "rows converge alike");

    const auto problem = dataset::generate_logistic_dense(512, 4096, 17);
    const std::vector<ps::Codec> tiers = {
        ps::Codec::from_bits(32), ps::Codec::from_bits(8),
        ps::Codec::qsgd(4),       ps::Codec::qsgd(2),
        ps::Codec::from_bits(1),
    };
    std::vector<Cell> cells;

    // ---- 1. Codec tiers over real sockets (fork before any threads) ----
    {
        const std::size_t total_rounds = 300;
        TablePrinter table("codec tiers, MULTI-PROCESS loopback TCP, "
                           "n = 512, 2 shards, 2 workers, " +
                               std::to_string(total_rounds / 2) +
                               " rounds/worker",
                           {"comm", "final loss", "accuracy", "B/round",
                            "rounds/s", "gated", "stale", "wall s"});
        for (const ps::Codec& codec : tiers) {
            Cell cell;
            cell.mode = "socket";
            cell.workers = 2;
            cell.result = ps::train_cluster_multiprocess(
                problem, cell_config(2, codec, total_rounds));
            add_result_row(table, cell);
            cells.push_back(std::move(cell));
        }
        bench::emit(table);
    }

    // ---- 2a. The same tiers in-process (threads, shared memory) ----
    {
        const std::size_t total_rounds = 300;
        TablePrinter table("codec tiers, in-process, n = 512, 2 shards, "
                           "2 workers, " +
                               std::to_string(total_rounds / 2) +
                               " rounds/worker",
                           {"comm", "final loss", "accuracy", "B/round",
                            "rounds/s", "gated", "stale", "wall s"});
        for (const ps::Codec& codec : tiers) {
            Cell cell;
            cell.mode = "inproc";
            cell.workers = 2;
            cell.result = ps::train_cluster(
                problem, cell_config(2, codec, total_rounds));
            add_result_row(table, cell);
            cells.push_back(std::move(cell));
        }
        bench::emit(table);
    }

    // ---- 2b. Worker sweep at a fixed total round budget ----
    const std::size_t total_rounds = 1200;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
        TablePrinter table(
            "worker sweep, in-process, n = 512, 2 shards, " +
                std::to_string(workers) + " workers, " +
                std::to_string(total_rounds / workers) + " rounds/worker",
            {"comm", "final loss", "accuracy", "B/round", "rounds/s",
             "gated", "stale", "wall s"});
        for (const ps::Codec& codec :
             {ps::Codec::from_bits(32), ps::Codec::from_bits(8),
              ps::Codec::qsgd(4), ps::Codec::from_bits(1)}) {
            Cell cell;
            cell.mode = "inproc";
            cell.workers = workers;
            cell.result = ps::train_cluster(
                problem, cell_config(workers, codec, total_rounds));
            add_result_row(table, cell);
            cells.push_back(std::move(cell));
        }
        bench::emit(table);
    }

    // ---- 2c. Sparse workload vs the same examples densified ----
    // One RCV1-style synthetic problem (5% density) trained through the
    // sparse push path and, densified, through the dense path — the
    // bytes/round delta is the GradientView refactor's wire win (the
    // full density sweep lives in bench_sparse_density).
    {
        const auto sparse_problem =
            dataset::generate_logistic_sparse(512, 2048, 0.05, 17);
        dataset::DenseProblem densified;
        densified.dim = sparse_problem.dim;
        densified.examples = sparse_problem.examples();
        densified.y = sparse_problem.y;
        densified.w_true = sparse_problem.w_true;
        densified.x.assign(densified.examples * densified.dim, 0.0f);
        for (std::size_t i = 0; i < densified.examples; ++i) {
            const auto& row = sparse_problem.rows[i];
            for (std::size_t j = 0; j < row.index.size(); ++j)
                densified.x[i * densified.dim + row.index[j]] =
                    row.value[j];
        }
        TablePrinter table("sparse pushes vs densified, in-process, "
                           "n = 512 at 5% density, 2 shards, 2 workers, "
                           "150 rounds/worker",
                           {"comm", "final loss", "accuracy", "B/round",
                            "rounds/s", "gated", "stale", "wall s"});
        for (const ps::Codec& codec :
             {ps::Codec::from_bits(32), ps::Codec::qsgd(4)}) {
            Cell sparse_cell;
            sparse_cell.mode = "sparse";
            sparse_cell.workers = 2;
            sparse_cell.result = ps::train_cluster(
                sparse_problem, cell_config(2, codec, 300));
            add_result_row(table, sparse_cell);
            cells.push_back(std::move(sparse_cell));
            Cell dense_cell;
            dense_cell.mode = "densified";
            dense_cell.workers = 2;
            dense_cell.result =
                ps::train_cluster(densified, cell_config(2, codec, 300));
            add_result_row(table, dense_cell);
            cells.push_back(std::move(dense_cell));
        }
        bench::emit(table);
    }

    // ---- 3. Codec microbench: encode/decode ns per call ----
    std::vector<double> enc_ns(tiers.size()), dec_ns(tiers.size());
    {
        const std::size_t n = 4096;
        TablePrinter table("codec microbench, n = " + std::to_string(n) +
                               " coordinates per call",
                           {"comm", "encode ns", "decode ns", "payload B"});
        for (std::size_t t = 0; t < tiers.size(); ++t) {
            codec_ns(tiers[t], n, &enc_ns[t], &dec_ns[t]);
            std::vector<float> g(n, 0.125f), residual(n, 0.0f);
            const auto wire =
                ps::encode_gradient(g.data(), n, tiers[t], residual.data());
            table.add_row({tiers[t].name(), format_num(enc_ns[t], 4),
                           format_num(dec_ns[t], 4),
                           std::to_string(wire.wire_bytes())});
        }
        bench::emit(table);
    }

    // Machine-readable sweep for plotting pipelines (and the acceptance
    // checks: Cs1 bytes_per_round >= 20x under Cs32, CsQ4 >= 2x under
    // Cs8, socket vs inproc accuracy within a point), via the shared obs
    // JSON writer.
    std::printf("-- json --\n");
    obs::JsonWriter json(std::cout);
    json.begin_array();
    for (const Cell& cell : cells) {
        const auto& r = cell.result;
        std::cout << '\n';
        json.begin_object();
        json.key("mode").value(cell.mode);
        json.key("workers").value(cell.workers);
        json.key("comm").value(r.comm);
        json.key("final_loss").value(r.final_loss);
        json.key("accuracy").value(r.accuracy);
        json.key("bytes_per_round").value(r.bytes_per_round);
        json.key("rounds_per_sec")
            .value(r.wall_seconds > 0.0
                       ? static_cast<double>(r.rounds) / r.wall_seconds
                       : 0.0);
        json.key("push_bytes").value(r.metrics.total_push_bytes());
        json.key("sparse_nnz").value(r.metrics.total_sparse_nnz());
        json.key("sparse_bytes").value(r.metrics.total_sparse_bytes());
        json.key("rounds").value(r.rounds);
        json.key("gated").value(r.metrics.total_gated());
        json.key("max_staleness")
            .value(static_cast<std::uint64_t>(r.metrics.max_staleness()));
        json.key("rpc_retries").value(r.metrics.rpc_retries);
        json.key("wall_s").value(r.wall_seconds);
        json.key("gnps").value(r.metrics.gnps());
        json.end_object();
    }
    for (std::size_t t = 0; t < tiers.size(); ++t) {
        std::cout << '\n';
        json.begin_object();
        json.key("mode").value("microbench");
        json.key("comm").value(tiers[t].name());
        json.key("encode_ns").value(enc_ns[t]);
        json.key("decode_ns").value(dec_ns[t]);
        json.end_object();
    }
    json.end_array();
    std::cout << '\n';
    return 0;
}
