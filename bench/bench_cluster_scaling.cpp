/**
 * @file
 * Extension: parameter-server scaling — workers x communication precision.
 *
 * The sharded parameter server executes the DMGC C axis for real (threads,
 * messages, asynchrony) where bench_ext_comm_precision only emulates the
 * communication pattern. This bench sweeps worker count against the wire
 * precision at a fixed total round budget (rounds per worker shrink as
 * workers grow, so every cell applies the same number of gradients) and
 * reports convergence next to the bytes each worker pushes per round.
 *
 * Expected shape: along the precision axis the push traffic collapses
 * ~32x/4x (Cs32 -> Cs1 / Cs8) while final accuracy stays within a point —
 * error feedback absorbs both the quantization error and the cross-shard
 * staleness; along the worker axis convergence holds as the same gradient
 * budget is spread over more (staler) pushers.
 */
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/problem.h"
#include "obs/export.h"
#include "ps/ps.h"

namespace {

using namespace buckwild;

struct Cell
{
    std::size_t workers = 0;
    ps::ClusterResult result;
};

} // namespace

int
main()
{
    using namespace buckwild;
    bench::banner("Extension — parameter-server scaling (workers x comm bits)",
                  "bytes/round collapses ~32x Cs32 -> Cs1 at matched "
                  "accuracy; staleness stays under tau");

    const auto problem = dataset::generate_logistic_dense(512, 4096, 17);
    const std::size_t total_rounds = 1200;
    const std::vector<std::size_t> worker_counts = {1, 2, 4};
    const std::vector<int> bits_sweep = {32, 8, 1};

    std::vector<Cell> cells;
    for (const std::size_t workers : worker_counts) {
        TablePrinter table(
            "cluster, n = 512, 2 shards, " + std::to_string(workers) +
                " workers, " + std::to_string(total_rounds / workers) +
                " rounds/worker",
            {"comm", "final loss", "accuracy", "B/round", "push KB",
             "gated", "stale", "wall s"});
        for (const int bits : bits_sweep) {
            ps::ClusterConfig cfg;
            cfg.workers = workers;
            cfg.shards = 2;
            cfg.comm_bits = bits;
            cfg.rounds = total_rounds / workers;
            cfg.batch = 16;
            cfg.tau = 8;
            cfg.step_size = 0.25f;
            Cell cell;
            cell.workers = workers;
            cell.result = ps::train_cluster(problem, cfg);
            const auto& r = cell.result;
            table.add_row(
                {r.comm, format_num(r.final_loss), format_num(r.accuracy),
                 format_num(r.bytes_per_round, 4),
                 format_num(static_cast<double>(
                                r.metrics.total_push_bytes()) /
                                1024.0,
                            4),
                 std::to_string(r.metrics.total_gated()),
                 std::to_string(r.metrics.max_staleness()),
                 format_num(r.wall_seconds, 3)});
            cells.push_back(std::move(cell));
        }
        bench::emit(table);
    }

    // Machine-readable sweep for plotting pipelines (and the acceptance
    // check: Cs1 bytes_per_round >= 20x under Cs32 at matched accuracy),
    // via the shared obs JSON writer.
    std::printf("-- json --\n");
    obs::JsonWriter json(std::cout);
    json.begin_array();
    for (const Cell& cell : cells) {
        const auto& r = cell.result;
        std::cout << '\n';
        json.begin_object();
        json.key("workers").value(cell.workers);
        json.key("comm").value(r.comm);
        json.key("final_loss").value(r.final_loss);
        json.key("accuracy").value(r.accuracy);
        json.key("bytes_per_round").value(r.bytes_per_round);
        json.key("push_bytes").value(r.metrics.total_push_bytes());
        json.key("rounds").value(r.rounds);
        json.key("gated").value(r.metrics.total_gated());
        json.key("max_staleness")
            .value(static_cast<std::uint64_t>(r.metrics.max_staleness()));
        json.key("rpc_retries").value(r.metrics.rpc_retries);
        json.key("wall_s").value(r.wall_seconds);
        json.key("gnps").value(r.metrics.gnps());
        json.end_object();
    }
    json.end_array();
    std::cout << '\n';
    return 0;
}
