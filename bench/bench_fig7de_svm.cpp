/**
 * @file
 * Figure 7d/7e: kernel SVM via random Fourier features (§7).
 *
 * One-versus-all linear SVMs (hinge loss) are trained with Buckwild! on
 * RFF-transformed digit images, sweeping the training precision, "a
 * standard proxy for Gaussian kernels".
 *
 * Expected shape: 16-bit training loss and test error essentially match
 * full precision; 8-bit lands "within a percent"; and the low-precision
 * versions run substantially faster (paper: 3.3x / 5.9x).
 */
#include <cstdint>

#include "bench/bench_util.h"
#include "buckwild/buckwild.h"

namespace {

using namespace buckwild;

/// One-vs-all SVM bank over a precomputed feature matrix.
struct SvmResult
{
    double train_loss = 0.0;   ///< average hinge loss across classifiers
    double test_error = 0.0;   ///< multiclass argmax error
    double gnps = 0.0;         ///< aggregate training throughput
};

SvmResult
run_signature(const char* signature,
              const std::vector<float>& train_features,
              const std::vector<int>& train_labels,
              const std::vector<float>& test_features,
              const std::vector<int>& test_labels, std::size_t dim)
{
    const std::size_t train_count = train_labels.size();
    const std::size_t test_count = test_labels.size();

    SvmResult result;
    std::vector<std::vector<float>> models;
    for (int digit = 0; digit < 10; ++digit) {
        dataset::DenseProblem problem;
        problem.dim = dim;
        problem.examples = train_count;
        problem.x = train_features;
        problem.y.resize(train_count);
        for (std::size_t i = 0; i < train_count; ++i)
            problem.y[i] = train_labels[i] == digit ? 1.0f : -1.0f;

        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature(signature);
        cfg.loss = core::Loss::kHinge;
        cfg.epochs = 6;
        cfg.step_size = 0.4f;
        cfg.record_loss_trace = false;
        core::Trainer trainer(cfg);
        const auto metrics = trainer.fit(problem);
        result.train_loss += metrics.final_loss / 10.0;
        result.gnps += metrics.gnps() / 10.0;
        models.push_back(trainer.model());
    }

    std::size_t wrong = 0;
    for (std::size_t i = 0; i < test_count; ++i) {
        const float* z = test_features.data() + i * dim;
        int best = 0;
        float best_margin = -1e30f;
        for (int digit = 0; digit < 10; ++digit) {
            const float margin = core::predict_margin(models[digit], z);
            if (margin > best_margin) {
                best_margin = margin;
                best = digit;
            }
        }
        if (best != test_labels[i]) ++wrong;
    }
    result.test_error = static_cast<double>(wrong) / test_count;
    return result;
}

} // namespace

int
main()
{
    bench::banner("Figure 7d/7e — kernel SVM (random Fourier features)",
                  "16-bit ~ full precision; 8-bit within ~a percent; "
                  "low precision runs faster");

    const auto train = dataset::generate_digits(800, 51, 0.12f);
    const auto test = dataset::generate_digits(300, 52, 0.12f);

    // RFF transform of the raw pixels (the Gaussian-kernel proxy).
    const std::size_t kFeatures = 512;
    const dataset::FourierFeatures rff(dataset::kDigitPixels, kFeatures,
                                       6.0f, 53);
    // Scale features to use the fixed-point range well.
    auto train_z = rff.transform_batch(train.pixels.data(), train.count);
    auto test_z = rff.transform_batch(test.pixels.data(), test.count);
    const float scale = 8.0f; // sqrt(2/512) ~ 0.06 -> ~0.5
    for (auto& v : train_z) v *= scale;
    for (auto& v : test_z) v *= scale;

    TablePrinter table("Fig 7d/7e: one-vs-all RFF SVM on digits",
                       {"signature", "train hinge loss", "test error",
                        "GNPS", "speedup"});
    double base_gnps = 0.0;
    for (const char* sig : {"D32fM32f", "D16M16", "D8M8"}) {
        const auto r = run_signature(sig, train_z, train.labels, test_z,
                                     test.labels, kFeatures);
        if (base_gnps == 0.0) base_gnps = r.gnps;
        table.add_row({sig, format_num(r.train_loss, 3),
                       format_num(r.test_error, 3), format_num(r.gnps, 3),
                       format_num(r.gnps / base_gnps, 3)});
    }
    bench::emit(table);
    std::printf("\npaper reference speedups over float: 3.3x (16-bit), "
                "5.9x (8-bit) at 18 threads\n");
    return 0;
}
