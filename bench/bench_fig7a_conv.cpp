/**
 * @file
 * Figure 7a: convolution-layer throughput vs precision.
 *
 * Runs the AlexNet-conv1-shaped layer (227x227x3, 96 filters 11x11,
 * stride 4 — identical geometry to the paper's proxy layer) lowered to
 * im2col + quantized GEMM through the library's kernels.
 *
 * Expected shape: "we expect that low-precision would yield a linear
 * increase in throughput ... and that our optimizations are necessary to
 * achieve this speedup" — hand-optimized 8-bit ~4x over float, naive
 * (compiler) code flat across precisions.
 */
#include "bench/bench_util.h"
#include "nn/conv_lowp.h"

namespace {

using namespace buckwild;

template <typename D, typename M>
double
conv_gmacs(simd::Impl impl)
{
    // A reduced-geometry layer (same structure, 1/4 the patches) keeps
    // each measurement under a second on one core.
    nn::ConvShape shape = nn::ConvShape::alexnet_conv1();
    shape.in_size = 115; // 27x27 output, same kernel/stride/filters
    nn::LowpConv<D, M> conv(shape, 5);
    volatile float sink = 0.0f;
    const double sec = measure_seconds_per_call(
        [&](std::size_t) { sink = sink + conv.forward(impl)[0]; }, 0.1);
    return shape.macs() / sec / 1e9;
}

} // namespace

int
main()
{
    bench::banner("Figure 7a — convolution layer throughput vs precision",
                  "hand-optimized: ~linear speedup in 1/bits over float32; "
                  "naive compiler code: flat");

    TablePrinter table("AlexNet-conv1-shaped layer (96 filters, 11x11, s4)",
                       {"precision", "naive GMAC/s", "avx2 GMAC/s",
                        "avx2 vs float32"});

    const double naive32 = conv_gmacs<float, float>(simd::Impl::kNaive);
    const double avx32 = conv_gmacs<float, float>(simd::Impl::kAvx2);
    const double naive16 =
        conv_gmacs<std::int16_t, std::int16_t>(simd::Impl::kNaive);
    const double avx16 =
        conv_gmacs<std::int16_t, std::int16_t>(simd::Impl::kAvx2);
    const double naive8 =
        conv_gmacs<std::int8_t, std::int8_t>(simd::Impl::kNaive);
    const double avx8 =
        conv_gmacs<std::int8_t, std::int8_t>(simd::Impl::kAvx2);

    table.add_row({"float32", format_num(naive32, 3), format_num(avx32, 3),
                   "1.00"});
    table.add_row({"D16M16", format_num(naive16, 3), format_num(avx16, 3),
                   format_num(avx16 / avx32, 3)});
    table.add_row({"D8M8", format_num(naive8, 3), format_num(avx8, 3),
                   format_num(avx8 / avx32, 3)});
    bench::emit(table);

    std::printf("\npaper reference: MNIST/CIFAR10 conv layers showed 2.0x "
                "(D16M16) and 3.0x (D8M8) over full precision\n");
    return 0;
}
