/**
 * @file
 * Ablations of this library's own design decisions (the DESIGN.md §5
 * list) — not a paper figure, but the evidence for the choices:
 *
 *  1. Per-pair fixed-scalar shifts: the D16->M8 path needs a 20-bit
 *     shift; with the naive 7-bit shift the multiplier quantizes to zero
 *     and training freezes.
 *  2. Shared-randomness refresh period: the §5.2 smooth trade-off between
 *     statistical quality and PRNG cost.
 *  3. Cache-simulator parameter sensitivity: the Fig-2 communication-
 *     bound shape must be robust to the exact service-time constant.
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"
#include "cachesim/sgd_trace.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Ablations — the library's own design choices",
                  "each block justifies one DESIGN.md decision");

    // ---- 1. Per-pair shift: emulate a 7-bit shift for D16M8 by showing
    // the multiplier that shift would produce.
    {
        TablePrinter table("fixed-scalar shift for D16M8 (eta*qx/qm ~ "
                           "eta/256)",
                           {"eta", "c (model units)", "mult @ shift 7",
                            "mult @ shift 20 (ours)"});
        for (float eta : {0.5f, 0.1f, 0.02f}) {
            const float c = eta * 0.5f / 256.0f; // typical |g| = 0.5
            table.add_row({format_num(eta, 3), format_num(c, 4),
                           std::to_string(std::lround(c * (1 << 7))),
                           std::to_string(std::lround(c * (1 << 20)))});
        }
        bench::emit(table);
        std::printf("-> at shift 7 every realistic step rounds to mult=0: "
                    "updates vanish, training freezes.\n");
    }

    // ---- 2. Shared refresh period: statistical vs hardware efficiency.
    {
        const auto problem =
            dataset::generate_logistic_dense(1 << 12, 1024, 13);
        TablePrinter table("shared-randomness refresh period (D8M8)",
                           {"refresh every N AXPYs", "final loss", "GNPS"});
        for (std::size_t period : {1u, 4u, 16u, 64u, 256u}) {
            core::TrainerConfig cfg;
            cfg.signature = dmgc::parse_signature("D8M8");
            cfg.rounding = core::RoundingStrategy::kSharedXorshift;
            cfg.shared_refresh_iters = period;
            cfg.epochs = 6;
            core::Trainer trainer(cfg);
            const auto m = trainer.fit(problem);
            table.add_row({std::to_string(period),
                           format_num(m.final_loss),
                           format_num(m.gnps(), 3)});
        }
        bench::emit(table);
        std::printf("-> quality degrades only gently with the period; the "
                    "PRNG cost is already amortized at period 1 (the AVX2 "
                    "generator is cheap), matching §5.2.\n");
    }

    // ---- 3. Simulator sensitivity: the small-vs-large model ratio under
    // perturbed coherence service times.
    {
        TablePrinter table("cachesim: small/large cycles-per-number ratio "
                           "vs service-time constant",
                           {"service cycles", "n=1K c/n", "n=256K c/n",
                            "ratio"});
        for (double service : {120.0, 240.0, 480.0}) {
            cachesim::ChipConfig chip;
            chip.coherence_service_cycles = service;
            cachesim::SgdWorkload small;
            small.model_size = 1 << 10;
            small.iterations_per_core = 32;
            cachesim::SgdWorkload large;
            large.model_size = 1 << 18;
            large.iterations_per_core = 2;
            const auto rs = simulate_sgd(chip, small);
            const auto rl = simulate_sgd(chip, large);
            const double cs = rs.wall_cycles / rs.numbers_processed;
            const double cl = rl.wall_cycles / rl.numbers_processed;
            table.add_row({format_num(service, 4), format_num(cs, 3),
                           format_num(cl, 3), format_num(cs / cl, 3)});
        }
        bench::emit(table);
        std::printf("-> the communication-bound penalty for small models "
                    "persists across a 4x range of the constant.\n");
    }
    return 0;
}
