/**
 * @file
 * Extension: asynchrony as bounded staleness.
 *
 * The paper leans on prior analyses (Niu et al., Mania et al., De Sa et
 * al.) that asynchronous race conditions "only marginally affect
 * statistical efficiency". This bench injects explicit update delays —
 * the perturbed-iterate model those analyses use — and sweeps tau far
 * past realistic hardware values, also crossing the staleness knob with
 * the cache-simulator prefetcher variants to show where each mechanism
 * matters.
 *
 * Expected shape: flat loss up to tau ~ hundreds (hardware asynchrony is
 * tau ~ #threads), visible degradation only when staleness approaches the
 * dataset size.
 */
#include "bench/bench_util.h"
#include "cachesim/sgd_trace.h"
#include "core/delayed_sgd.h"
#include "dataset/problem.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Extension — bounded staleness & prefetcher variants",
                  "loss flat to tau >> thread counts; prefetcher choice "
                  "matters only for small models");

    const auto problem = dataset::generate_logistic_dense(128, 4000, 21);
    TablePrinter stale("update staleness tau vs convergence",
                       {"max delay tau", "avg delay", "final loss",
                        "accuracy"});
    for (std::size_t tau : {0u, 4u, 18u, 128u, 1024u, 8000u}) {
        core::DelayedSgdConfig cfg;
        cfg.max_delay = tau;
        cfg.epochs = 8;
        const auto r = train_with_delayed_updates(problem, cfg);
        stale.add_row({std::to_string(tau),
                       format_num(r.average_delay, 3),
                       format_num(r.final_loss), format_num(r.accuracy)});
    }
    bench::emit(stale);

    // Prefetcher-variant sweep on the simulator (all four MSR-style
    // configurations), small vs large model.
    TablePrinter pf("prefetcher variants (cycles/number)",
                    {"prefetcher", "n = 1K", "n = 256K"});
    for (auto kind :
         {cachesim::Prefetcher::kNone, cachesim::Prefetcher::kNextLine,
          cachesim::Prefetcher::kAdjacentLine,
          cachesim::Prefetcher::kStream2}) {
        cachesim::ChipConfig chip;
        chip.prefetcher = kind;
        cachesim::SgdWorkload small;
        small.model_size = 1 << 10;
        small.iterations_per_core = 32;
        cachesim::SgdWorkload large;
        large.model_size = 1 << 18;
        large.iterations_per_core = 2;
        const auto rs = simulate_sgd(chip, small);
        const auto rl = simulate_sgd(chip, large);
        pf.add_row({to_string(kind),
                    format_num(rs.wall_cycles / rs.numbers_processed, 3),
                    format_num(rl.wall_cycles / rl.numbers_processed, 3)});
    }
    bench::emit(pf);
    return 0;
}
