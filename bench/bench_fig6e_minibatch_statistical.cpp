/**
 * @file
 * Figure 6e: mini-batch size vs statistical efficiency (§5.4).
 *
 * Trains logistic regression for a fixed number of examples at several
 * mini-batch sizes.
 *
 * Expected shape: small B matches plain SGD; very large B degrades the
 * loss at equal examples processed (fewer model updates) — "an empirical
 * or theoretical analysis of the accuracy is needed to decide how large
 * the minibatch size can be set".
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 6e — mini-batch size vs statistical efficiency",
                  "loss flat for small B, degrading for very large B");

    const auto problem = dataset::generate_logistic_dense(256, 6000, 77);

    TablePrinter table("Fig 6e: loss after 5 epochs, D8M8",
                       {"B", "epoch 1", "epoch 3", "final loss",
                        "accuracy"});
    for (std::size_t b : {1u, 4u, 16u, 64u, 256u, 1024u}) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature("D8M8");
        cfg.batch_size = b;
        cfg.epochs = 5;
        cfg.step_size = 0.2f;
        core::Trainer trainer(cfg);
        const auto m = trainer.fit(problem);
        table.add_row({std::to_string(b), format_num(m.loss_trace[0]),
                       format_num(m.loss_trace[2]),
                       format_num(m.final_loss), format_num(m.accuracy)});
    }
    bench::emit(table);
    return 0;
}
