/**
 * @file
 * Figure 6c: the obstinate cache in the simulator (§6.2).
 *
 * Sweeps the obstinacy parameter q over model sizes on the 18-core MESI
 * simulator.
 *
 * Expected shape: the simulator "exhibit[s] a slowdown caused by
 * invalidates as the model becomes smaller"; raising q recovers the
 * small-model throughput ("for values of q around 50%, the cost of
 * running with a small model disappears" — our MESI model shows a
 * monotone recovery with most of the gain by q ~ 0.5-0.95).
 */
#include "bench/bench_util.h"
#include "cachesim/sgd_trace.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 6c — obstinate cache throughput vs q (simulated)",
                  "small models slow at q=0; throughput recovers as q "
                  "rises");

    const double qs[] = {0.0, 0.25, 0.5, 0.75, 0.95};

    for (std::size_t n : {1u << 10, 1u << 12, 1u << 16}) {
        TablePrinter table(
            "model size n = " + std::to_string(n),
            {"q", "cycles/number", "GNPS@2.5GHz", "invalidates ignored",
             "stale reads"});
        for (double q : qs) {
            cachesim::ChipConfig chip;
            chip.obstinacy = q;
            cachesim::SgdWorkload work;
            work.model_size = n;
            work.iterations_per_core =
                std::max<std::size_t>(8, (1 << 15) / n);
            const auto r = simulate_sgd(chip, work);
            table.add_row(
                {format_num(q, 2),
                 format_num(r.wall_cycles / r.numbers_processed, 3),
                 format_num(r.gnps(2.5), 3),
                 std::to_string(r.stats.invalidates_ignored),
                 std::to_string(r.stats.stale_reads)});
        }
        bench::emit(table);
    }
    return 0;
}
