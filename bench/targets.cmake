# One binary per reproduced table/figure (see the experiment index in
# DESIGN.md). Included from the top-level CMakeLists so that build/bench/
# contains only the bench executables:
#   for b in build/bench/*; do $b; done
# regenerates every table and figure.
set(BUCKWILD_BENCHES
  bench_table1_taxonomy
  bench_table2_base_throughput
  bench_fig2_model_size
  bench_fig3_perf_model
  bench_fig4_simd
  bench_fig5a_rng_statistical
  bench_fig5b_rng_throughput
  bench_fig5c_4bit
  bench_fig6ab_prefetch
  bench_fig6c_obstinate
  bench_fig6d_minibatch
  bench_fig6e_minibatch_statistical
  bench_fig6f_obstinate_statistical
  bench_sec61_new_instructions
  bench_fig7a_conv
  bench_fig7b_lenet
  bench_fig7cf_fpga
  bench_fig7de_svm
  bench_table3_summary
  bench_ablation_design
  bench_ext_comm_precision
  bench_ext_avx512
  bench_ext_async_staleness
  bench_serve_throughput
  bench_cluster_scaling
  bench_sparse_density
  bench_lowp_round
  bench_kernel_registry
  bench_gate_overload)

foreach(name IN LISTS BUCKWILD_BENCHES)
  add_executable(${name} bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE buckwild)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endforeach()
