/**
 * @file
 * Table 2: base sequential throughput T1 per DMGC signature, dense and
 * sparse, measured on this machine with the best (hand-optimized SIMD +
 * shared-randomness) implementation — the same measurement methodology as
 * the paper's Table 2 (which notes "throughputs vary by CPU").
 *
 * Expected shape: dense throughput scales near-linearly as precision
 * drops (D8M8 fastest, ~3-4x over D32fM32f); sparse throughput improves
 * sub-linearly, with the M8 schemes on top.
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"

namespace {

using namespace buckwild;

double
dense_t1(const dataset::DenseProblem& problem, const char* signature)
{
    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature(signature);
    cfg.threads = 1; // T1 is the sequential base throughput
    cfg.epochs = 2;
    cfg.record_loss_trace = false;
    core::Trainer trainer(cfg);
    return trainer.fit(problem).gnps();
}

double
sparse_t1(const dataset::SparseProblem& problem, const char* signature)
{
    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature(signature);
    cfg.threads = 1;
    cfg.epochs = 2;
    cfg.record_loss_trace = false;
    core::Trainer trainer(cfg);
    return trainer.fit(problem).gnps();
}

} // namespace

int
main()
{
    bench::banner(
        "Table 2 — base sequential throughput T1 (GNPS) per signature",
        "dense: near-linear speedup with precision, D8M8 on top; "
        "sparse: sub-linear, M8 schemes on top");

    // Dense: n = 2^18 model — large enough that the dataset streams well
    // past the private caches, the paper's bandwidth-bound regime.
    const auto dense = dataset::generate_logistic_dense(1 << 18, 32, 99);
    // Sparse: 3% density as in the paper; sized so the nonzero stream
    // (values + indices) spills past the private caches.
    const auto sparse =
        dataset::generate_logistic_sparse(1 << 16, 4096, 0.03, 99);

    struct Row
    {
        const char* dense_sig;
        const char* sparse_sig;
        double paper_dense;
        double paper_sparse;
    };
    // The paper's Table 2 rows (Xeon E7-8890 v3 values for reference).
    const Row rows[] = {
        {"D32fM8", "D32fi32M8", 0.203, 0.103},
        {"D32fM16", "D32fi32M16", 0.208, 0.080},
        {"D32fM32f", "D32fi32M32f", 0.936, 0.101},
        {"D8M32f", "D8i8M32f", 0.999, 0.089},
        {"D16M32f", "D16i16M32f", 1.183, 0.089},
        {"D16M16", "D16i16M16", 1.739, 0.106},
        {"D8M16", "D8i8M16", 2.238, 0.105},
        {"D16M8", "D16i16M8", 2.526, 0.172},
        {"D8M8", "D8i8M8", 3.339, 0.166},
    };

    TablePrinter table("Table 2 (measured on this machine vs paper's Xeon)",
                       {"signature", "dense T1", "paper", "sparse T1",
                        "paper "});
    double dense_d8m8 = 0, dense_full = 0;
    for (const auto& row : rows) {
        const double d = dense_t1(dense, row.dense_sig);
        const double s = sparse_t1(sparse, row.sparse_sig);
        if (std::string(row.dense_sig) == "D8M8") dense_d8m8 = d;
        if (std::string(row.dense_sig) == "D32fM32f") dense_full = d;
        table.add_row({row.dense_sig, format_num(d, 3),
                       format_num(row.paper_dense, 3), format_num(s, 3),
                       format_num(row.paper_sparse, 3)});
    }
    bench::emit(table);
    std::printf("\ndense D8M8 / D32fM32f speedup: %.2fx (paper: %.2fx)\n",
                dense_d8m8 / dense_full, 3.339 / 0.936);
    return 0;
}
