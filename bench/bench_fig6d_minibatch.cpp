/**
 * @file
 * Figure 6d: mini-batch size vs throughput (§5.4).
 *
 * Two views: real trainer throughput on this machine (model writes are
 * amortized over B examples), and the cache simulator's invalidate
 * counts (the mechanism: "L2 cache lines will be invalidated
 * correspondingly less frequently").
 *
 * Expected shape: for small models, throughput rises with B and
 * approaches the large-model throughput; invalidates per number fall
 * ~linearly in 1/B.
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"
#include "cachesim/sgd_trace.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 6d — mini-batch size vs throughput",
                  "throughput rises with B for small models; simulator "
                  "invalidates drop ~1/B");

    // Real-machine view (single-core container: the visible effect is the
    // amortization of quantized model writes, not coherence).
    const auto problem = dataset::generate_logistic_dense(1 << 10, 4096, 9);
    TablePrinter real_table("trainer throughput, D8M8, n = 1K",
                            {"B", "GNPS"});
    for (std::size_t b : {1u, 4u, 16u, 64u, 256u}) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature("D8M8");
        cfg.batch_size = b;
        cfg.epochs = 4;
        cfg.record_loss_trace = false;
        core::Trainer trainer(cfg);
        real_table.add_row(
            {std::to_string(b), format_num(trainer.fit(problem).gnps(), 3)});
    }
    bench::emit(real_table);

    // Simulator view: 18 cores, small shared model.
    TablePrinter sim_table("simulator, 18 cores, n = 1K",
                           {"B", "cycles/number", "invalidates sent",
                            "upgrades"});
    for (std::size_t b : {1u, 4u, 16u, 64u}) {
        cachesim::ChipConfig chip;
        cachesim::SgdWorkload work;
        work.model_size = 1 << 10;
        work.iterations_per_core = 64;
        work.batch_size = b;
        const auto r = simulate_sgd(chip, work);
        sim_table.add_row(
            {std::to_string(b),
             format_num(r.wall_cycles / r.numbers_processed, 3),
             std::to_string(r.stats.invalidates_sent),
             std::to_string(r.stats.upgrades)});
    }
    bench::emit(sim_table);
    return 0;
}
