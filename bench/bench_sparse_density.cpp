/**
 * @file
 * Extension: sparse-gradient efficiency vs density — where does the
 * sparse path stop paying?
 *
 * The sparse cluster path (GradientView -> gamma-coded sparse pushes ->
 * gather/scatter shard applies) only wins while the work and the wire
 * traffic scale with nnz instead of the dimension. Three sections sweep
 * the nonzero fraction to locate the dense crossover on each axis:
 *
 *  1. Kernel GNPS vs density: the registered sparse dot/AXPY kernels
 *     (SparseOps<i32>) on an nnz-length (index, value) stream vs the
 *     dense float kernels over the full model. The crossover density —
 *     above which the dense kernel is faster per example — is printed
 *     under the table.
 *  2. Wire bytes vs density: encode_sparse_gradient (values through the
 *     codec + Elias-gamma index gaps) vs the same gradient densified
 *     through encode_gradient, at Cs8 and CsQ4.
 *  3. Cluster bytes/round: train_cluster on a synthetic RCV1-style
 *     sparse problem vs the SAME examples expanded to a dense problem,
 *     at Cs32 and CsQ4 — real measured traffic, with the checkpoint's
 *     Table-1 style DMGC signature row (D32fi32M32f + async C term).
 *
 * Expected shape: sparse wins every axis at RCV1-like densities (~0.1%
 * to 5%); the kernel crossover lands somewhere past ~10% (gather/scatter
 * overhead per touched coordinate), and the wire crossover near ~50%
 * (gamma index stream ~1 byte per coordinate vs the dense payload's
 * fixed per-coordinate cost). The acceptance gate — asserted into the
 * JSON and the exit code — is that sparse encoding moves measurably
 * fewer bytes than the densified encoding of the same gradient at every
 * density <= 10% (both Cs8 and CsQ4), and that the full Cs32 cluster
 * run pushes fewer bytes/round than its densified twin.
 *
 * A finding the cluster table makes visible: at the QUANTIZED tiers the
 * error-feedback residual keeps every once-touched coordinate alive in
 * later pushes (a coordinate with pending feedback must eventually be
 * transmitted), so the per-push support saturates toward the slice
 * dimension over a long run — the nnz/push column shows it. Cs32 has no
 * residual, so its support stays at the minibatch union and the sparse
 * byte win survives end-to-end.
 */
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dataset/problem.h"
#include "obs/export.h"
#include "ps/ps.h"
#include "rng/xorshift.h"
#include "simd/ops.h"
#include "simd/sparse_ops.h"

namespace {

using namespace buckwild;

constexpr double kAssertMaxDensity = 0.10; ///< the <= 10% acceptance gate

/// nnz evenly spread, strictly ascending coordinates over [0, dim).
std::vector<std::uint32_t>
spread_indices(std::size_t dim, std::size_t nnz)
{
    std::vector<std::uint32_t> idx(nnz);
    for (std::size_t j = 0; j < nnz; ++j)
        idx[j] = static_cast<std::uint32_t>(j * dim / nnz);
    return idx;
}

std::vector<float>
random_floats(std::size_t n, std::uint64_t seed)
{
    std::vector<float> out(n);
    rng::Xorshift128Plus rng(seed);
    for (std::size_t k = 0; k < n; ++k)
        out[k] = rng::to_unit_float(static_cast<std::uint32_t>(rng() >> 32)) -
                 0.5f;
    return out;
}

struct KernelRow
{
    double density = 0.0;
    std::size_t nnz = 0;
    double sparse_dot_ns = 0.0, dense_dot_ns = 0.0;
    double sparse_axpy_ns = 0.0, dense_axpy_ns = 0.0;
    double sparse_gnps = 0.0, dense_gnps = 0.0;
};

struct WireRow
{
    double density = 0.0;
    std::size_t nnz = 0;
    std::string comm;
    std::size_t sparse_bytes = 0, dense_bytes = 0;
};

struct ClusterRow
{
    double density = 0.0;
    std::string signature; ///< Table-1-style DMGC row of the checkpoint
    double nnz_per_push = 0.0; ///< support saturation indicator
    ps::ClusterResult sparse, dense;
};

/// The same examples expanded to a row-major dense problem, so the dense
/// path trains on identical data (what tests/test_common.h::densify does).
dataset::DenseProblem
densify(const dataset::SparseProblem& sparse)
{
    dataset::DenseProblem dense;
    dense.dim = sparse.dim;
    dense.examples = sparse.examples();
    dense.y = sparse.y;
    dense.w_true = sparse.w_true;
    dense.x.assign(dense.examples * dense.dim, 0.0f);
    for (std::size_t i = 0; i < dense.examples; ++i) {
        const auto& row = sparse.rows[i];
        for (std::size_t j = 0; j < row.index.size(); ++j)
            dense.x[i * dense.dim + row.index[j]] = row.value[j];
    }
    return dense;
}

} // namespace

int
main()
{
    using namespace buckwild;
    bench::banner(
        "Extension — sparse gradient efficiency vs density "
        "(kernel GNPS crossover, wire bytes, cluster bytes/round)",
        "sparse wins all three axes at libsvm-like densities; the dense "
        "kernel crossover lands well past 10%; CsQ4-sparse moves fewer "
        "bytes than densified CsQ4 at every density <= 10% (asserted)");

    simd::warm_sparse_kernels();
    const std::vector<double> densities = {0.005, 0.01, 0.02, 0.05,
                                           0.1,   0.25, 0.5,  1.0};

    // ---- 1. Kernel GNPS vs density ------------------------------------
    std::vector<KernelRow> kernel_rows;
    double kernel_crossover = -1.0;
    {
        constexpr std::size_t kDim = 16384;
        using Sparse = simd::SparseOps<std::uint32_t>;
        using Dense = simd::DenseOps<float, float>;
        const auto w = random_floats(kDim, 11);
        TablePrinter table(
            "sparse vs dense kernels, model n = " + std::to_string(kDim) +
                ", i32 absolute indices, ns per call",
            {"density", "nnz", "sp dot", "dn dot", "sp axpy", "dn axpy",
             "sp GNPS", "dn GNPS"});
        for (const double d : densities) {
            KernelRow row;
            row.density = d;
            row.nnz = static_cast<std::size_t>(d * kDim);
            const auto idx = spread_indices(kDim, row.nnz);
            const auto val = random_floats(row.nnz, 23);
            auto model = w;
            volatile float sink = 0.0f;
            row.sparse_dot_ns =
                measure_seconds_per_call(
                    [&](std::size_t) {
                        sink = Sparse::dot(val.data(), idx.data(), row.nnz,
                                           model.data(), 1.0f,
                                           simd::sparse::IndexMode::kAbsolute);
                    },
                    0.02) *
                1e9;
            row.dense_dot_ns =
                measure_seconds_per_call(
                    [&](std::size_t) {
                        sink = Dense::dot(w.data(), model.data(), kDim, 1.0f,
                                          1.0f);
                    },
                    0.02) *
                1e9;
            row.sparse_axpy_ns =
                measure_seconds_per_call(
                    [&](std::size_t) {
                        Sparse::axpy(model.data(), val.data(), idx.data(),
                                     row.nnz, 1e-6f,
                                     simd::sparse::IndexMode::kAbsolute);
                    },
                    0.02) *
                1e9;
            const simd::DitherBlock dither{};
            row.dense_axpy_ns =
                measure_seconds_per_call(
                    [&](std::size_t) {
                        Dense::axpy(model.data(), w.data(), kDim, 1e-6f, 1.0f,
                                    1.0f, dither);
                    },
                    0.02) *
                1e9;
            (void)sink;
            row.sparse_gnps = static_cast<double>(row.nnz) /
                              row.sparse_dot_ns; // numbers/ns == GNPS
            row.dense_gnps = static_cast<double>(kDim) / row.dense_dot_ns;
            if (kernel_crossover < 0.0 &&
                row.sparse_dot_ns > row.dense_dot_ns)
                kernel_crossover = d;
            table.add_row({format_num(d), std::to_string(row.nnz),
                           format_num(row.sparse_dot_ns, 4),
                           format_num(row.dense_dot_ns, 4),
                           format_num(row.sparse_axpy_ns, 4),
                           format_num(row.dense_axpy_ns, 4),
                           format_num(row.sparse_gnps, 3),
                           format_num(row.dense_gnps, 3)});
            kernel_rows.push_back(row);
        }
        bench::emit(table);
        if (kernel_crossover >= 0.0)
            std::printf("kernel crossover: dense dot is faster from "
                        "density %.3g up\n",
                        kernel_crossover);
        else
            std::printf("kernel crossover: sparse dot won at every swept "
                        "density\n");
    }

    // ---- 2. Wire bytes vs density -------------------------------------
    std::vector<WireRow> wire_rows;
    {
        constexpr std::size_t kDim = 4096;
        TablePrinter table(
            "encoded wire bytes, gradient dim = " + std::to_string(kDim) +
                ": sparse (values + gamma index gaps) vs densified",
            {"density", "nnz", "comm", "sparse B", "dense B", "ratio"});
        for (const double d : densities) {
            const std::size_t nnz = static_cast<std::size_t>(d * kDim);
            const auto idx = spread_indices(kDim, nnz);
            const auto val = random_floats(nnz, 31);
            std::vector<float> dense_g(kDim, 0.0f);
            for (std::size_t j = 0; j < nnz; ++j)
                dense_g[idx[j]] = val[j];
            for (const ps::Codec& codec :
                 {ps::Codec::from_bits(8), ps::Codec::qsgd(4)}) {
                WireRow row;
                row.density = d;
                row.nnz = nnz;
                row.comm = codec.name();
                std::vector<float> residual(nnz, 0.0f);
                const auto sparse_view = ps::GradientView::sparse_view(
                    val.data(), idx.data(), nnz, kDim,
                    simd::sparse::IndexMode::kAbsolute);
                const ps::WireGradient sparse_wire =
                    ps::encode_sparse_gradient(sparse_view, codec,
                                               residual.data());
                std::vector<float> dense_residual(kDim, 0.0f);
                const ps::WireGradient dense_wire = ps::encode_gradient(
                    dense_g.data(), kDim, codec, dense_residual.data());
                row.sparse_bytes = sparse_wire.wire_bytes();
                row.dense_bytes = dense_wire.wire_bytes();
                table.add_row(
                    {format_num(d), std::to_string(nnz), row.comm,
                     std::to_string(row.sparse_bytes),
                     std::to_string(row.dense_bytes),
                     format_num(static_cast<double>(row.sparse_bytes) /
                                    static_cast<double>(row.dense_bytes),
                                3)});
                wire_rows.push_back(row);
            }
        }
        bench::emit(table);
    }

    // ---- 3. Cluster bytes/round: sparse vs densified, Cs32 + CsQ4 ------
    std::vector<ClusterRow> cluster_rows;
    {
        TablePrinter table(
            "train_cluster, 2 workers x 2 shards, dim 512, 150 rounds: "
            "sparse path vs the same examples densified",
            {"density", "signature", "comm", "nnz/push", "sp B/round",
             "dn B/round", "sp acc", "dn acc", "sp GNPS"});
        for (const double d : {0.02, 0.05, 0.10}) {
            const auto problem =
                dataset::generate_logistic_sparse(512, 1024, d, 59);
            const auto dense_problem = densify(problem);
            for (const ps::Codec& codec :
                 {ps::Codec::from_bits(32), ps::Codec::qsgd(4)}) {
                ps::ClusterConfig cfg;
                cfg.workers = 2;
                cfg.shards = 2;
                cfg.codec = codec;
                cfg.rounds = 150;
                cfg.batch = 16;
                cfg.tau = 8;
                cfg.step_size = 0.25f;
                ClusterRow row;
                row.density = d;
                row.sparse = ps::train_cluster(problem, cfg);
                row.dense = ps::train_cluster(dense_problem, cfg);
                row.signature = row.sparse.checkpoint.signature.to_string();
                const std::uint64_t pushes =
                    row.sparse.metrics.total_pushes();
                row.nnz_per_push =
                    pushes > 0 ? static_cast<double>(
                                     row.sparse.metrics.total_sparse_nnz()) /
                                     static_cast<double>(pushes)
                               : 0.0;
                table.add_row({format_num(d), row.signature,
                               row.sparse.comm,
                               format_num(row.nnz_per_push, 4),
                               format_num(row.sparse.bytes_per_round, 4),
                               format_num(row.dense.bytes_per_round, 4),
                               format_num(row.sparse.accuracy),
                               format_num(row.dense.accuracy),
                               format_num(row.sparse.metrics.gnps(), 3)});
                cluster_rows.push_back(std::move(row));
            }
        }
        bench::emit(table);
        std::printf("note: at the quantized tiers error feedback keeps "
                    "once-touched coordinates in the push support, so "
                    "nnz/push saturates toward the 256-wide slice over a "
                    "long run; Cs32 carries no residual and keeps the "
                    "minibatch-union support\n");
    }

    // ---- Machine-readable sweep + the acceptance asserts ---------------
    // Every row at density <= 10% carries an explicit boolean; a failed
    // assert also fails the process so CI catches a regressed codec.
    bool asserts_ok = true;
    std::printf("-- json --\n");
    obs::JsonWriter json(std::cout);
    json.begin_array();
    for (const KernelRow& r : kernel_rows) {
        std::cout << '\n';
        json.begin_object();
        json.key("section").value("kernel");
        json.key("density").value(r.density);
        json.key("nnz").value(static_cast<std::uint64_t>(r.nnz));
        json.key("sparse_dot_ns").value(r.sparse_dot_ns);
        json.key("dense_dot_ns").value(r.dense_dot_ns);
        json.key("sparse_axpy_ns").value(r.sparse_axpy_ns);
        json.key("dense_axpy_ns").value(r.dense_axpy_ns);
        json.key("sparse_gnps").value(r.sparse_gnps);
        json.key("dense_gnps").value(r.dense_gnps);
        json.end_object();
    }
    std::cout << '\n';
    json.begin_object();
    json.key("section").value("kernel_crossover");
    json.key("density").value(kernel_crossover);
    json.end_object();
    for (const WireRow& r : wire_rows) {
        const bool gated = r.density <= kAssertMaxDensity;
        const bool fewer = r.sparse_bytes < r.dense_bytes;
        if (gated && !fewer) asserts_ok = false;
        std::cout << '\n';
        json.begin_object();
        json.key("section").value("wire");
        json.key("density").value(r.density);
        json.key("nnz").value(static_cast<std::uint64_t>(r.nnz));
        json.key("comm").value(r.comm);
        json.key("sparse_bytes")
            .value(static_cast<std::uint64_t>(r.sparse_bytes));
        json.key("dense_bytes")
            .value(static_cast<std::uint64_t>(r.dense_bytes));
        if (gated) json.key("assert_sparse_fewer_bytes").value(fewer);
        json.end_object();
    }
    for (const ClusterRow& r : cluster_rows) {
        // The end-to-end assert holds at Cs32 (no residual, support stays
        // at the minibatch union); the quantized tiers saturate their
        // support through error feedback, so their rows are reported but
        // not gated — the per-gradient CsQ4 assert lives in the wire rows.
        const bool gated = r.density <= kAssertMaxDensity &&
                           r.sparse.comm == "Cs32";
        const bool fewer =
            r.sparse.bytes_per_round < r.dense.bytes_per_round;
        if (gated && !fewer) asserts_ok = false;
        std::cout << '\n';
        json.begin_object();
        json.key("section").value("cluster");
        json.key("density").value(r.density);
        json.key("signature").value(r.signature);
        json.key("comm").value(r.sparse.comm);
        json.key("nnz_per_push").value(r.nnz_per_push);
        json.key("sparse_bytes_per_round").value(r.sparse.bytes_per_round);
        json.key("dense_bytes_per_round").value(r.dense.bytes_per_round);
        json.key("sparse_accuracy").value(r.sparse.accuracy);
        json.key("dense_accuracy").value(r.dense.accuracy);
        json.key("sparse_nnz")
            .value(r.sparse.metrics.total_sparse_nnz());
        json.key("sparse_wire_bytes")
            .value(r.sparse.metrics.total_sparse_bytes());
        json.key("sparse_gnps").value(r.sparse.metrics.gnps());
        if (gated) json.key("assert_sparse_fewer_bytes").value(fewer);
        json.end_object();
    }
    json.end_array();
    std::cout << '\n';

    if (!asserts_ok) {
        std::fprintf(stderr,
                     "FAIL: sparse encoding moved >= as many bytes as the "
                     "densified path at a density <= %.0f%%\n",
                     kAssertMaxDensity * 100.0);
        return 1;
    }
    return 0;
}
