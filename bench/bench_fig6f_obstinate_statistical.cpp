/**
 * @file
 * Figure 6f: statistical efficiency of the obstinate cache (§6.2).
 *
 * Trains logistic regression with q-stale model reads (the coherence
 * relaxation emulated deterministically across 18 logical workers).
 *
 * Expected shape: "no detectable effect on statistical efficiency, even
 * when q is as high as 95%".
 */
#include "bench/bench_util.h"
#include "cachesim/stale_sgd.h"
#include "dataset/problem.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 6f — obstinate cache statistical efficiency",
                  "final loss flat in q up to 0.95");

    const auto problem = dataset::generate_logistic_dense(256, 4000, 31);

    TablePrinter table("Fig 6f: stale-read training, 18 workers",
                       {"q", "epoch 2", "final loss", "accuracy",
                        "stale line reads"});
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.95}) {
        cachesim::StaleSgdConfig cfg;
        cfg.workers = 18;
        cfg.obstinacy = q;
        cfg.epochs = 8;
        const auto r = train_with_stale_reads(problem, cfg);
        table.add_row({format_num(q, 2), format_num(r.loss_trace[1]),
                       format_num(r.final_loss), format_num(r.accuracy),
                       std::to_string(r.stale_line_reads)});
    }
    bench::emit(table);
    return 0;
}
