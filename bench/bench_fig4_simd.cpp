/**
 * @file
 * Figure 4: hand-optimized AVX2 vs compiler-generated code.
 *
 * 4a: dense throughput, hand vs GCC-Ofast float-cast code, per signature;
 * 4b: the sparse counterpart (plain vs unrolled kernels), where
 *     hand-optimization helps much less and can hurt small problems;
 * 4c: the average speedup table.
 *
 * Expected shape: large (up to ~11x in the paper, machine-dependent)
 * dense speedups at 8/16-bit signatures, ~1x at full precision, small or
 * negative effects for sparse.
 */
#include <cstdint>

#include "bench/bench_util.h"
#include "rng/xorshift.h"
#include "simd/ops.h"
#include "simd/sparse_kernels.h"
#include "util/aligned_buffer.h"

namespace {

using namespace buckwild;

template <typename T>
AlignedBuffer<T>
random_rep(std::size_t n, std::uint32_t seed, int lim)
{
    rng::Xorshift128 gen(seed);
    AlignedBuffer<T> buf(n);
    for (std::size_t i = 0; i < n; ++i) {
        if constexpr (std::is_same_v<T, float>)
            buf[i] = rng::to_unit_float(gen()) * 2 - 1;
        else
            buf[i] =
                static_cast<T>(static_cast<int>(gen() % (2 * lim + 1)) - lim);
    }
    return buf;
}

/// One dot+AXPY pass (the SGD inner loop) at the given impl; returns GNPS.
template <typename D, typename M>
double
dense_pass_gnps(std::size_t n, simd::Impl impl, int lim_d, int lim_m)
{
    const auto x = random_rep<D>(n, 11, lim_d);
    auto w = random_rep<M>(n, 13, lim_m);
    const auto dither = simd::biased_unit();
    volatile float sink = 0.0f;
    const double sec = measure_seconds_per_call(
        [&](std::size_t) {
            sink = sink + simd::DenseOps<D, M>::dot(impl, x.data(), w.data(),
                                                    n, 0.01f, 0.01f);
            simd::DenseOps<D, M>::axpy(impl, w.data(), x.data(), n, 0.001f,
                                       0.01f, 0.01f, dither);
        },
        0.05);
    return static_cast<double>(n) / sec / 1e9;
}

struct DenseRow
{
    const char* name;
    double (*run)(std::size_t, simd::Impl);
};

} // namespace

int
main()
{
    bench::banner(
        "Figure 4 — hand-optimized AVX2 vs compiler (GCC -Ofast) code",
        "hand wins big at 8/16-bit (paper: up to 11x), ~1x at float32; "
        "sparse gains are small and can be negative");

    const std::size_t kN = 1 << 16;

    TablePrinter dense("Fig 4a/4c: dense inner-loop throughput (n = 64K)",
                       {"signature", "naive GNPS", "avx2 GNPS", "speedup"});
    auto add_dense = [&dense](const char* name, double naive, double avx) {
        dense.add_row({name, format_num(naive, 3), format_num(avx, 3),
                       format_num(avx / naive, 3)});
    };

    add_dense("D8M8",
              dense_pass_gnps<std::int8_t, std::int8_t>(
                  kN, simd::Impl::kNaive, 127, 127),
              dense_pass_gnps<std::int8_t, std::int8_t>(
                  kN, simd::Impl::kAvx2, 127, 127));
    add_dense("D8M16",
              dense_pass_gnps<std::int8_t, std::int16_t>(
                  kN, simd::Impl::kNaive, 127, 32767),
              dense_pass_gnps<std::int8_t, std::int16_t>(
                  kN, simd::Impl::kAvx2, 127, 32767));
    add_dense("D16M8",
              dense_pass_gnps<std::int16_t, std::int8_t>(
                  kN, simd::Impl::kNaive, 32767, 127),
              dense_pass_gnps<std::int16_t, std::int8_t>(
                  kN, simd::Impl::kAvx2, 32767, 127));
    add_dense("D16M16",
              dense_pass_gnps<std::int16_t, std::int16_t>(
                  kN, simd::Impl::kNaive, 32767, 32767),
              dense_pass_gnps<std::int16_t, std::int16_t>(
                  kN, simd::Impl::kAvx2, 32767, 32767));
    add_dense("D32fM32f",
              dense_pass_gnps<float, float>(kN, simd::Impl::kNaive, 0, 0),
              dense_pass_gnps<float, float>(kN, simd::Impl::kAvx2, 0, 0));
    bench::emit(dense);

    // ---- Fig 4b: sparse dot — scalar, 4-way unrolled, and the fully
    // hand-vectorized gather variant (often the *loser*, the paper's
    // warning about sparse hand-optimization).
    TablePrinter sparse("Fig 4b: sparse dot, 3% density, D8 values, M32f "
                        "model (u32 indices for the gather path)",
                        {"model size", "plain GNPS", "unrolled GNPS",
                         "gather GNPS", "gather vs plain"});
    for (std::size_t n : {1u << 10, 1u << 13, 1u << 16}) {
        const std::size_t nnz = std::max<std::size_t>(8, n * 3 / 100);
        auto w = random_rep<float>(n, 17, 0);
        auto val = random_rep<std::int8_t>(nnz, 19, 127);
        AlignedBuffer<std::uint32_t> idx(nnz);
        rng::Xorshift128 gen(23);
        for (std::size_t j = 0; j < nnz; ++j)
            idx[j] = gen() % n;

        volatile float sink = 0.0f;
        const double plain_sec = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink + simd::sparse::dot(
                                  val.data(), idx.data(), nnz, w.data(),
                                  0.01f, simd::sparse::IndexMode::kAbsolute);
            },
            0.03);
        const double unrolled_sec = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink + simd::sparse::dot_unrolled(
                                  val.data(), idx.data(), nnz, w.data(),
                                  0.01f);
            },
            0.03);
        const double gather_sec = measure_seconds_per_call(
            [&](std::size_t) {
                sink = sink + simd::sparse::dot_gather_d8mf(
                                  val.data(), idx.data(), nnz, w.data(),
                                  0.01f);
            },
            0.03);
        const double plain = nnz / plain_sec / 1e9;
        const double unrolled = nnz / unrolled_sec / 1e9;
        const double gather = nnz / gather_sec / 1e9;
        sparse.add_row({format_si(static_cast<double>(n)),
                        format_num(plain, 3), format_num(unrolled, 3),
                        format_num(gather, 3),
                        format_num(gather / plain, 3)});
    }
    bench::emit(sparse);
    return 0;
}
