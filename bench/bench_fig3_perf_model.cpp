/**
 * @file
 * Figure 3: measured vs model-predicted throughput.
 *
 * The paper fits Eq. 2/3 once per machine (T1 per signature from Table 2,
 * p(n) from Eq. 3) and shows predictions within ~50% of measurements for
 * 90% of configurations. We recalibrate on this machine: T1 is measured
 * at one thread, p is inferred from a 2-thread measurement via the Amdahl
 * inversion, Eq. 3 is refit, and predictions are compared against fresh
 * measurements across model sizes.
 *
 * NOTE: this container exposes a single hardware core; multi-thread
 * "measurements" therefore exercise the code path but show little real
 * scaling. The fit/inversion machinery is identical to what an 18-core
 * host would use.
 */
#include "bench/bench_util.h"
#include "buckwild/buckwild.h"
#include "cachesim/sgd_trace.h"

namespace {

using namespace buckwild;

double
measure(const dataset::DenseProblem& problem, const char* sig,
        std::size_t threads)
{
    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature(sig);
    cfg.threads = threads;
    cfg.epochs = 2;
    cfg.record_loss_trace = false;
    core::Trainer trainer(cfg);
    return trainer.fit(problem).gnps();
}

} // namespace

int
main()
{
    bench::banner("Figure 3 — measured vs predicted throughput",
                  "prediction within ~50% of measurement for most "
                  "configurations (paper: 90% of configs)");

    const char* signatures[] = {"D8M8", "D16M16", "D32fM32f"};
    const std::size_t sizes[] = {1 << 10, 1 << 13, 1 << 16};

    // --- calibration: T1 per signature at n = 2^13, p from 2 threads.
    std::vector<dmgc::CalibrationRow> calib;
    std::vector<std::pair<std::size_t, double>> p_samples;
    for (const char* sig : signatures) {
        const auto prob = dataset::generate_logistic_dense(1 << 13, 256, 5);
        const double t1 = measure(prob, sig, 1);
        calib.push_back({sig, {t1, t1}});
    }
    for (std::size_t n : sizes) {
        const auto prob = dataset::generate_logistic_dense(
            n, std::max<std::size_t>(64, (1 << 19) / n), 6);
        const double t1 = measure(prob, "D8M8", 1);
        const double t2 = measure(prob, "D8M8", 2);
        p_samples.emplace_back(
            n, dmgc::infer_parallel_fraction(t1, std::max(t2, t1 * 1.001),
                                             2));
    }
    const auto coeffs = dmgc::fit_coefficients(p_samples);
    const dmgc::PerfModel model(calib, coeffs);
    std::printf("refit Eq.3: p(n) = %.3f - %.1f/sqrt(n)   (paper: 0.890 - "
                "22.0/sqrt(n))\n",
                coeffs.bandwidth_fraction, coeffs.comm_coeff);

    // --- validation sweep.
    TablePrinter table("Fig 3: measured vs predicted (1 thread)",
                       {"signature", "n", "measured GNPS", "predicted",
                        "ratio"});
    std::size_t within = 0, total = 0;
    for (const char* sig : signatures) {
        for (std::size_t n : sizes) {
            const auto prob = dataset::generate_logistic_dense(
                n, std::max<std::size_t>(64, (1 << 19) / n), 7);
            const double measured = measure(prob, sig, 1);
            const double predicted =
                model.predict_gnps(dmgc::parse_signature(sig), 1, n);
            const double ratio = predicted / measured;
            within += (ratio > 0.5 && ratio < 1.5);
            ++total;
            table.add_row({sig, format_si(static_cast<double>(n)),
                           format_num(measured, 3), format_num(predicted, 3),
                           format_num(ratio, 3)});
        }
    }
    bench::emit(table);
    std::printf("\npredictions within 50%%: %zu/%zu (paper: 90%%)\n", within,
                total);

    // ---- multi-thread series on the cycle simulator: Eq. 2 scaling with
    // T1 taken from the 1-core simulation and p(n) refit from the
    // simulator's own 18-core data, mirroring the paper's calibration.
    TablePrinter threads_table(
        "Fig 3 (threads): simulated vs Amdahl-predicted GNPS, D8M8",
        {"n", "t", "sim GNPS", "predicted", "ratio"});
    std::size_t t_within = 0, t_total = 0;
    for (std::size_t n : {std::size_t{1} << 12, std::size_t{1} << 16}) {
        cachesim::SgdWorkload work;
        work.model_size = n;
        work.iterations_per_core =
            std::max<std::size_t>(4, (1 << 16) / n);
        auto sim_gnps = [&](std::size_t cores) {
            cachesim::ChipConfig chip;
            chip.cores = cores;
            return simulate_sgd(chip, work).gnps(2.5);
        };
        const double t1 = sim_gnps(1);
        // Infer p from the 18-core point, as the paper fits Eq. 3.
        const double t18 = sim_gnps(18);
        const double p = dmgc::infer_parallel_fraction(
            t1, std::max(t18, t1 * 1.001), 18);
        for (std::size_t t : {4u, 9u, 18u}) {
            const double measured = sim_gnps(t);
            const double predicted = dmgc::PerfModel::amdahl(t1, t, p);
            const double ratio = predicted / measured;
            t_within += (ratio > 0.5 && ratio < 1.5);
            ++t_total;
            threads_table.add_row(
                {format_si(static_cast<double>(n)), std::to_string(t),
                 format_num(measured, 3), format_num(predicted, 3),
                 format_num(ratio, 3)});
        }
    }
    bench::emit(threads_table);
    std::printf("\nthread-scaling predictions within 50%%: %zu/%zu\n",
                t_within, t_total);
    return 0;
}
