/**
 * @file
 * Extension: AVX-512 kernels — one SIMD generation past the paper.
 *
 * §5.1 motivates low precision with "the ever-widening SIMD capabilities
 * of modern CPUs"; this bench measures the next widening step on the
 * flagship D8M8 inner loop and on full-precision FMA.
 *
 * Expected shape: AVX-512 >= AVX2 on the D8M8 loop (the gain is capped
 * by memory bandwidth once vectors stream); the low-precision advantage
 * over float persists at 512-bit width.
 */
#include <cstdint>

#include "bench/bench_util.h"
#include "rng/xorshift.h"
#include "simd/dense_avx512.h"
#include "simd/ops.h"
#include "util/aligned_buffer.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Extension — AVX-512 kernels vs AVX2",
                  "avx512 >= avx2 on D8M8; 8-bit advantage persists");
    if (!simd::avx512::available()) {
        std::printf("AVX-512 not supported on this CPU; nothing to "
                    "measure.\n");
        return 0;
    }

    TablePrinter table("D8M8 and float inner loops across vector widths",
                       {"n", "D8M8 avx2", "D8M8 avx512", "gain",
                        "f32 avx2", "f32 avx512"});
    for (std::size_t n : {1u << 12, 1u << 15, 1u << 18, 1u << 20}) {
        rng::Xorshift128 gen(3);
        AlignedBuffer<std::int8_t> x8(n), w8(n);
        AlignedBuffer<float> xf(n), wf(n);
        for (std::size_t i = 0; i < n; ++i) {
            x8[i] = static_cast<std::int8_t>(gen() % 255 - 127);
            w8[i] = static_cast<std::int8_t>(gen() % 255 - 127);
            xf[i] = rng::to_unit_float(gen()) - 0.5f;
            wf[i] = rng::to_unit_float(gen()) - 0.5f;
        }
        const auto dither = simd::biased_fixed(simd::kShiftD8M8);
        volatile float sink = 0.0f;
        auto pass8 = [&](simd::Impl impl) {
            const double sec = measure_seconds_per_call(
                [&](std::size_t) {
                    sink = sink + simd::DenseOps<std::int8_t, std::int8_t>::
                                      dot(impl, x8.data(), w8.data(), n,
                                          0.01f, 0.01f);
                    simd::DenseOps<std::int8_t, std::int8_t>::axpy(
                        impl, w8.data(), x8.data(), n, 0.001f, 0.01f, 0.01f,
                        dither);
                },
                0.04);
            return n / sec / 1e9;
        };
        auto passf = [&](simd::Impl impl) {
            const double sec = measure_seconds_per_call(
                [&](std::size_t) {
                    sink = sink + simd::DenseOps<float, float>::dot(
                                      impl, xf.data(), wf.data(), n, 1, 1);
                    simd::DenseOps<float, float>::axpy(impl, wf.data(),
                                                       xf.data(), n,
                                                       1e-6f, 1, 1, dither);
                },
                0.04);
            return n / sec / 1e9;
        };
        const double a2 = pass8(simd::Impl::kAvx2);
        const double a5 = pass8(simd::Impl::kAvx512);
        const double f2 = passf(simd::Impl::kAvx2);
        const double f5 = passf(simd::Impl::kAvx512);
        table.add_row({format_si(static_cast<double>(n)),
                       format_num(a2, 3), format_num(a5, 3),
                       format_num(a5 / a2, 3), format_num(f2, 3),
                       format_num(f5, 3)});
    }
    bench::emit(table);
    return 0;
}
