/**
 * @file
 * Figure 6a/6b: turning off the hardware prefetcher (§5.3).
 *
 * The paper toggles MSR 0x1A4 on real hardware; here the next-line L2
 * prefetcher is a switch in the cache simulator (see DESIGN.md's
 * substitution table). Dense (6a) uses the D8M8 footprint; the "sparse"
 * series (6b) is emulated with the full-precision footprint (4x the
 * traffic per number), whose prefetches are equally invalidation-prone.
 *
 * Expected shape: for small (communication-bound) models, disabling the
 * prefetcher helps — prefetched model lines are invalidated before use
 * and the prefetch fills waste bandwidth; for large models the prefetcher
 * helps the streaming reads and should stay on.
 */
#include "bench/bench_util.h"
#include "cachesim/sgd_trace.h"

namespace {

using namespace buckwild;

void
sweep(const char* title, int dataset_bits, int model_bits, double density)
{
    TablePrinter table(title,
                       {"model size", "prefetch ON c/n", "prefetch OFF c/n",
                        "OFF/ON", "useless prefetches"});
    for (std::size_t n : {1u << 10, 1u << 12, 1u << 14, 1u << 18}) {
        cachesim::SgdWorkload work;
        work.model_size = n;
        work.dataset_bits = dataset_bits;
        work.model_bits = model_bits;
        work.density = density;
        work.index_bits = 16;
        work.iterations_per_core =
            std::max<std::size_t>(4, (1 << 15) / n);
        if (density < 1.0)
            work.iterations_per_core *= 8; // keep per-row work comparable

        cachesim::ChipConfig chip;
        chip.prefetcher = cachesim::Prefetcher::kNextLine;
        const auto on = simulate_sgd(chip, work);
        chip.prefetcher = cachesim::Prefetcher::kNone;
        const auto off = simulate_sgd(chip, work);

        table.add_row(
            {format_si(static_cast<double>(n)),
             format_num(on.wall_cycles / on.numbers_processed, 3),
             format_num(off.wall_cycles / off.numbers_processed, 3),
             format_num(off.wall_cycles / on.wall_cycles, 3),
             std::to_string(on.stats.prefetched_invalidated)});
    }
    bench::emit(table);
}

} // namespace

int
main()
{
    bench::banner("Figure 6a/6b — hardware prefetcher on vs off (simulated)",
                  "OFF/ON < 1 for small models (prefetch hurts), > 1 for "
                  "large (prefetch helps streaming)");
    sweep("Fig 6a: dense D8M8 footprint", 8, 8, 1.0);
    sweep("Fig 6b: sparse D8i16M8 footprint (3% density)", 8, 8, 0.03);
    return 0;
}
