/**
 * @file
 * Overload behavior of the serving front door — the graceful-degradation
 * curve the gate exists to produce.
 *
 * An in-process GateServer (one scoring worker, real loopback TCP)
 * serves a synthetic Ms8 model. The setup is deliberately
 * scoring-bound: q8 feature payloads (a memcpy for the event loop to
 * parse) against a large model on the scalar reference kernel, so the
 * single worker — not ingress parsing, not the senders — is the
 * bottleneck and the lanes actually fill. Requests carry per-lane
 * deadlines (SLOs), which is what keeps the strictly-deprioritized
 * batch lane's admitted latency bounded under overload: work that
 * cannot meet its deadline is refused or dropped explicitly rather
 * than served arbitrarily late.
 *
 * The bench first probes the saturation throughput with a pipelined
 * closed-loop client, then offers open-loop Poisson load at
 * 0.5x / 1x / 2x that rate on both priority lanes and reports, per
 * step: delivered throughput, shed rate, and per-lane admitted-request
 * latency percentiles.
 *
 * Expected shape — the difference between a front door and a queue:
 *  - below saturation: shed ~ 0, latency flat;
 *  - past saturation: throughput PLATEAUS at capacity, the excess is
 *    shed explicitly (shed-rate accounts for the overhang), and the p99
 *    of ADMITTED requests stays bounded (within ~5x of the
 *    at-saturation p99, or within the lane's own deadline budget)
 *    instead of growing with the offered load — unbounded queueing
 *    would push it toward the step duration.
 *
 * Two latency views are reported. The client-observed open-loop
 * latency (request generation to response) includes time the request
 * spends under TCP backpressure UPSTREAM of the gate — on a machine
 * small enough that ingress itself saturates, that component grows
 * without bound and is the sender's signal to back off, not the
 * gate's failure. The acceptance verdict therefore reads the gate's
 * own per-lane `gate.latency_seconds` histograms (arrival ->
 * response), which is the latency the admission controller and
 * dequeue deadline drop actually control.
 *
 * Emits a `-- json --` line with the full curve plus the acceptance
 * verdict, for CI and plotting.
 */
#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "core/model_io.h"
#include "dmgc/perf_model.h"
#include "gate/gate.h"
#include "obs/prom.h"

namespace {

using namespace buckwild;

constexpr std::size_t kDim = 16384;
// Two sender connections: enough for an open-loop Poisson stream, few
// enough that client threads don't crowd out the server when the whole
// bench shares a small CPU budget (CI runners are often 1-2 cores).
constexpr std::size_t kSenders = 2;
constexpr double kStepSeconds = 2.0;
// Per-lane SLOs. The batch deadline is the bound on how stale a batch
// answer may be; under strict priority it is the ONLY thing standing
// between the batch lane and an arbitrarily long starvation tail.
constexpr std::uint32_t kInteractiveDeadlineUs = 25'000;
constexpr std::uint32_t kBatchDeadlineUs = 100'000;

std::uint64_t
now_ns()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Outcome counts plus OK latencies for one offered-load step.
struct Tally
{
    std::uint64_t sent = 0;
    std::uint64_t ok[gate::kLanes] = {0, 0};
    std::uint64_t shed = 0;
    std::vector<double> latency_us[gate::kLanes];
};

double
percentile_us(std::vector<double>& xs, double p)
{
    if (xs.empty()) return 0.0;
    const auto k = static_cast<std::size_t>(
        p / 100.0 * static_cast<double>(xs.size() - 1) + 0.5);
    std::nth_element(xs.begin(), xs.begin() + static_cast<long>(k),
                     xs.end());
    return xs[k];
}

std::vector<float>
random_features(std::mt19937_64& rng)
{
    std::uniform_real_distribution<float> feature(-1.0f, 1.0f);
    std::vector<float> x(kDim);
    for (float& v : x) v = feature(rng);
    return x;
}

/// Max sustained closed-loop throughput: one connection, `window`
/// requests kept in flight, count completions over `seconds`.
double
probe_saturation(const net::Address& address, double seconds)
{
    gate::GateClient client(address);
    if (!client.connected()) return 0.0;
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::int64_t> outstanding{0};
    client.set_handler([&](const gate::ScoreResponse&) {
        completed.fetch_add(1, std::memory_order_relaxed);
        outstanding.fetch_sub(1, std::memory_order_relaxed);
    });
    std::mt19937_64 rng(7);
    const std::vector<float> features = random_features(rng);
    gate::ScoreRequest request;
    request.model = "bench";
    request.tenant = "probe";
    request.encoding = gate::FeatureEncoding::kDenseQ8;
    request.scale =
        gate::quantize_features_q8(features.data(), kDim, request.q8);
    constexpr std::int64_t kWindow = 64;
    const auto stop = std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(seconds));
    Stopwatch wall;
    std::uint64_t id = 2;
    while (std::chrono::steady_clock::now() < stop) {
        if (outstanding.load(std::memory_order_relaxed) >= kWindow) {
            std::this_thread::yield();
            continue;
        }
        request.request_id = id += 2;
        outstanding.fetch_add(1, std::memory_order_relaxed);
        if (!client.send(request)) break;
    }
    const double elapsed = wall.seconds();
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    client.close();
    return static_cast<double>(
               completed.load(std::memory_order_relaxed)) /
        elapsed;
}

/// One open-loop Poisson step at `offered_qps`, half the traffic on
/// each lane (the tools/buckwild_gate machinery, compacted).
Tally
run_step(const net::Address& address, double offered_qps)
{
    std::vector<std::unique_ptr<gate::GateClient>> clients;
    std::vector<Tally> tallies(kSenders);
    std::vector<std::mutex> mutexes(kSenders);
    for (std::size_t c = 0; c < kSenders; ++c) {
        auto client = std::make_unique<gate::GateClient>(address);
        if (!client->connected()) return {};
        Tally* tally = &tallies[c];
        std::mutex* mutex = &mutexes[c];
        client->set_handler(
            [tally, mutex](const gate::ScoreResponse& response) {
                const auto lane = static_cast<std::size_t>(
                    response.request_id & 1u);
                const double latency_us =
                    static_cast<double>(
                        now_ns() - (response.request_id & ~1ull)) *
                    1e-3;
                std::lock_guard<std::mutex> lock(*mutex);
                if (response.status == gate::Status::kOk) {
                    tally->ok[lane] += 1;
                    tally->latency_us[lane].push_back(latency_us);
                } else {
                    tally->shed += 1;
                }
            });
        clients.push_back(std::move(client));
    }
    std::vector<std::thread> senders;
    for (std::size_t c = 0; c < kSenders; ++c) {
        senders.emplace_back([&, c] {
            std::mt19937_64 rng(101 + c);
            std::exponential_distribution<double> gap(
                offered_qps / static_cast<double>(kSenders));
            const std::vector<float> features = random_features(rng);
            gate::ScoreRequest request;
            request.model = "bench";
            request.tenant = "t" + std::to_string(c);
            request.encoding = gate::FeatureEncoding::kDenseQ8;
            request.scale = gate::quantize_features_q8(
                features.data(), kDim, request.q8);
            const auto start = std::chrono::steady_clock::now();
            const auto stop = start +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(kStepSeconds));
            auto next = start;
            std::uint64_t sent = 0;
            std::size_t sequence = 0;
            while (true) {
                next += std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(gap(rng)));
                if (next >= stop) break;
                std::this_thread::sleep_until(next);
                const bool batch = (sequence++ & 1u) != 0;
                request.lane = batch ? gate::Lane::kBatch
                                     : gate::Lane::kInteractive;
                request.deadline_us =
                    batch ? kBatchDeadlineUs : kInteractiveDeadlineUs;
                request.request_id = (now_ns() & ~1ull) |
                    static_cast<std::uint64_t>(request.lane);
                if (!clients[c]->send(request)) break;
                ++sent;
            }
            std::lock_guard<std::mutex> lock(mutexes[c]);
            tallies[c].sent += sent;
        });
    }
    for (auto& sender : senders) sender.join();
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    for (auto& client : clients) client->close();
    Tally total;
    for (std::size_t c = 0; c < kSenders; ++c) {
        std::lock_guard<std::mutex> lock(mutexes[c]);
        total.sent += tallies[c].sent;
        total.shed += tallies[c].shed;
        for (std::size_t l = 0; l < gate::kLanes; ++l) {
            total.ok[l] += tallies[c].ok[l];
            total.latency_us[l].insert(total.latency_us[l].end(),
                                       tallies[c].latency_us[l].begin(),
                                       tallies[c].latency_us[l].end());
        }
    }
    return total;
}

} // namespace

int
main()
{
    bench::banner(
        "gate overload — graceful degradation at the front door",
        "throughput plateaus at saturation; excess load is shed "
        "explicitly; the gate-side admitted p99 stays bounded on both "
        "lanes (within ~5x of the at-saturation p99 or the lane's "
        "deadline budget)");

    // A synthetic Ms8 model behind a real loopback gate.
    std::mt19937_64 rng(42);
    core::SavedModel saved;
    saved.signature = dmgc::Signature::dense_fixed(8, 8);
    saved.loss = core::Loss::kLogistic;
    saved.weights = random_features(rng);

    gate::ModelRouter router;
    router.publish("bench", saved, serve::Precision::kInt8);
    gate::GateConfig cfg;
    cfg.workers = 1; // capacity low and known: one scoring thread
    // The scalar reference kernel pins the bottleneck to scoring: the
    // event loop parses a q8 payload with a memcpy, so its capacity to
    // refuse stays far above the worker's capacity to score.
    cfg.impl = simd::Impl::kReference;
    cfg.interactive_capacity = 128;
    cfg.batch_capacity = 128;
    const dmgc::PerfModel perf = dmgc::PerfModel::paper_model();
    obs::MetricsRegistry registry;
    cfg.metrics_registry = &registry;
    gate::GateServer server(router, perf, cfg);
    const net::Address address{"127.0.0.1", server.port()};
    // The gate's own admitted-latency view (arrival -> response), per
    // lane; reset between steps so each percentile is per-step.
    obs::Histo* gate_latency[gate::kLanes];
    for (std::size_t lane = 0; lane < gate::kLanes; ++lane)
        gate_latency[lane] = &registry.histogram(obs::labeled(
            "gate.latency_seconds",
            {{"lane", to_string(static_cast<gate::Lane>(lane))}}));

    const double saturation = probe_saturation(address, 1.5);
    std::printf("dim %zu, Ms8 reference kernel, q8 wire, 1 worker: "
                "closed-loop saturation %.0f req/s\n",
                kDim, saturation);
    if (saturation <= 0.0) {
        std::printf("probe failed; aborting\n");
        return 1;
    }

    TablePrinter table(
        "open-loop overload sweep (offered vs delivered)",
        {"offered/sat", "offered qps", "sent", "ok", "shed", "shed %",
         "int p99 us", "bat p99 us", "gate int p99", "gate bat p99"});
    const double multipliers[] = {0.5, 1.0, 2.0};
    double p99_at_sat = 0.0;
    double p99_overload = 0.0;
    double gate_p99_overload[gate::kLanes] = {0.0, 0.0};
    double client_p99_overload = 0.0;
    double overload_shed_rate = 0.0;
    double overload_sent = 0.0;
    double overload_ok = 0.0;
    std::ostringstream json;
    json << "{\"dim\":" << kDim << ",\"saturation_qps\":" << saturation
         << ",\"deadline_interactive_us\":" << kInteractiveDeadlineUs
         << ",\"deadline_batch_us\":" << kBatchDeadlineUs << ",\"steps\":[";
    for (std::size_t s = 0; s < 3; ++s) {
        const double offered = multipliers[s] * saturation;
        for (auto* histo : gate_latency) histo->reset();
        Tally tally = run_step(address, offered);
        const double ok_total =
            static_cast<double>(tally.ok[0] + tally.ok[1]);
        const double shed_rate = tally.sent > 0
            ? static_cast<double>(tally.shed) /
                static_cast<double>(tally.sent)
            : 0.0;
        const double int_p99 = percentile_us(tally.latency_us[0], 99.0);
        const double bat_p99 = percentile_us(tally.latency_us[1], 99.0);
        double gate_p99[gate::kLanes];
        for (std::size_t l = 0; l < gate::kLanes; ++l)
            gate_p99[l] = gate_latency[l]->percentile(99.0) * 1e6;
        // The gate-side admitted p99 across both lanes is the
        // degradation gauge; take the worse lane so neither can hide
        // behind the other.
        const double worst_p99 = std::max(gate_p99[0], gate_p99[1]);
        if (multipliers[s] == 1.0) p99_at_sat = worst_p99;
        if (multipliers[s] == 2.0) {
            p99_overload = worst_p99;
            for (std::size_t l = 0; l < gate::kLanes; ++l)
                gate_p99_overload[l] = gate_p99[l];
            client_p99_overload = std::max(int_p99, bat_p99);
            overload_shed_rate = shed_rate;
            overload_sent = static_cast<double>(tally.sent);
            overload_ok = ok_total;
        }
        table.add_row(
            {format_num(multipliers[s], 2), format_num(offered, 5),
             std::to_string(tally.sent),
             std::to_string(tally.ok[0] + tally.ok[1]),
             std::to_string(tally.shed),
             format_num(shed_rate * 100.0, 3), format_num(int_p99, 4),
             format_num(bat_p99, 4), format_num(gate_p99[0], 4),
             format_num(gate_p99[1], 4)});
        if (s > 0) json << ",";
        json << "{\"multiplier\":" << multipliers[s]
             << ",\"offered_qps\":" << offered
             << ",\"sent\":" << tally.sent
             << ",\"ok_interactive\":" << tally.ok[0]
             << ",\"ok_batch\":" << tally.ok[1]
             << ",\"shed\":" << tally.shed
             << ",\"shed_rate\":" << shed_rate
             << ",\"p99_interactive_us\":" << int_p99
             << ",\"p99_batch_us\":" << bat_p99
             << ",\"gate_p99_interactive_us\":" << gate_p99[0]
             << ",\"gate_p99_batch_us\":" << gate_p99[1] << "}";
    }
    bench::emit(table);
    server.stop();

    // Acceptance: past saturation the gate sheds the overhang and the
    // admitted (gate-side) p99 stays bounded on BOTH lanes — within 5x
    // of the at-saturation p99, or within the lane's own deadline
    // budget (x1.5 for service + scheduling slack), whichever is
    // looser. The deadline fallback is the absolute SLO the dequeue
    // drop enforces; it keeps the verdict meaningful when at-saturation
    // queues are still short and 5x of a tiny baseline would be
    // stricter than the contract the gate actually makes.
    const double deadline_us[gate::kLanes] = {
        static_cast<double>(kInteractiveDeadlineUs),
        static_cast<double>(kBatchDeadlineUs)};
    bool p99_bounded = p99_at_sat > 0.0;
    for (std::size_t l = 0; l < gate::kLanes; ++l)
        p99_bounded = p99_bounded &&
            gate_p99_overload[l] <=
                std::max(5.0 * p99_at_sat, 1.5 * deadline_us[l]);
    // Delivered + shed must account for what was sent (nothing silently
    // queued forever); allow 5% for grace-window stragglers.
    const bool accounted = overload_sent > 0.0 &&
        (overload_ok + overload_shed_rate * overload_sent) >=
            0.95 * overload_sent;
    const bool shed_nonzero = overload_shed_rate > 0.0;
    std::printf("-> at 2x: shed rate %.1f%%, gate p99 %.0fus vs %.0fus "
                "at saturation, client open-loop p99 %.0fus (%s, %s)\n",
                overload_shed_rate * 100.0, p99_overload, p99_at_sat,
                client_p99_overload,
                p99_bounded ? "bounded" : "UNBOUNDED",
                shed_nonzero ? "shedding" : "NOT shedding");
    json << "],\"p99_at_saturation_us\":" << p99_at_sat
         << ",\"p99_at_2x_us\":" << p99_overload
         << ",\"client_p99_at_2x_us\":" << client_p99_overload
         << ",\"overload_shed_rate\":" << overload_shed_rate
         << ",\"p99_bounded_5x\":" << (p99_bounded ? "true" : "false")
         << ",\"accounted\":" << (accounted ? "true" : "false")
         << ",\"graceful\":"
         << (p99_bounded && shed_nonzero ? "true" : "false") << "}";
    std::printf("-- json --\n%s\n", json.str().c_str());
    return 0;
}
