/**
 * @file
 * Kernel-registry dispatch overhead — the refactor's "no hot-path tax"
 * guarantee, measured.
 *
 * The KernelLibrary resolves each op once per process into a per-(D, M)
 * vtable; ambient dispatch adds one override check (best_impl()) and one
 * indirect call on top of the raw kernel. This bench times the D8M8 dot
 * hot path both ways — through DenseOps ambient dispatch and through a
 * pre-resolved function pointer — across several operand sizes, and
 * FAILS (non-zero exit) if dispatch costs more than 2% at the engine's
 * hot-path size.
 *
 * Expected shape: overhead well under 2% at n = 65536 (the indirect call
 * amortizes over the row), visibly larger in relative terms at tiny n.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench/bench_util.h"
#include "rng/xorshift.h"
#include "simd/ops.h"

namespace {

using buckwild::simd::DenseOps;
using Ops8 = DenseOps<std::int8_t, std::int8_t>;

std::vector<std::int8_t>
make_codes(std::size_t n, std::uint32_t seed)
{
    buckwild::rng::Xorshift128 gen(seed);
    std::vector<std::int8_t> x(n);
    for (auto& v : x)
        v = static_cast<std::int8_t>(static_cast<int>(gen() % 255) - 127);
    return x;
}

/// Best-of-`trials` seconds per call, interleaving the two bodies so
/// frequency drift hits both paths equally.
struct Pair
{
    double direct;
    double dispatched;
};

Pair
measure_pair(const std::function<void(std::size_t)>& direct,
             const std::function<void(std::size_t)>& dispatched,
             int trials = 9)
{
    Pair best{1e30, 1e30};
    for (int t = 0; t < trials; ++t) {
        best.direct = std::min(
            best.direct, buckwild::measure_seconds_per_call(direct, 0.05));
        best.dispatched = std::min(
            best.dispatched,
            buckwild::measure_seconds_per_call(dispatched, 0.05));
    }
    return best;
}

} // namespace

int
main()
{
    using namespace buckwild;
    bench::banner(
        "kernel registry — ambient-dispatch overhead on the D8M8 dot",
        "dispatch within 2% of a pre-resolved pointer at hot-path size");

    simd::register_dense_kernels();
    const simd::Impl impl = simd::best_impl();
    // The direct baseline: the same variant the resolver picked, fetched
    // once and called through a local pointer — zero per-call resolution.
    const Ops8::DotFn direct_fn =
        Ops8::vtable().dot[simd::impl_index(impl)];
    std::printf("resolved impl: %s\n\n", simd::to_string(impl));

    constexpr float kQ = 1.0f / 64.0f;
    constexpr std::size_t kHotPathN = 1 << 16;
    const std::size_t sizes[] = {256, 4096, kHotPathN};

    TablePrinter table("giga-numbers / s (best of 5 trials)",
                       {"n", "direct ptr", "ambient dispatch", "overhead"});
    double hot_overhead_pct = 0.0;
    double hot_direct_gnps = 0.0, hot_dispatch_gnps = 0.0;
    volatile float sink = 0.0f;
    for (const std::size_t n : sizes) {
        const auto x = make_codes(n, 0x9E3779B9u);
        const auto w = make_codes(n, 0x85EBCA6Bu);
        const auto direct = [&](std::size_t) {
            sink = sink + direct_fn(x.data(), w.data(), n, kQ, kQ);
        };
        const auto dispatched = [&](std::size_t) {
            sink = sink + Ops8::dot(x.data(), w.data(), n, kQ, kQ);
        };
        Pair p = measure_pair(direct, dispatched);
        double pct = (p.dispatched - p.direct) / p.direct * 100.0;
        if (n == kHotPathN && pct >= 2.0) {
            // One re-measure before declaring failure: the verdict is a
            // difference of two timings, so a single noisy burst on a
            // shared runner can inflate it past the budget.
            p = measure_pair(direct, dispatched);
            pct = (p.dispatched - p.direct) / p.direct * 100.0;
        }
        const double gd = static_cast<double>(n) / p.direct / 1e9;
        const double ga = static_cast<double>(n) / p.dispatched / 1e9;
        if (n == kHotPathN) {
            hot_overhead_pct = pct;
            hot_direct_gnps = gd;
            hot_dispatch_gnps = ga;
        }
        table.add_row({std::to_string(n), format_num(gd, 3),
                       format_num(ga, 3), format_num(pct, 2) + "%"});
    }
    bench::emit(table);

    const bool pass = hot_overhead_pct < 2.0;
    std::ostringstream json;
    json << "{\"impl\":\"" << simd::to_string(impl) << "\""
         << ",\"hot_path_n\":" << kHotPathN
         << ",\"direct_gnps\":" << hot_direct_gnps
         << ",\"dispatched_gnps\":" << hot_dispatch_gnps
         << ",\"overhead_pct\":" << hot_overhead_pct
         << ",\"limit_pct\":2.0"
         << ",\"pass\":" << (pass ? "true" : "false") << "}";
    std::printf("-- json --\n%s\n", json.str().c_str());
    if (!pass) {
        std::fprintf(stderr,
                     "FAIL: ambient dispatch costs %.2f%% over a "
                     "pre-resolved pointer at n=%zu (limit 2%%)\n",
                     hot_overhead_pct, kHotPathN);
        return 1;
    }
    return 0;
}
