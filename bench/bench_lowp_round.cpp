/**
 * @file
 * §5.2 vectorized rounding — before/after microbench for the precision
 * substrate (src/lowp/).
 *
 * Compares the always-compiled scalar reference kernels (lowp::scalar::,
 * the "before" of the substrate refactor) against the dispatched kernels
 * (AVX2 when the build enables it) on the two hot paths the refactor
 * vectorized:
 *
 *   - ps encode:   max_abs + round_levels_i8 (Cs8) and quantize_sign_1bit
 *                  (Cs1) — the C-codec of the parameter server.
 *   - serve publish: max_abs + quantize_biased (Ms snapshot packing).
 *
 * Expected shape: with AVX2 the hand kernels run several x faster than
 * the scalar reference; round_levels_i8 sits near 1.0x because GCC
 * already auto-vectorizes its reference loop and dispatch reuses it.
 * In a -DBUCKWILD_ENABLE_AVX2=OFF build every row is ~1.0x (dispatch
 * falls back to the reference).
 */
#include <cstdint>
#include <vector>

#include "bench/bench_util.h"
#include "lowp/grid.h"
#include "lowp/round.h"
#include "rng/xorshift.h"

namespace {

std::vector<float>
make_input(std::size_t n, float scale)
{
    buckwild::rng::Xorshift128 gen(0xBADCAFE);
    std::vector<float> x(n);
    for (auto& v : x)
        v = (buckwild::rng::to_unit_float(gen()) * 2.0f - 1.0f) * scale;
    return x;
}

double
rate(const std::function<void(std::size_t)>& body, std::size_t n)
{
    const double sec = buckwild::measure_seconds_per_call(body, 0.05);
    return static_cast<double>(n) / sec / 1e9;
}

} // namespace

int
main()
{
    using namespace buckwild;
    bench::banner(
        "lowp substrate — §5.2 vectorized rounding, before/after",
        "AVX2 dispatch several x over scalar reference; equal when off");
    std::printf("dispatch: %s\n\n",
                lowp::vectorized() ? "AVX2" : "scalar fallback");

    constexpr std::size_t kN = 1 << 16;
    const auto x = make_input(kN, 2.0f);
    const auto grid = lowp::GridSpec::from_fixed(fixed::default_format(8));

    std::vector<std::int8_t> q8(kN);
    std::vector<float> q(kN), residual(kN);
    std::vector<std::uint8_t> bits((kN + 7) / 8);
    const float scale = lowp::max_abs(x.data(), kN) / 127.0f;

    TablePrinter table("giga-elements / s (n = 65536)",
                       {"kernel (hot path)", "scalar ref", "dispatched",
                        "speedup"});
    auto row = [&](const char* name,
                   const std::function<void(std::size_t)>& before,
                   const std::function<void(std::size_t)>& after) {
        const double b = rate(before, kN);
        const double a = rate(after, kN);
        table.add_row({name, format_num(b, 3), format_num(a, 3),
                       format_num(a / b, 3) + "x"});
    };

    row("max_abs (ps encode, serve publish)",
        [&](std::size_t) { (void)lowp::scalar::max_abs(x.data(), kN); },
        [&](std::size_t) { (void)lowp::max_abs(x.data(), kN); });

    row("quantize_biased i8 (serve publish Ms)",
        [&](std::size_t) {
            lowp::scalar::quantize_biased(x.data(), q8.data(), kN, grid);
        },
        [&](std::size_t) {
            lowp::quantize_biased(x.data(), q8.data(), kN, grid);
        });

    row("round_levels_i8 (ps encode Cs8)",
        [&](std::size_t) {
            lowp::scalar::round_levels_i8(x.data(), kN, scale, q8.data(),
                                          q.data(), residual.data());
        },
        [&](std::size_t) {
            lowp::round_levels_i8(x.data(), kN, scale, q8.data(), q.data(),
                                  residual.data());
        });

    row("quantize_sign_1bit (ps encode Cs1)",
        [&](std::size_t) {
            std::fill(bits.begin(), bits.end(), std::uint8_t{0});
            lowp::scalar::quantize_sign_1bit(x.data(), kN, scale, q.data(),
                                             residual.data(), bits.data());
        },
        [&](std::size_t) {
            std::fill(bits.begin(), bits.end(), std::uint8_t{0});
            lowp::quantize_sign_1bit(x.data(), kN, scale, q.data(),
                                     residual.data(), bits.data());
        });

    {
        alignas(32) std::uint32_t words[8] = {0x12345678u, 0x9ABCDEF0u,
                                              0x0F1E2D3Cu, 0x4B5A6978u,
                                              0x87969FA5u, 0xB4C3D2E1u,
                                              0xF00FC7C8u, 0x13579BDFu};
        row("quantize_shared i8 (§5.2 M-writes)",
            [&](std::size_t) {
                lowp::scalar::quantize_shared(x.data(), q8.data(), kN, grid,
                                              words);
            },
            [&](std::size_t) {
                lowp::quantize_shared(x.data(), q8.data(), kN, grid, words);
            });
    }

    bench::emit(table);
    return 0;
}
