/**
 * @file
 * Figure 7b: LeNet test error vs model precision, biased vs unbiased
 * rounding, on the synthetic digit task (the MNIST/CIFAR10 substitute —
 * see DESIGN.md).
 *
 * Expected shape: 16-bit indistinguishable from float; with *unbiased*
 * rounding, accurate training continues even below 8 bits ("a surprising
 * result, as some previous work has suggested that training at 8-bit
 * precision is too inaccurate"); biased rounding degrades much earlier.
 */
#include "bench/bench_util.h"
#include "dataset/digits.h"
#include "nn/lenet.h"

int
main()
{
    using namespace buckwild;
    bench::banner("Figure 7b — LeNet test error vs model precision",
                  "unbiased: near-float error down to ~6 bits; biased: "
                  "degrades below ~10 bits");

    const auto train = dataset::generate_digits(700, 21, 0.12f);
    const auto test = dataset::generate_digits(300, 22, 0.12f);

    auto run = [&](int bits, nn::Round round) {
        nn::LenetConfig cfg;
        cfg.epochs = 4;
        if (bits < 32) cfg.weight_spec = nn::QuantSpec{bits, round, 2.0f};
        nn::Lenet net(cfg);
        return net.train(train, test).test_error();
    };

    const double baseline = run(32, nn::Round::kNearest);
    std::printf("float32 baseline test error: %.3f\n\n", baseline);

    TablePrinter table("Fig 7b: test error vs model precision",
                       {"bits", "unbiased rounding", "biased rounding"});
    for (int bits : {16, 12, 10, 8, 6, 5, 4}) {
        table.add_row({std::to_string(bits),
                       format_num(run(bits, nn::Round::kStochastic), 3),
                       format_num(run(bits, nn::Round::kNearest), 3)});
    }
    bench::emit(table);
    return 0;
}
