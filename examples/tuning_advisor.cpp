/**
 * @file
 * The DMGC advisor in action: ask for tuning advice for several
 * configurations and print the recommended optimization plans.
 */
#include <cstdio>
#include <iostream>

#include "dmgc/advisor.h"
#include "util/table.h"

namespace {

void
report(const char* title, const buckwild::dmgc::AdvisorQuery& query)
{
    using namespace buckwild;
    const auto advice =
        dmgc::advise(query, dmgc::PerfModel::paper_model());
    std::printf("\n--- %s ---\n", title);
    std::printf("signature %s, n = %zu, %zu threads\n",
                query.signature.to_string().c_str(), query.model_size,
                query.threads);
    std::printf("regime: %s (p = %.3f), predicted %.2f GNPS on the "
                "paper's Xeon\n",
                to_string(advice.regime).c_str(),
                advice.parallel_fraction, advice.predicted_gnps);
    TablePrinter table("recommendations",
                       {"action", "why", "stat. eff. cost"});
    for (const auto& r : advice.recommendations)
        table.add_row({r.action, r.rationale, r.stat_eff_cost});
    table.print(std::cout);
}

} // namespace

int
main()
{
    using namespace buckwild;

    // A full-precision user with a small model: the advisor should push
    // precision down and the communication-bound mitigations.
    dmgc::AdvisorQuery small;
    small.signature = dmgc::Signature::dense_hogwild();
    small.model_size = 1 << 11;
    report("full-precision, small model", small);

    // An already-low-precision user with a big model.
    dmgc::AdvisorQuery large;
    large.signature = dmgc::Signature::dense_fixed(8, 8);
    large.model_size = 1 << 22;
    report("D8M8, large model", large);

    // A sparse user with biased rounding.
    dmgc::AdvisorQuery sparse;
    sparse.signature = dmgc::Signature::sparse_hogwild();
    sparse.model_size = 1 << 18;
    sparse.unbiased_rounding = false;
    report("sparse full-precision, biased rounding", sparse);
    return 0;
}
