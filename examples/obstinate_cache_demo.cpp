/**
 * @file
 * Obstinate-cache demo (§6.2): simulate an 18-core chip running small-
 * model Buckwild! while sweeping the obstinacy parameter q, and verify on
 * the statistical side that stale reads do not hurt convergence.
 */
#include <cstdio>
#include <iostream>

#include "cachesim/sgd_trace.h"
#include "cachesim/stale_sgd.h"
#include "dataset/problem.h"
#include "util/table.h"

int
main()
{
    using namespace buckwild;
    using namespace buckwild::cachesim;

    // Hardware efficiency: throughput of a communication-bound (small
    // model) workload as invalidates are increasingly ignored.
    TablePrinter hw("obstinate cache, 18 cores, n = 2048, D8M8",
                    {"q", "cycles/number", "invalidates ignored",
                     "stale reads"});
    SgdWorkload work;
    work.model_size = 2048;
    work.iterations_per_core = 24;
    for (double q : {0.0, 0.25, 0.5, 0.75, 0.95}) {
        ChipConfig chip;
        chip.obstinacy = q;
        const auto r = simulate_sgd(chip, work);
        hw.add_row({format_num(q, 2),
                    format_num(r.wall_cycles / r.numbers_processed, 3),
                    std::to_string(r.stats.invalidates_ignored),
                    std::to_string(r.stats.stale_reads)});
    }
    hw.print(std::cout);

    // Statistical efficiency: training quality under q-stale model reads
    // (Fig 6f: indistinguishable even at q = 0.95).
    const auto problem = dataset::generate_logistic_dense(128, 3000, 5);
    TablePrinter stat("statistical efficiency under stale reads",
                      {"q", "final loss", "accuracy"});
    for (double q : {0.0, 0.5, 0.95}) {
        StaleSgdConfig cfg;
        cfg.obstinacy = q;
        cfg.epochs = 8;
        const auto r = train_with_stale_reads(problem, cfg);
        stat.add_row({format_num(q, 2), format_num(r.final_loss),
                      format_num(r.accuracy)});
    }
    stat.print(std::cout);
    return 0;
}
