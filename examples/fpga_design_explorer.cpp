/**
 * @file
 * FPGA design-space exploration example (§8): for each precision, search
 * lanes x pipeline-shape x mini-batch for the best-fitting design on a
 * Stratix-V-class device, and report throughput, area, and GNPS/watt.
 */
#include <cstdio>
#include <iostream>

#include "fpga/search.h"
#include "util/table.h"

int
main()
{
    using namespace buckwild;
    using namespace buckwild::fpga;

    const Device device;
    std::printf("device: %zu ALMs, %zu DSPs, %zu kbit BRAM, %.0f MHz, "
                "%.1f GB/s DRAM\n",
                device.alms, device.dsps, device.bram_kbits,
                device.clock_mhz, device.dram_gbps);

    TablePrinter table("best design per precision (model n = 16384)",
                       {"precision", "design", "GNPS", "bound", "DSP%",
                        "BRAM%", "GNPS/W"});

    for (int bits : {4, 8, 16, 32}) {
        SearchSpace space;
        space.dataset_bits = bits;
        space.model_bits = bits;
        space.model_size = 1 << 14;
        const auto best = best_design(space, device);
        table.add_row(
            {bits == 32 ? "float32" : std::to_string(bits) + "-bit",
             best.design.to_string(),
             format_num(best.throughput.gnps, 3),
             best.throughput.memory_bound ? "memory" : "compute",
             format_num(100.0 * best.resources.dsp_frac(device), 3),
             format_num(100.0 * best.resources.bram_frac(device), 3),
             format_num(best.gnps_per_watt(), 3)});
    }
    table.print(std::cout);

    // The 2-stage vs 3-stage trade-off at a fixed precision (Fig 7c).
    TablePrinter shapes("2-stage vs 3-stage at D8M8, 64 lanes",
                        {"shape", "GNPS", "BRAM kbit", "note"});
    for (PipelineShape shape :
         {PipelineShape::kTwoStage, PipelineShape::kThreeStage}) {
        DesignPoint d;
        d.lanes = 64;
        d.shape = shape;
        d.model_size = 1 << 14;
        const auto t = estimate_throughput(d, device);
        const auto r = estimate_resources(d, device);
        shapes.add_row({to_string(shape), format_num(t.gnps, 3),
                        format_num(r.bram_kbits, 4),
                        shape == PipelineShape::kTwoStage
                            ? "no copy; reads data twice"
                            : "BRAM copy; full-rate stream"});
    }
    shapes.print(std::cout);

    std::printf("\npaper reference points: FPGA 0.339 GNPS/W vs "
                "Xeon E7-8890 0.143 GNPS/W\n");
    return 0;
}
