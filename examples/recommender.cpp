/**
 * @file
 * Recommender-system example: low-precision SGD matrix factorization on
 * naturally quantized (half-star) ratings — the application class §3
 * highlights because dataset quantization is fidelity-free.
 */
#include <cstdio>
#include <iostream>

#include "core/matrix_fact.h"
#include "util/table.h"

int
main()
{
    using namespace buckwild;

    const auto problem = core::generate_ratings(
        /*users=*/500, /*items=*/800, /*rank=*/12,
        /*train=*/60000, /*test=*/10000, /*seed=*/7);
    std::printf("ratings: %zu users x %zu items, %zu train / %zu test "
                "(half-star steps: naturally quantized)\n",
                problem.users, problem.items, problem.train.size(),
                problem.test.size());

    TablePrinter table("factor precision sweep (k = 64)",
                       {"factor bits", "train RMSE", "test RMSE", "GNPS",
                        "factor memory"});
    for (int bits : {32, 16, 8}) {
        core::MfConfig cfg;
        cfg.factor_bits = bits;
        cfg.factor_dim = 64;
        cfg.epochs = 6;
        const auto r = core::train_matrix_factorization(problem, cfg);
        const double mbytes = static_cast<double>(
                                  (problem.users + problem.items) * 64) *
                              bits / 8.0 / 1e6;
        table.add_row({bits == 32 ? "float32" : std::to_string(bits),
                       format_num(r.train_rmse, 3),
                       format_num(r.test_rmse, 3), format_num(r.gnps, 3),
                       format_num(mbytes, 3) + " MB"});
    }
    table.print(std::cout);
    std::printf("\n8-bit factors quarter the model memory; the half-star "
                "input needed no dataset quantization at all.\n");
    return 0;
}
