/**
 * @file
 * Sparse-data example: a bag-of-words-style spam filter.
 *
 * Text classification produces extremely sparse feature vectors (each
 * document touches a handful of a large vocabulary). This example builds
 * a synthetic sparse problem shaped like that workload (50K-dimensional
 * vocabulary, ~0.2% density) and sweeps DMGC signatures, showing:
 *   - the role of *index precision* (the i term): 16-bit indices cannot
 *     address 50K coordinates directly, so the dataset builder switches
 *     to delta encoding (footnote 6) transparently;
 *   - the paper's sparse finding: low precision still wins, but far less
 *     than linearly (Table 2's sparse column).
 */
#include <cstdio>
#include <iostream>

#include "buckwild/buckwild.h"
#include "util/table.h"

int
main()
{
    using namespace buckwild;

    const std::size_t vocabulary = 50000;
    const auto problem = dataset::generate_logistic_sparse(
        vocabulary, /*examples=*/4000, /*density=*/0.002, /*seed=*/7);
    std::printf("spam-filter problem: vocabulary=%zu, documents=%zu, "
                "nnz/document=%zu\n",
                vocabulary, problem.examples(),
                problem.rows.front().index.size());

    TablePrinter table("sparse signatures on the spam filter",
                       {"signature", "loss", "accuracy", "GNPS",
                        "index encoding"});

    for (const char* text : {"D32fi32M32f", "D8i32M8", "D8i16M8", "D8i8M8"}) {
        core::TrainerConfig cfg;
        cfg.signature = dmgc::parse_signature(text);
        cfg.epochs = 10;
        cfg.step_size = 0.3f;
        cfg.threads = 2;
        core::Trainer trainer(cfg);
        const auto metrics = trainer.fit(problem);

        // 8/16-bit indices can't span 50K coordinates -> delta encoding.
        const int bits = cfg.signature.index_bits.value_or(32);
        const bool delta = (vocabulary - 1) > ((1ull << bits) - 1);
        table.add_row({text, format_num(metrics.final_loss),
                       format_num(metrics.accuracy),
                       format_num(metrics.gnps(), 3),
                       delta ? "delta+padding" : "absolute"});
    }
    table.print(std::cout);

    std::printf("\nNote the paper's sparse result: lowering precision "
                "helps, but sub-linearly —\nsparse kernels are bound by "
                "irregular model accesses, not by data volume.\n");
    return 0;
}
