/**
 * @file
 * Quickstart: train low-precision asynchronous SGD (Buckwild!) on a dense
 * logistic-regression problem and compare it with full-precision
 * Hogwild!.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "buckwild/buckwild.h"

int
main()
{
    using namespace buckwild;

    // 1. A synthetic dense logistic-regression problem (footnote 9 of the
    //    paper): 1024-dimensional model, 8000 examples.
    const auto problem = dataset::generate_logistic_dense(
        /*dim=*/1024, /*examples=*/8000, /*seed=*/42);
    std::printf("problem: n=%zu, m=%zu\n", problem.dim, problem.examples);

    // 2. Configure the trainer with a DMGC signature. "D8M8" = 8-bit
    //    dataset, 8-bit model, asynchronous communication through the
    //    cache hierarchy — the paper's fastest dense configuration.
    core::TrainerConfig cfg;
    cfg.signature = dmgc::parse_signature("D8M8");
    cfg.threads = 2;          // Hogwild! workers
    cfg.epochs = 10;
    cfg.step_size = 0.1f;
    cfg.step_decay = 0.85f;
    cfg.rounding = core::RoundingStrategy::kSharedXorshift; // §5.2

    core::Trainer buckwild_trainer(cfg);
    const auto m8 = buckwild_trainer.fit(problem);

    // 3. The full-precision baseline, same everything else.
    cfg.signature = dmgc::parse_signature("D32fM32f");
    core::Trainer hogwild_trainer(cfg);
    const auto m32 = hogwild_trainer.fit(problem);

    std::printf("\n%-10s %12s %12s %12s\n", "signature", "final loss",
                "accuracy", "GNPS");
    std::printf("%-10s %12.4f %12.4f %12.3f\n", "D8M8", m8.final_loss,
                m8.accuracy, m8.gnps());
    std::printf("%-10s %12.4f %12.4f %12.3f\n", "D32fM32f", m32.final_loss,
                m32.accuracy, m32.gnps());
    std::printf("\nlow-precision speedup: %.2fx at %+.3f loss difference\n",
                m8.gnps() / m32.gnps(), m8.final_loss - m32.final_loss);

    // 4. The model is available dequantized for downstream use.
    const auto w = buckwild_trainer.model();
    std::printf("model: %zu coordinates, w[0..2] = %.4f %.4f %.4f\n",
                w.size(), w[0], w[1], w[2]);

    // 5. The DMGC performance model (§4) predicts throughput on the
    //    paper's 18-core Xeon for the same signatures.
    const auto perf = dmgc::PerfModel::paper_model();
    std::printf("\npaper-model prediction (18 threads, n=1024):\n"
                "  D8M8:     %.3f GNPS\n  D32fM32f: %.3f GNPS\n",
                perf.predict_gnps(dmgc::parse_signature("D8M8"), 18, 1024),
                perf.predict_gnps(dmgc::parse_signature("D32fM32f"), 18,
                                  1024));
    return 0;
}
