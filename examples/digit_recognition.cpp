/**
 * @file
 * Deep-learning example (§7): train the LeNet-style CNN on the synthetic
 * digit task at several model precisions, and classify a few samples.
 *
 * Demonstrates the Fig 7b headline: with unbiased rounding, training
 * remains accurate even below 8 bits.
 */
#include <cstdio>
#include <iostream>

#include "dataset/digits.h"
#include "nn/lenet.h"
#include "util/table.h"

int
main()
{
    using namespace buckwild;

    const auto train = dataset::generate_digits(800, 11, 0.1f);
    const auto test = dataset::generate_digits(300, 12, 0.1f);
    std::printf("digits: %zu train / %zu test images (%zux%zu)\n",
                train.count, test.count, dataset::kDigitSide,
                dataset::kDigitSide);

    TablePrinter table("LeNet accuracy vs model precision",
                       {"weights", "rounding", "train acc", "test acc"});

    auto run = [&](int bits, nn::Round round) {
        nn::LenetConfig cfg;
        cfg.epochs = 4;
        if (bits < 32) cfg.weight_spec = nn::QuantSpec{bits, round, 2.0f};
        nn::Lenet net(cfg);
        const auto m = net.train(train, test);
        table.add_row({bits == 32 ? "float32" : std::to_string(bits) + "-bit",
                       bits == 32
                           ? "-"
                           : (round == nn::Round::kNearest ? "biased"
                                                           : "unbiased"),
                       format_num(m.train_accuracy, 3),
                       format_num(m.test_accuracy, 3)});
        return m;
    };

    run(32, nn::Round::kNearest);
    run(8, nn::Round::kStochastic);
    run(8, nn::Round::kNearest);
    run(6, nn::Round::kStochastic);
    table.print(std::cout);

    // Classify a few fresh digits with the 8-bit unbiased network.
    nn::LenetConfig cfg;
    cfg.weight_spec = nn::QuantSpec{8, nn::Round::kStochastic, 2.0f};
    cfg.epochs = 4;
    nn::Lenet net(cfg);
    net.train(train, test);
    const auto fresh = dataset::generate_digits(10, 99, 0.1f);
    std::printf("\n8-bit network on fresh samples: ");
    for (std::size_t i = 0; i < fresh.count; ++i)
        std::printf("%d->%d ", fresh.labels[i], net.predict(fresh.image(i)));
    std::printf("\n");
    return 0;
}
