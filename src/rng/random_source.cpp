#include "rng/random_source.h"

#include <stdexcept>

namespace buckwild::rng {

std::string
to_string(RoundingRng strategy)
{
    switch (strategy) {
      case RoundingRng::kMersenne: return "mersenne";
      case RoundingRng::kXorshift: return "xorshift";
      case RoundingRng::kSharedXorshift: return "shared-xorshift";
    }
    throw std::invalid_argument("unknown RoundingRng");
}

SharedXorshiftSource::SharedXorshiftSource(std::size_t period,
                                           std::uint32_t seed)
    : gen_(seed), period_(period)
{
    if (period == 0)
        throw std::invalid_argument("shared-randomness period must be >= 1");
}

std::uint32_t
SharedXorshiftSource::next_word()
{
    if (remaining_ == 0) {
        current_ = gen_();
        remaining_ = period_;
    }
    --remaining_;
    return current_;
}

std::unique_ptr<RandomWordSource>
make_source(RoundingRng strategy, std::uint32_t seed, std::size_t shared_period)
{
    switch (strategy) {
      case RoundingRng::kMersenne:
        return std::make_unique<MersenneSource>(seed);
      case RoundingRng::kXorshift:
        return std::make_unique<XorshiftSource>(seed);
      case RoundingRng::kSharedXorshift:
        return std::make_unique<SharedXorshiftSource>(shared_period, seed);
    }
    throw std::invalid_argument("unknown RoundingRng");
}

} // namespace buckwild::rng
