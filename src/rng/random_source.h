/**
 * @file
 * Randomness sources for unbiased (stochastic) rounding.
 *
 * Section 5.2 compares three strategies for generating the `rand()` term of
 * the unbiased quantizer Q(x) = floor(x + rand()):
 *
 *  1. Mersenne twister, one fresh draw per rounded value (the Boost-default
 *     baseline) — high statistical quality, dominates compute cost.
 *  2. XORSHIFT, one fresh draw per rounded value — near-identical rounding
 *     quality, much cheaper.
 *  3. *Shared randomness*: one XORSHIFT draw is reused for several rounded
 *     values before a fresh draw is generated. Each individual rounding
 *     stays unbiased (the draws are merely correlated across elements),
 *     and the PRNG cost is amortized to near zero.
 *
 * RandomWordSource is the polymorphic interface the scalar quantizers use;
 * the SIMD kernels inline the vectorized XORSHIFT directly.
 */
#ifndef BUCKWILD_RNG_RANDOM_SOURCE_H
#define BUCKWILD_RNG_RANDOM_SOURCE_H

#include <cstdint>
#include <memory>
#include <random>
#include <string>

#include "rng/xorshift.h"

namespace buckwild::rng {

/// Identifies a rounding-randomness strategy (Fig 5a/5b axes).
enum class RoundingRng {
    kMersenne,       ///< fresh Mersenne-twister draw per value
    kXorshift,       ///< fresh XORSHIFT draw per value
    kSharedXorshift, ///< one XORSHIFT draw shared across a block of values
};

/// Human-readable name ("mersenne", "xorshift", "shared-xorshift").
std::string to_string(RoundingRng strategy);

/// Interface: a stream of uniform 32-bit words.
class RandomWordSource
{
  public:
    virtual ~RandomWordSource() = default;

    /// Next 32-bit word, uniform over [0, 2^32).
    virtual std::uint32_t next_word() = 0;

    /// Next float uniform on [0, 1).
    float next_unit_float() { return to_unit_float(next_word()); }
};

/// Mersenne twister (std::mt19937 — the same algorithm Boost defaults to).
class MersenneSource final : public RandomWordSource
{
  public:
    explicit MersenneSource(std::uint32_t seed = 5489u) : gen_(seed) {}

    std::uint32_t next_word() override { return gen_(); }

  private:
    std::mt19937 gen_;
};

/// Fresh xorshift128 word per call.
class XorshiftSource final : public RandomWordSource
{
  public:
    explicit XorshiftSource(std::uint32_t seed = 0x9E3779B9u) : gen_(seed) {}

    std::uint32_t next_word() override { return gen_(); }

  private:
    Xorshift128 gen_;
};

/**
 * Shared-randomness source: returns the same word `period` times before
 * running the underlying XORSHIFT again. period == 1 degenerates to
 * XorshiftSource; larger periods trade statistical independence for
 * amortized generation cost (the smooth trade-off of §5.2).
 */
class SharedXorshiftSource final : public RandomWordSource
{
  public:
    explicit SharedXorshiftSource(std::size_t period,
                                  std::uint32_t seed = 0x9E3779B9u);

    std::uint32_t next_word() override;

    std::size_t period() const { return period_; }

  private:
    Xorshift128 gen_;
    std::size_t period_;
    std::size_t remaining_ = 0;
    std::uint32_t current_ = 0;
};

/// Factory: builds the source matching `strategy`. For kSharedXorshift the
/// share period is `shared_period` (values per fresh draw).
std::unique_ptr<RandomWordSource> make_source(RoundingRng strategy,
                                              std::uint32_t seed,
                                              std::size_t shared_period = 8);

} // namespace buckwild::rng

#endif // BUCKWILD_RNG_RANDOM_SOURCE_H
