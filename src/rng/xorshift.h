/**
 * @file
 * XORSHIFT pseudorandom number generators (Marsaglia 2003).
 *
 * Section 5.2 of the paper replaces the Mersenne twister used for unbiased
 * (stochastic) rounding with a hand-vectorized XORSHIFT generator: a "very
 * fast, but not very statistically reliable" PRNG whose statistical
 * efficiency for rounding purposes matches the twister while costing a few
 * instructions per 256 bits.
 *
 * Three generators are provided:
 *  - Xorshift32: the classic 32-bit, 13/17/5 shift triple.
 *  - Xorshift128: Marsaglia's 128-bit-state generator, one 32-bit word per
 *    call, period 2^128 - 1.
 *  - Avx2Xorshift128Plus (in avx2_xorshift.h): four independent 64-bit
 *    xorshift128+ lanes producing 256 fresh bits per call — the vectorized
 *    generator used inside the SIMD AXPY kernels.
 */
#ifndef BUCKWILD_RNG_XORSHIFT_H
#define BUCKWILD_RNG_XORSHIFT_H

#include <cstdint>

namespace buckwild::rng {

/// Classic 32-bit xorshift. Period 2^32 - 1; state must be nonzero.
class Xorshift32
{
  public:
    using result_type = std::uint32_t;

    explicit Xorshift32(std::uint32_t seed = 0x9E3779B9u)
        : state_(seed != 0 ? seed : 0x9E3779B9u)
    {}

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return 0xFFFFFFFFu; }

    result_type
    operator()()
    {
        std::uint32_t x = state_;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        state_ = x;
        return x;
    }

  private:
    std::uint32_t state_;
};

/// Marsaglia's xorshift128: 128-bit state, 32-bit output, period 2^128 - 1.
class Xorshift128
{
  public:
    using result_type = std::uint32_t;

    explicit Xorshift128(std::uint32_t seed = 0x9E3779B9u);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return 0xFFFFFFFFu; }

    result_type
    operator()()
    {
        const std::uint32_t t = x_ ^ (x_ << 11);
        x_ = y_;
        y_ = z_;
        z_ = w_;
        w_ = w_ ^ (w_ >> 19) ^ t ^ (t >> 8);
        return w_;
    }

  private:
    std::uint32_t x_, y_, z_, w_;
};

/// xorshift128+ (Vigna): 64-bit output; the per-lane generator that the
/// AVX2 implementation replicates across four lanes.
class Xorshift128Plus
{
  public:
    using result_type = std::uint64_t;

    explicit Xorshift128Plus(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type
    operator()()
    {
        std::uint64_t s1 = s0_;
        const std::uint64_t s0 = s1_;
        s0_ = s0;
        s1 ^= s1 << 23;
        s1_ = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
        return s1_ + s0;
    }

    /**
     * Jump-ahead by 2^64 steps (Vigna's jump polynomial): calling jump()
     * k times on generators sharing one seed yields k provably
     * non-overlapping substreams — the clean way to give Hogwild!
     * workers independent rounding randomness.
     */
    void jump();

  private:
    std::uint64_t s0_, s1_;
};

/// SplitMix64: the standard seeding expander — turns one 64-bit seed into a
/// well-mixed stream used to initialize the xorshift states.
inline std::uint64_t
splitmix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/// Converts a 32-bit word to a float uniform on [0, 1).
inline float
to_unit_float(std::uint32_t bits)
{
    // Keep the top 24 bits: exactly representable in a float mantissa.
    return static_cast<float>(bits >> 8) * 0x1.0p-24f;
}

} // namespace buckwild::rng

#endif // BUCKWILD_RNG_XORSHIFT_H
