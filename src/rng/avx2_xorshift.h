/**
 * @file
 * Hand-vectorized AVX2 XORSHIFT generator (§5.2).
 *
 * Runs four independent xorshift128+ streams in the four 64-bit lanes of a
 * 256-bit register, producing 256 fresh bits per step — exactly the "run
 * the vectorized XORSHIFT PRNG once every iteration to produce 256 fresh
 * bits of randomness" strategy of the paper (footnote 11).
 *
 * Without AVX2 the same four streams are stepped scalar, producing a
 * bit-identical word sequence through fill() (the vector register's
 * little-endian lane layout: lane k contributes words 2k and 2k+1 of each
 * 8-word step). next() — the raw __m256i interface — exists only in AVX2
 * builds.
 */
#ifndef BUCKWILD_RNG_AVX2_XORSHIFT_H
#define BUCKWILD_RNG_AVX2_XORSHIFT_H

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include <cstdint>
#include <cstring>

#include "rng/xorshift.h"

namespace buckwild::rng {

#ifdef __AVX2__

/// Four-lane xorshift128+ producing one __m256i (256 bits) per call.
class Avx2Xorshift128Plus
{
  public:
    explicit Avx2Xorshift128Plus(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        std::uint64_t sm = seed;
        alignas(32) std::uint64_t s0[4];
        alignas(32) std::uint64_t s1[4];
        for (int lane = 0; lane < 4; ++lane) {
            s0[lane] = splitmix64(sm);
            s1[lane] = splitmix64(sm);
            if ((s0[lane] | s1[lane]) == 0) s1[lane] = 1;
        }
        s0_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(s0));
        s1_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(s1));
    }

    /// Generates 256 fresh pseudorandom bits.
    __m256i
    next()
    {
        __m256i s1 = s0_;
        const __m256i s0 = s1_;
        s0_ = s0;
        s1 = _mm256_xor_si256(s1, _mm256_slli_epi64(s1, 23));
        s1 = _mm256_xor_si256(
            _mm256_xor_si256(s1, s0),
            _mm256_xor_si256(_mm256_srli_epi64(s1, 18),
                             _mm256_srli_epi64(s0, 5)));
        s1_ = s1;
        return _mm256_add_epi64(s1, s0);
    }

    /// Fills `out[0..words)` with 32-bit random words (8 words per step).
    void
    fill(std::uint32_t* out, std::size_t words)
    {
        alignas(32) std::uint32_t tmp[8];
        std::size_t i = 0;
        while (i + 8 <= words) {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), next());
            i += 8;
        }
        if (i < words) {
            _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), next());
            for (std::size_t j = 0; i < words; ++i, ++j) out[i] = tmp[j];
        }
    }

  private:
    __m256i s0_;
    __m256i s1_;
};

#else // !__AVX2__

/// Scalar fallback: the same four xorshift128+ streams stepped one lane at
/// a time. fill() produces the identical word sequence to the AVX2 build.
class Avx2Xorshift128Plus
{
  public:
    explicit Avx2Xorshift128Plus(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        std::uint64_t sm = seed;
        for (int lane = 0; lane < 4; ++lane) {
            s0_[lane] = splitmix64(sm);
            s1_[lane] = splitmix64(sm);
            if ((s0_[lane] | s1_[lane]) == 0) s1_[lane] = 1;
        }
    }

    /// Generates 256 fresh pseudorandom bits into `out[0..8)` (the scalar
    /// spelling of one vector step; lane k -> words 2k, 2k+1).
    void
    next_block(std::uint32_t out[8])
    {
        for (int lane = 0; lane < 4; ++lane) {
            std::uint64_t s1 = s0_[lane];
            const std::uint64_t s0 = s1_[lane];
            s0_[lane] = s0;
            s1 ^= s1 << 23;
            s1 = s1 ^ s0 ^ (s1 >> 18) ^ (s0 >> 5);
            s1_[lane] = s1;
            const std::uint64_t word = s1 + s0;
            out[2 * lane] = static_cast<std::uint32_t>(word);
            out[2 * lane + 1] = static_cast<std::uint32_t>(word >> 32);
        }
    }

    /// Fills `out[0..words)` with 32-bit random words (8 words per step).
    void
    fill(std::uint32_t* out, std::size_t words)
    {
        std::uint32_t tmp[8];
        std::size_t i = 0;
        while (i + 8 <= words) {
            next_block(out + i);
            i += 8;
        }
        if (i < words) {
            next_block(tmp);
            for (std::size_t j = 0; i < words; ++i, ++j) out[i] = tmp[j];
        }
    }

  private:
    std::uint64_t s0_[4];
    std::uint64_t s1_[4];
};

#endif // __AVX2__

} // namespace buckwild::rng

#endif // BUCKWILD_RNG_AVX2_XORSHIFT_H
