/**
 * @file
 * Hand-vectorized AVX2 XORSHIFT generator (§5.2).
 *
 * Runs four independent xorshift128+ streams in the four 64-bit lanes of a
 * 256-bit register, producing 256 fresh bits per step — exactly the "run
 * the vectorized XORSHIFT PRNG once every iteration to produce 256 fresh
 * bits of randomness" strategy of the paper (footnote 11).
 */
#ifndef BUCKWILD_RNG_AVX2_XORSHIFT_H
#define BUCKWILD_RNG_AVX2_XORSHIFT_H

#include <immintrin.h>

#include <cstdint>

#include "rng/xorshift.h"

namespace buckwild::rng {

/// Four-lane xorshift128+ producing one __m256i (256 bits) per call.
class Avx2Xorshift128Plus
{
  public:
    explicit Avx2Xorshift128Plus(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
    {
        std::uint64_t sm = seed;
        alignas(32) std::uint64_t s0[4];
        alignas(32) std::uint64_t s1[4];
        for (int lane = 0; lane < 4; ++lane) {
            s0[lane] = splitmix64(sm);
            s1[lane] = splitmix64(sm);
            if ((s0[lane] | s1[lane]) == 0) s1[lane] = 1;
        }
        s0_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(s0));
        s1_ = _mm256_load_si256(reinterpret_cast<const __m256i*>(s1));
    }

    /// Generates 256 fresh pseudorandom bits.
    __m256i
    next()
    {
        __m256i s1 = s0_;
        const __m256i s0 = s1_;
        s0_ = s0;
        s1 = _mm256_xor_si256(s1, _mm256_slli_epi64(s1, 23));
        s1 = _mm256_xor_si256(
            _mm256_xor_si256(s1, s0),
            _mm256_xor_si256(_mm256_srli_epi64(s1, 18),
                             _mm256_srli_epi64(s0, 5)));
        s1_ = s1;
        return _mm256_add_epi64(s1, s0);
    }

    /// Fills `out[0..words)` with 32-bit random words (8 words per step).
    void
    fill(std::uint32_t* out, std::size_t words)
    {
        alignas(32) std::uint32_t tmp[8];
        std::size_t i = 0;
        while (i + 8 <= words) {
            _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), next());
            i += 8;
        }
        if (i < words) {
            _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), next());
            for (std::size_t j = 0; i < words; ++i, ++j) out[i] = tmp[j];
        }
    }

  private:
    __m256i s0_;
    __m256i s1_;
};

} // namespace buckwild::rng

#endif // BUCKWILD_RNG_AVX2_XORSHIFT_H
