#include "rng/xorshift.h"

namespace buckwild::rng {

Xorshift128::Xorshift128(std::uint32_t seed)
{
    std::uint64_t sm = seed;
    // Expand the single word into 128 bits of well-mixed state; xorshift128
    // requires a not-all-zero state, which splitmix64 guarantees with
    // overwhelming probability — force it just in case.
    x_ = static_cast<std::uint32_t>(splitmix64(sm));
    y_ = static_cast<std::uint32_t>(splitmix64(sm));
    z_ = static_cast<std::uint32_t>(splitmix64(sm));
    w_ = static_cast<std::uint32_t>(splitmix64(sm));
    if ((x_ | y_ | z_ | w_) == 0) w_ = 1;
}

Xorshift128Plus::Xorshift128Plus(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    s0_ = splitmix64(sm);
    s1_ = splitmix64(sm);
    if ((s0_ | s1_) == 0) s1_ = 1;
}

void
Xorshift128Plus::jump()
{
    // Vigna's published jump constants for xorshift128+.
    static constexpr std::uint64_t kJump[] = {0x8a5cd789635d2dffull,
                                              0x121fd2155c472f96ull};
    std::uint64_t j0 = 0, j1 = 0;
    for (std::uint64_t word : kJump) {
        for (int bit = 0; bit < 64; ++bit) {
            if (word & (1ull << bit)) {
                j0 ^= s0_;
                j1 ^= s1_;
            }
            (void)(*this)();
        }
    }
    s0_ = j0;
    s1_ = j1;
}

} // namespace buckwild::rng
