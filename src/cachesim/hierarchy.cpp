#include "cachesim/hierarchy.h"

#include "util/logging.h"

namespace buckwild::cachesim {

Chip::Chip(const ChipConfig& config)
    : config_(config), l3_(config.l3),
      rng_(static_cast<std::uint32_t>(config.seed))
{
    if (config.cores == 0 || config.cores > 32)
        fatal("Chip supports 1..32 cores");
    cores_.reserve(config.cores);
    for (std::size_t c = 0; c < config.cores; ++c)
        cores_.push_back(CoreCaches{TagArray(config.l1), TagArray(config.l2),
                                    {}});
}

void
Chip::set_model_range(std::uint64_t begin, std::uint64_t end)
{
    model_begin_ = begin;
    model_end_ = end;
}

void
Chip::count_transfer(std::uint64_t line)
{
    if (!in_model_range(line)) return;
    ++stats_.coherence_transfers;
    const std::uint64_t count = ++line_transfers_[line];
    if (count > max_line_transfers_) max_line_transfers_ = count;
}

bool
Chip::shared_elsewhere(std::size_t core, std::uint64_t line) const
{
    auto dir = directory_.find(line);
    if (dir == directory_.end()) return false;
    return (dir->second & ~(1u << core)) != 0;
}

std::size_t
Chip::invalidate_others(std::size_t writer, std::uint64_t line)
{
    auto dir = directory_.find(line);
    if (dir == directory_.end()) return 0;
    std::size_t delivered = 0;
    const bool model = in_model_range(line);
    std::uint32_t mask = dir->second;
    std::uint32_t remaining = 0;
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        const std::uint32_t bit = 1u << c;
        if ((mask & bit) == 0 || c == writer) {
            remaining |= mask & bit;
            continue;
        }
        ++stats_.invalidates_sent;
        if (model && config_.obstinacy > 0.0 &&
            rng::to_unit_float(rng_()) <
                static_cast<float>(config_.obstinacy)) {
            // Obstinate cache: the invalidate is dropped; the line stays
            // readable (Shared, stale) in core c.
            ++stats_.invalidates_ignored;
            cores_[c].l1.set_state(line, Mesi::kShared);
            cores_[c].l2.set_state(line, Mesi::kShared);
            remaining |= bit;
            continue;
        }
        ++delivered;
        CoreCaches& cc = cores_[c];
        cc.l1.invalidate(line);
        cc.l2.invalidate(line);
        auto pf = cc.prefetched.find(line);
        if (pf != cc.prefetched.end()) {
            // A useless prefetch: the fill and its invalidation both
            // occupied the line's home directory.
            ++stats_.prefetched_invalidated;
            count_transfer(line);
            cc.prefetched.erase(pf);
        }
    }
    dir->second = remaining | (1u << writer);
    return delivered;
}

void
Chip::fill_private(std::size_t core, std::uint64_t line, Mesi state,
                   bool prefetch)
{
    CoreCaches& cc = cores_[core];
    std::uint64_t evicted = 0;
    bool evicted_dirty = false;
    if (cc.l2.install(line, state, evicted, evicted_dirty)) {
        // The evicted line leaves this core entirely.
        cc.l1.invalidate(evicted);
        cc.prefetched.erase(evicted);
        auto dir = directory_.find(evicted);
        if (dir != directory_.end()) {
            dir->second &= ~(1u << core);
            if (dir->second == 0) directory_.erase(dir);
        }
        auto own = owner_.find(evicted);
        if (own != owner_.end() && own->second == static_cast<int>(core))
            owner_.erase(own); // dirty data written back to L3
    }
    if (!prefetch) {
        std::uint64_t e2 = 0;
        bool d2 = false;
        cc.l1.install(line, state, e2, d2); // L1 evictions stay in L2
    }
    directory_[line] |= 1u << core;
    if (state == Mesi::kModified) owner_[line] = static_cast<int>(core);
}

bool
Chip::fill_shared(std::uint64_t line)
{
    if (l3_.lookup(line) != Mesi::kInvalid) return false;
    std::uint64_t evicted = 0;
    bool evicted_dirty = false;
    if (l3_.install(line, Mesi::kExclusive, evicted, evicted_dirty)) {
        // Inclusive L3: back-invalidate every private copy of the victim.
        auto dir = directory_.find(evicted);
        if (dir != directory_.end()) {
            for (std::size_t c = 0; c < cores_.size(); ++c) {
                if ((dir->second & (1u << c)) == 0) continue;
                cores_[c].l1.invalidate(evicted);
                cores_[c].l2.invalidate(evicted);
                cores_[c].prefetched.erase(evicted);
            }
            directory_.erase(dir);
        }
        owner_.erase(evicted);
    }
    return true; // came from DRAM
}

const char*
to_string(Prefetcher kind)
{
    switch (kind) {
      case Prefetcher::kNone: return "off";
      case Prefetcher::kNextLine: return "next-line";
      case Prefetcher::kAdjacentLine: return "adjacent-line";
      case Prefetcher::kStream2: return "stream-2";
    }
    return "?";
}

void
Chip::prefetch_line(std::size_t core, std::uint64_t target)
{
    CoreCaches& cc = cores_[core];
    if (cc.l2.contains(target)) return;
    ++stats_.prefetches_issued;
    if (fill_shared(target))
        ++fills_from_dram_;
    else
        ++fills_from_l3_;
    // Another core holding the line Modified must downgrade before the
    // prefetcher can install a Shared copy.
    auto own = owner_.find(target);
    if (own != owner_.end() && own->second != static_cast<int>(core)) {
        cores_[own->second].l1.set_state(target, Mesi::kShared);
        cores_[own->second].l2.set_state(target, Mesi::kShared);
        owner_.erase(own);
    }
    fill_private(core, target, Mesi::kShared, /*prefetch=*/true);
    cc.prefetched[target] = true;
}

void
Chip::maybe_prefetch(std::size_t core, std::uint64_t line)
{
    switch (config_.prefetcher) {
      case Prefetcher::kNone:
        return;
      case Prefetcher::kNextLine:
        prefetch_line(core, line + 1);
        return;
      case Prefetcher::kAdjacentLine:
        // The 128-byte pair buddy (even<->odd line).
        prefetch_line(core, line ^ 1);
        return;
      case Prefetcher::kStream2:
        prefetch_line(core, line + 1);
        prefetch_line(core, line + 2);
        return;
    }
}

double
Chip::read(std::size_t core, std::uint64_t line)
{
    CoreCaches& cc = cores_[core];
    // L1 hit?
    if (cc.l1.lookup(line) != Mesi::kInvalid) {
        ++stats_.l1_hits;
        if (config_.obstinacy > 0.0 && in_model_range(line) &&
            owner_.count(line) != 0 &&
            owner_[line] != static_cast<int>(core))
            ++stats_.stale_reads;
        return config_.l1.latency / config_.hit_mlp;
    }
    // L2 hit?
    if (cc.l2.lookup(line) != Mesi::kInvalid) {
        ++stats_.l2_hits;
        auto pf = cc.prefetched.find(line);
        if (pf != cc.prefetched.end()) {
            ++stats_.prefetch_hits;
            cc.prefetched.erase(pf);
        }
        std::uint64_t e = 0;
        bool d = false;
        cc.l1.install(line, cc.l2.lookup(line, false), e, d);
        return config_.l2.latency / config_.hit_mlp;
    }
    // Miss classification: a *dirty transfer* (another core holds the
    // line Modified — it was recently written, i.e. our copy was
    // invalidated) stalls at full latency. A capacity/cold miss is part
    // of a prefetchable sequential stream and overlaps (streaming_mlp).
    // This discriminator scales with cache size automatically: small
    // models stay Modified in the last writer's L2, large models get
    // evicted (written back) before the next reader arrives.
    auto own_it = owner_.find(line);
    const bool coherence =
        own_it != owner_.end() && own_it->second != static_cast<int>(core);
    double latency = config_.l3.latency;
    const bool from_dram = fill_shared(line);
    if (from_dram) {
        latency += config_.dram_latency;
        ++stats_.dram_fills;
        ++fills_from_dram_;
    } else {
        ++stats_.l3_hits;
        ++fills_from_l3_;
    }
    if (!coherence)
        latency /= config_.streaming_mlp;
    else
        count_transfer(line);
    // Any other private copy (Exclusive or Modified) downgrades to Shared;
    // a Modified owner writes back to the L3 first.
    auto own = owner_.find(line);
    if (own != owner_.end() && own->second != static_cast<int>(core))
        owner_.erase(own);
    const std::uint32_t sharers = directory_[line];
    for (std::size_t c = 0; c < cores_.size(); ++c) {
        if (c == core || (sharers & (1u << c)) == 0) continue;
        cores_[c].l1.set_state(line, Mesi::kShared);
        cores_[c].l2.set_state(line, Mesi::kShared);
    }
    const bool alone = sharers == 0;
    fill_private(core, line, alone ? Mesi::kExclusive : Mesi::kShared,
                 /*prefetch=*/false);
    maybe_prefetch(core, line);
    return latency;
}

double
Chip::write(std::size_t core, std::uint64_t line)
{
    CoreCaches& cc = cores_[core];
    const Mesi l1_state = cc.l1.lookup(line);
    const Mesi l2_state = cc.l2.lookup(line);
    const Mesi best = (l1_state == Mesi::kModified ||
                       l2_state == Mesi::kModified)
        ? Mesi::kModified
        : ((l1_state == Mesi::kExclusive || l2_state == Mesi::kExclusive)
               ? Mesi::kExclusive
               : ((l1_state != Mesi::kInvalid || l2_state != Mesi::kInvalid)
                      ? Mesi::kShared
                      : Mesi::kInvalid));

    if (best == Mesi::kModified || best == Mesi::kExclusive) {
        // Silent E->M upgrade or plain M hit.
        cc.l1.set_state(line, Mesi::kModified);
        cc.l2.set_state(line, Mesi::kModified);
        owner_[line] = static_cast<int>(core);
        ++stats_.l1_hits;
        return config_.l1.latency;
    }

    if (best == Mesi::kShared) {
        // Upgrade: invalidate the other sharers via the directory. The
        // writer pays a directory round trip plus per-sharer fan-out.
        ++stats_.upgrades;
        const std::size_t delivered = invalidate_others(core, line);
        // An upgrade whose every invalidate was obstinately dropped is
        // fire-and-forget: no victim acknowledgment serializes at the
        // line's home.
        if (delivered > 0) count_transfer(line);
        cc.l1.set_state(line, Mesi::kModified);
        cc.l2.set_state(line, Mesi::kModified);
        if (cc.l1.lookup(line, false) == Mesi::kInvalid) {
            std::uint64_t e = 0;
            bool d = false;
            cc.l1.install(line, Mesi::kModified, e, d);
        }
        owner_[line] = static_cast<int>(core);
        ++stats_.l2_hits;
        return config_.l2.latency + config_.l3.latency +
               config_.invalidate_cost * static_cast<double>(delivered);
    }

    // Read-for-ownership miss: a full-latency dirty transfer only when
    // another core holds the line Modified.
    auto own_it = owner_.find(line);
    const bool coherence =
        own_it != owner_.end() && own_it->second != static_cast<int>(core);
    double latency = config_.l3.latency;
    const bool from_dram = fill_shared(line);
    if (from_dram) {
        latency += config_.dram_latency;
        ++stats_.dram_fills;
        ++fills_from_dram_;
    } else {
        ++stats_.l3_hits;
        ++fills_from_l3_;
    }
    if (!coherence)
        latency /= config_.streaming_mlp;
    else
        count_transfer(line);
    auto own = owner_.find(line);
    if (own != owner_.end() && own->second != static_cast<int>(core))
        owner_.erase(own);
    const std::size_t delivered = invalidate_others(core, line);
    latency += config_.invalidate_cost * static_cast<double>(delivered);
    fill_private(core, line, Mesi::kModified, /*prefetch=*/false);
    return latency;
}

} // namespace buckwild::cachesim
