/**
 * @file
 * Statistical-efficiency harness for the obstinate cache (Fig 6f).
 *
 * The hardware question ("does ignoring invalidates slow the chip?") is
 * answered by the trace simulator; this harness answers the *statistical*
 * question: does reading stale model values — which is what an obstinate
 * line serves — hurt convergence?
 *
 * It emulates T logical Hogwild! workers deterministically in one thread.
 * Each worker keeps a private copy of the model; writes go through to the
 * shared model (and the writer's copy), while each model line of a
 * worker's copy refreshes from the shared model with probability (1 - q)
 * per iteration — with probability q the worker obstinately keeps its
 * stale line, exactly the coherence relaxation of §6.2.
 */
#ifndef BUCKWILD_CACHESIM_STALE_SGD_H
#define BUCKWILD_CACHESIM_STALE_SGD_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/loss.h"
#include "dataset/problem.h"

namespace buckwild::cachesim {

/// Configuration of the stale-read training emulation.
struct StaleSgdConfig
{
    std::size_t workers = 18;
    double obstinacy = 0.0; ///< q: probability a stale line is kept
    std::size_t epochs = 10;
    float step_size = 0.15f;
    float step_decay = 0.9f;
    std::uint64_t seed = 7;
    /// Model values per coherence "line" (64B of 32f values = 16).
    std::size_t line_values = 16;
};

/// Outcome: the loss trace and final metrics on the shared model.
struct StaleSgdResult
{
    std::vector<double> loss_trace;
    double final_loss = 0.0;
    double accuracy = 0.0;
    std::uint64_t stale_line_reads = 0;
    std::uint64_t refreshes = 0;
};

/// Trains full-precision logistic regression under q-stale model reads.
StaleSgdResult train_with_stale_reads(const dataset::DenseProblem& problem,
                                      const StaleSgdConfig& config);

} // namespace buckwild::cachesim

#endif // BUCKWILD_CACHESIM_STALE_SGD_H
