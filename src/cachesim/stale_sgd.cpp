#include "cachesim/stale_sgd.h"

#include <cmath>

#include "rng/xorshift.h"
#include "util/logging.h"

namespace buckwild::cachesim {

StaleSgdResult
train_with_stale_reads(const dataset::DenseProblem& problem,
                       const StaleSgdConfig& cfg)
{
    if (cfg.workers == 0) fatal("workers must be >= 1");
    if (cfg.obstinacy < 0.0 || cfg.obstinacy > 1.0)
        fatal("obstinacy must be in [0, 1]");

    const std::size_t n = problem.dim;
    const std::size_t lines = (n + cfg.line_values - 1) / cfg.line_values;

    std::vector<float> shared(n, 0.0f);
    // Worker-private copies (the "cached" model).
    std::vector<std::vector<float>> local(cfg.workers, shared);
    rng::Xorshift128Plus gen(cfg.seed);
    auto uniform = [&gen] {
        return rng::to_unit_float(static_cast<std::uint32_t>(gen() >> 32));
    };

    StaleSgdResult result;
    auto eval = [&] {
        double total = 0.0;
        std::size_t correct = 0;
        for (std::size_t i = 0; i < problem.examples; ++i) {
            float z = 0.0f;
            const float* x = problem.row(i);
            for (std::size_t k = 0; k < n; ++k) z += shared[k] * x[k];
            total +=
                core::loss_value(core::Loss::kLogistic, z, problem.y[i]);
            if (core::loss_correct(core::Loss::kLogistic, z, problem.y[i]))
                ++correct;
        }
        result.accuracy = static_cast<double>(correct) /
                          static_cast<double>(problem.examples);
        return total / static_cast<double>(problem.examples);
    };

    float eta = cfg.step_size;
    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (std::size_t i = 0; i < problem.examples; ++i) {
            const std::size_t worker = i % cfg.workers;
            std::vector<float>& w = local[worker];

            // Coherence emulation: per line, accept the "invalidate"
            // (refresh from the shared model) with probability 1 - q.
            for (std::size_t l = 0; l < lines; ++l) {
                if (cfg.obstinacy > 0.0 && uniform() < cfg.obstinacy) {
                    ++result.stale_line_reads;
                    continue; // obstinate: keep the stale line
                }
                ++result.refreshes;
                const std::size_t begin = l * cfg.line_values;
                const std::size_t end = std::min(n, begin + cfg.line_values);
                for (std::size_t k = begin; k < end; ++k)
                    w[k] = shared[k];
            }

            const float* x = problem.row(i);
            float z = 0.0f;
            for (std::size_t k = 0; k < n; ++k) z += w[k] * x[k];
            const float g = core::loss_gradient_coefficient(
                core::Loss::kLogistic, z, problem.y[i]);
            const float c = -eta * g;
            if (c == 0.0f) continue;
            // Write-through: the update lands in both the worker's copy
            // and the shared model (as an M-state line would eventually).
            for (std::size_t k = 0; k < n; ++k) {
                const float delta = c * x[k];
                w[k] += delta;
                shared[k] += delta;
            }
        }
        eta *= cfg.step_decay;
        result.loss_trace.push_back(eval());
    }
    result.final_loss = result.loss_trace.empty() ? eval()
                                                  : result.loss_trace.back();
    return result;
}

} // namespace buckwild::cachesim
