#include "cachesim/sgd_trace.h"

#include <algorithm>

#include "rng/xorshift.h"
#include "util/logging.h"

namespace buckwild::cachesim {

namespace {

/// Lines covering n values of the given bit width.
std::uint64_t
lines_for(std::size_t n, int bits)
{
    const std::uint64_t bytes =
        (static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(bits) +
         7) /
        8;
    return (bytes + kLineBytes - 1) / kLineBytes;
}

} // namespace

SgdSimResult
simulate_sgd(const ChipConfig& chip_cfg, const SgdWorkload& work)
{
    if (work.batch_size == 0) fatal("batch_size must be >= 1");
    if (work.density <= 0.0 || work.density > 1.0)
        fatal("density must be in (0, 1]");
    const bool sparse = work.density < 1.0;
    if (sparse && work.batch_size != 1)
        fatal("sparse workloads support batch_size == 1 only");
    Chip chip(chip_cfg);

    // Address map (line granularity):
    //   [0, model_lines)                      the shared model
    //   [scratch_base_c, +scratch_lines)      per-core batch scratch
    //   [dataset_base_c, +slice)              per-core dataset slice
    const std::uint64_t model_lines =
        std::max<std::uint64_t>(1, lines_for(work.model_size,
                                             work.model_bits));
    const std::size_t nnz = sparse
        ? std::max<std::size_t>(
              1, static_cast<std::size_t>(work.density *
                                          static_cast<double>(
                                              work.model_size)))
        : work.model_size;
    // Sparse streams carry the index stream too (the "i" term).
    const int stream_bits =
        work.dataset_bits + (sparse ? work.index_bits : 0);
    const std::uint64_t example_lines =
        std::max<std::uint64_t>(1, lines_for(nnz, stream_bits));
    const std::uint64_t scratch_lines =
        work.batch_size > 1
            ? std::max<std::uint64_t>(1, lines_for(work.model_size, 32))
            : 0;

    chip.set_model_range(0, model_lines);
    std::uint64_t next_base = model_lines + 16; // guard gap
    std::vector<std::uint64_t> scratch_base(chip_cfg.cores);
    for (std::size_t c = 0; c < chip_cfg.cores; ++c) {
        scratch_base[c] = next_base;
        next_base += scratch_lines + 16;
    }
    // Dataset slices: each core streams through its own examples; sized
    // so an epoch never revisits a line (true streaming).
    const std::uint64_t slice_lines =
        example_lines * work.iterations_per_core;
    std::vector<std::uint64_t> dataset_base(chip_cfg.cores);
    for (std::size_t c = 0; c < chip_cfg.cores; ++c) {
        dataset_base[c] = next_base;
        next_base += slice_lines + 16;
    }

    std::vector<double> core_cycles(chip_cfg.cores, 0.0);
    // Scattered model-line selection for sparse iterations.
    rng::Xorshift128 scatter(static_cast<std::uint32_t>(chip_cfg.seed + 1));
    const std::uint64_t touched_model_lines = sparse
        ? std::max<std::uint64_t>(
              1, std::min<std::uint64_t>(
                     model_lines,
                     lines_for(nnz, work.model_bits) * 4))
        : model_lines;
    std::vector<std::uint64_t> scattered(sparse ? touched_model_lines : 0);

    // Interleave iterations round-robin across cores so coherence events
    // (invalidates) land mid-epoch like they would in a real run.
    for (std::size_t it = 0; it < work.iterations_per_core; ++it) {
        for (std::size_t c = 0; c < chip_cfg.cores; ++c) {
            double& cycles = core_cycles[c];
            const std::uint64_t ex =
                dataset_base[c] + it * example_lines;

            // Sparse iterations touch scattered model lines; dense
            // iterations sweep all of them.
            if (sparse) {
                for (auto& line : scattered)
                    line = scatter() % model_lines;
            }
            const std::uint64_t model_touch =
                sparse ? scattered.size() : model_lines;
            auto model_line = [&](std::uint64_t l) {
                return sparse ? scattered[l] : l;
            };

            // --- dot: stream the example, read the model.
            for (std::uint64_t l = 0; l < example_lines; ++l)
                cycles += chip.read(c, ex + l);
            for (std::uint64_t l = 0; l < model_touch; ++l)
                cycles += chip.read(c, model_line(l));
            cycles += work.compute_cycles_per_line *
                      static_cast<double>(example_lines + model_touch);

            if (work.batch_size == 1) {
                // --- AXPY: re-read the example, read-modify-write the
                // model.
                for (std::uint64_t l = 0; l < example_lines; ++l)
                    cycles += chip.read(c, ex + l);
                for (std::uint64_t l = 0; l < model_touch; ++l) {
                    cycles += chip.read(c, model_line(l));
                    cycles += chip.write(c, model_line(l));
                }
                cycles += work.compute_cycles_per_line *
                          static_cast<double>(example_lines + model_touch);
            } else {
                // --- gradient accumulate into private scratch.
                for (std::uint64_t l = 0; l < example_lines; ++l)
                    cycles += chip.read(c, ex + l);
                for (std::uint64_t l = 0; l < scratch_lines; ++l) {
                    cycles += chip.read(c, scratch_base[c] + l);
                    cycles += chip.write(c, scratch_base[c] + l);
                }
                cycles += work.compute_cycles_per_line *
                          static_cast<double>(example_lines +
                                              scratch_lines);
                // --- batch boundary: apply scratch to the model.
                if ((it + 1) % work.batch_size == 0) {
                    for (std::uint64_t l = 0; l < model_lines; ++l) {
                        cycles += chip.read(c, l);
                        cycles += chip.write(c, l);
                    }
                    for (std::uint64_t l = 0; l < scratch_lines; ++l)
                        cycles += chip.read(c, scratch_base[c] + l);
                    cycles += work.compute_cycles_per_line *
                              static_cast<double>(model_lines +
                                                  scratch_lines);
                }
            }
        }
    }

    SgdSimResult result;
    result.stats = chip.stats();
    result.core_cycles_max =
        *std::max_element(core_cycles.begin(), core_cycles.end());
    result.bandwidth_cycles =
        chip.dram_occupancy_cycles() + chip.l3_occupancy_cycles();
    result.serialization_cycles = chip.coherence_serialization_cycles();
    result.wall_cycles =
        std::max({result.core_cycles_max, result.bandwidth_cycles,
                  result.serialization_cycles});
    result.numbers_processed =
        static_cast<double>(work.iterations_per_core) *
        static_cast<double>(chip_cfg.cores) * static_cast<double>(nnz);
    return result;
}

} // namespace buckwild::cachesim
