/**
 * @file
 * The multicore cache-hierarchy simulator.
 *
 * Models an 18-core (configurable) chip in the style the paper used ZSim:
 * per-core private L1 + L2, a large shared inclusive L3 with a sharer
 * directory, MESI coherence with instantaneous invalidate delivery, an
 * optional next-line L2 hardware prefetcher (§5.3), and the *obstinate
 * cache* (§6.2): invalidates targeting model-range lines are ignored with
 * probability q, leaving the stale line readable in the Shared state.
 *
 * Like the paper's simulations, congestion is not modeled on a
 * per-message basis; instead a bandwidth roofline accounts for DRAM and
 * L3 fill occupancy when converting access streams to wall-clock cycles
 * (simulate_sgd in sgd_trace.h).
 */
#ifndef BUCKWILD_CACHESIM_HIERARCHY_H
#define BUCKWILD_CACHESIM_HIERARCHY_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cachesim/cache.h"
#include "rng/xorshift.h"

namespace buckwild::cachesim {

/// Hardware prefetcher variants. The real MSR 0x1A4 exposes several
/// independent prefetchers; the paper found all-on or all-off optimal
/// (footnote 12) — the simulator lets that be re-examined.
enum class Prefetcher {
    kNone,         ///< everything off (the §5.3 recommendation, small models)
    kNextLine,     ///< L2 next-line (DCU IP-style)
    kAdjacentLine, ///< fetch the 128-byte pair buddy (spatial prefetcher)
    kStream2,      ///< degree-2 streamer: next two lines
};

/// "off" / "next-line" / "adjacent-line" / "stream-2".
const char* to_string(Prefetcher kind);

/// Full chip configuration (defaults: the paper's Xeon-like 18-core).
struct ChipConfig
{
    std::size_t cores = 18;
    CacheGeometry l1{32 * 1024, 8, 4};
    CacheGeometry l2{256 * 1024, 8, 12};
    CacheGeometry l3{45 * 1024 * 1024, 16, 36};
    unsigned dram_latency = 200; ///< added on top of the L3 latency

    Prefetcher prefetcher = Prefetcher::kNextLine; ///< the §5.3 switch
    double obstinacy = 0.0; ///< q of §6.2, for model-range lines

    /// Memory-level parallelism for *streaming* (capacity) misses: an
    /// out-of-order core overlaps independent sequential-stream fills, so
    /// their latency is divided by this factor. Coherence-caused events
    /// (ownership transfers, reads of lines other cores hold) stall the
    /// pipeline and are charged at full latency — this is the "processor
    /// stalls as the cores must wait for data from the shared L3" of §5.3.
    double streaming_mlp = 8.0;
    /// Cycles the writer pays per invalidate acknowledged by a victim
    /// (directory fan-out / snoop-ack cost). Obstinately dropped
    /// invalidates are fire-and-forget and cost the writer nothing.
    double invalidate_cost = 6.0;
    /// L1/L2 hits are pipelined on an out-of-order core; their latency is
    /// divided by this overlap factor.
    double hit_mlp = 4.0;
    /// Service time of one ownership transfer at a line's home directory.
    /// Transfers to the same line serialize globally; this is the
    /// communication bound of §4 ("the latency at which updates can be
    /// sent between the cores").
    double coherence_service_cycles = 240.0;

    /// Bandwidth roofline: cycles of DRAM channel occupancy per 64B fill
    /// (aggregate across channels) and of the shared L3 port per fill.
    double dram_cycles_per_fill = 2.5;
    double l3_cycles_per_fill = 0.7;

    std::uint64_t seed = 99;
};

/// Aggregate event counters.
struct ChipStats
{
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;
    std::uint64_t l3_hits = 0;
    std::uint64_t dram_fills = 0;
    std::uint64_t invalidates_sent = 0;
    std::uint64_t invalidates_ignored = 0; ///< obstinate-cache events
    std::uint64_t upgrades = 0;            ///< S -> M ownership requests
    std::uint64_t prefetches_issued = 0;
    std::uint64_t prefetch_hits = 0; ///< demand hits on prefetched lines
    std::uint64_t prefetched_invalidated = 0; ///< invalidated before use
    std::uint64_t stale_reads = 0; ///< reads served from an obstinate line
    std::uint64_t coherence_transfers = 0; ///< model-line ownership moves

    std::uint64_t
    accesses() const
    {
        return l1_hits + l2_hits + l3_hits + dram_fills;
    }
};

/**
 * The chip: per-core private hierarchies plus a shared L3 with directory.
 *
 * Addresses are line numbers. The caller declares which line range holds
 * *model* data (the obstinate cache applies only to those lines, matching
 * the per-page flag the paper proposes).
 */
class Chip
{
  public:
    explicit Chip(const ChipConfig& config);

    /// Declares [begin, end) as the model line range.
    void set_model_range(std::uint64_t begin, std::uint64_t end);

    /// A load by `core`; returns the core-visible cost in cycles.
    double read(std::size_t core, std::uint64_t line);

    /// A store by `core`; returns the core-visible cost in cycles.
    double write(std::size_t core, std::uint64_t line);

    const ChipStats& stats() const { return stats_; }
    const ChipConfig& config() const { return config_; }

    /// Total cycles of DRAM-channel occupancy consumed so far.
    double dram_occupancy_cycles() const
    {
        return static_cast<double>(fills_from_dram_) *
               config_.dram_cycles_per_fill;
    }

    /// Total cycles of L3-port occupancy consumed so far.
    double l3_occupancy_cycles() const
    {
        return static_cast<double>(fills_from_l3_) *
               config_.l3_cycles_per_fill;
    }

    /// Serialization roofline: the busiest model line's ownership
    /// transfers each occupy its home directory for
    /// coherence_service_cycles; transfers to one line cannot overlap.
    double
    coherence_serialization_cycles() const
    {
        return static_cast<double>(max_line_transfers_) *
               config_.coherence_service_cycles;
    }

  private:
    struct CoreCaches
    {
        TagArray l1;
        TagArray l2;
        /// Lines brought in by the prefetcher and not yet demanded.
        std::unordered_map<std::uint64_t, bool> prefetched;
    };

    bool in_model_range(std::uint64_t line) const
    {
        return line >= model_begin_ && line < model_end_;
    }

    /// Delivers an invalidate to every private copy except `writer`'s;
    /// returns the number of invalidates actually delivered (ignored ones
    /// included — the writer still issues them).
    std::size_t invalidate_others(std::size_t writer, std::uint64_t line);

    /// True when some other core holds a private copy of `line`.
    bool shared_elsewhere(std::size_t core, std::uint64_t line) const;

    /// Installs a line into a core's L2 (+directory), handling evictions.
    void fill_private(std::size_t core, std::uint64_t line, Mesi state,
                      bool prefetch);

    /// Fetches a line into the shared L3 if absent; returns true if the
    /// fill came from DRAM.
    bool fill_shared(std::uint64_t line);

    /// Issues the configured prefetches after a demand L2 miss.
    void maybe_prefetch(std::size_t core, std::uint64_t line);

    /// Brings one prefetch target into a core's L2.
    void prefetch_line(std::size_t core, std::uint64_t line);

    ChipConfig config_;
    std::vector<CoreCaches> cores_;
    TagArray l3_;
    /// line -> bitmask of cores holding a private copy.
    std::unordered_map<std::uint64_t, std::uint32_t> directory_;
    /// line -> core that holds it Modified (or -1).
    std::unordered_map<std::uint64_t, int> owner_;
    /// Records one ownership transfer of a model line.
    void count_transfer(std::uint64_t line);

    std::uint64_t model_begin_ = 0;
    std::uint64_t model_end_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> line_transfers_;
    std::uint64_t max_line_transfers_ = 0;
    rng::Xorshift128 rng_;
    ChipStats stats_;
    std::uint64_t fills_from_dram_ = 0;
    std::uint64_t fills_from_l3_ = 0;
};

} // namespace buckwild::cachesim

#endif // BUCKWILD_CACHESIM_HIERARCHY_H
