#include "cachesim/cache.h"

#include "util/logging.h"

namespace buckwild::cachesim {

TagArray::TagArray(const CacheGeometry& geometry)
    : sets_(geometry.sets()), ways_(geometry.ways),
      ways_storage_(geometry.sets() * geometry.ways)
{
    if (sets_ == 0) fatal("cache must have at least one set");
    // Power-of-two set counts index by mask; others (e.g. the 45 MB L3)
    // fall back to modulo.
    pow2_ = (sets_ & (sets_ - 1)) == 0;
}

TagArray::Way*
TagArray::find(std::uint64_t line)
{
    const std::size_t set = set_of(line);
    Way* base = ways_storage_.data() + set * ways_;
    for (std::size_t k = 0; k < ways_; ++k)
        if (base[k].state != Mesi::kInvalid && base[k].tag == line)
            return base + k;
    return nullptr;
}

Mesi
TagArray::lookup(std::uint64_t line, bool touch)
{
    Way* way = find(line);
    if (way == nullptr) return Mesi::kInvalid;
    if (touch) way->lru = ++clock_;
    return way->state;
}

void
TagArray::set_state(std::uint64_t line, Mesi state)
{
    Way* way = find(line);
    if (way != nullptr) way->state = state;
}

bool
TagArray::invalidate(std::uint64_t line)
{
    Way* way = find(line);
    if (way == nullptr) return false;
    const bool dirty = way->state == Mesi::kModified;
    way->state = Mesi::kInvalid;
    return dirty;
}

bool
TagArray::install(std::uint64_t line, Mesi state, std::uint64_t& evicted,
                  bool& evicted_dirty)
{
    Way* existing = find(line);
    if (existing != nullptr) {
        existing->state = state;
        existing->lru = ++clock_;
        return false;
    }
    const std::size_t set = set_of(line);
    Way* base = ways_storage_.data() + set * ways_;
    Way* victim = base;
    for (std::size_t k = 0; k < ways_; ++k) {
        if (base[k].state == Mesi::kInvalid) {
            victim = base + k;
            break;
        }
        if (base[k].lru < victim->lru) victim = base + k;
    }
    const bool evicting = victim->state != Mesi::kInvalid;
    if (evicting) {
        evicted = victim->tag;
        evicted_dirty = victim->state == Mesi::kModified;
    }
    victim->tag = line;
    victim->state = state;
    victim->lru = ++clock_;
    return evicting;
}

} // namespace buckwild::cachesim
