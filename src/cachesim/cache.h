/**
 * @file
 * Set-associative cache tag arrays with MESI states — building blocks of
 * the multicore hierarchy simulator (§6.2 methodology: "we ran experiments
 * using ZSim ... we simulated an 18-core processor ... 32 KB 4-cycle L1,
 * 256 KB 12-cycle L2, and a 45 MB 36-cycle shared L3", MESI coherence, no
 * congestion modeling).
 *
 * The simulator tracks *lines* (64-byte granularity); data values are not
 * stored — only tags, states, and LRU order.
 */
#ifndef BUCKWILD_CACHESIM_CACHE_H
#define BUCKWILD_CACHESIM_CACHE_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace buckwild::cachesim {

/// Cache line size in bytes (and the granularity of all addresses below).
inline constexpr std::uint64_t kLineBytes = 64;

/// MESI coherence states.
enum class Mesi : std::uint8_t {
    kInvalid,
    kShared,
    kExclusive,
    kModified,
};

/// Geometry + latency of one cache level.
struct CacheGeometry
{
    std::size_t size_bytes;
    std::size_t ways;
    unsigned latency; ///< access latency in cycles

    std::size_t sets() const { return size_bytes / kLineBytes / ways; }
};

/**
 * A set-associative tag array with per-line MESI state and LRU
 * replacement. Addresses are *line* numbers (byte address / 64).
 */
class TagArray
{
  public:
    explicit TagArray(const CacheGeometry& geometry);

    /// Looks up a line; returns its state (kInvalid if absent). Updates
    /// LRU on hit when `touch` is true.
    Mesi lookup(std::uint64_t line, bool touch = true);

    /// Changes the state of a present line; no-op if absent.
    void set_state(std::uint64_t line, Mesi state);

    /// Removes a line (invalidate). Returns true if it was present and
    /// modified (i.e. a writeback would occur).
    bool invalidate(std::uint64_t line);

    /**
     * Installs a line with the given state, evicting the LRU way if the
     * set is full.
     *
     * @param[out] evicted       set to the evicted line number (if any)
     * @param[out] evicted_dirty true if the evicted line was modified
     * @return true if an eviction occurred.
     */
    bool install(std::uint64_t line, Mesi state, std::uint64_t& evicted,
                 bool& evicted_dirty);

    bool contains(std::uint64_t line) { return lookup(line, false) != Mesi::kInvalid; }

    std::size_t sets() const { return sets_; }
    std::size_t ways() const { return ways_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        Mesi state = Mesi::kInvalid;
        std::uint64_t lru = 0; ///< last-touch counter
    };

    Way* find(std::uint64_t line);

    std::size_t
    set_of(std::uint64_t line) const
    {
        return pow2_ ? (line & (sets_ - 1)) : (line % sets_);
    }

    bool pow2_ = true;
    std::size_t sets_;
    std::size_t ways_;
    std::uint64_t clock_ = 0;
    std::vector<Way> ways_storage_; ///< sets_ x ways_, row-major
};

} // namespace buckwild::cachesim

#endif // BUCKWILD_CACHESIM_CACHE_H
