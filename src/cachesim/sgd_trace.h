/**
 * @file
 * SGD address-trace generation and the trace-driven throughput simulation.
 *
 * One Buckwild! iteration on core c touches:
 *   - its example's dataset lines, twice (once for the dot, once for the
 *     AXPY) — sequential streaming reads from the core's slice of the
 *     dataset region;
 *   - every model line, read for the dot; read+written for the AXPY.
 * With mini-batch size B, the per-example gradient accumulates into a
 *   per-core private float scratch vector and the model is read+written
 *   only once per B examples (§5.4).
 *
 * Wall-clock cycles per epoch combine (a) the slowest core's latency-chain
 * cycles and (b) the bandwidth roofline on DRAM/L3 fill occupancy, which
 * is what makes useless prefetch traffic costly (§5.3).
 */
#ifndef BUCKWILD_CACHESIM_SGD_TRACE_H
#define BUCKWILD_CACHESIM_SGD_TRACE_H

#include <cstddef>
#include <cstdint>

#include "cachesim/hierarchy.h"

namespace buckwild::cachesim {

/// Workload parameters for the trace generator.
struct SgdWorkload
{
    std::size_t model_size = 1 << 16; ///< n
    int dataset_bits = 8;             ///< D precision (memory footprint)
    int model_bits = 8;               ///< M precision
    std::size_t iterations_per_core = 64; ///< examples per core
    std::size_t batch_size = 1;           ///< B (§5.4)
    /// Fraction of coordinates that are nonzero. 1.0 = dense sweep; below
    /// that, each example touches ceil(density*n) *scattered* model lines
    /// and its stored stream carries index_bits per number on top of the
    /// value bits (the sparse traffic pattern of Fig 6b).
    double density = 1.0;
    int index_bits = 32; ///< sparse index precision (ignored when dense)
    /// Compute cycles a core spends per 64-byte line of kernel work
    /// (vector ALU work overlapping nothing, on top of memory latency).
    double compute_cycles_per_line = 2.0;
    double clock_ghz = 2.5;
};

/// Result of one trace-driven simulation.
struct SgdSimResult
{
    double wall_cycles = 0.0;
    double core_cycles_max = 0.0;  ///< slowest core's latency chain
    double bandwidth_cycles = 0.0; ///< DRAM/L3 occupancy roofline
    double serialization_cycles = 0.0; ///< hottest-line coherence bound
    double numbers_processed = 0.0;
    ChipStats stats;

    /// Dataset throughput in giga-numbers-per-second at `clock_ghz`.
    double
    gnps(double clock_ghz) const
    {
        return wall_cycles > 0.0
            ? numbers_processed * clock_ghz / wall_cycles
            : 0.0;
    }
};

/// Runs the SGD trace on a chip configuration and reports throughput.
SgdSimResult simulate_sgd(const ChipConfig& chip, const SgdWorkload& work);

} // namespace buckwild::cachesim

#endif // BUCKWILD_CACHESIM_SGD_TRACE_H
