/**
 * @file
 * Serve-side precision vocabulary — the DMGC letters that survive to
 * inference time.
 *
 * At inference there is no gradient and no inter-worker communication, so
 * of the training signature `D M G C` only two letters remain meaningful:
 *
 *   D — the request's feature numbers (held at 32f here: requests arrive
 *       as floats from the outside world and are read exactly once, so
 *       quantizing them buys no repeated-bandwidth savings), and
 *   M — the serving copy of the model, re-quantized once at publish time.
 *
 * We write the serving model precision with an `s` subscript — `Ms8`,
 * `Ms16`, `Ms32f` — mirroring the paper's `Cs` notation for "synchronous"
 * to mark "serving": the serving rep is chosen independently of the rep
 * the model was trained at (a D8M8-trained model can be served at Ms32f
 * and vice versa). Low-precision serving wins for the same §3 reason
 * low-precision training does: the dot product is memory-bandwidth-bound,
 * and Ms8 moves a quarter of the bytes of Ms32f per scored request.
 */
#ifndef BUCKWILD_SERVE_PRECISION_H
#define BUCKWILD_SERVE_PRECISION_H

#include <string>

#include "dmgc/signature.h"

namespace buckwild::serve {

/// The serving rep of model numbers (the Ms term).
enum class Precision {
    kInt8,    ///< Ms8  — 8-bit fixed point
    kInt16,   ///< Ms16 — 16-bit fixed point
    kFloat32, ///< Ms32f — IEEE float (no re-quantization)
};

/// "Ms8" / "Ms16" / "Ms32f".
std::string to_string(Precision p);

/// Model bytes moved per coordinate per scored request.
std::size_t bytes_per_weight(Precision p);

/**
 * Parses the serve-side notation: "Ms8", "Ms16", "Ms32f" (a bare
 * "8" / "16" / "32f" is accepted as shorthand).
 *
 * @throws std::runtime_error on anything else.
 */
Precision parse_precision(const std::string& text);

/**
 * The natural serving precision for a model trained at `sig`: serve at
 * the precision the model was trained at (its M term), so the serving
 * copy represents the trained weights exactly.
 */
Precision precision_from_signature(const dmgc::Signature& sig);

} // namespace buckwild::serve

#endif // BUCKWILD_SERVE_PRECISION_H
