/**
 * @file
 * Umbrella header for the serving subsystem.
 *
 * The path from a trained model to scored traffic:
 *
 *     core::SavedModel model = core::load_model_file("model.bw");
 *     serve::ModelRegistry registry;
 *     registry.publish(model, serve::parse_precision("Ms8"));
 *
 *     serve::ServerConfig cfg;
 *     cfg.workers = 2;
 *     cfg.max_batch = 16;
 *     serve::Server server(registry, cfg);
 *
 *     auto pending = server.submit_dense(features);   // nullopt = shed
 *     if (pending) serve::ScoreResult r = pending->get();
 *
 *     registry.publish(new_model, precision);         // atomic hot-swap
 *     serve::ServeMetrics m = server.metrics();       // p50/p99, GNPS, ...
 */
#ifndef BUCKWILD_SERVE_SERVE_H
#define BUCKWILD_SERVE_SERVE_H

#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/precision.h"
#include "serve/request_queue.h"
#include "serve/server.h"

#endif // BUCKWILD_SERVE_SERVE_H
