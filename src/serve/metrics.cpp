#include "serve/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace buckwild::serve {

double
ServeMetrics::latency_percentile(double p) const
{
    return percentile_of(latencies, p);
}

void
ServeMetrics::publish(obs::MetricsRegistry& registry,
                      const std::string& prefix) const
{
    registry.counter(prefix + "requests").add(requests);
    registry.counter(prefix + "rejects").add(rejects);
    registry.counter(prefix + "batches").add(batches);
    registry.gauge(prefix + "numbers").add(numbers);
    registry.gauge(prefix + "busy_seconds").add(busy_seconds);
    registry.gauge(prefix + "gnps").set(gnps());
    registry.gauge(prefix + "mean_batch_size").set(mean_batch_size());
    registry.histogram(prefix + "latency_seconds").record_many(latencies);
    for (std::size_t b = 0; b < batch_size_counts.size(); ++b)
        for (std::uint64_t i = 0; i < batch_size_counts[b]; ++i)
            registry.histogram(prefix + "batch_size").record(static_cast<double>(b));
}

MetricsCollector::MetricsCollector(obs::MetricsRegistry* registry)
    : owned_(registry ? nullptr : std::make_unique<obs::MetricsRegistry>()),
      registry_(registry ? *registry : *owned_),
      requests_(registry_.counter("serve.requests")),
      rejects_(registry_.counter("serve.rejects")),
      batches_(registry_.counter("serve.batches")),
      numbers_(registry_.gauge("serve.numbers")),
      busy_seconds_(registry_.gauge("serve.busy_seconds")),
      latency_seconds_(registry_.histogram("serve.latency_seconds")),
      batch_size_(registry_.histogram("serve.batch_size"))
{
}

void
MetricsCollector::record_batch(const std::vector<double>& request_latencies,
                               double numbers, double busy_seconds)
{
    const std::size_t b = request_latencies.size();
    if (b == 0) return;
    requests_.add(b);
    batches_.add(1);
    numbers_.add(numbers);
    busy_seconds_.add(busy_seconds);
    batch_size_.record(static_cast<double>(b));
    latency_seconds_.record_many(request_latencies);
}

void
MetricsCollector::record_reject()
{
    record_rejects(1);
}

void
MetricsCollector::record_rejects(std::size_t count)
{
    rejects_.add(count);
}

ServeMetrics
MetricsCollector::snapshot() const
{
    ServeMetrics m;
    m.requests = requests_.value();
    m.rejects = rejects_.value();
    m.batches = batches_.value();
    m.numbers = numbers_.value();
    m.busy_seconds = busy_seconds_.value();
    m.latencies = latency_seconds_.samples();
    for (double b : batch_size_.samples()) {
        const auto size = static_cast<std::size_t>(std::lround(b));
        if (m.batch_size_counts.size() <= size)
            m.batch_size_counts.resize(size + 1, 0);
        m.batch_size_counts[size] += 1;
    }
    return m;
}

} // namespace buckwild::serve
