#include "serve/metrics.h"

#include "util/stats.h"

namespace buckwild::serve {

double
ServeMetrics::latency_percentile(double p) const
{
    return percentile_of(latencies, p);
}

void
MetricsCollector::record_batch(const std::vector<double>& request_latencies,
                               double numbers, double busy_seconds)
{
    const std::size_t b = request_latencies.size();
    if (b == 0) return;
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.requests += b;
    metrics_.batches += 1;
    metrics_.numbers += numbers;
    metrics_.busy_seconds += busy_seconds;
    if (metrics_.batch_size_counts.size() <= b)
        metrics_.batch_size_counts.resize(b + 1, 0);
    metrics_.batch_size_counts[b] += 1;
    metrics_.latencies.insert(metrics_.latencies.end(),
                              request_latencies.begin(),
                              request_latencies.end());
}

void
MetricsCollector::record_reject()
{
    record_rejects(1);
}

void
MetricsCollector::record_rejects(std::size_t count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.rejects += count;
}

ServeMetrics
MetricsCollector::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return metrics_;
}

} // namespace buckwild::serve
