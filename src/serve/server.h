/**
 * @file
 * Server — the micro-batched low-precision inference engine.
 *
 * Wiring:
 *
 *     clients ──try_push──▶ RequestQueue ──pop_batch(B)──▶ workers
 *        ▲ (reject when full)                  │  one ModelRegistry
 *        └── std::future<ScoreResult> ◀────────┘  snapshot per batch
 *
 * Each worker loops: take up to `max_batch` requests in one queue
 * critical section, grab ONE model snapshot, score every request in the
 * batch through the InferenceEngine (same kernels, same order as
 * one-at-a-time — batched results are bit-identical to B=1 at the same
 * serving signature), fulfill the futures, and record the batch into the
 * shared MetricsCollector. All per-request fixed costs — queue lock,
 * condvar wakeup, snapshot refcount, metrics lock — are paid once per
 * batch, which is where the §5.4 mini-batching throughput win comes from
 * at serving time.
 *
 * Every request in a batch is scored against the same model version, so
 * hot-swapping models mid-stream never yields a mixed batch.
 */
#ifndef BUCKWILD_SERVE_SERVER_H
#define BUCKWILD_SERVE_SERVER_H

#include <cstddef>
#include <future>
#include <optional>
#include <vector>

#include "serve/engine.h"
#include "serve/metrics.h"
#include "serve/model_registry.h"
#include "serve/request_queue.h"
#include "util/thread_pool.h"

namespace buckwild::serve {

/// Serving knobs.
struct ServerConfig
{
    std::size_t workers = 1;         ///< scoring threads
    std::size_t max_batch = 16;      ///< micro-batch coalescing bound B
    std::size_t queue_capacity = 1024; ///< backpressure admission bound
    /// How long a worker lingers for a batch to fill once at least one
    /// request is pending (0 = take whatever is there). The bounded
    /// latency cost that buys the batching throughput win; ignored when
    /// max_batch == 1.
    std::size_t linger_us = 200;
    simd::Impl impl = simd::best_impl(); ///< kernel implementation
    /// Registry backing this server's MetricsCollector. nullptr (the
    /// default) gives the server a private registry so its counts stay
    /// per-instance; point it at obs::MetricsRegistry::global() (as
    /// tools/buckwild_serve does for --metrics-out) to aggregate.
    obs::MetricsRegistry* metrics_registry = nullptr;
};

/**
 * A borrowed view of one scoring request for the vectored submit path.
 * Dense requests set `dense`; sparse requests set `index` + `value`.
 * The pointed-to storage and the slot stay caller-owned until the slot
 * completes.
 */
struct ViewRequest
{
    const float* dense = nullptr;         ///< dense features
    const std::uint32_t* index = nullptr; ///< sparse coordinates
    const float* value = nullptr;         ///< sparse values
    std::size_t length = 0;               ///< feature count / nnz
    ReplySlot* slot = nullptr;            ///< caller-owned completion slot
};

/**
 * A running inference server over a ModelRegistry.
 *
 * The registry is borrowed and must outlive the server; publishing to it
 * while the server runs performs an atomic hot-swap visible to the next
 * batch.
 */
class Server
{
  public:
    Server(const ModelRegistry& registry, ServerConfig config);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Submits a dense scoring request. Returns the future delivering the
     * result, or std::nullopt when the queue is full (backpressure
     * reject — recorded in the metrics). The future carries an exception
     * if the request is malformed (e.g. dimension mismatch) or the
     * server stops before scoring it.
     */
    std::optional<std::future<ScoreResult>>
    submit_dense(std::vector<float> features);

    /// Sparse counterpart: ascending coordinates + values.
    std::optional<std::future<ScoreResult>>
    submit_sparse(std::vector<std::uint32_t> index,
                  std::vector<float> value);

    /**
     * Zero-copy fast path: submits a *view* of the caller's feature
     * buffer with a caller-owned completion slot (no allocation, no
     * future). Returns false on backpressure reject. The caller must
     * keep `x` and `slot` alive and unmodified until the slot is ready,
     * and must have reset() the slot beforehand.
     */
    bool submit_dense_view(const float* x, std::size_t n, ReplySlot* slot);

    /// Sparse view fast path; index/value have `nnz` entries.
    bool submit_sparse_view(const std::uint32_t* index, const float* value,
                            std::size_t nnz, ReplySlot* slot);

    /**
     * Vectored fast path: submits up to `count` view requests under one
     * queue lock and at most one worker wakeup, so pipelined clients pay
     * the submission synchronization once per burst instead of once per
     * request. Admits a prefix (bounded by queue capacity), records the
     * rest as backpressure rejects, and returns the admitted length; the
     * caller retries or sheds the unadmitted suffix, whose slots remain
     * untouched.
     */
    std::size_t submit_views(const ViewRequest* requests, std::size_t count);

    /**
     * Stops accepting requests, drains what is queued, and joins the
     * workers. Idempotent; also called by the destructor.
     */
    void stop();

    /// A consistent snapshot of the serving counters.
    ServeMetrics metrics() const { return collector_.snapshot(); }

    const ServerConfig& config() const { return config_; }

  private:
    std::optional<std::future<ScoreResult>> submit(Request&& request);
    void worker_loop();

    const ModelRegistry& registry_;
    ServerConfig config_;
    InferenceEngine engine_;
    // The collector precedes the queue so the queue's rejected/depth
    // instruments can land in the same registry as the serving counters.
    MetricsCollector collector_;
    RequestQueue queue_;
    WorkerGroup workers_;
    bool stopped_ = false;
};

} // namespace buckwild::serve

#endif // BUCKWILD_SERVE_SERVER_H
