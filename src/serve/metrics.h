/**
 * @file
 * ServeMetrics — the serving counterpart of core::TrainingMetrics.
 *
 * Tracks the four things a serving operator watches:
 *   - volume: requests served, requests rejected by backpressure;
 *   - batching: a histogram of coalesced batch sizes (is micro-batching
 *     actually engaging under this load?);
 *   - latency: per-request queue+compute latency, summarized as
 *     p50/p95/p99 via util/stats percentile_of;
 *   - throughput: serving GNPS — dataset numbers scored per second of
 *     worker compute time, directly comparable to TrainingMetrics::gnps()
 *     since inference is the dot half of the training step.
 *
 * ServeMetrics itself is a plain value (snapshot / single-thread view);
 * MetricsCollector is the mutex-guarded accumulator the server threads
 * write through. Workers record one batch per lock acquisition, so the
 * metrics cost is itself amortized by micro-batching.
 */
#ifndef BUCKWILD_SERVE_METRICS_H
#define BUCKWILD_SERVE_METRICS_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace buckwild::serve {

/// A consistent snapshot of serving counters.
struct ServeMetrics
{
    std::uint64_t requests = 0; ///< completed (scored) requests
    std::uint64_t rejects = 0;  ///< requests shed by backpressure
    std::uint64_t batches = 0;  ///< kernel sweeps executed
    double numbers = 0.0;       ///< dataset numbers scored
    double busy_seconds = 0.0;  ///< summed worker compute time
    /// batch_size_counts[b] = batches that coalesced exactly b requests
    /// (index 0 unused).
    std::vector<std::uint64_t> batch_size_counts;
    /// One entry per completed request: queue wait + compute, in seconds.
    std::vector<double> latencies;

    double mean_batch_size() const
    {
        return batches > 0
            ? static_cast<double>(requests) / static_cast<double>(batches)
            : 0.0;
    }

    /// Serving throughput in giga-numbers-per-second of worker time.
    double gnps() const
    {
        return busy_seconds > 0.0 ? numbers / busy_seconds / 1e9 : 0.0;
    }

    /// Latency percentile in seconds (p in [0, 100]).
    double latency_percentile(double p) const;
};

/// Thread-safe accumulator shared by the server's workers and producers.
class MetricsCollector
{
  public:
    /// Records one completed batch: per-request latencies (seconds), the
    /// dataset numbers scored, and the worker compute time consumed.
    void record_batch(const std::vector<double>& request_latencies,
                      double numbers, double busy_seconds);

    /// Records one backpressure rejection.
    void record_reject();

    /// Records `count` backpressure rejections under one lock (vectored
    /// submit path).
    void record_rejects(std::size_t count);

    ServeMetrics snapshot() const;

  private:
    mutable std::mutex mutex_;
    ServeMetrics metrics_;
};

} // namespace buckwild::serve

#endif // BUCKWILD_SERVE_METRICS_H
