/**
 * @file
 * ServeMetrics — the serving counterpart of core::TrainingMetrics.
 *
 * Tracks the four things a serving operator watches:
 *   - volume: requests served, requests rejected by backpressure;
 *   - batching: a histogram of coalesced batch sizes (is micro-batching
 *     actually engaging under this load?);
 *   - latency: per-request queue+compute latency, summarized as
 *     p50/p95/p99 via util/stats percentile_of;
 *   - throughput: serving GNPS — dataset numbers scored per second of
 *     worker compute time, directly comparable to TrainingMetrics::gnps()
 *     since inference is the dot half of the training step.
 *
 * ServeMetrics itself is a plain value (snapshot / single-thread view);
 * MetricsCollector is the accumulator the server threads write through.
 * Since the observability layer landed, the collector's store of record
 * is an obs::MetricsRegistry — by default a private one, so each Server
 * keeps per-instance counts exactly as before — and ServeMetrics is a
 * thin view assembled from the registry's instruments. Workers record
 * one batch per histogram lock acquisition, so the metrics cost is
 * still amortized by micro-batching.
 */
#ifndef BUCKWILD_SERVE_METRICS_H
#define BUCKWILD_SERVE_METRICS_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace buckwild::serve {

/// A consistent snapshot of serving counters.
struct ServeMetrics
{
    std::uint64_t requests = 0; ///< completed (scored) requests
    std::uint64_t rejects = 0;  ///< requests shed by backpressure
    std::uint64_t batches = 0;  ///< kernel sweeps executed
    double numbers = 0.0;       ///< dataset numbers scored
    double busy_seconds = 0.0;  ///< summed worker compute time
    /// batch_size_counts[b] = batches that coalesced exactly b requests
    /// (index 0 unused).
    std::vector<std::uint64_t> batch_size_counts;
    /// One entry per completed request: queue wait + compute, in seconds.
    std::vector<double> latencies;

    double mean_batch_size() const
    {
        return batches > 0
            ? static_cast<double>(requests) / static_cast<double>(batches)
            : 0.0;
    }

    /// Serving throughput in giga-numbers-per-second of worker time.
    double gnps() const
    {
        return busy_seconds > 0.0 ? numbers / busy_seconds / 1e9 : 0.0;
    }

    /// Latency percentile in seconds (p in [0, 100]).
    double latency_percentile(double p) const;

    /// Copies the snapshot into `registry` under `prefix` (e.g.
    /// "serve.") so CLI runs can export it as flat metrics JSON next to
    /// the hot-path instrumentation counters.
    void publish(obs::MetricsRegistry& registry, const std::string& prefix) const;
};

/// Thread-safe accumulator shared by the server's workers and producers.
/// Writes land in an obs::MetricsRegistry; snapshot() reads them back
/// into the ServeMetrics value the rest of the system consumes.
class MetricsCollector
{
  public:
    /// By default each collector owns a private registry, preserving
    /// per-Server counts; pass &obs::MetricsRegistry::global() (or any
    /// shared registry) to aggregate across servers instead.
    explicit MetricsCollector(obs::MetricsRegistry* registry = nullptr);

    /// Records one completed batch: per-request latencies (seconds), the
    /// dataset numbers scored, and the worker compute time consumed.
    void record_batch(const std::vector<double>& request_latencies,
                      double numbers, double busy_seconds);

    /// Records one backpressure rejection.
    void record_reject();

    /// Records `count` backpressure rejections in one counter add
    /// (vectored submit path).
    void record_rejects(std::size_t count);

    ServeMetrics snapshot() const;

    obs::MetricsRegistry& registry() { return registry_; }

  private:
    std::unique_ptr<obs::MetricsRegistry> owned_;
    obs::MetricsRegistry& registry_;
    obs::Counter& requests_;
    obs::Counter& rejects_;
    obs::Counter& batches_;
    obs::Gauge& numbers_;
    obs::Gauge& busy_seconds_;
    obs::Histo& latency_seconds_;
    obs::Histo& batch_size_;
};

} // namespace buckwild::serve

#endif // BUCKWILD_SERVE_METRICS_H
