#include "serve/engine.h"

#include <cmath>

#include "simd/sparse_kernels.h"
#include "util/logging.h"

namespace buckwild::serve {

namespace {

ScoreResult
finish(const ServingModel& model, float z)
{
    ScoreResult r;
    r.margin = z;
    r.score = InferenceEngine::link(model.loss(), z);
    r.label = z >= 0.0f ? 1.0f : -1.0f;
    r.model_version = model.version();
    return r;
}

} // namespace

float
InferenceEngine::link(core::Loss loss, float z)
{
    switch (loss) {
      case core::Loss::kLogistic:
        return 1.0f / (1.0f + std::exp(-z));
      case core::Loss::kSquared:
      case core::Loss::kHinge:
        return z;
    }
    panic("unreachable Loss");
}

ScoreResult
InferenceEngine::score_dense(const ServingModel& model, const float* x,
                             std::size_t n) const
{
    if (n != model.dim())
        fatal("request dimension " + std::to_string(n) +
              " does not match model dimension " +
              std::to_string(model.dim()));
    float z = 0.0f;
    switch (model.precision()) {
      case Precision::kInt8:
        z = simd::DenseOps<float, std::int8_t>::dot(
            impl_, x, model.weights_i8(), n, 1.0f, model.quantum());
        break;
      case Precision::kInt16:
        z = simd::DenseOps<float, std::int16_t>::dot(
            impl_, x, model.weights_i16(), n, 1.0f, model.quantum());
        break;
      case Precision::kFloat32:
        z = simd::DenseOps<float, float>::dot(impl_, x, model.weights_f32(),
                                              n, 1.0f, 1.0f);
        break;
    }
    return finish(model, z);
}

ScoreResult
InferenceEngine::score_sparse(const ServingModel& model,
                              const std::uint32_t* index, const float* value,
                              std::size_t nnz) const
{
    for (std::size_t j = 0; j < nnz; ++j)
        if (index[j] >= model.dim())
            fatal("sparse request coordinate " + std::to_string(index[j]) +
                  " out of range for model dimension " +
                  std::to_string(model.dim()));
    float z = 0.0f;
    switch (model.precision()) {
      case Precision::kInt8:
        z = simd::sparse::dot(value, index, nnz, model.weights_i8(),
                              model.quantum(),
                              simd::sparse::IndexMode::kAbsolute);
        break;
      case Precision::kInt16:
        z = simd::sparse::dot(value, index, nnz, model.weights_i16(),
                              model.quantum(),
                              simd::sparse::IndexMode::kAbsolute);
        break;
      case Precision::kFloat32:
        z = simd::sparse::dot(value, index, nnz, model.weights_f32(), 1.0f,
                              simd::sparse::IndexMode::kAbsolute);
        break;
    }
    return finish(model, z);
}

} // namespace buckwild::serve
