#include "serve/precision.h"

#include "util/logging.h"

namespace buckwild::serve {

std::string
to_string(Precision p)
{
    switch (p) {
      case Precision::kInt8: return "Ms8";
      case Precision::kInt16: return "Ms16";
      case Precision::kFloat32: return "Ms32f";
    }
    panic("unreachable serve::Precision");
}

std::size_t
bytes_per_weight(Precision p)
{
    switch (p) {
      case Precision::kInt8: return 1;
      case Precision::kInt16: return 2;
      case Precision::kFloat32: return 4;
    }
    panic("unreachable serve::Precision");
}

Precision
parse_precision(const std::string& text)
{
    std::string body = text;
    if (body.rfind("Ms", 0) == 0) body = body.substr(2);
    if (body == "8") return Precision::kInt8;
    if (body == "16") return Precision::kInt16;
    if (body == "32f" || body == "32") return Precision::kFloat32;
    fatal("unknown serving precision: \"" + text +
          "\" (expected Ms8, Ms16, or Ms32f)");
}

Precision
precision_from_signature(const dmgc::Signature& sig)
{
    if (sig.model.is_float) return Precision::kFloat32;
    if (sig.model.bits <= 8) return Precision::kInt8;
    return Precision::kInt16;
}

} // namespace buckwild::serve
