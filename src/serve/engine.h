/**
 * @file
 * InferenceEngine — scores feature vectors against a ServingModel.
 *
 * Inference is the read half of the paper's dot-and-AXPY SGD step: just
 * the dot. The engine routes it through the same simd::DenseOps dispatch
 * the trainer uses (reference / naive / AVX2 / AVX-512), instantiated at
 * the (float data, Ms-rep model) pairs — a request's features stay float,
 * the model side is whatever the serving precision chose, so Ms8 scoring
 * runs the D-float/M-int8 kernels and is memory-bandwidth-bound on the
 * model stream exactly as §3 predicts. Sparse requests go through the
 * sparse dot kernels with absolute 32-bit indices.
 *
 * The margin z = w.x is then pushed through the loss's link function:
 * logistic → sigmoid(z) (probability of the +1 class), squared → z (the
 * regression output), hinge → z (the SVM margin). The predicted ±1 label
 * is the sign of the margin.
 */
#ifndef BUCKWILD_SERVE_ENGINE_H
#define BUCKWILD_SERVE_ENGINE_H

#include <cstddef>
#include <cstdint>

#include "serve/model_registry.h"
#include "simd/ops.h"

namespace buckwild::serve {

/// The answer to one scoring request.
struct ScoreResult
{
    float margin = 0.0f;        ///< z = w.x
    float score = 0.0f;         ///< link(z): probability / regression value
    float label = 0.0f;         ///< predicted class in {-1, +1}
    std::uint64_t model_version = 0;
};

/// Stateless scorer; all model state lives in the snapshot passed in, so
/// one engine is safely shared by every worker thread.
class InferenceEngine
{
  public:
    explicit InferenceEngine(simd::Impl impl = simd::best_impl())
        : impl_(impl)
    {
        // Requests are scored under SLO deadlines; pay the one-time
        // kernel-registry resolution at construction instead.
        simd::warm_dense_kernels();
    }

    simd::Impl impl() const { return impl_; }

    /**
     * Scores a dense feature vector of length n against `model`.
     * @throws std::runtime_error when n != model.dim().
     */
    ScoreResult score_dense(const ServingModel& model, const float* x,
                            std::size_t n) const;

    /**
     * Scores a sparse request given as (coordinate, value) streams of
     * length nnz, coordinates strictly ascending.
     * @throws std::runtime_error on an out-of-range coordinate.
     */
    ScoreResult score_sparse(const ServingModel& model,
                             const std::uint32_t* index, const float* value,
                             std::size_t nnz) const;

    /// The link function applied to a margin under `loss`.
    static float link(core::Loss loss, float z);

  private:
    simd::Impl impl_;
};

} // namespace buckwild::serve

#endif // BUCKWILD_SERVE_ENGINE_H
