/**
 * @file
 * ModelRegistry — versioned, hot-swappable serving models.
 *
 * A ServingModel is an immutable snapshot: a SavedModel's float weights
 * re-quantized once, at publish time, to the chosen serving precision
 * (Ms8 / Ms16 / Ms32f). This is the serve-side instance of the paper's §3
 * observation about dataset numbers — values that are written once and
 * then only read should be quantized once, up front, not per use. The
 * fixed-point format is fitted to the published weights (fraction bits
 * chosen so the largest |w| is representable) rather than hard-coding the
 * training default, since trained models routinely escape [-1, 1].
 *
 * The registry hands out std::shared_ptr<const ServingModel> snapshots.
 * publish() swaps the current pointer atomically (under a mutex — swaps
 * are rare, snapshots cheap), so a scorer mid-batch keeps the version it
 * started with while new batches pick up the new one; the old model is
 * freed when its last in-flight reader drops it.
 */
#ifndef BUCKWILD_SERVE_MODEL_REGISTRY_H
#define BUCKWILD_SERVE_MODEL_REGISTRY_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/model_io.h"
#include "fixed/fixed_point.h"
#include "serve/precision.h"
#include "util/aligned_buffer.h"

namespace buckwild::serve {

/// An immutable, quantized, scoring-ready model snapshot.
class ServingModel
{
  public:
    /// Quantizes `source.weights` to `precision` (biased rounding — there
    /// is no accumulation at inference, so stochastic rounding buys
    /// nothing and would make scores non-deterministic).
    ServingModel(const core::SavedModel& source, Precision precision,
                 std::uint64_t version);

    std::uint64_t version() const { return version_; }
    Precision precision() const { return precision_; }
    core::Loss loss() const { return loss_; }
    std::size_t dim() const { return dim_; }
    /// The signature the model was *trained* at (provenance).
    const dmgc::Signature& trained_signature() const { return trained_sig_; }
    /// The fitted fixed-point format (meaningful for Ms8/Ms16).
    const fixed::FixedFormat& format() const { return format_; }
    /// Real value of one raw model unit (1.0 for Ms32f).
    float quantum() const { return quantum_; }
    /// Model bytes read per scored dense request.
    std::size_t bytes() const { return dim_ * bytes_per_weight(precision_); }

    // Raw weight arrays; exactly one is non-empty, per precision().
    const std::int8_t* weights_i8() const { return w8_.data(); }
    const std::int16_t* weights_i16() const { return w16_.data(); }
    const float* weights_f32() const { return wf_.data(); }

  private:
    std::uint64_t version_;
    Precision precision_;
    core::Loss loss_;
    dmgc::Signature trained_sig_;
    std::size_t dim_;
    fixed::FixedFormat format_;
    float quantum_;
    AlignedBuffer<std::int8_t> w8_;
    AlignedBuffer<std::int16_t> w16_;
    AlignedBuffer<float> wf_;
};

/// Thread-safe holder of the current serving model, with atomic hot-swap.
class ModelRegistry
{
  public:
    /// Publishes a new model version; returns its version id (monotonic,
    /// starting at 1). Readers holding older snapshots are unaffected.
    std::uint64_t publish(const core::SavedModel& model,
                          Precision precision);

    /// Loads a BUCKWILD-MODEL file and publishes it.
    /// @throws std::runtime_error on I/O or parse failure.
    std::uint64_t load_file(const std::string& path, Precision precision);

    /// The current model snapshot; null until the first publish().
    std::shared_ptr<const ServingModel> current() const;

    /// Version of the current model; 0 when none is published.
    std::uint64_t current_version() const;

  private:
    mutable std::mutex mutex_;
    std::shared_ptr<const ServingModel> current_;
    std::uint64_t next_version_ = 1;
};

} // namespace buckwild::serve

#endif // BUCKWILD_SERVE_MODEL_REGISTRY_H
