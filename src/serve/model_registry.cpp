#include "serve/model_registry.h"

#include <algorithm>
#include <cmath>

#include "lowp/grid.h"
#include "lowp/round.h"
#include "util/logging.h"

namespace buckwild::serve {

namespace {

/// Fits a fixed-point format to the published weights: start from the
/// library default for the width and move the binary point down until the
/// largest magnitude is representable (trained weights are not confined
/// to the [-1, 1] training-data range).
fixed::FixedFormat
fit_format(int bits, const std::vector<float>& weights)
{
    fixed::FixedFormat fmt = fixed::default_format(bits);
    const float max_abs = lowp::max_abs(weights.data(), weights.size());
    while (fmt.frac_bits > 0 && max_abs > fmt.max_value())
        --fmt.frac_bits;
    return fmt;
}

/// Publish-time Ms quantization: one vectorized biased pass over the
/// trained weights through the substrate.
template <typename Rep, typename Buffer>
void
quantize_weights(const std::vector<float>& weights,
                 const fixed::FixedFormat& fmt, Buffer& out)
{
    out.reset(weights.size());
    lowp::quantize_biased(weights.data(), out.data(), weights.size(),
                          lowp::GridSpec::from_fixed(fmt));
}

} // namespace

ServingModel::ServingModel(const core::SavedModel& source,
                           Precision precision, std::uint64_t version)
    : version_(version), precision_(precision), loss_(source.loss),
      trained_sig_(source.signature), dim_(source.weights.size()),
      format_{32, 0}, quantum_(1.0f)
{
    switch (precision_) {
      case Precision::kInt8:
        format_ = fit_format(8, source.weights);
        quantum_ = static_cast<float>(format_.quantum());
        quantize_weights<std::int8_t>(source.weights, format_, w8_);
        break;
      case Precision::kInt16:
        format_ = fit_format(16, source.weights);
        quantum_ = static_cast<float>(format_.quantum());
        quantize_weights<std::int16_t>(source.weights, format_, w16_);
        break;
      case Precision::kFloat32:
        wf_.reset(dim_);
        std::copy(source.weights.begin(), source.weights.end(),
                  wf_.begin());
        break;
    }
}

std::uint64_t
ModelRegistry::publish(const core::SavedModel& model, Precision precision)
{
    // Quantize outside the lock; only the pointer swap is serialized.
    std::uint64_t version;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        version = next_version_++;
    }
    auto snapshot =
        std::make_shared<const ServingModel>(model, precision, version);
    std::lock_guard<std::mutex> lock(mutex_);
    // Concurrent publishers may finish quantizing out of order; never let
    // an older version overwrite a newer one.
    if (!current_ || current_->version() < version)
        current_ = std::move(snapshot);
    return version;
}

std::uint64_t
ModelRegistry::load_file(const std::string& path, Precision precision)
{
    return publish(core::load_model_file(path), precision);
}

std::shared_ptr<const ServingModel>
ModelRegistry::current() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_;
}

std::uint64_t
ModelRegistry::current_version() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return current_ ? current_->version() : 0;
}

} // namespace buckwild::serve
