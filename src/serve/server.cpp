#include "serve/server.h"

#include <stdexcept>

#include "obs/obs.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace buckwild::serve {

Server::Server(const ModelRegistry& registry, ServerConfig config)
    : registry_(registry), config_(config), engine_(config.impl),
      collector_(config.metrics_registry),
      queue_(config.queue_capacity, config.max_batch,
             &collector_.registry())
{
    if (config_.workers == 0) fatal("Server requires workers >= 1");
    if (config_.max_batch == 0) fatal("Server requires max_batch >= 1");
    workers_.start(config_.workers, [this](std::size_t) { worker_loop(); });
}

Server::~Server()
{
    stop();
}

std::optional<std::future<ScoreResult>>
Server::submit(Request&& request)
{
    request.enqueued = std::chrono::steady_clock::now();
    request.reply.emplace();
    auto future = request.reply->get_future();
    if (!queue_.try_push(std::move(request))) {
        collector_.record_reject();
        return std::nullopt;
    }
    return future;
}

bool
Server::submit_dense_view(const float* x, std::size_t n, ReplySlot* slot)
{
    Request request;
    request.dense_view = x;
    request.view_length = n;
    request.slot = slot;
    request.enqueued = std::chrono::steady_clock::now();
    if (!queue_.try_push(std::move(request))) {
        collector_.record_reject();
        return false;
    }
    return true;
}

bool
Server::submit_sparse_view(const std::uint32_t* index, const float* value,
                           std::size_t nnz, ReplySlot* slot)
{
    Request request;
    request.index_view = index;
    request.value_view = value;
    request.view_length = nnz;
    request.slot = slot;
    request.enqueued = std::chrono::steady_clock::now();
    if (!queue_.try_push(std::move(request))) {
        collector_.record_reject();
        return false;
    }
    return true;
}

std::size_t
Server::submit_views(const ViewRequest* requests, std::size_t count)
{
    if (count == 0) return 0;
    const auto now = std::chrono::steady_clock::now();
    std::vector<Request> staged;
    staged.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const ViewRequest& view = requests[i];
        Request request;
        request.dense_view = view.dense;
        request.index_view = view.index;
        request.value_view = view.value;
        request.view_length = view.length;
        request.slot = view.slot;
        request.enqueued = now;
        staged.push_back(std::move(request));
    }
    const std::size_t admitted =
        queue_.try_push_many(staged.data(), staged.size());
    if (admitted < count) collector_.record_rejects(count - admitted);
    return admitted;
}

std::optional<std::future<ScoreResult>>
Server::submit_dense(std::vector<float> features)
{
    Request request;
    request.dense = std::move(features);
    return submit(std::move(request));
}

std::optional<std::future<ScoreResult>>
Server::submit_sparse(std::vector<std::uint32_t> index,
                      std::vector<float> value)
{
    if (index.size() != value.size())
        fatal("sparse request index/value length mismatch");
    Request request;
    request.index = std::move(index);
    request.value = std::move(value);
    return submit(std::move(request));
}

void
Server::stop()
{
    if (stopped_) return;
    stopped_ = true;
    queue_.close();
    workers_.join();
}

void
Server::worker_loop()
{
    std::vector<Request> batch;
    std::vector<double> latencies;
    const std::chrono::microseconds linger{
        config_.max_batch > 1 ? config_.linger_us : 0};
    while (true) {
        std::size_t got;
        {
            // "Assembly" time includes blocking for the first request
            // and the linger window, so idle workers show up as long
            // assemble spans in the trace.
            BUCKWILD_OBS_SPAN("serve", "batch.assemble");
            got = queue_.pop_batch(batch, config_.max_batch, linger);
        }
        if (got == 0) break;
        const auto model = registry_.current();
        BUCKWILD_OBS_COUNT("serve.batches_assembled", 1);
        BUCKWILD_OBS_TRACE_COUNTER("serve", "batch_size", batch.size());
        BUCKWILD_OBS_SPAN("serve", "batch.score");
        Stopwatch compute;
        double numbers = 0.0;
        latencies.clear();
        for (Request& request : batch) {
            // Context survives the batching: a traced request gets its
            // own engine span inside the shared batch.score span.
            obs::TracedSpan request_span("serve", "engine.score",
                                         request.ctx);
            try {
                if (!model)
                    throw std::runtime_error(
                        "no model published in the registry");
                ScoreResult result;
                if (request.slot != nullptr) {
                    result = request.is_sparse()
                        ? engine_.score_sparse(*model, request.index_view,
                                               request.value_view,
                                               request.view_length)
                        : engine_.score_dense(*model, request.dense_view,
                                              request.view_length);
                } else {
                    result = request.is_sparse()
                        ? engine_.score_sparse(*model, request.index.data(),
                                               request.value.data(),
                                               request.value.size())
                        : engine_.score_dense(*model, request.dense.data(),
                                              request.dense.size());
                }
                numbers += static_cast<double>(request.numbers());
                if (request.slot != nullptr) {
                    request.slot->result = result;
                    request.slot->state.store(ReplySlot::kOk,
                                              std::memory_order_release);
                } else {
                    request.reply->set_value(result);
                }
            } catch (const std::exception& e) {
                if (request.slot != nullptr) {
                    request.slot->error = e.what();
                    request.slot->state.store(ReplySlot::kError,
                                              std::memory_order_release);
                } else {
                    request.reply->set_exception(std::current_exception());
                }
            }
        }
        const double busy = compute.seconds();
        const auto now = std::chrono::steady_clock::now();
        for (const Request& request : batch)
            latencies.push_back(
                std::chrono::duration<double>(now - request.enqueued)
                    .count());
        collector_.record_batch(latencies, numbers, busy);
#if BUCKWILD_OBS_ENABLED
        // Batch-mean queue wait, derived from numbers already in hand
        // (latency = wait + compute for every request in the batch) —
        // no extra clock reads or pre-scoring work. Sampled 1-in-16
        // batches: the wait distribution needs far fewer samples than
        // the batch rate, and this keeps the histogram mutex almost
        // entirely off the batch path.
        if (thread_local std::uint32_t obs_decimate = 0;
            (obs_decimate++ & 15u) == 0) {
            double latency_sum = 0.0;
            for (const double l : latencies) latency_sum += l;
            const double wait =
                latency_sum / static_cast<double>(latencies.size()) - busy;
            BUCKWILD_OBS_HISTO("serve.queue_wait_seconds",
                               wait > 0.0 ? wait : 0.0);
        }
#endif
    }
}

} // namespace buckwild::serve
