#include "serve/request_queue.h"

#include <algorithm>

#include "util/logging.h"

namespace buckwild::serve {

RequestQueue::RequestQueue(std::size_t capacity, std::size_t batch_hint,
                           obs::MetricsRegistry* registry)
    : capacity_(capacity), batch_hint_(batch_hint == 0 ? 1 : batch_hint),
      rejected_((registry != nullptr ? *registry
                                     : obs::MetricsRegistry::global())
                    .counter("serve.queue_rejected")),
      depth_((registry != nullptr ? *registry
                                  : obs::MetricsRegistry::global())
                 .gauge("serve.queue_depth"))
{
    if (capacity == 0) fatal("RequestQueue requires capacity >= 1");
}

bool
RequestQueue::try_push(Request&& request)
{
    return try_push_many(&request, 1) == 1;
}

std::size_t
RequestQueue::try_push_many(Request* requests, std::size_t count)
{
    if (count == 0) return 0;
    std::size_t admitted, depth;
    bool was_empty;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) {
            rejected_.add(count);
            return 0;
        }
        was_empty = items_.empty();
        admitted = std::min(count, capacity_ - items_.size());
        for (std::size_t i = 0; i < admitted; ++i)
            items_.push_back(std::move(requests[i]));
        depth = items_.size();
    }
    // Telemetry outside the lock: rejections were invisible to operators
    // before this counter, and the depth gauge is what the overload
    // dashboards watch for queue growth.
    if (admitted < count) rejected_.add(count - admitted);
    depth_.set(static_cast<double>(depth));
    // Wake a consumer on the empty -> non-empty edge (someone may be
    // waiting for the first request) and once the batch target is met (a
    // lingering consumer can stop early). Pushes in between stay silent:
    // the consumer either has work or is lingering on a deadline.
    if (admitted > 0 && (was_empty || depth >= batch_hint_))
        not_empty_.notify_one();
    return admitted;
}

std::size_t
RequestQueue::pop_batch(std::vector<Request>& out, std::size_t max_batch,
                        std::chrono::microseconds linger)
{
    out.clear();
    if (max_batch == 0) fatal("pop_batch requires max_batch >= 1");
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (linger.count() > 0 && !closed_ && items_.size() < max_batch) {
        const auto deadline = std::chrono::steady_clock::now() + linger;
        not_empty_.wait_until(lock, deadline, [this, max_batch] {
            return closed_ || items_.size() >= max_batch;
        });
    }
    const std::size_t take = std::min(max_batch, items_.size());
    for (std::size_t i = 0; i < take; ++i) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
    }
    depth_.set(static_cast<double>(items_.size()));
    return take;
}

void
RequestQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

std::size_t
RequestQueue::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

bool
RequestQueue::closed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
}

} // namespace buckwild::serve
