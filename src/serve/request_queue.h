/**
 * @file
 * Bounded request queue with backpressure — the admission control of the
 * serving subsystem.
 *
 * Producers (frontend/client threads) try_push() scoring requests; the
 * call NEVER blocks — when the queue is at capacity it returns false and
 * the caller must shed or retry (reject-with-error beats unbounded
 * buffering under overload: latency stays bounded and the failure is
 * explicit). Consumers (scoring workers) pop_batch(): block until at
 * least one request is pending, then take up to `max_batch` of them in
 * one critical section. That coalescing is the serving analog of §5.4
 * mini-batching — it amortizes the per-request synchronization (lock,
 * wakeup, model-snapshot acquisition) over B requests the same way
 * training mini-batches amortize the model update over B gradients.
 */
#ifndef BUCKWILD_SERVE_REQUEST_QUEUE_H
#define BUCKWILD_SERVE_REQUEST_QUEUE_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"
#include "obs/tracectx.h"
#include "serve/engine.h"

namespace buckwild::serve {

/**
 * A client-owned completion slot — the zero-allocation alternative to a
 * std::future for high-throughput callers.
 *
 * The submitter keeps the slot (and the feature storage it submitted a
 * view of) alive until the slot completes; the worker publishes the
 * result with a release store, the client observes it with an acquire
 * load. wait() yields rather than parking on a futex, so completing a
 * request costs the worker one atomic store — per-request wakeup
 * syscalls would otherwise dominate the serving overhead that
 * micro-batching exists to amortize.
 */
struct ReplySlot
{
    enum : int { kPending = 0, kOk = 1, kError = 2 };

    std::atomic<int> state{kPending};
    ScoreResult result;
    std::string error; ///< set before the kError release store

    /// Re-arms the slot for reuse. Only call when no request references it.
    void reset()
    {
        error.clear();
        state.store(kPending, std::memory_order_relaxed);
    }

    /// True once a result (or error) is visible.
    bool ready() const
    {
        return state.load(std::memory_order_acquire) != kPending;
    }

    /// Spin-yields until ready; returns true on success, false on error.
    bool wait() const
    {
        int s;
        while ((s = state.load(std::memory_order_acquire)) == kPending)
            std::this_thread::yield();
        return s == kOk;
    }
};

/**
 * One pending scoring request. Two completion styles:
 *   - future path: `reply` is engaged and delivers the result or an
 *     exception (convenient; one shared-state allocation per request);
 *   - slot path: `slot` points at a client-owned ReplySlot and the
 *     feature fields are non-owning views (zero allocation, zero copy —
 *     the fast path the load generators use).
 * Dense requests fill dense/dense_view; sparse requests the
 * (index, value) pair.
 */
struct Request
{
    // Owned storage (future path).
    std::vector<float> dense;
    std::vector<std::uint32_t> index;
    std::vector<float> value;
    // Non-owning views (slot path); valid when slot != nullptr.
    const float* dense_view = nullptr;
    const std::uint32_t* index_view = nullptr;
    const float* value_view = nullptr;
    std::size_t view_length = 0;

    std::chrono::steady_clock::time_point enqueued;
    std::optional<std::promise<ScoreResult>> reply;
    ReplySlot* slot = nullptr;
    /// Distributed-tracing identity; when valid (a traced front door
    /// submitted this request), the scoring worker records a per-request
    /// engine span under it even though requests travel in batches.
    obs::TraceContext ctx;

    bool is_sparse() const
    {
        return slot != nullptr ? value_view != nullptr : dense.empty();
    }
    /// Dataset numbers this request moves (the GNPS numerator).
    std::size_t numbers() const
    {
        if (slot != nullptr) return view_length;
        return is_sparse() ? value.size() : dense.size();
    }
};

/// Bounded MPSC/MPMC queue: non-blocking producers, batching consumers.
class RequestQueue
{
  public:
    /**
     * @param capacity    admission bound (try_push rejects beyond it).
     * @param batch_hint  the consumers' target batch size. Producers only
     *                    wake a consumer when the queue becomes non-empty
     *                    or reaches this depth; intermediate pushes are
     *                    silent so a lingering consumer is not thrashed
     *                    awake once per request (which would defeat the
     *                    batching on a loaded machine).
     * @param registry    where the queue's telemetry lands: every
     *                    try_push failure increments the
     *                    `serve.queue_rejected` counter (shed work must
     *                    never be silent to an operator) and the current
     *                    depth is exported as the `serve.queue_depth`
     *                    gauge. nullptr = the process-global registry.
     */
    explicit RequestQueue(std::size_t capacity, std::size_t batch_hint = 1,
                          obs::MetricsRegistry* registry = nullptr);

    /// Enqueues without blocking; false when full or closed (the request
    /// is untouched and still owned by the caller, who should fail it).
    bool try_push(Request&& request);

    /**
     * Enqueues up to `count` requests under ONE lock acquisition and at
     * most one consumer wakeup — the producer-side analog of pop_batch.
     * Admits a prefix bounded by the remaining capacity and returns its
     * length (0 when full or closed); admitted requests are moved from,
     * the rest stay owned by the caller for retry or shedding.
     */
    std::size_t try_push_many(Request* requests, std::size_t count);

    /**
     * Pops up to `max_batch` requests into `out` (cleared first).
     * Blocks while the queue is empty and open. Once at least one
     * request is pending, waits up to `linger` longer for the batch to
     * fill before taking what is there — the §5.4 throughput-for-latency
     * trade made explicit and bounded. Returns the number taken; 0 means
     * closed-and-drained — the consumer should exit.
     */
    std::size_t pop_batch(std::vector<Request>& out, std::size_t max_batch,
                          std::chrono::microseconds linger =
                              std::chrono::microseconds{0});

    /// Closes the queue: producers are rejected, consumers drain what is
    /// left and then get 0 from pop_batch.
    void close();

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const;
    bool closed() const;

  private:
    const std::size_t capacity_;
    const std::size_t batch_hint_;
    obs::Counter& rejected_; ///< serve.queue_rejected
    obs::Gauge& depth_;      ///< serve.queue_depth
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::deque<Request> items_;
    bool closed_ = false;
};

} // namespace buckwild::serve

#endif // BUCKWILD_SERVE_REQUEST_QUEUE_H
