/**
 * @file
 * Length-prefixed message framing over a byte stream.
 *
 * TCP delivers a byte stream; the cluster exchanges discrete messages.
 * Every frame is an 8-byte header — a magic word (cheap protection
 * against a stray HTTP client or a desynchronized peer) plus the
 * payload length — followed by the payload:
 *
 *     offset  size  field
 *     0       4     magic 0x42574650 ("BWFP"), little-endian
 *     4       4     payload length in bytes, little-endian
 *     8       len   payload
 *
 * read_frame() enforces a maximum payload size *before* allocating, so
 * a corrupt or hostile length prefix cannot balloon memory; a bad magic
 * or oversized length poisons the connection (the caller must drop it —
 * after a desync there is no way to find the next frame boundary).
 * Partial reads and short writes are absorbed by the socket.h I/O
 * loops underneath.
 */
#ifndef BUCKWILD_NET_FRAME_H
#define BUCKWILD_NET_FRAME_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace buckwild::net {

/// First word of every frame ("BWFP" little-endian).
inline constexpr std::uint32_t kFrameMagic = 0x42574650u;

/// Bytes on the wire before the payload.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Default cap on one frame's payload. Generous for gradient slices
/// (a dim-1M float slice is 4MB) while bounding a corrupt length.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Outcome of read_frame().
enum class FrameResult {
    kOk,       ///< a whole frame was read into `payload`
    kClosed,   ///< clean EOF before any header byte
    kTooLarge, ///< length prefix exceeds the cap — drop the connection
    kBadMagic, ///< stream desync or foreign client — drop the connection
    kError,    ///< read error / EOF mid-frame
};

/// Writes one frame (header + payload). False on error or peer close.
bool write_frame(int fd, const std::uint8_t* payload, std::size_t n);

/**
 * Reads one frame into `payload` (resized to the exact length).
 * Validates the magic and the length cap before allocating.
 */
FrameResult read_frame(int fd, std::vector<std::uint8_t>& payload,
                       std::size_t max_payload_bytes);

/// Outcome of one FrameSplitter::next() extraction attempt.
enum class SplitResult {
    kFrame,    ///< a whole frame was extracted into `payload`
    kNeedMore, ///< the buffered bytes end mid-frame — feed more
    kBadMagic, ///< stream desync — the connection is poisoned, drop it
    kTooLarge, ///< hostile/corrupt length prefix — drop the connection
};

/**
 * Incremental frame extraction over a non-blocking stream.
 *
 * read_frame() blocks until a whole frame arrives, which is right for
 * the one-connection-per-thread transports but wrong for an event loop
 * multiplexing many connections on one thread (the gate ingress). A
 * FrameSplitter is the buffered alternative: push() whatever bytes
 * recv() returned, then drain complete frames with next(). Validation
 * matches read_frame exactly — bad magic or an oversized length poisons
 * the splitter (after a desync there is no next frame boundary), and
 * the caller must drop the connection.
 */
class FrameSplitter
{
  public:
    explicit FrameSplitter(std::size_t max_payload_bytes)
        : max_payload_bytes_(max_payload_bytes)
    {}

    /// Appends received bytes. Returns kBadMagic if already poisoned,
    /// else kNeedMore (call next() to drain).
    SplitResult push(const std::uint8_t* data, std::size_t n);

    /// Extracts the next complete frame into `payload`, if buffered.
    SplitResult next(std::vector<std::uint8_t>& payload);

    /// Bytes buffered but not yet consumed by next().
    std::size_t buffered() const;

    bool poisoned() const { return poisoned_; }

  private:
    std::size_t max_payload_bytes_;
    std::vector<std::uint8_t> buffer_;
    std::size_t consumed_ = 0;
    bool poisoned_ = false;
};

} // namespace buckwild::net

#endif // BUCKWILD_NET_FRAME_H
