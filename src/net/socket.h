/**
 * @file
 * Zero-dependency POSIX TCP primitives — the one socket layer in the
 * tree.
 *
 * Everything that talks TCP goes through these helpers: the obs
 * Prometheus exporter (accept loop + bounded request reads) and the
 * parameter-server SocketTransport (framed cluster traffic). The
 * surface is deliberately small and blocking-with-timeouts:
 *
 *  - Fd: move-only RAII file descriptor;
 *  - listen_tcp(): SO_REUSEADDR bind + listen, port 0 = ephemeral (the
 *    bound port is reported back, which is how tests avoid fixed-port
 *    collisions);
 *  - accept_client(): poll-with-timeout accept so accept loops can
 *    re-check a stop flag without signals or self-pipes;
 *  - connect_tcp(): connect with bounded retry + exponential backoff —
 *    cluster processes come up in any order, so a worker dialing a
 *    shard that has not bound yet must spin politely instead of dying;
 *  - send_all()/recv_all(): exact-count I/O loops that absorb short
 *    writes and partial reads (EINTR included), returning false on
 *    peer close or error. send_all uses MSG_NOSIGNAL so a peer that
 *    hangs up mid-write can never SIGPIPE the process.
 *
 * No protocol lives here — framing is net/frame.h, message semantics
 * are the callers'.
 */
#ifndef BUCKWILD_NET_SOCKET_H
#define BUCKWILD_NET_SOCKET_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace buckwild::net {

/// Move-only RAII owner of a POSIX file descriptor.
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

    Fd&
    operator=(Fd&& other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /// Gives up ownership without closing.
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /// Closes now (idempotent).
    void reset();

    /// Half-closes both directions so blocked readers/writers wake with
    /// EOF without racing the close of the descriptor itself.
    void shutdown_rdwr();

  private:
    int fd_ = -1;
};

/// A dialable TCP endpoint.
struct Address
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::string
    to_string() const
    {
        return host + ":" + std::to_string(port);
    }

    bool operator==(const Address&) const = default;
};

/// Parses "host:port" (host may be empty = 127.0.0.1).
/// @throws std::runtime_error on a malformed or out-of-range port.
Address parse_address(const std::string& text);

/**
 * Creates a TCP listener: socket + SO_REUSEADDR + bind + listen.
 * `port` 0 binds an ephemeral port; the actually bound port is written
 * to `*bound_port` when non-null. On failure returns an invalid Fd and
 * fills `*error` (when non-null) — callers decide whether that is fatal
 * (cluster transport) or a warning (metrics exporter).
 */
Fd listen_tcp(const std::string& bind_address, std::uint16_t port,
              int backlog, std::uint16_t* bound_port, std::string* error);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(int fd);

/**
 * Accepts one client, waiting up to `timeout_ms` (poll + accept).
 * Returns an invalid Fd on timeout or error — accept loops treat both
 * as "re-check the stop flag and poll again".
 */
Fd accept_client(int listen_fd, int timeout_ms);

/**
 * Connects to `address`, retrying with exponential backoff (10ms
 * doubling to 500ms) until `deadline_ms` has elapsed — peers of a
 * multi-process cluster start in arbitrary order. Returns an invalid Fd
 * and fills `*error` (when non-null) once the deadline passes.
 */
Fd connect_tcp(const Address& address, std::chrono::milliseconds deadline,
               std::string* error);

/// Writes exactly `n` bytes, absorbing short writes; MSG_NOSIGNAL.
/// False on error or peer close.
bool send_all(int fd, const void* data, std::size_t n);

/// send_all over a string (HTTP responses and other text protocols).
bool send_all(int fd, const std::string& bytes);

/// Reads exactly `n` bytes, absorbing partial reads. False on EOF
/// before `n` bytes, or on error.
bool recv_all(int fd, void* data, std::size_t n);

/// Sets SO_RCVTIMEO so a stalled peer cannot wedge a blocking read.
void set_recv_timeout(int fd, std::chrono::milliseconds timeout);

} // namespace buckwild::net

#endif // BUCKWILD_NET_SOCKET_H
