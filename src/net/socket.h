/**
 * @file
 * Zero-dependency POSIX TCP primitives — the one socket layer in the
 * tree.
 *
 * Everything that talks TCP goes through these helpers: the obs
 * Prometheus exporter (accept loop + bounded request reads) and the
 * parameter-server SocketTransport (framed cluster traffic). The
 * surface is deliberately small and blocking-with-timeouts:
 *
 *  - Fd: move-only RAII file descriptor;
 *  - listen_tcp(): SO_REUSEADDR bind + listen, port 0 = ephemeral (the
 *    bound port is reported back, which is how tests avoid fixed-port
 *    collisions);
 *  - accept_client(): poll-with-timeout accept so accept loops can
 *    re-check a stop flag without signals or self-pipes;
 *  - connect_tcp(): connect with bounded retry + exponential backoff —
 *    cluster processes come up in any order, so a worker dialing a
 *    shard that has not bound yet must spin politely instead of dying;
 *  - write_full()/read_full(): THE exact-count I/O pair — every frame
 *    send/recv path (ps socket_transport, the obs HTTP exporter, the
 *    gate ingress) funnels through these two loops, so short writes,
 *    partial reads, and EINTR are absorbed in exactly one place.
 *    write_full uses MSG_NOSIGNAL so a peer that hangs up mid-write can
 *    never SIGPIPE the process; read_full_or_eof() additionally
 *    distinguishes a clean EOF on the first byte from a mid-read
 *    truncation, which is how framing tells "peer finished" from "peer
 *    died". Both take an injectable raw-syscall hook so tests can force
 *    1-byte writes and spurious EINTRs through the exact production
 *    loops.
 *
 * No protocol lives here — framing is net/frame.h, message semantics
 * are the callers'.
 */
#ifndef BUCKWILD_NET_SOCKET_H
#define BUCKWILD_NET_SOCKET_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace buckwild::net {

/// Move-only RAII owner of a POSIX file descriptor.
class Fd
{
  public:
    Fd() = default;
    explicit Fd(int fd) : fd_(fd) {}
    ~Fd() { reset(); }

    Fd(const Fd&) = delete;
    Fd& operator=(const Fd&) = delete;

    Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

    Fd&
    operator=(Fd&& other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /// Gives up ownership without closing.
    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    /// Closes now (idempotent).
    void reset();

    /// Half-closes both directions so blocked readers/writers wake with
    /// EOF without racing the close of the descriptor itself.
    void shutdown_rdwr();

  private:
    int fd_ = -1;
};

/// A dialable TCP endpoint.
struct Address
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    std::string
    to_string() const
    {
        return host + ":" + std::to_string(port);
    }

    bool operator==(const Address&) const = default;
};

/// Parses "host:port" (host may be empty = 127.0.0.1).
/// @throws std::runtime_error on a malformed or out-of-range port.
Address parse_address(const std::string& text);

/**
 * Creates a TCP listener: socket + SO_REUSEADDR + bind + listen.
 * `port` 0 binds an ephemeral port; the actually bound port is written
 * to `*bound_port` when non-null. On failure returns an invalid Fd and
 * fills `*error` (when non-null) — callers decide whether that is fatal
 * (cluster transport) or a warning (metrics exporter).
 */
Fd listen_tcp(const std::string& bind_address, std::uint16_t port,
              int backlog, std::uint16_t* bound_port, std::string* error);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(int fd);

/**
 * Accepts one client, waiting up to `timeout_ms` (poll + accept).
 * Returns an invalid Fd on timeout or error — accept loops treat both
 * as "re-check the stop flag and poll again".
 */
Fd accept_client(int listen_fd, int timeout_ms);

/**
 * Connects to `address`, retrying with exponential backoff (10ms
 * doubling to 500ms) until `deadline_ms` has elapsed — peers of a
 * multi-process cluster start in arbitrary order. Returns an invalid Fd
 * and fills `*error` (when non-null) once the deadline passes.
 */
Fd connect_tcp(const Address& address, std::chrono::milliseconds deadline,
               std::string* error);

/// Raw one-shot write in send(2) shape — injectable so tests can force
/// short writes and EINTR through the production write_full loop.
using RawWriteFn = long (*)(int fd, const void* data, std::size_t n);

/// Raw one-shot read in recv(2) shape, injectable likewise.
using RawReadFn = long (*)(int fd, void* data, std::size_t n);

/// Outcome of read_full_or_eof().
enum class ReadResult {
    kOk,     ///< all `n` bytes arrived
    kClosed, ///< clean EOF before the first byte (peer finished)
    kError,  ///< read error, or EOF after at least one byte (truncation)
};

/**
 * Writes exactly `n` bytes, absorbing short writes and EINTR. False on
 * error or peer close. The default raw writer is send(2) with
 * MSG_NOSIGNAL; pass `raw` to substitute a fault-injecting writer in
 * tests.
 */
bool write_full(int fd, const void* data, std::size_t n,
                RawWriteFn raw = nullptr);

/// write_full over a string (HTTP responses and other text protocols).
bool write_full(int fd, const std::string& bytes);

/// Reads exactly `n` bytes, absorbing partial reads and EINTR. False on
/// EOF before `n` bytes, or on error.
bool read_full(int fd, void* data, std::size_t n, RawReadFn raw = nullptr);

/// read_full distinguishing the clean-EOF-on-first-byte case — what
/// framing needs to tell a finished peer from a truncated stream.
ReadResult read_full_or_eof(int fd, void* data, std::size_t n,
                            RawReadFn raw = nullptr);

/// Sets SO_RCVTIMEO so a stalled peer cannot wedge a blocking read.
void set_recv_timeout(int fd, std::chrono::milliseconds timeout);

} // namespace buckwild::net

#endif // BUCKWILD_NET_SOCKET_H
