/**
 * @file
 * Umbrella header for the zero-dependency POSIX TCP layer: sockets
 * (net/socket.h) and length-prefixed message framing (net/frame.h).
 */
#ifndef BUCKWILD_NET_NET_H
#define BUCKWILD_NET_NET_H

#include "net/frame.h"
#include "net/socket.h"

#endif // BUCKWILD_NET_NET_H
