#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

#include "util/logging.h"

namespace buckwild::net {

void
Fd::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Fd::shutdown_rdwr()
{
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Address
parse_address(const std::string& text)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos)
        fatal("address '" + text + "' is not host:port");
    Address address;
    if (colon > 0) address.host = text.substr(0, colon);
    const std::string port_text = text.substr(colon + 1);
    char* end = nullptr;
    const long port = std::strtol(port_text.c_str(), &end, 10);
    if (end == port_text.c_str() || *end != '\0' || port < 0 ||
        port > 65535)
        fatal("address '" + text + "' has a bad port");
    address.port = static_cast<std::uint16_t>(port);
    return address;
}

namespace {

bool
fill_sockaddr(const std::string& host, std::uint16_t port,
              sockaddr_in* addr, std::string* error)
{
    std::memset(addr, 0, sizeof(*addr));
    addr->sin_family = AF_INET;
    addr->sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
        if (error != nullptr) *error = "bad IPv4 address '" + host + "'";
        return false;
    }
    return true;
}

} // namespace

Fd
listen_tcp(const std::string& bind_address, std::uint16_t port,
           int backlog, std::uint16_t* bound_port, std::string* error)
{
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
        if (error != nullptr)
            *error = std::string("socket(): ") + std::strerror(errno);
        return {};
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    if (!fill_sockaddr(bind_address, port, &addr, error)) return {};
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd.get(), backlog) != 0) {
        if (error != nullptr)
            *error = "cannot listen on " + bind_address + ":" +
                     std::to_string(port) + ": " + std::strerror(errno);
        return {};
    }
    if (bound_port != nullptr) *bound_port = local_port(fd.get());
    return fd;
}

std::uint16_t
local_port(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

Fd
accept_client(int listen_fd, int timeout_ms)
{
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) return {}; // timeout or EINTR
    Fd fd(::accept(listen_fd, nullptr, nullptr));
    if (fd.valid()) {
        // Replies ride the accepted side; a small ack held behind Nagle
        // until the peer's TCP ACK looks exactly like a lost message to
        // the RPC retransmit clock.
        const int one = 1;
        ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                     sizeof(one));
    }
    return fd;
}

Fd
connect_tcp(const Address& address, std::chrono::milliseconds deadline,
            std::string* error)
{
    sockaddr_in addr{};
    if (!fill_sockaddr(address.host, address.port, &addr, error)) return {};

    const auto give_up = std::chrono::steady_clock::now() + deadline;
    auto backoff = std::chrono::milliseconds(10);
    int last_errno = ECONNREFUSED;
    for (;;) {
        Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
        if (fd.valid() &&
            ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            // Cluster messages are small request/reply frames; batching
            // them behind Nagle only adds round-trip latency.
            const int one = 1;
            ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return fd;
        }
        last_errno = errno;
        fd.reset();
        if (std::chrono::steady_clock::now() + backoff >= give_up) break;
        std::this_thread::sleep_for(backoff);
        backoff = std::min(backoff * 2, std::chrono::milliseconds(500));
    }
    if (error != nullptr)
        *error = "cannot connect to " + address.to_string() + ": " +
                 std::strerror(last_errno);
    return {};
}

namespace {

long
raw_send(int fd, const void* data, std::size_t n)
{
    return ::send(fd, data, n, MSG_NOSIGNAL);
}

long
raw_recv(int fd, void* data, std::size_t n)
{
    return ::recv(fd, data, n, 0);
}

} // namespace

bool
write_full(int fd, const void* data, std::size_t n, RawWriteFn raw)
{
    if (raw == nullptr) raw = raw_send;
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < n) {
        const long w = raw(fd, bytes + sent, n - sent);
        if (w < 0 && errno == EINTR) continue;
        if (w <= 0) return false;
        sent += static_cast<std::size_t>(w);
    }
    return true;
}

bool
write_full(int fd, const std::string& bytes)
{
    return write_full(fd, bytes.data(), bytes.size());
}

ReadResult
read_full_or_eof(int fd, void* data, std::size_t n, RawReadFn raw)
{
    if (raw == nullptr) raw = raw_recv;
    auto* bytes = static_cast<std::uint8_t*>(data);
    std::size_t got = 0;
    while (got < n) {
        const long r = raw(fd, bytes + got, n - got);
        if (r < 0 && errno == EINTR) continue;
        if (r == 0)
            return got == 0 ? ReadResult::kClosed : ReadResult::kError;
        if (r < 0) return ReadResult::kError;
        got += static_cast<std::size_t>(r);
    }
    return ReadResult::kOk;
}

bool
read_full(int fd, void* data, std::size_t n, RawReadFn raw)
{
    return read_full_or_eof(fd, data, n, raw) == ReadResult::kOk;
}

void
set_recv_timeout(int fd, std::chrono::milliseconds timeout)
{
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

} // namespace buckwild::net
