#include "net/frame.h"

#include <cstring>

#include "net/socket.h"

namespace buckwild::net {

namespace {

void
put_u32(std::uint8_t* out, std::uint32_t v)
{
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
    out[2] = static_cast<std::uint8_t>(v >> 16);
    out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t
get_u32(const std::uint8_t* in)
{
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

} // namespace

bool
write_frame(int fd, const std::uint8_t* payload, std::size_t n)
{
    // One send for the header keeps the write count low; the payload
    // follows in its own send (no copy of a potentially large body).
    std::uint8_t header[kFrameHeaderBytes];
    put_u32(header, kFrameMagic);
    put_u32(header + 4, static_cast<std::uint32_t>(n));
    if (!write_full(fd, header, sizeof(header))) return false;
    return n == 0 || write_full(fd, payload, n);
}

FrameResult
read_frame(int fd, std::vector<std::uint8_t>& payload,
           std::size_t max_payload_bytes)
{
    std::uint8_t header[kFrameHeaderBytes];
    // A clean EOF before any header byte means the peer closed between
    // frames; EOF mid-header is a truncated stream.
    switch (read_full_or_eof(fd, header, sizeof(header))) {
    case ReadResult::kClosed: return FrameResult::kClosed;
    case ReadResult::kError: return FrameResult::kError;
    case ReadResult::kOk: break;
    }
    if (get_u32(header) != kFrameMagic) return FrameResult::kBadMagic;
    const std::uint32_t length = get_u32(header + 4);
    if (length > max_payload_bytes) return FrameResult::kTooLarge;
    payload.resize(length);
    if (length > 0 && !read_full(fd, payload.data(), length))
        return FrameResult::kError;
    return FrameResult::kOk;
}

SplitResult
FrameSplitter::push(const std::uint8_t* data, std::size_t n)
{
    if (poisoned_) return SplitResult::kBadMagic;
    buffer_.insert(buffer_.end(), data, data + n);
    return SplitResult::kNeedMore;
}

SplitResult
FrameSplitter::next(std::vector<std::uint8_t>& payload)
{
    if (poisoned_) return SplitResult::kBadMagic;
    // Reclaim consumed prefix once it dominates the buffer, so a
    // long-lived connection does not creep and extraction stays O(n).
    if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() +
                          static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    const std::size_t avail = buffer_.size() - consumed_;
    if (avail < kFrameHeaderBytes) return SplitResult::kNeedMore;
    const std::uint8_t* head = buffer_.data() + consumed_;
    if (get_u32(head) != kFrameMagic) {
        poisoned_ = true;
        return SplitResult::kBadMagic;
    }
    const std::uint32_t length = get_u32(head + 4);
    if (length > max_payload_bytes_) {
        poisoned_ = true;
        return SplitResult::kTooLarge;
    }
    if (avail < kFrameHeaderBytes + length) return SplitResult::kNeedMore;
    payload.assign(head + kFrameHeaderBytes,
                   head + kFrameHeaderBytes + length);
    consumed_ += kFrameHeaderBytes + length;
    return SplitResult::kFrame;
}

std::size_t
FrameSplitter::buffered() const
{
    return buffer_.size() - consumed_;
}

} // namespace buckwild::net
