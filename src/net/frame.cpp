#include "net/frame.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "net/socket.h"

namespace buckwild::net {

namespace {

void
put_u32(std::uint8_t* out, std::uint32_t v)
{
    out[0] = static_cast<std::uint8_t>(v);
    out[1] = static_cast<std::uint8_t>(v >> 8);
    out[2] = static_cast<std::uint8_t>(v >> 16);
    out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t
get_u32(const std::uint8_t* in)
{
    return static_cast<std::uint32_t>(in[0]) |
           (static_cast<std::uint32_t>(in[1]) << 8) |
           (static_cast<std::uint32_t>(in[2]) << 16) |
           (static_cast<std::uint32_t>(in[3]) << 24);
}

} // namespace

bool
write_frame(int fd, const std::uint8_t* payload, std::size_t n)
{
    // One send for the header keeps the write count low; the payload
    // follows in its own send (no copy of a potentially large body).
    std::uint8_t header[kFrameHeaderBytes];
    put_u32(header, kFrameMagic);
    put_u32(header + 4, static_cast<std::uint32_t>(n));
    if (!send_all(fd, header, sizeof(header))) return false;
    return n == 0 || send_all(fd, payload, n);
}

FrameResult
read_frame(int fd, std::vector<std::uint8_t>& payload,
           std::size_t max_payload_bytes)
{
    std::uint8_t header[kFrameHeaderBytes];
    // Distinguish a clean EOF (no header byte at all — the peer closed
    // between frames) from a mid-frame truncation.
    std::size_t got = 0;
    {
        auto* bytes = header;
        while (got < sizeof(header)) {
            const ssize_t r = ::recv(fd, bytes + got, sizeof(header) - got,
                                     0);
            if (r < 0 && errno == EINTR) continue;
            if (r == 0) return got == 0 ? FrameResult::kClosed
                                        : FrameResult::kError;
            if (r < 0) return FrameResult::kError;
            got += static_cast<std::size_t>(r);
        }
    }
    if (get_u32(header) != kFrameMagic) return FrameResult::kBadMagic;
    const std::uint32_t length = get_u32(header + 4);
    if (length > max_payload_bytes) return FrameResult::kTooLarge;
    payload.resize(length);
    if (length > 0 && !recv_all(fd, payload.data(), length))
        return FrameResult::kError;
    return FrameResult::kOk;
}

} // namespace buckwild::net
