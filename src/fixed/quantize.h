/**
 * @file
 * Quantizers: real -> fixed-point conversion with biased or unbiased
 * rounding (§3 "Model numbers", §5.2).
 *
 * Biased (nearest-neighbor) rounding maps x to the closest representable
 * value. Unbiased (stochastic) rounding implements Eq. (4) of the paper:
 *
 *     Q(x) = floor(x + rand()),   rand() uniform on [0, 1)
 *
 * in units of the format's quantum, so E[Q(x)] = x for any x in range.
 * Both quantizers saturate at the format bounds (matching the behaviour of
 * hardware pack-with-saturation instructions used by the SIMD kernels).
 */
#ifndef BUCKWILD_FIXED_QUANTIZE_H
#define BUCKWILD_FIXED_QUANTIZE_H

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "fixed/fixed_point.h"
#include "rng/random_source.h"

namespace buckwild::fixed {

/// Saturates a raw (quantum-unit) value into `fmt`'s representable range.
inline long
saturate_raw(long raw, const FixedFormat& fmt)
{
    if (raw < fmt.raw_min()) return fmt.raw_min();
    if (raw > fmt.raw_max()) return fmt.raw_max();
    return raw;
}

/// Nearest-neighbor ("biased") rounding of real `x` to raw units of `fmt`.
inline long
quantize_biased_raw(double x, const FixedFormat& fmt)
{
    const double scaled = x / fmt.quantum();
    return saturate_raw(std::lround(scaled), fmt);
}

/**
 * Unbiased (stochastic) rounding of real `x` to raw units of `fmt`,
 * per Eq. (4): floor(scaled + u), u ~ U[0, 1).
 *
 * Saturation at the ends of the range technically reintroduces bias for
 * out-of-range inputs; in-range inputs are exactly unbiased.
 */
inline long
quantize_unbiased_raw(double x, const FixedFormat& fmt,
                      rng::RandomWordSource& source)
{
    const double scaled = x / fmt.quantum();
    const double u = static_cast<double>(source.next_unit_float());
    return saturate_raw(static_cast<long>(std::floor(scaled + u)), fmt);
}

/// Reconstructs the real value of raw units under `fmt`.
inline double
dequantize(long raw, const FixedFormat& fmt)
{
    return static_cast<double>(raw) * fmt.quantum();
}

/// Rounding mode selector used throughout the trainer API.
enum class Rounding {
    kBiased,   ///< nearest-neighbor
    kUnbiased, ///< stochastic, Eq. (4)
};

/// "biased" / "unbiased".
const char* to_string(Rounding mode);

/**
 * Array quantizer: fills `out[0..n)` (Rep = int8_t or int16_t) from float
 * input. For kUnbiased, `source` supplies the randomness (one word per
 * element consumed — shared-randomness sources simply return repeated
 * words, so the same code path exercises all three §5.2 strategies).
 */
template <typename Rep>
void
quantize_array(const float* in, Rep* out, std::size_t n,
               const FixedFormat& fmt, Rounding mode,
               rng::RandomWordSource* source)
{
    for (std::size_t i = 0; i < n; ++i) {
        const long raw = (mode == Rounding::kBiased)
            ? quantize_biased_raw(in[i], fmt)
            : quantize_unbiased_raw(in[i], fmt, *source);
        out[i] = static_cast<Rep>(raw);
    }
}

/// Array dequantizer: floats from fixed-point reps.
template <typename Rep>
void
dequantize_array(const Rep* in, float* out, std::size_t n,
                 const FixedFormat& fmt)
{
    const float q = static_cast<float>(fmt.quantum());
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<float>(in[i]) * q;
}

} // namespace buckwild::fixed

#endif // BUCKWILD_FIXED_QUANTIZE_H
