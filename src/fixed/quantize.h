/**
 * @file
 * Quantizers: real -> fixed-point conversion with biased or unbiased
 * rounding (§3 "Model numbers", §5.2).
 *
 * This header is now a thin shim over the precision substrate
 * (src/lowp/): every entry point lowers the FixedFormat to a
 * `lowp::GridSpec` (asymmetric two's-complement saturation, matching the
 * hardware pack-with-saturation instructions used by the SIMD kernels)
 * and delegates to the one rounding engine. The array quantizer gains the
 * substrate's AVX2 fast path for biased rounding; all results stay
 * bit-identical to the pre-substrate implementation (pinned by
 * tests/test_lowp.cpp golden vectors).
 */
#ifndef BUCKWILD_FIXED_QUANTIZE_H
#define BUCKWILD_FIXED_QUANTIZE_H

#include <cstddef>
#include <cstdint>

#include "fixed/fixed_point.h"
#include "lowp/grid.h"
#include "lowp/round.h"
#include "rng/random_source.h"

namespace buckwild::fixed {

/// Saturates a raw (quantum-unit) value into `fmt`'s representable range.
inline long
saturate_raw(long raw, const FixedFormat& fmt)
{
    return lowp::saturate_raw(raw, lowp::GridSpec::from_fixed(fmt));
}

/// Nearest-neighbor ("biased") rounding of real `x` to raw units of `fmt`.
inline long
quantize_biased_raw(double x, const FixedFormat& fmt)
{
    return lowp::round_biased_raw(x, lowp::GridSpec::from_fixed(fmt));
}

/**
 * Unbiased (stochastic) rounding of real `x` to raw units of `fmt`,
 * per Eq. (4): floor(scaled + u), u ~ U[0, 1).
 *
 * Saturation at the ends of the range technically reintroduces bias for
 * out-of-range inputs; in-range inputs are exactly unbiased.
 */
inline long
quantize_unbiased_raw(double x, const FixedFormat& fmt,
                      rng::RandomWordSource& source)
{
    return lowp::round_unbiased_raw(x, lowp::GridSpec::from_fixed(fmt),
                                    source.next_unit_float());
}

/// Reconstructs the real value of raw units under `fmt`.
inline double
dequantize(long raw, const FixedFormat& fmt)
{
    return lowp::dequantize_raw(raw, lowp::GridSpec::from_fixed(fmt));
}

/// Rounding mode selector used throughout the trainer API.
enum class Rounding {
    kBiased,   ///< nearest-neighbor
    kUnbiased, ///< stochastic, Eq. (4)
};

/// "biased" / "unbiased".
const char* to_string(Rounding mode);

/**
 * Array quantizer: fills `out[0..n)` (Rep = int8_t or int16_t) from float
 * input. For kUnbiased, `source` supplies the randomness (one word per
 * element consumed — shared-randomness sources simply return repeated
 * words, so the same code path exercises all three §5.2 strategies).
 * Biased rounding takes the substrate's vectorized path.
 */
template <typename Rep>
void
quantize_array(const float* in, Rep* out, std::size_t n,
               const FixedFormat& fmt, Rounding mode,
               rng::RandomWordSource* source)
{
    const lowp::GridSpec grid = lowp::GridSpec::from_fixed(fmt);
    if (mode == Rounding::kBiased)
        lowp::quantize_biased(in, out, n, grid);
    else
        lowp::quantize_unbiased(in, out, n, grid, *source);
}

/// Array dequantizer: floats from fixed-point reps.
template <typename Rep>
void
dequantize_array(const Rep* in, float* out, std::size_t n,
                 const FixedFormat& fmt)
{
    lowp::dequantize(in, out, n, lowp::GridSpec::from_fixed(fmt));
}

} // namespace buckwild::fixed

#endif // BUCKWILD_FIXED_QUANTIZE_H
