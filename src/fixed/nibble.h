/**
 * @file
 * 4-bit ("nibble") packed fixed-point storage (§6.1, Fig 5c).
 *
 * AVX2 has no 4-bit arithmetic, so the paper evaluates a hypothetical D4M4
 * Buckwild! using 8-bit proxies. We store 4-bit values packed two per byte
 * (low nibble = even index) so the memory footprint — and hence the
 * bandwidth behaviour — is genuinely 4-bit, and provide pack/unpack
 * helpers that the emulated 4-bit kernels use.
 */
#ifndef BUCKWILD_FIXED_NIBBLE_H
#define BUCKWILD_FIXED_NIBBLE_H

#include <cstddef>
#include <cstdint>

namespace buckwild::fixed {

/// Signed 4-bit range.
inline constexpr int kNibbleMin = -8;
inline constexpr int kNibbleMax = 7;

/// Saturates an int into [-8, 7].
inline int
saturate_nibble(int v)
{
    if (v < kNibbleMin) return kNibbleMin;
    if (v > kNibbleMax) return kNibbleMax;
    return v;
}

/// Sign-extends the low 4 bits of `v`.
inline int
sign_extend_nibble(std::uint8_t v)
{
    const int x = v & 0xF;
    return x >= 8 ? x - 16 : x;
}

/// Number of bytes needed to hold `n` packed nibbles.
inline std::size_t
packed_nibble_bytes(std::size_t n)
{
    return (n + 1) / 2;
}

/// Reads element `i` from a packed nibble array.
inline int
load_nibble(const std::uint8_t* packed, std::size_t i)
{
    const std::uint8_t byte = packed[i / 2];
    return sign_extend_nibble((i % 2 == 0) ? byte : byte >> 4);
}

/// Writes (saturated) element `i` of a packed nibble array.
inline void
store_nibble(std::uint8_t* packed, std::size_t i, int value)
{
    const auto v = static_cast<std::uint8_t>(saturate_nibble(value) & 0xF);
    std::uint8_t& byte = packed[i / 2];
    if (i % 2 == 0)
        byte = static_cast<std::uint8_t>((byte & 0xF0) | v);
    else
        byte = static_cast<std::uint8_t>((byte & 0x0F) | (v << 4));
}

/// Packs `n` int8 values (assumed already in [-8, 7]; saturated otherwise).
void pack_nibbles(const std::int8_t* in, std::uint8_t* packed, std::size_t n);

/// Unpacks `n` nibbles to int8.
void unpack_nibbles(const std::uint8_t* packed, std::int8_t* out,
                    std::size_t n);

} // namespace buckwild::fixed

#endif // BUCKWILD_FIXED_NIBBLE_H
