/**
 * @file
 * Fixed-point number formats.
 *
 * Buckwild! replaces the 32-bit floats of standard SGD with low-precision
 * two's-complement fixed-point values: a k-bit integer `raw` represents the
 * real number raw * 2^-f where f is the number of fraction bits. The
 * dataset and model of the paper's experiments live in [-1, 1], so the
 * default formats place the binary point to use nearly the full dynamic
 * range for that interval (e.g. 8-bit / 6 fraction bits spans [-2, 2)).
 *
 * Formats are runtime values (struct FixedFormat) so the DMGC-configured
 * trainer can pick precision at run time; the SIMD kernels additionally use
 * the compile-time `Rep` (int8_t / int16_t) for register layout.
 */
#ifndef BUCKWILD_FIXED_FIXED_POINT_H
#define BUCKWILD_FIXED_FIXED_POINT_H

#include <cstdint>
#include <limits>
#include <string>

namespace buckwild::fixed {

/// Compile-time properties of a fixed-point representation type.
template <typename Rep>
struct RepTraits
{
    static_assert(std::numeric_limits<Rep>::is_integer &&
                      std::numeric_limits<Rep>::is_signed,
                  "fixed-point reps are signed integers");
    static constexpr int kBits = std::numeric_limits<Rep>::digits + 1;
    static constexpr long kMin = std::numeric_limits<Rep>::min();
    static constexpr long kMax = std::numeric_limits<Rep>::max();
};

/// A runtime fixed-point format: total bits and fraction bits.
struct FixedFormat
{
    int bits;      ///< total width incl. sign (4, 8, 16, or 32)
    int frac_bits; ///< position of the binary point

    /// Real value of one least-significant bit: 2^-frac_bits.
    double quantum() const { return 1.0 / static_cast<double>(1L << frac_bits); }

    /// Largest representable value, (2^(bits-1) - 1) * quantum.
    double
    max_value() const
    {
        return static_cast<double>((1L << (bits - 1)) - 1) * quantum();
    }

    /// Smallest representable value, -2^(bits-1) * quantum.
    double
    min_value() const
    {
        return -static_cast<double>(1L << (bits - 1)) * quantum();
    }

    /// Raw-integer saturation bounds.
    long raw_min() const { return -(1L << (bits - 1)); }
    long raw_max() const { return (1L << (bits - 1)) - 1; }

    bool operator==(const FixedFormat&) const = default;

    /// e.g. "Q1.6" style "fix8.6" (8 bits total, 6 fractional).
    std::string to_string() const;
};

/// The library's default formats for data/models in [-1, 1]: leave one
/// integer bit of headroom so sums of a few values do not saturate
/// immediately.
FixedFormat default_format(int bits);

/// True if `bits` is a width the library has kernels for (4, 8, 16, 32).
bool is_supported_width(int bits);

} // namespace buckwild::fixed

#endif // BUCKWILD_FIXED_FIXED_POINT_H
