#include "fixed/quantize.h"

namespace buckwild::fixed {

const char*
to_string(Rounding mode)
{
    return mode == Rounding::kBiased ? "biased" : "unbiased";
}

} // namespace buckwild::fixed
