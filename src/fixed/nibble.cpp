#include "fixed/nibble.h"

namespace buckwild::fixed {

void
pack_nibbles(const std::int8_t* in, std::uint8_t* packed, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) store_nibble(packed, i, in[i]);
}

void
unpack_nibbles(const std::uint8_t* packed, std::int8_t* out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = static_cast<std::int8_t>(load_nibble(packed, i));
}

} // namespace buckwild::fixed
