#include "fixed/fixed_point.h"

#include "util/logging.h"

namespace buckwild::fixed {

std::string
FixedFormat::to_string() const
{
    return "fix" + std::to_string(bits) + "." + std::to_string(frac_bits);
}

FixedFormat
default_format(int bits)
{
    switch (bits) {
      // One integer bit of headroom above the [-1, 1] data range.
      case 4: return {4, 2};
      case 8: return {8, 6};
      case 16: return {16, 14};
      case 32: return {32, 30};
      default:
        fatal("unsupported fixed-point width: " + std::to_string(bits));
    }
}

bool
is_supported_width(int bits)
{
    return bits == 4 || bits == 8 || bits == 16 || bits == 32;
}

} // namespace buckwild::fixed
