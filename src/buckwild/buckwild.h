/**
 * @file
 * Umbrella header for the Buckwild! library.
 *
 * Pulls in the public API surface:
 *   - core::Trainer / TrainerConfig / TrainingMetrics — the SGD engine
 *   - dmgc::Signature / PerfModel — the DMGC model (§3, §4)
 *   - dataset generators and quantized containers
 *   - the precision substrate (lowp::) — grids, rounding, rep dispatch
 *   - fixed-point formats and quantizer shims
 *   - the kernel implementations (simd::) for power users
 *
 * Subsystem-specific headers (cachesim/, fpga/, isa/, nn/) are included
 * directly by the experiments that need them.
 */
#ifndef BUCKWILD_BUCKWILD_H
#define BUCKWILD_BUCKWILD_H

#include "core/config.h"
#include "core/engine.h"
#include "core/loss.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "dataset/digits.h"
#include "dataset/fourier.h"
#include "dataset/problem.h"
#include "dataset/quantized.h"
#include "dmgc/perf_model.h"
#include "dmgc/signature.h"
#include "dmgc/taxonomy.h"
#include "fixed/fixed_point.h"
#include "fixed/nibble.h"
#include "fixed/quantize.h"
#include "lowp/dispatch.h"
#include "lowp/grid.h"
#include "lowp/rep_traits.h"
#include "lowp/round.h"
#include "lowp/shared_random.h"
#include "rng/random_source.h"
#include "rng/xorshift.h"
#include "simd/ops.h"

#endif // BUCKWILD_BUCKWILD_H
