/**
 * @file
 * Neural-network layers for the LeNet-style CNN of §7 (Fig 7b).
 *
 * Single-example (SGD) forward/backward passes in NCHW layout. Weights
 * are stored *on the quantization grid* of their QuantSpec: every update
 * re-quantizes with the configured rounding, reproducing the paper's
 * Mocha-based simulation of arbitrary-bit-width training. Activations
 * may also be quantized (the D term of the DMGC model).
 */
#ifndef BUCKWILD_NN_LAYERS_H
#define BUCKWILD_NN_LAYERS_H

#include <cstddef>
#include <vector>

#include "nn/quantizer.h"
#include "rng/xorshift.h"

namespace buckwild::nn {

/// 3D activation volume (channels x height x width), flat storage.
struct Volume
{
    std::size_t channels = 0;
    std::size_t height = 0;
    std::size_t width = 0;
    std::vector<float> data;

    Volume() = default;
    Volume(std::size_t c, std::size_t h, std::size_t w)
        : channels(c), height(h), width(w), data(c * h * w, 0.0f)
    {}

    std::size_t size() const { return data.size(); }
    float&
    at(std::size_t c, std::size_t y, std::size_t x)
    {
        return data[(c * height + y) * width + x];
    }
    float
    at(std::size_t c, std::size_t y, std::size_t x) const
    {
        return data[(c * height + y) * width + x];
    }
};

/// Valid (no padding), stride-1 2D convolution with bias.
class Conv2d
{
  public:
    Conv2d(std::size_t in_channels, std::size_t out_channels,
           std::size_t kernel, QuantSpec weight_spec, std::uint32_t seed);

    /// Forward; caches the input for backward.
    Volume forward(const Volume& in);

    /// Backward: returns dL/d(input); accumulates nothing — applies the
    /// SGD step immediately (step size eta), with grid re-quantization.
    Volume backward(const Volume& grad_out, float eta);

    std::size_t out_channels() const { return out_channels_; }
    std::size_t kernel() const { return kernel_; }
    const std::vector<float>& weights() const { return weights_; }

  private:
    std::size_t in_channels_;
    std::size_t out_channels_;
    std::size_t kernel_;
    QuantSpec spec_;
    std::vector<float> weights_; ///< [out][in][k][k]
    std::vector<float> bias_;    ///< [out]
    Volume input_;
    rng::Xorshift128 gen_;
};

/// 2x2 max pooling, stride 2 (odd trailing row/column dropped).
class MaxPool2
{
  public:
    Volume forward(const Volume& in);
    Volume backward(const Volume& grad_out);

  private:
    Volume input_;
    std::vector<std::size_t> argmax_;
};

/// Elementwise ReLU.
class Relu
{
  public:
    Volume forward(const Volume& in);
    Volume backward(const Volume& grad_out);

  private:
    Volume input_;
};

/// Fully connected layer with bias.
class Dense
{
  public:
    Dense(std::size_t in_features, std::size_t out_features,
          QuantSpec weight_spec, std::uint32_t seed);

    std::vector<float> forward(const std::vector<float>& in);
    std::vector<float> backward(const std::vector<float>& grad_out,
                                float eta);

    std::size_t in_features() const { return in_; }
    std::size_t out_features() const { return out_; }
    const std::vector<float>& weights() const { return weights_; }

  private:
    std::size_t in_;
    std::size_t out_;
    QuantSpec spec_;
    std::vector<float> weights_; ///< [out][in]
    std::vector<float> bias_;
    std::vector<float> input_;
    rng::Xorshift128 gen_;
};

/// Softmax + cross-entropy head.
struct SoftmaxXent
{
    /// Returns (loss, gradient wrt logits) for the true label.
    static std::pair<float, std::vector<float>> loss_and_grad(
        const std::vector<float>& logits, int label);

    /// Index of the max logit.
    static int predict(const std::vector<float>& logits);
};

} // namespace buckwild::nn

#endif // BUCKWILD_NN_LAYERS_H
