/**
 * @file
 * Arbitrary-bit-width quantization for neural-network training (§7).
 *
 * The paper "modified Mocha, a deep learning library, to simulate
 * low-precision arithmetic of arbitrary bit widths": values are kept in
 * float storage but constrained to a b-bit fixed-point grid, with biased
 * or unbiased rounding applied on every write. We use the same
 * methodology for the Fig 7b LeNet study: weights live *on the grid* (no
 * full-precision master copy — this is real Buckwild! semantics, so
 * biased rounding can genuinely stall small updates), and updates are
 * re-quantized on application.
 */
#ifndef BUCKWILD_NN_QUANTIZER_H
#define BUCKWILD_NN_QUANTIZER_H

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "rng/xorshift.h"

namespace buckwild::nn {

/// Rounding mode for grid writes.
enum class Round {
    kNearest,    ///< biased
    kStochastic, ///< unbiased, Eq. (4)
};

/// A b-bit symmetric fixed-point grid over [-range, +range].
struct QuantSpec
{
    int bits = 32;        ///< 32 = full precision (no quantization)
    Round round = Round::kStochastic;
    float range = 2.0f;   ///< representable magnitude

    bool enabled() const { return bits < 32; }

    /// Grid step: range / 2^(bits-1).
    float
    quantum() const
    {
        return range / static_cast<float>(1 << (bits - 1));
    }
};

/// Quantizes one value onto the grid (no-op when disabled).
inline float
quantize(float x, const QuantSpec& spec, rng::Xorshift128& gen)
{
    if (!spec.enabled()) return x;
    const float q = spec.quantum();
    float scaled = x / q;
    const float limit = static_cast<float>((1 << (spec.bits - 1)) - 1);
    float raw;
    if (spec.round == Round::kNearest) {
        raw = std::nearbyintf(scaled);
    } else {
        const float u = rng::to_unit_float(gen());
        raw = std::floor(scaled + u);
    }
    if (raw > limit) raw = limit;
    if (raw < -limit) raw = -limit;
    return raw * q;
}

/// Quantizes an array in place.
inline void
quantize_array(float* data, std::size_t n, const QuantSpec& spec,
               rng::Xorshift128& gen)
{
    if (!spec.enabled()) return;
    for (std::size_t i = 0; i < n; ++i) data[i] = quantize(data[i], spec, gen);
}

} // namespace buckwild::nn

#endif // BUCKWILD_NN_QUANTIZER_H
