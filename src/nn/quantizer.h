/**
 * @file
 * Arbitrary-bit-width quantization for neural-network training (§7).
 *
 * The paper "modified Mocha, a deep learning library, to simulate
 * low-precision arithmetic of arbitrary bit widths": values are kept in
 * float storage but constrained to a b-bit fixed-point grid, with biased
 * or unbiased rounding applied on every write. We use the same
 * methodology for the Fig 7b LeNet study: weights live *on the grid* (no
 * full-precision master copy — this is real Buckwild! semantics, so
 * biased rounding can genuinely stall small updates), and updates are
 * re-quantized on application.
 *
 * This header is now a thin shim over the precision substrate: QuantSpec
 * lowers to a symmetric `lowp::GridSpec` (bounds ±(2^(b-1)-1)) and the
 * rounding itself is lowp::snap_nearest / lowp::snap_stochastic. The
 * rounding-mode enum is the substrate's `lowp::Round`.
 */
#ifndef BUCKWILD_NN_QUANTIZER_H
#define BUCKWILD_NN_QUANTIZER_H

#include <cstddef>
#include <cstdint>

#include "lowp/grid.h"
#include "lowp/round.h"
#include "rng/xorshift.h"

namespace buckwild::nn {

/// Rounding mode for grid writes (kNearest = biased, kStochastic =
/// unbiased Eq. (4)).
using Round = lowp::Round;

/// A b-bit symmetric fixed-point grid over [-range, +range].
struct QuantSpec
{
    int bits = 32;        ///< 32 = full precision (no quantization)
    Round round = Round::kStochastic;
    float range = 2.0f;   ///< representable magnitude

    bool enabled() const { return bits < 32; }

    /// Grid step: range / 2^(bits-1).
    float
    quantum() const
    {
        return range / static_cast<float>(1 << (bits - 1));
    }

    /// The grid this spec describes (symmetric saturation).
    lowp::GridSpec
    grid() const
    {
        return lowp::GridSpec::symmetric(bits, static_cast<double>(range));
    }
};

/// Quantizes one value onto the grid (no-op when disabled).
inline float
quantize(float x, const QuantSpec& spec, rng::Xorshift128& gen)
{
    if (!spec.enabled()) return x;
    const lowp::GridSpec grid = spec.grid();
    if (spec.round == Round::kNearest)
        return lowp::snap_nearest(x, grid);
    return lowp::snap_stochastic(x, grid, rng::to_unit_float(gen()));
}

/// Quantizes an array in place.
inline void
quantize_array(float* data, std::size_t n, const QuantSpec& spec,
               rng::Xorshift128& gen)
{
    if (!spec.enabled()) return;
    for (std::size_t i = 0; i < n; ++i) data[i] = quantize(data[i], spec, gen);
}

} // namespace buckwild::nn

#endif // BUCKWILD_NN_QUANTIZER_H
