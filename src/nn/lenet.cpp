#include "nn/lenet.h"

#include "util/logging.h"

namespace buckwild::nn {

namespace {

Volume
as_volume(const std::vector<float>& v)
{
    Volume vol(1, 1, v.size());
    vol.data = v;
    return vol;
}

} // namespace

Lenet::Lenet(const LenetConfig& config)
    : cfg_(config),
      conv1_(1, 8, 3, config.weight_spec, config.seed + 1),
      conv2_(8, 16, 3, config.weight_spec, config.seed + 2),
      fc1_(64, 32, config.weight_spec, config.seed + 3),
      fc2_(32, dataset::kDigitClasses, config.weight_spec, config.seed + 4)
{}

std::vector<float>
Lenet::forward(const float* image)
{
    Volume in(1, dataset::kDigitSide, dataset::kDigitSide);
    std::copy(image, image + dataset::kDigitPixels, in.data.begin());
    quantize_array(in.data.data(), in.size(), cfg_.activation_spec,
                   act_gen_);

    Volume v = pool1_.forward(relu1_.forward(conv1_.forward(in)));
    quantize_array(v.data.data(), v.size(), cfg_.activation_spec, act_gen_);
    pooled2_ = pool2_.forward(relu2_.forward(conv2_.forward(v)));
    quantize_array(pooled2_.data.data(), pooled2_.size(),
                   cfg_.activation_spec, act_gen_);
    if (pooled2_.size() != fc1_.in_features())
        panic("LeNet flatten size mismatch");

    std::vector<float> flat = pooled2_.data;
    std::vector<float> h = fc1_.forward(flat);
    const Volume hr = relu3_.forward(as_volume(h));
    return fc2_.forward(hr.data);
}

int
Lenet::predict(const float* image)
{
    return SoftmaxXent::predict(forward(image));
}

LenetMetrics
Lenet::train(const dataset::DigitDataset& train,
             const dataset::DigitDataset& test)
{
    LenetMetrics metrics;
    float eta = cfg_.step_size;
    for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
        double loss_sum = 0.0;
        for (std::size_t i = 0; i < train.count; ++i) {
            const std::vector<float> logits = forward(train.image(i));
            auto [loss, grad] =
                SoftmaxXent::loss_and_grad(logits, train.labels[i]);
            loss_sum += loss;

            // Backward through the stack, applying SGD steps in place.
            std::vector<float> g = fc2_.backward(grad, eta);
            const Volume gr = relu3_.backward(as_volume(g));
            g = fc1_.backward(gr.data, eta);

            Volume gv(pooled2_.channels, pooled2_.height, pooled2_.width);
            gv.data = g;
            Volume back = pool2_.backward(gv);
            back = relu2_.backward(back);
            back = conv2_.backward(back, eta);
            back = pool1_.backward(back);
            back = relu1_.backward(back);
            conv1_.backward(back, eta);
        }
        metrics.train_loss_trace.push_back(
            loss_sum / static_cast<double>(train.count));
        eta *= cfg_.step_decay;
    }

    std::size_t correct = 0;
    for (std::size_t i = 0; i < train.count; ++i)
        if (predict(train.image(i)) == train.labels[i]) ++correct;
    metrics.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(train.count);

    correct = 0;
    for (std::size_t i = 0; i < test.count; ++i)
        if (predict(test.image(i)) == test.labels[i]) ++correct;
    metrics.test_accuracy =
        static_cast<double>(correct) / static_cast<double>(test.count);
    return metrics;
}

} // namespace buckwild::nn
