#include "nn/conv_lowp.h"

#include <type_traits>

#include "rng/xorshift.h"

namespace buckwild::nn {

namespace {

template <typename T>
T
random_rep(rng::Xorshift128& gen)
{
    if constexpr (std::is_same_v<T, float>) {
        return rng::to_unit_float(gen()) * 2.0f - 1.0f;
    } else {
        // Symmetric range, matching the kernel contracts.
        const int lim = std::is_same_v<T, std::int8_t> ? 127 : 32767;
        return static_cast<T>(
            static_cast<int>(gen() % (2 * lim + 1)) - lim);
    }
}

template <typename T>
constexpr float
quantum_of()
{
    if constexpr (std::is_same_v<T, float>)
        return 1.0f;
    else if constexpr (std::is_same_v<T, std::int8_t>)
        return 1.0f / 64.0f;
    else
        return 1.0f / 16384.0f;
}

} // namespace

template <typename D, typename M>
LowpConv<D, M>::LowpConv(const ConvShape& shape, std::uint32_t seed)
    : shape_(shape), patches_(shape.patches() * shape.patch_elements()),
      filters_(shape.filters * shape.patch_elements()),
      qd_(quantum_of<D>()), qm_(quantum_of<M>())
{
    // The throughput experiment is data-independent: fill the im2col
    // buffer and filter bank with synthetic values directly. (A real
    // deployment would run im2col per image; its cost is also linear in
    // the data precision, so it does not change the Fig 7a shape.)
    rng::Xorshift128 gen(seed);
    for (auto& v : patches_) v = random_rep<D>(gen);
    for (auto& v : filters_) v = random_rep<M>(gen);
}

template <typename D, typename M>
std::vector<float>
LowpConv<D, M>::forward(simd::Impl impl)
{
    const std::size_t k = shape_.patch_elements();
    std::vector<float> out(shape_.filters * shape_.patches());
    for (std::size_t f = 0; f < shape_.filters; ++f) {
        const M* wf = filters_.data() + f * k;
        float* out_row = out.data() + f * shape_.patches();
        for (std::size_t p = 0; p < shape_.patches(); ++p) {
            out_row[p] = simd::DenseOps<D, M>::dot(
                impl, patches_.data() + p * k, wf, k, qd_, qm_);
        }
    }
    return out;
}

template class LowpConv<std::int8_t, std::int8_t>;
template class LowpConv<std::int16_t, std::int16_t>;
template class LowpConv<std::int8_t, std::int16_t>;
template class LowpConv<float, float>;

} // namespace buckwild::nn
