#include "nn/layers.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace buckwild::nn {

namespace {

/// He-style uniform init in [-s, s], then snapped to the weight grid.
void
init_weights(std::vector<float>& w, float scale, QuantSpec spec,
             rng::Xorshift128& gen)
{
    for (auto& v : w) {
        v = (rng::to_unit_float(gen()) * 2.0f - 1.0f) * scale;
        v = quantize(v, spec, gen);
    }
}

} // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, QuantSpec weight_spec, std::uint32_t seed)
    : in_channels_(in_channels), out_channels_(out_channels),
      kernel_(kernel), spec_(weight_spec),
      weights_(out_channels * in_channels * kernel * kernel),
      bias_(out_channels, 0.0f), gen_(seed)
{
    if (kernel == 0 || in_channels == 0 || out_channels == 0)
        fatal("Conv2d requires positive dimensions");
    const float scale = std::sqrt(
        2.0f / static_cast<float>(in_channels * kernel * kernel));
    init_weights(weights_, scale, spec_, gen_);
}

Volume
Conv2d::forward(const Volume& in)
{
    if (in.channels != in_channels_)
        fatal("Conv2d input channel mismatch");
    if (in.height < kernel_ || in.width < kernel_)
        fatal("Conv2d input smaller than kernel");
    input_ = in;
    const std::size_t oh = in.height - kernel_ + 1;
    const std::size_t ow = in.width - kernel_ + 1;
    Volume out(out_channels_, oh, ow);
    for (std::size_t f = 0; f < out_channels_; ++f) {
        const float* wf =
            weights_.data() + f * in_channels_ * kernel_ * kernel_;
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
                float acc = bias_[f];
                const float* wk = wf;
                for (std::size_t c = 0; c < in_channels_; ++c)
                    for (std::size_t ky = 0; ky < kernel_; ++ky)
                        for (std::size_t kx = 0; kx < kernel_; ++kx)
                            acc += *wk++ * in.at(c, y + ky, x + kx);
                out.at(f, y, x) = acc;
            }
        }
    }
    return out;
}

Volume
Conv2d::backward(const Volume& grad_out, float eta)
{
    const std::size_t oh = grad_out.height;
    const std::size_t ow = grad_out.width;
    Volume grad_in(in_channels_, input_.height, input_.width);
    std::vector<float> grad_w(weights_.size(), 0.0f);
    std::vector<float> grad_b(out_channels_, 0.0f);

    for (std::size_t f = 0; f < out_channels_; ++f) {
        const float* wf =
            weights_.data() + f * in_channels_ * kernel_ * kernel_;
        float* gwf = grad_w.data() + f * in_channels_ * kernel_ * kernel_;
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
                const float g = grad_out.at(f, y, x);
                if (g == 0.0f) continue;
                grad_b[f] += g;
                std::size_t k = 0;
                for (std::size_t c = 0; c < in_channels_; ++c)
                    for (std::size_t ky = 0; ky < kernel_; ++ky)
                        for (std::size_t kx = 0; kx < kernel_; ++kx, ++k) {
                            gwf[k] += g * input_.at(c, y + ky, x + kx);
                            grad_in.at(c, y + ky, x + kx) += g * wf[k];
                        }
            }
        }
    }
    // SGD step with grid re-quantization (Buckwild! semantics).
    for (std::size_t k = 0; k < weights_.size(); ++k)
        weights_[k] = quantize(weights_[k] - eta * grad_w[k], spec_, gen_);
    for (std::size_t f = 0; f < out_channels_; ++f)
        bias_[f] -= eta * grad_b[f]; // biases stay full precision
    return grad_in;
}

Volume
MaxPool2::forward(const Volume& in)
{
    input_ = in;
    const std::size_t oh = in.height / 2;
    const std::size_t ow = in.width / 2;
    Volume out(in.channels, oh, ow);
    argmax_.assign(out.size(), 0);
    for (std::size_t c = 0; c < in.channels; ++c) {
        for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < ow; ++x) {
                float best = in.at(c, 2 * y, 2 * x);
                std::size_t best_idx =
                    (c * in.height + 2 * y) * in.width + 2 * x;
                for (int dy = 0; dy < 2; ++dy)
                    for (int dx = 0; dx < 2; ++dx) {
                        const float v = in.at(c, 2 * y + dy, 2 * x + dx);
                        if (v > best) {
                            best = v;
                            best_idx = (c * in.height + 2 * y + dy) *
                                           in.width +
                                       2 * x + dx;
                        }
                    }
                out.at(c, y, x) = best;
                argmax_[(c * oh + y) * ow + x] = best_idx;
            }
        }
    }
    return out;
}

Volume
MaxPool2::backward(const Volume& grad_out)
{
    Volume grad_in(input_.channels, input_.height, input_.width);
    for (std::size_t i = 0; i < grad_out.size(); ++i)
        grad_in.data[argmax_[i]] += grad_out.data[i];
    return grad_in;
}

Volume
Relu::forward(const Volume& in)
{
    input_ = in;
    Volume out = in;
    for (auto& v : out.data) v = std::max(0.0f, v);
    return out;
}

Volume
Relu::backward(const Volume& grad_out)
{
    Volume grad_in = grad_out;
    for (std::size_t i = 0; i < grad_in.size(); ++i)
        if (input_.data[i] <= 0.0f) grad_in.data[i] = 0.0f;
    return grad_in;
}

Dense::Dense(std::size_t in_features, std::size_t out_features,
             QuantSpec weight_spec, std::uint32_t seed)
    : in_(in_features), out_(out_features), spec_(weight_spec),
      weights_(in_features * out_features), bias_(out_features, 0.0f),
      gen_(seed)
{
    if (in_features == 0 || out_features == 0)
        fatal("Dense requires positive dimensions");
    const float scale =
        std::sqrt(2.0f / static_cast<float>(in_features));
    init_weights(weights_, scale, spec_, gen_);
}

std::vector<float>
Dense::forward(const std::vector<float>& in)
{
    if (in.size() != in_) fatal("Dense input size mismatch");
    input_ = in;
    std::vector<float> out(out_);
    for (std::size_t o = 0; o < out_; ++o) {
        const float* row = weights_.data() + o * in_;
        float acc = bias_[o];
        for (std::size_t k = 0; k < in_; ++k) acc += row[k] * in[k];
        out[o] = acc;
    }
    return out;
}

std::vector<float>
Dense::backward(const std::vector<float>& grad_out, float eta)
{
    std::vector<float> grad_in(in_, 0.0f);
    for (std::size_t o = 0; o < out_; ++o) {
        float* row = weights_.data() + o * in_;
        const float g = grad_out[o];
        for (std::size_t k = 0; k < in_; ++k) {
            grad_in[k] += g * row[k];
            row[k] = quantize(row[k] - eta * g * input_[k], spec_, gen_);
        }
        bias_[o] -= eta * g;
    }
    return grad_in;
}

std::pair<float, std::vector<float>>
SoftmaxXent::loss_and_grad(const std::vector<float>& logits, int label)
{
    const float maxv = *std::max_element(logits.begin(), logits.end());
    std::vector<float> p(logits.size());
    float sum = 0.0f;
    for (std::size_t k = 0; k < logits.size(); ++k) {
        p[k] = std::exp(logits[k] - maxv);
        sum += p[k];
    }
    for (auto& v : p) v /= sum;
    const float loss =
        -std::log(std::max(p[static_cast<std::size_t>(label)], 1e-12f));
    p[static_cast<std::size_t>(label)] -= 1.0f; // dL/dlogits
    return {loss, std::move(p)};
}

int
SoftmaxXent::predict(const std::vector<float>& logits)
{
    return static_cast<int>(
        std::max_element(logits.begin(), logits.end()) - logits.begin());
}

} // namespace buckwild::nn
