/**
 * @file
 * A LeNet-style CNN for the Fig 7b experiment: test error vs model
 * precision under biased/unbiased rounding on the synthetic digit task.
 *
 * Architecture (16x16x1 input):
 *   conv 8@3x3 -> ReLU -> maxpool2   (14x14x8 -> 7x7x8)
 *   conv 16@3x3 -> ReLU -> maxpool2  (5x5x16  -> 2x2x16)
 *   dense 64 -> 32 -> ReLU -> dense 32 -> 10 -> softmax
 *
 * Every weight tensor lives on the QuantSpec grid; "model precision" in
 * the Fig 7b sense sets the bits of all layers at once.
 */
#ifndef BUCKWILD_NN_LENET_H
#define BUCKWILD_NN_LENET_H

#include <cstdint>
#include <memory>
#include <vector>

#include "dataset/digits.h"
#include "nn/layers.h"

namespace buckwild::nn {

/// Training configuration for the CNN.
struct LenetConfig
{
    QuantSpec weight_spec;     ///< model precision (bits 32 = baseline)
    /// Activation precision — the D term of the DMGC model applied to the
    /// network's intermediate feature maps (quantized after every layer).
    QuantSpec activation_spec;
    std::size_t epochs = 4;
    float step_size = 0.02f;
    float step_decay = 0.85f;
    std::uint32_t seed = 2017;
};

/// Training outcome.
struct LenetMetrics
{
    std::vector<double> train_loss_trace;
    double train_accuracy = 0.0;
    double test_accuracy = 0.0;
    double test_error() const { return 1.0 - test_accuracy; }
};

/// The network.
class Lenet
{
  public:
    explicit Lenet(const LenetConfig& config);

    /// Trains on `train`, evaluates on `test`.
    LenetMetrics train(const dataset::DigitDataset& train,
                       const dataset::DigitDataset& test);

    /// Predicted class of one image (16x16 floats in [-1, 1]).
    int predict(const float* image);

  private:
    /// Forward to logits; `training` keeps caches for backward.
    std::vector<float> forward(const float* image);

    LenetConfig cfg_;
    Conv2d conv1_;
    Relu relu1_;
    MaxPool2 pool1_;
    Conv2d conv2_;
    Relu relu2_;
    MaxPool2 pool2_;
    Dense fc1_;
    Relu relu3_;
    Dense fc2_;
    Volume pooled2_; ///< cached shape for backward un-flattening
    rng::Xorshift128 act_gen_{0xACC5};
};

} // namespace buckwild::nn

#endif // BUCKWILD_NN_LENET_H
