/**
 * @file
 * Genuinely low-precision convolution forward pass (Fig 7a).
 *
 * §7 measures "the throughput of a convolution layer as a proxy for the
 * hardware efficiency of the system", on a layer "structured identically
 * to the first convolution layer from Caffe's AlexNet example"
 * (227x227x3 input, 96 filters of 11x11x3, stride 4 -> 55x55x96).
 *
 * The layer is lowered to im2col + GEMM, and the GEMM inner products run
 * through the same hand-optimized kernels as the SGD engine (simd::
 * DenseOps), so the Fig 7a expectation — throughput linear in 1/bits when
 * hand-optimized, flat when compiled naively — follows from the same
 * code paths as the rest of the paper.
 */
#ifndef BUCKWILD_NN_CONV_LOWP_H
#define BUCKWILD_NN_CONV_LOWP_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/ops.h"
#include "util/aligned_buffer.h"

namespace buckwild::nn {

/// Geometry of a convolution layer.
struct ConvShape
{
    std::size_t in_channels = 3;
    std::size_t in_size = 227;  ///< square input
    std::size_t filters = 96;
    std::size_t kernel = 11;
    std::size_t stride = 4;

    /// AlexNet conv1, the paper's proxy layer.
    static ConvShape alexnet_conv1() { return {}; }

    std::size_t out_size() const
    {
        return (in_size - kernel) / stride + 1;
    }
    std::size_t patch_elements() const
    {
        return in_channels * kernel * kernel;
    }
    std::size_t patches() const { return out_size() * out_size(); }

    /// MACs of one forward pass.
    double
    macs() const
    {
        return static_cast<double>(filters) *
               static_cast<double>(patches()) *
               static_cast<double>(patch_elements());
    }
};

/**
 * A convolution layer lowered to quantized im2col + GEMM with rep types
 * D (activations / im2col patches) and M (filter weights).
 */
template <typename D, typename M>
class LowpConv
{
  public:
    explicit LowpConv(const ConvShape& shape, std::uint32_t seed = 1);

    /// Runs one forward pass over a synthetic image; returns the output
    /// volume (filters x out x out) in floats. `impl` selects kernels.
    std::vector<float> forward(simd::Impl impl);

    const ConvShape& shape() const { return shape_; }

  private:
    ConvShape shape_;
    AlignedBuffer<D> patches_;  ///< patches() x patch_elements (row-major)
    AlignedBuffer<M> filters_;  ///< filters x patch_elements
    float qd_;
    float qm_;
};

// Implemented for: (int8, int8), (int16, int16), (float, float),
// (int8, int16). Explicit instantiations live in conv_lowp.cpp.

} // namespace buckwild::nn

#endif // BUCKWILD_NN_CONV_LOWP_H
