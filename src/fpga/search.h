/**
 * @file
 * Heuristic design-space search, in the spirit of DHDL's parameter tuning
 * ("uses heuristic search to choose optimal parameters for a particular
 * design", §8).
 *
 * Given fixed precisions and a model size, the search sweeps lane counts,
 * pipeline shapes, and mini-batch sizes, keeps only designs that fit the
 * device, and returns the Pareto-best by throughput (ties broken by
 * fewer resources).
 */
#ifndef BUCKWILD_FPGA_SEARCH_H
#define BUCKWILD_FPGA_SEARCH_H

#include <vector>

#include "fpga/model.h"

namespace buckwild::fpga {

/// A fully evaluated candidate design.
struct EvaluatedDesign
{
    DesignPoint design;
    ResourceEstimate resources;
    ThroughputEstimate throughput;
    double watts = 0.0;

    double gnps_per_watt() const
    {
        return watts > 0.0 ? throughput.gnps / watts : 0.0;
    }
};

/// Search constraints.
struct SearchSpace
{
    int dataset_bits = 8;
    int model_bits = 8;
    std::size_t model_size = 1 << 14;
    bool unbiased_rounding = true;
    std::vector<std::size_t> lane_options = {8, 16, 32, 64, 128, 256};
    std::vector<std::size_t> batch_options = {1, 2, 4, 8, 16, 32};
};

/// Evaluates every (lanes, shape, batch) combination that fits; sorted
/// descending by GNPS.
std::vector<EvaluatedDesign> enumerate_designs(const SearchSpace& space,
                                               const Device& device);

/// The best-fitting design by throughput.
/// @throws std::runtime_error if nothing fits.
EvaluatedDesign best_design(const SearchSpace& space, const Device& device);

} // namespace buckwild::fpga

#endif // BUCKWILD_FPGA_SEARCH_H
