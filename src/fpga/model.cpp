#include "fpga/model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace buckwild::fpga {

std::string
to_string(PipelineShape shape)
{
    return shape == PipelineShape::kTwoStage ? "2-stage" : "3-stage";
}

std::string
DesignPoint::to_string() const
{
    return "D" + std::to_string(dataset_bits) + "M" +
           std::to_string(model_bits) + " x" + std::to_string(lanes) + " " +
           fpga::to_string(shape) + " B" + std::to_string(batch_size) +
           (unbiased_rounding ? " unbiased" : " biased");
}

bool
ResourceEstimate::fits(const Device& dev) const
{
    return dsp_frac(dev) <= 1.0 && alm_frac(dev) <= 1.0 &&
           bram_frac(dev) <= 1.0;
}

namespace {

void
validate(const DesignPoint& d)
{
    if (d.dataset_bits != 4 && d.dataset_bits != 8 && d.dataset_bits != 16 &&
        d.dataset_bits != 32)
        fatal("dataset_bits must be 4, 8, 16, or 32");
    if (d.model_bits != 4 && d.model_bits != 8 && d.model_bits != 16 &&
        d.model_bits != 32)
        fatal("model_bits must be 4, 8, 16, or 32");
    if (d.lanes == 0) fatal("lanes must be >= 1");
    if (d.batch_size == 0) fatal("batch_size must be >= 1");
    if (d.model_size == 0) fatal("model_size must be >= 1");
}

/// MAC lanes one DSP block provides at a given multiplier width
/// (9x9 packing for narrow fixed point, DSP pairs + glue for fp32).
double
macs_per_dsp(int bits)
{
    switch (bits) {
      case 4: return 4.0;
      case 8: return 3.0;
      case 16: return 2.0;
      default: return 0.5; // fp32 needs ~2 DSPs per multiply
    }
}

/// ALM glue per MAC lane (accumulators, muxing, rounding datapath).
double
alms_per_lane(int dataset_bits, int model_bits)
{
    return 30.0 + 1.5 * static_cast<double>(dataset_bits + model_bits);
}

} // namespace

ResourceEstimate
estimate_resources(const DesignPoint& d, const Device& dev)
{
    validate(d);
    (void)dev;
    ResourceEstimate r;

    // One MAC per lane for the dot; the AXPY multiplier is shared (the
    // stages are time-multiplexed against memory), plus one multiplier
    // per lane for the update path in the 3-stage shape.
    const double mac_lanes = static_cast<double>(d.lanes) *
                             (d.shape == PipelineShape::kThreeStage ? 2.0
                                                                    : 1.5);
    const int mult_bits = std::max(d.dataset_bits, d.model_bits);
    r.dsps = mac_lanes / macs_per_dsp(mult_bits);

    r.alms = static_cast<double>(d.lanes) *
             alms_per_lane(d.dataset_bits, d.model_bits);
    if (d.unbiased_rounding) {
        // One 128-bit XORSHIFT module per 32 lanes (~400 ALMs each).
        r.alms += 400.0 * std::ceil(static_cast<double>(d.lanes) / 32.0);
    }
    r.alms += 5000.0; // control, AGUs, memory command generators

    // BRAM: model + example buffering. The 3-stage shape double-buffers
    // the example data (the stage-2 -> stage-3 copy); mini-batching
    // buffers B examples.
    const double model_kbits =
        static_cast<double>(d.model_size) * d.model_bits / 1024.0;
    const double example_kbits = static_cast<double>(d.model_size) *
                                 d.dataset_bits / 1024.0 *
                                 static_cast<double>(d.batch_size);
    const double copies =
        d.shape == PipelineShape::kThreeStage ? 2.0 : 1.0;
    r.bram_kbits = model_kbits + copies * example_kbits;
    return r;
}

ThroughputEstimate
estimate_throughput(const DesignPoint& d, const Device& dev)
{
    validate(d);
    ThroughputEstimate t;

    // ---- memory side: sustained elements/cycle from DRAM.
    const double cycles_per_second = dev.clock_mhz * 1e6;
    const double bytes_per_cycle = dev.dram_gbps * 1e9 / cycles_per_second;
    const double example_bytes =
        static_cast<double>(d.model_size) * d.dataset_bits / 8.0;
    t.bursts_per_example = example_bytes / dev.burst_bytes;
    // One command sequence fetches a whole batch; its issue overhead is
    // paid once per command.
    const double bursts_per_command =
        t.bursts_per_example * static_cast<double>(d.batch_size);
    const double burst_cycles = dev.burst_bytes / bytes_per_cycle;
    const double command_cycles =
        dev.command_overhead_cycles + bursts_per_command * burst_cycles;
    const double elements_per_command =
        static_cast<double>(d.model_size) *
        static_cast<double>(d.batch_size);
    t.memory_elements_per_cycle = elements_per_command / command_cycles;

    // ---- compute side: lanes per cycle; the 2-stage shape reads every
    // element twice through the process stage.
    const double reuse = d.shape == PipelineShape::kTwoStage ? 2.0 : 1.0;
    t.compute_elements_per_cycle = static_cast<double>(d.lanes) / reuse;

    t.elements_per_cycle = std::min(t.memory_elements_per_cycle,
                                    t.compute_elements_per_cycle);
    t.memory_bound =
        t.memory_elements_per_cycle < t.compute_elements_per_cycle;
    t.gnps = t.elements_per_cycle * cycles_per_second / 1e9;
    return t;
}

double
estimate_watts(const DesignPoint& d, const Device& dev)
{
    const ResourceEstimate r = estimate_resources(d, dev);
    return dev.static_watts + r.dsps * dev.watts_per_dsp +
           r.alms * dev.watts_per_alm +
           r.bram_kbits * dev.watts_per_bram_kbit;
}

double
gnps_per_watt(const DesignPoint& d, const Device& dev)
{
    return estimate_throughput(d, dev).gnps / estimate_watts(d, dev);
}

} // namespace buckwild::fpga
