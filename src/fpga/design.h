/**
 * @file
 * FPGA design-space types for the §8 study.
 *
 * The paper implements linear-regression SGD on an Altera Stratix V via
 * DHDL, exploring: dataset/model precision (the DMGC axes), SIMD lane
 * count ("effectively any length"), plain vs mini-batch SGD, and a
 * 2-stage (data-load / data-process) vs 3-stage (load / error-compute /
 * update-compute) pipeline (Fig 7c). We reproduce that exploration with
 * a parameterized analytic model: resource estimation (DSP/BRAM/ALM),
 * a DRAM burst model with per-command issue overhead, pipeline-rate
 * throughput, and a power model for GNPS/watt.
 */
#ifndef BUCKWILD_FPGA_DESIGN_H
#define BUCKWILD_FPGA_DESIGN_H

#include <cstddef>
#include <string>

namespace buckwild::fpga {

/// The two dataflow structures of Fig 7c.
enum class PipelineShape {
    kTwoStage,   ///< load | process (process reads each element twice)
    kThreeStage, ///< load | error-compute | update-compute (BRAM copy)
};

/// "2-stage" / "3-stage".
std::string to_string(PipelineShape shape);

/// One point in the design space.
struct DesignPoint
{
    int dataset_bits = 8;  ///< D precision (4, 8, 16, or 32 for float)
    int model_bits = 8;    ///< M precision
    std::size_t lanes = 32;   ///< SIMD elements processed per cycle
    PipelineShape shape = PipelineShape::kTwoStage;
    std::size_t batch_size = 1; ///< examples per model update
    bool unbiased_rounding = true; ///< XORSHIFT dither modules on chip

    std::size_t model_size = 1 << 14; ///< n (model must fit in BRAM)
    std::string to_string() const;
};

/// The target device (defaults: Stratix V GS 5SGSD8-class).
struct Device
{
    std::size_t alms = 262400;
    std::size_t dsps = 1963;
    std::size_t bram_kbits = 2567 * 20; ///< M20K blocks x 20 kbit
    double clock_mhz = 200.0;
    double dram_gbps = 12.8;      ///< off-chip bandwidth, GB/s
    double burst_bytes = 64.0;    ///< one DRAM burst
    double command_overhead_cycles = 24.0; ///< per memory command issue
    double static_watts = 8.0;
    /// Dynamic power per utilized resource (rough Stratix-V-class fits).
    double watts_per_dsp = 0.0025;
    double watts_per_alm = 2.0e-5;
    double watts_per_bram_kbit = 6.0e-5;
};

} // namespace buckwild::fpga

#endif // BUCKWILD_FPGA_DESIGN_H
