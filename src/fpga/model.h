/**
 * @file
 * Resource, throughput, and power estimation for FPGA SGD designs (§8).
 *
 * Resource model:
 *  - multipliers: a DSP block packs more narrow multiplies (9x9 pairs)
 *    than wide ones; fp32 needs DSPs plus ALM glue — so halving precision
 *    "reclaims freed logic resources";
 *  - BRAM: the model vector, the example buffers (two copies for the
 *    3-stage shape — "the second stage [copies] data from the BRAM it
 *    reads from to the BRAM that the third stage reads from"), and the
 *    mini-batch buffer;
 *  - ALMs: per-lane datapath glue plus XORSHIFT dither modules when
 *    unbiased rounding is on.
 *
 * Throughput model (elements per cycle):
 *  - memory: DRAM bandwidth minus per-command issue overhead; plain SGD
 *    issues one command sequence per example, mini-batch amortizes it
 *    over B examples — reproducing "mini-batch SGD has the highest
 *    throughput unless a single data vector spans at least 100 DRAM
 *    bursts";
 *  - compute: `lanes` elements per cycle; the 2-stage shape must read
 *    each element twice through the same datapath (half rate), the
 *    3-stage shape streams at full rate but needs the extra BRAM copy.
 *
 * Dataset throughput GNPS = min(memory, compute) * clock, as in §4.
 */
#ifndef BUCKWILD_FPGA_MODEL_H
#define BUCKWILD_FPGA_MODEL_H

#include <cstddef>

#include "fpga/design.h"

namespace buckwild::fpga {

/// Estimated resource usage of one design.
struct ResourceEstimate
{
    double dsps = 0.0;
    double alms = 0.0;
    double bram_kbits = 0.0;

    /// Utilization fractions against a device.
    double dsp_frac(const Device& dev) const
    {
        return dsps / static_cast<double>(dev.dsps);
    }
    double alm_frac(const Device& dev) const
    {
        return alms / static_cast<double>(dev.alms);
    }
    double bram_frac(const Device& dev) const
    {
        return bram_kbits / static_cast<double>(dev.bram_kbits);
    }

    /// True if the design fits on the device.
    bool fits(const Device& dev) const;
};

/// Throughput breakdown of one design.
struct ThroughputEstimate
{
    double memory_elements_per_cycle = 0.0;
    double compute_elements_per_cycle = 0.0;
    double elements_per_cycle = 0.0; ///< min of the two
    double gnps = 0.0;               ///< at the device clock
    bool memory_bound = false;

    /// DRAM bursts one example spans (the §8 crossover variable).
    double bursts_per_example = 0.0;
};

/// Estimates resources for a design.
ResourceEstimate estimate_resources(const DesignPoint& design,
                                    const Device& device);

/// Estimates throughput for a design on a device.
ThroughputEstimate estimate_throughput(const DesignPoint& design,
                                       const Device& device);

/// Estimated total power draw (static + dynamic), watts.
double estimate_watts(const DesignPoint& design, const Device& device);

/// GNPS per watt — the paper reports 0.339 for the FPGA vs 0.143 for the
/// Xeon.
double gnps_per_watt(const DesignPoint& design, const Device& device);

} // namespace buckwild::fpga

#endif // BUCKWILD_FPGA_MODEL_H
