#include "fpga/search.h"

#include <algorithm>

#include "util/logging.h"

namespace buckwild::fpga {

std::vector<EvaluatedDesign>
enumerate_designs(const SearchSpace& space, const Device& device)
{
    std::vector<EvaluatedDesign> out;
    for (std::size_t lanes : space.lane_options) {
        for (PipelineShape shape :
             {PipelineShape::kTwoStage, PipelineShape::kThreeStage}) {
            for (std::size_t batch : space.batch_options) {
                DesignPoint d;
                d.dataset_bits = space.dataset_bits;
                d.model_bits = space.model_bits;
                d.lanes = lanes;
                d.shape = shape;
                d.batch_size = batch;
                d.unbiased_rounding = space.unbiased_rounding;
                d.model_size = space.model_size;

                EvaluatedDesign e;
                e.design = d;
                e.resources = estimate_resources(d, device);
                if (!e.resources.fits(device)) continue;
                e.throughput = estimate_throughput(d, device);
                e.watts = estimate_watts(d, device);
                out.push_back(e);
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const EvaluatedDesign& a, const EvaluatedDesign& b) {
                  if (a.throughput.gnps != b.throughput.gnps)
                      return a.throughput.gnps > b.throughput.gnps;
                  // Ties: prefer fewer resources (less area, less power).
                  return a.watts < b.watts;
              });
    return out;
}

EvaluatedDesign
best_design(const SearchSpace& space, const Device& device)
{
    const auto designs = enumerate_designs(space, device);
    if (designs.empty())
        fatal("no design in the search space fits the device");
    return designs.front();
}

} // namespace buckwild::fpga
