#include "gate/admission.h"

#include <algorithm>
#include <limits>

namespace buckwild::gate {

// ---------------------------------------------------------------------
// TokenBucket
// ---------------------------------------------------------------------

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_(rate_per_s), burst_(burst), tokens_(burst),
      last_s_(-std::numeric_limits<double>::infinity())
{
}

void
TokenBucket::refill(double now_s) const
{
    if (now_s > last_s_ &&
        last_s_ != -std::numeric_limits<double>::infinity())
        tokens_ = std::min(burst_, tokens_ + (now_s - last_s_) * rate_);
    // A backwards clock only skips refill; tokens never drain on it.
    if (now_s > last_s_) last_s_ = now_s;
}

bool
TokenBucket::try_take(double now_s, double cost)
{
    if (rate_ <= 0.0) return true; // unlimited
    refill(now_s);
    if (tokens_ < cost) return false;
    tokens_ -= cost;
    return true;
}

double
TokenBucket::available(double now_s) const
{
    if (rate_ <= 0.0) return std::numeric_limits<double>::infinity();
    refill(now_s);
    return tokens_;
}

// ---------------------------------------------------------------------
// CostModel
// ---------------------------------------------------------------------

CostModel::CostModel(double initial_seconds_per_number)
    : seconds_per_number_(initial_seconds_per_number > 0.0
                              ? initial_seconds_per_number
                              : 1e-9)
{
}

double
CostModel::seed_seconds_per_number(const dmgc::PerfModel& perf,
                                   const dmgc::Signature& sig,
                                   std::size_t threads, std::size_t dim,
                                   double fallback_gnps)
{
    double gnps = fallback_gnps;
    if (perf.is_calibrated(sig))
        gnps = perf.predict_gnps(sig, threads, dim == 0 ? 1 : dim);
    if (gnps <= 0.0) gnps = 1.0;
    return 1.0 / (gnps * 1e9);
}

void
CostModel::observe(double busy_seconds, double numbers)
{
    if (numbers <= 0.0 || busy_seconds <= 0.0) return;
    const double sample = busy_seconds / numbers;
    double current = seconds_per_number_.load(std::memory_order_relaxed);
    double next;
    do {
        next = current + (sample - current) / 8.0; // EWMA, alpha = 1/8
    } while (!seconds_per_number_.compare_exchange_weak(
        current, next, std::memory_order_relaxed));
}

double
CostModel::seconds_per_number() const
{
    return seconds_per_number_.load(std::memory_order_relaxed);
}

double
CostModel::estimate_seconds(double numbers) const
{
    return numbers * seconds_per_number();
}

// ---------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(std::move(config))
{
}

Decision
AdmissionController::admit(const ScoreRequest& request,
                           double backlog_seconds, double service_seconds,
                           double now_s)
{
    // Rate limit first: the cheapest check, and the one that must fire
    // even for requests that would otherwise be feasible (fairness is
    // not a function of load).
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = buckets_.find(request.tenant);
        if (it == buckets_.end()) {
            double rate = config_.tenant_rate;
            double burst = config_.tenant_burst;
            if (auto ov = config_.overrides.find(request.tenant);
                ov != config_.overrides.end()) {
                rate = ov->second.first;
                burst = ov->second.second;
            }
            it = buckets_
                     .emplace(request.tenant, TokenBucket(rate, burst))
                     .first;
        }
        if (!it->second.try_take(now_s))
            return {Status::kResourceExhausted, "rate_limit"};
    }
    // Deadline feasibility: refuse now what would finish late anyway.
    if (request.deadline_us > 0) {
        const double budget =
            static_cast<double>(request.deadline_us) * 1e-6;
        if (backlog_seconds + service_seconds > budget)
            return {Status::kDeadlineExceeded, "infeasible_deadline"};
    }
    return {Status::kOk, ""};
}

std::size_t
AdmissionController::tenant_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return buckets_.size();
}

} // namespace buckwild::gate
