/**
 * @file
 * GateClient — a pipelined client for the gate wire protocol.
 *
 * One TCP connection, many requests in flight: send() writes a frame
 * and returns; a reader thread demultiplexes responses by request id.
 * Two consumption styles compose on the same connection:
 *
 *  - call(): synchronous round trip (registers the id, sends, waits on
 *    a future) — convenience for tests and probes;
 *  - send() + handler: fire-and-handle — the open-loop load driver's
 *    path, where blocking per request would turn the driver closed-loop
 *    and mask the very overload behavior it exists to measure.
 *
 * Responses whose id has no waiting call() go to the handler; with no
 * handler installed they are dropped (a shed NACK to a driver that
 * only counts is fine to discard).
 */
#ifndef BUCKWILD_GATE_CLIENT_H
#define BUCKWILD_GATE_CLIENT_H

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <optional>
#include <thread>

#include "gate/wire.h"
#include "net/socket.h"

namespace buckwild::gate {

/// Pipelined gate-protocol client over one connection.
class GateClient
{
  public:
    using Handler = std::function<void(const ScoreResponse&)>;

    /**
     * Connects (with net::connect_tcp retry/backoff) and starts the
     * reader. Check connected() before use — a failed dial leaves the
     * client inert rather than throwing, so drivers can report it.
     */
    explicit GateClient(const net::Address& address,
                        std::chrono::milliseconds connect_deadline =
                            std::chrono::milliseconds{2000});
    ~GateClient();

    GateClient(const GateClient&) = delete;
    GateClient& operator=(const GateClient&) = delete;

    bool connected() const;

    /// Installs the handler for unmatched responses. Runs on the reader
    /// thread — keep it cheap. Install before the first send().
    void set_handler(Handler handler);

    /// Writes one request frame. False once the connection is down.
    bool send(const ScoreRequest& request);

    /**
     * Synchronous round trip: sends and waits up to `timeout` for the
     * response with this request's id. nullopt on transport failure or
     * timeout (a late response is then routed to the handler).
     */
    std::optional<ScoreResponse> call(const ScoreRequest& request,
                                      std::chrono::milliseconds timeout =
                                          std::chrono::milliseconds{5000});

    /// Closes the connection and joins the reader. Idempotent.
    void close();

  private:
    void reader_loop();

    net::Fd fd_;
    std::mutex write_mutex_;
    std::mutex pending_mutex_;
    std::map<std::uint64_t, std::promise<ScoreResponse>> pending_;
    Handler handler_;
    std::thread reader_;
    std::atomic<bool> down_{false};
};

} // namespace buckwild::gate

#endif // BUCKWILD_GATE_CLIENT_H
