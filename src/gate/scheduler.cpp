#include "gate/scheduler.h"

#include "obs/prom.h"
#include "util/logging.h"

namespace buckwild::gate {

LaneScheduler::LaneScheduler(std::size_t interactive_capacity,
                             std::size_t batch_capacity,
                             obs::MetricsRegistry* registry)
    : capacity_{interactive_capacity, batch_capacity}
{
    if (interactive_capacity == 0 || batch_capacity == 0)
        fatal("LaneScheduler requires capacity >= 1 per lane");
    obs::MetricsRegistry& reg =
        registry != nullptr ? *registry : obs::MetricsRegistry::global();
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        depth_gauge_[lane] = &reg.gauge(obs::labeled(
            "gate.queue_depth",
            {{"lane", to_string(static_cast<Lane>(lane))}}));
}

bool
LaneScheduler::try_push(GateTask&& task)
{
    const auto lane = static_cast<std::size_t>(task.request.lane);
    const std::uint64_t numbers = task.request.feature_count();
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_ || lanes_[lane].size() >= capacity_[lane])
            return false;
        lanes_[lane].push_back(std::move(task));
        depth = lanes_[lane].size();
        backlog_numbers_.fetch_add(numbers, std::memory_order_relaxed);
    }
    depth_gauge_[lane]->set(static_cast<double>(depth));
    not_empty_.notify_one();
    return true;
}

bool
LaneScheduler::pop(GateTask& out)
{
    std::size_t lane;
    std::size_t depth;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        not_empty_.wait(lock, [this] {
            return closed_ || !lanes_[0].empty() || !lanes_[1].empty();
        });
        // Strict priority: batch is served only from an empty
        // interactive lane.
        if (!lanes_[0].empty())
            lane = 0;
        else if (!lanes_[1].empty())
            lane = 1;
        else
            return false; // closed and drained
        out = std::move(lanes_[lane].front());
        lanes_[lane].pop_front();
        depth = lanes_[lane].size();
        backlog_numbers_.fetch_sub(out.request.feature_count(),
                                   std::memory_order_relaxed);
    }
    depth_gauge_[lane]->set(static_cast<double>(depth));
    return true;
}

void
LaneScheduler::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

std::size_t
LaneScheduler::depth(Lane lane) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lanes_[static_cast<std::size_t>(lane)].size();
}

} // namespace buckwild::gate
