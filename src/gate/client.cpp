#include "gate/client.h"

#include "net/frame.h"
#include "obs/obs.h"
#include "obs/prom.h"

namespace buckwild::gate {

GateClient::GateClient(const net::Address& address,
                       std::chrono::milliseconds connect_deadline)
{
    std::string error;
    fd_ = net::connect_tcp(address, connect_deadline, &error);
    if (!fd_.valid()) {
        down_.store(true, std::memory_order_release);
        return;
    }
    reader_ = std::thread([this] { reader_loop(); });
}

GateClient::~GateClient()
{
    close();
}

bool
GateClient::connected() const
{
    return !down_.load(std::memory_order_acquire);
}

void
GateClient::set_handler(Handler handler)
{
    std::lock_guard<std::mutex> lock(pending_mutex_);
    handler_ = std::move(handler);
}

bool
GateClient::send(const ScoreRequest& request)
{
    if (down_.load(std::memory_order_acquire)) return false;
    std::vector<std::uint8_t> payload = serialize(request);
    if (obs::Tracer::global().enabled() && !request.trace.ctx.valid()) {
        // Trace origin: mint a root context per request and append its
        // block to the already-serialized payload — the features are
        // not copied just to stamp a context. Callers that pre-set a
        // context had it serialized above and keep it.
        obs::WireTrace trace;
        trace.ctx = obs::make_root_context();
        trace.send_ts_ns = obs::trace_now_ns();
        obs::append_trace_block(payload, trace);
        obs::Tracer::global().instant("gate", "gate.request", trace.ctx);
    }
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!fd_.valid()) return false;
    if (!net::write_frame(fd_.get(), payload.data(), payload.size())) {
        down_.store(true, std::memory_order_release);
        return false;
    }
    return true;
}

std::optional<ScoreResponse>
GateClient::call(const ScoreRequest& request,
                 std::chrono::milliseconds timeout)
{
    std::future<ScoreResponse> future;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        future = pending_[request.request_id].get_future();
    }
    if (!send(request)) {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.erase(request.request_id);
        return std::nullopt;
    }
    if (future.wait_for(timeout) != std::future_status::ready) {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.erase(request.request_id);
        return std::nullopt;
    }
    return future.get();
}

void
GateClient::close()
{
    down_.store(true, std::memory_order_release);
    fd_.shutdown_rdwr();
    if (reader_.joinable()) reader_.join();
    {
        std::lock_guard<std::mutex> lock(write_mutex_);
        fd_.reset();
    }
}

void
GateClient::reader_loop()
{
    std::vector<std::uint8_t> payload;
    while (true) {
        const net::FrameResult result = net::read_frame(
            fd_.get(), payload, net::kDefaultMaxFrameBytes);
        if (result != net::FrameResult::kOk) break;
        ScoreResponse response;
        if (!deserialize(payload.data(), payload.size(), response))
            continue; // tolerate one unparseable frame; framing is intact
        if (response.trace.ctx.valid()) {
            // A traced response is a complete NTP-style sample: the
            // echoed request timestamps plus this arrival estimate the
            // server's clock offset, and rtt/2 is the reply wire hop.
            const std::int64_t a2 = obs::trace_now_ns();
            const obs::ClockSample sample =
                obs::clock_sample_from_reply(response.trace, a2);
            if (sample.valid) {
                obs::Tracer::global().clocksync("gate",
                                                response.trace.ctx,
                                                sample.offset_ns,
                                                sample.rtt_ns);
                static obs::Histo& hop_reply =
                    obs::MetricsRegistry::global().histogram(
                        obs::labeled("gate.hop_seconds",
                                     {{"hop", "reply"}}));
                hop_reply.record(static_cast<double>(sample.rtt_ns) *
                                 0.5e-9);
            }
        }
        Handler handler;
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            const auto it = pending_.find(response.request_id);
            if (it != pending_.end()) {
                it->second.set_value(response);
                pending_.erase(it);
                continue;
            }
            handler = handler_;
        }
        if (handler) handler(response);
    }
    down_.store(true, std::memory_order_release);
    // Fail anyone still waiting so call() wakes promptly.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& [id, promise] : pending_) {
        ScoreResponse gone;
        gone.request_id = id;
        gone.status = Status::kShuttingDown;
        gone.message = "connection closed";
        promise.set_value(gone);
    }
    pending_.clear();
}

} // namespace buckwild::gate
