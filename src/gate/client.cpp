#include "gate/client.h"

#include "net/frame.h"

namespace buckwild::gate {

GateClient::GateClient(const net::Address& address,
                       std::chrono::milliseconds connect_deadline)
{
    std::string error;
    fd_ = net::connect_tcp(address, connect_deadline, &error);
    if (!fd_.valid()) {
        down_.store(true, std::memory_order_release);
        return;
    }
    reader_ = std::thread([this] { reader_loop(); });
}

GateClient::~GateClient()
{
    close();
}

bool
GateClient::connected() const
{
    return !down_.load(std::memory_order_acquire);
}

void
GateClient::set_handler(Handler handler)
{
    std::lock_guard<std::mutex> lock(pending_mutex_);
    handler_ = std::move(handler);
}

bool
GateClient::send(const ScoreRequest& request)
{
    if (down_.load(std::memory_order_acquire)) return false;
    const std::vector<std::uint8_t> payload = serialize(request);
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (!fd_.valid()) return false;
    if (!net::write_frame(fd_.get(), payload.data(), payload.size())) {
        down_.store(true, std::memory_order_release);
        return false;
    }
    return true;
}

std::optional<ScoreResponse>
GateClient::call(const ScoreRequest& request,
                 std::chrono::milliseconds timeout)
{
    std::future<ScoreResponse> future;
    {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        future = pending_[request.request_id].get_future();
    }
    if (!send(request)) {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.erase(request.request_id);
        return std::nullopt;
    }
    if (future.wait_for(timeout) != std::future_status::ready) {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        pending_.erase(request.request_id);
        return std::nullopt;
    }
    return future.get();
}

void
GateClient::close()
{
    down_.store(true, std::memory_order_release);
    fd_.shutdown_rdwr();
    if (reader_.joinable()) reader_.join();
    {
        std::lock_guard<std::mutex> lock(write_mutex_);
        fd_.reset();
    }
}

void
GateClient::reader_loop()
{
    std::vector<std::uint8_t> payload;
    while (true) {
        const net::FrameResult result = net::read_frame(
            fd_.get(), payload, net::kDefaultMaxFrameBytes);
        if (result != net::FrameResult::kOk) break;
        ScoreResponse response;
        if (!deserialize(payload.data(), payload.size(), response))
            continue; // tolerate one unparseable frame; framing is intact
        Handler handler;
        {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            const auto it = pending_.find(response.request_id);
            if (it != pending_.end()) {
                it->second.set_value(response);
                pending_.erase(it);
                continue;
            }
            handler = handler_;
        }
        if (handler) handler(response);
    }
    down_.store(true, std::memory_order_release);
    // Fail anyone still waiting so call() wakes promptly.
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (auto& [id, promise] : pending_) {
        ScoreResponse gone;
        gone.request_id = id;
        gone.status = Status::kShuttingDown;
        gone.message = "connection closed";
        promise.set_value(gone);
    }
    pending_.clear();
}

} // namespace buckwild::gate
