#include "gate/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "net/frame.h"
#include "obs/obs.h"
#include "obs/prom.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace buckwild::gate {

namespace {

double
steady_seconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

void
set_nonblocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/**
 * send(2) for the nonblocking connection fds: EAGAIN waits for
 * writability (bounded — a peer that stops reading for 5s forfeits the
 * connection) instead of failing the write_full loop outright.
 */
long
patient_send(int fd, const void* data, std::size_t n)
{
    for (int spins = 0; spins < 100; ++spins) {
        const long sent = ::send(fd, data, n, MSG_NOSIGNAL);
        if (sent >= 0 || (errno != EAGAIN && errno != EWOULDBLOCK))
            return sent;
        pollfd writable{fd, POLLOUT, 0};
        ::poll(&writable, 1, 50);
    }
    errno = EAGAIN;
    return -1;
}

/// Echoes a traced request's identity and timestamps onto its response
/// (any status, NACKs included) so the client ends up with a complete
/// NTP-style clock-offset sample. No-op for untraced requests.
void
stamp_reply_trace(const ScoreRequest& request, std::int64_t recv_ns,
                  ScoreResponse& response)
{
    if (!request.trace.ctx.valid()) return;
    response.trace.ctx = obs::child_of(request.trace.ctx);
    response.trace.echo_send_ts_ns = request.trace.send_ts_ns;
    response.trace.echo_recv_ts_ns = recv_ns;
    response.trace.send_ts_ns = obs::trace_now_ns();
}

} // namespace

/**
 * One accepted client: the fd, its incremental frame decoder, and the
 * Sink workers reply through. Reads happen only on the event-loop
 * thread; writes (worker replies, event-loop NACKs) serialize on
 * `write_mutex_`, which also guards the close handshake so a worker
 * can never write into a recycled descriptor.
 */
class GateServer::Connection : public Sink
{
  public:
    Connection(net::Fd fd, std::size_t max_frame_bytes)
        : fd_(std::move(fd)), splitter_(max_frame_bytes)
    {
    }

    int raw_fd() const { return fd_.get(); }
    net::FrameSplitter& splitter() { return splitter_; }

    void
    send_response(const ScoreResponse& response) override
    {
        // One buffer for header + payload so the frame goes out in a
        // single write_full pass (through the patient writer, since the
        // fd is nonblocking).
        const std::vector<std::uint8_t> payload = serialize(response);
        std::vector<std::uint8_t> frame;
        frame.reserve(net::kFrameHeaderBytes + payload.size());
        const std::uint32_t magic = net::kFrameMagic;
        const auto length = static_cast<std::uint32_t>(payload.size());
        for (int shift = 0; shift < 32; shift += 8)
            frame.push_back(
                static_cast<std::uint8_t>(magic >> shift));
        for (int shift = 0; shift < 32; shift += 8)
            frame.push_back(
                static_cast<std::uint8_t>(length >> shift));
        frame.insert(frame.end(), payload.begin(), payload.end());
        std::lock_guard<std::mutex> lock(write_mutex_);
        if (!fd_.valid()) return; // closed while the task was queued
        if (!net::write_full(fd_.get(), frame.data(), frame.size(),
                             &patient_send))
            fd_.shutdown_rdwr(); // let the event loop reap it
    }

    /// Closes the socket; replies already queued on workers become
    /// no-ops. Only the event loop calls this.
    void
    close()
    {
        std::lock_guard<std::mutex> lock(write_mutex_);
        fd_.reset();
    }

  private:
    net::Fd fd_;
    net::FrameSplitter splitter_;
    std::mutex write_mutex_;
};

GateServer::GateServer(ModelRouter& router, const dmgc::PerfModel& perf,
                       GateConfig config)
    : router_(router), config_(std::move(config)),
      metrics_(config_.metrics_registry != nullptr
                   ? *config_.metrics_registry
                   : obs::MetricsRegistry::global()),
      engine_(config_.impl), admission_(config_.admission),
      cost_([&] {
          // Seed from the roofline at a generic Ms8 serving signature;
          // the EWMA of observed batches takes over within a few dozen
          // requests either way.
          const dmgc::Signature sig = dmgc::Signature::dense_fixed(8, 8);
          return CostModel::seed_seconds_per_number(
              perf, sig, config_.workers, 1u << 20,
              config_.fallback_gnps);
      }()),
      scheduler_(config_.interactive_capacity, config_.batch_capacity,
                 &metrics_),
      admitted_(metrics_.counter("gate.admitted")),
      deadline_missed_(metrics_.counter("gate.deadline_missed")),
      malformed_(metrics_.counter("gate.malformed")),
      completed_(metrics_.counter("gate.completed")),
      connections_(metrics_.gauge("gate.connections"))
{
    if (config_.workers == 0) fatal("GateServer requires workers >= 1");
    for (std::size_t lane = 0; lane < kLanes; ++lane)
        latency_[lane] = &metrics_.histogram(obs::labeled(
            "gate.latency_seconds",
            {{"lane", to_string(static_cast<Lane>(lane))}}));
    const auto hop = [this](const char* name) {
        return &metrics_.histogram(
            obs::labeled("gate.hop_seconds", {{"hop", name}}));
    };
    hop_wire_in_ = hop("wire_in");
    hop_admission_ = hop("admission");
    hop_queue_ = hop("queue");
    hop_score_ = hop("score");
    std::string error;
    listener_ = net::listen_tcp(config_.bind_address, config_.port, 128,
                                &port_, &error);
    if (!listener_.valid())
        throw std::runtime_error("gate: cannot listen on " +
                                 config_.bind_address + ":" +
                                 std::to_string(config_.port) + ": " +
                                 error);
    set_nonblocking(listener_.get());
    workers_.start(config_.workers, [this](std::size_t) { worker_loop(); });
    io_thread_.start(1, [this](std::size_t) { event_loop(); });
}

GateServer::~GateServer()
{
    stop();
}

void
GateServer::stop()
{
    if (stopped_) return;
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);
    io_thread_.join();
    scheduler_.close();
    workers_.join();
}

GateStats
GateServer::stats() const
{
    GateStats out;
    out.admitted = admitted_.value();
    out.shed = shed_total_.load(std::memory_order_relaxed);
    out.deadline_missed = deadline_missed_.value();
    out.malformed = malformed_.value();
    out.completed = completed_.value();
    return out;
}

obs::Counter&
GateServer::shed_counter(const char* reason)
{
    std::lock_guard<std::mutex> lock(shed_mutex_);
    auto& slot = shed_by_reason_[reason];
    if (slot == nullptr)
        slot = &metrics_.counter(
            obs::labeled("gate.shed", {{"reason", reason}}));
    return *slot;
}

obs::Counter&
GateServer::tenant_counter(const std::string& tenant)
{
    // Event-loop thread only — no lock needed on the cache map.
    auto& slot = by_tenant_[tenant];
    if (slot == nullptr)
        slot = &metrics_.counter(
            obs::labeled("gate.tenant_admitted", {{"tenant", tenant}}));
    return *slot;
}

void
GateServer::event_loop()
{
    std::map<int, std::shared_ptr<Connection>> connections;
    std::vector<pollfd> fds;
    std::vector<std::uint8_t> payload;
    std::uint8_t buffer[64 * 1024];
    while (!stopping_.load(std::memory_order_acquire)) {
        fds.clear();
        fds.push_back({listener_.get(), POLLIN, 0});
        for (const auto& [fd, connection] : connections)
            fds.push_back({fd, POLLIN, 0});
        const int ready =
            ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 50);
        if (ready <= 0) continue;

        // New clients.
        if ((fds[0].revents & POLLIN) != 0) {
            while (true) {
                net::Fd client(
                    ::accept(listener_.get(), nullptr, nullptr));
                if (!client.valid()) break;
                if (connections.size() >= config_.max_connections) {
                    // Past the connection cap the cheapest refusal is
                    // not accepting state for the peer at all.
                    continue; // RAII closes it
                }
                set_nonblocking(client.get());
                const int fd = client.get();
                connections.emplace(
                    fd, std::make_shared<Connection>(
                            std::move(client), config_.max_frame_bytes));
                connections_.set(
                    static_cast<double>(connections.size()));
            }
        }

        // Readable clients.
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if ((fds[i].revents & (POLLIN | POLLERR | POLLHUP)) == 0)
                continue;
            const auto it = connections.find(fds[i].fd);
            if (it == connections.end()) continue;
            const std::shared_ptr<Connection>& connection = it->second;
            bool drop = false;
            while (true) {
                const long got = ::recv(connection->raw_fd(), buffer,
                                        sizeof(buffer), 0);
                if (got > 0) {
                    connection->splitter().push(
                        buffer, static_cast<std::size_t>(got));
                    net::SplitResult result;
                    while ((result = connection->splitter().next(
                                payload)) == net::SplitResult::kFrame)
                        handle_payload(connection, payload.data(),
                                       payload.size());
                    if (result == net::SplitResult::kBadMagic ||
                        result == net::SplitResult::kTooLarge) {
                        // Desynced or hostile framing: the stream has
                        // no recoverable next boundary — drop it.
                        malformed_.add(1);
                        drop = true;
                    }
                    continue;
                }
                if (got == 0) { // peer finished
                    drop = true;
                } else if (errno != EAGAIN && errno != EWOULDBLOCK &&
                           errno != EINTR) {
                    drop = true;
                }
                break;
            }
            if (drop) {
                connection->close();
                connections.erase(it);
                connections_.set(
                    static_cast<double>(connections.size()));
            }
        }
    }
    for (auto& [fd, connection] : connections) connection->close();
    connections_.set(0.0);
}

void
GateServer::handle_payload(const std::shared_ptr<Connection>& connection,
                           const std::uint8_t* data, std::size_t n)
{
    const std::int64_t recv_ns = obs::trace_now_ns();
    GateTask task;
    if (!deserialize(data, n, task.request)) {
        // Well-framed but unparseable: answer kInvalid if the request
        // id is recoverable? It is not (the parse failed) — poison the
        // connection by shutting it down; the read loop will reap it.
        malformed_.add(1);
        ScoreResponse nack;
        nack.status = Status::kInvalid;
        nack.message = "malformed score request";
        connection->send_response(nack);
        return;
    }
    const ScoreRequest& request = task.request;
    task.ctx = request.trace.ctx;
    task.recv_ns = recv_ns;
    // Wire hop: client send -> ingress arrival. Offset-skewed across
    // hosts online; buckwild_tracemerge corrects the stitched view.
    if (request.trace.ctx.valid() && request.trace.send_ts_ns != 0)
        hop_wire_in_->record(
            static_cast<double>(recv_ns - request.trace.send_ts_ns) *
            1e-9);
    obs::TracedSpan admit_span("gate", "gate.admit", task.ctx);

    ScoreResponse reject;
    reject.request_id = request.request_id;

    if (stopping_.load(std::memory_order_acquire)) {
        reject.status = Status::kShuttingDown;
        stamp_reply_trace(request, recv_ns, reject);
        connection->send_response(reject);
        return;
    }

    // Route before admitting: an unknown model must not consume the
    // tenant's tokens.
    Stopwatch admission_clock;
    const serve::ModelRegistry* registry = router_.find(request.model);
    if (registry == nullptr || registry->current() == nullptr) {
        shed_counter("unknown_model").add(1);
        shed_total_.fetch_add(1, std::memory_order_relaxed);
        reject.status = Status::kUnknownModel;
        reject.message = "no model named '" + request.model + "'";
        stamp_reply_trace(request, recv_ns, reject);
        connection->send_response(reject);
        return;
    }

    const double numbers =
        static_cast<double>(request.feature_count());
    const double service_s = cost_.estimate_seconds(numbers);
    const double backlog_s = cost_.estimate_seconds(
        static_cast<double>(scheduler_.backlog_numbers()));
    const Decision decision = admission_.admit(
        request, backlog_s, service_s, steady_seconds());
    hop_admission_->record(admission_clock.seconds());
    if (!decision.admitted()) {
        shed_counter(decision.reason).add(1);
        shed_total_.fetch_add(1, std::memory_order_relaxed);
        reject.status = decision.status;
        reject.message = decision.reason;
        stamp_reply_trace(request, recv_ns, reject);
        connection->send_response(reject);
        return;
    }

    task.sink = connection;
    task.enqueued = std::chrono::steady_clock::now();
    if (request.deadline_us > 0)
        task.deadline =
            task.enqueued + std::chrono::microseconds(request.deadline_us);
    const std::string tenant = request.tenant;
    if (!scheduler_.try_push(std::move(task))) {
        shed_counter("lane_full").add(1);
        shed_total_.fetch_add(1, std::memory_order_relaxed);
        reject.status = Status::kResourceExhausted;
        reject.message = "lane_full";
        stamp_reply_trace(request, recv_ns, reject);
        connection->send_response(reject);
        return;
    }
    admitted_.add(1);
    tenant_counter(tenant).add(1);
}

void
GateServer::worker_loop()
{
    GateTask task;
    while (scheduler_.pop(task)) {
        score_task(task);
        task.sink.reset(); // release the connection promptly
    }
}

void
GateServer::score_task(GateTask& task)
{
    const ScoreRequest& request = task.request;
    ScoreResponse response;
    response.request_id = request.request_id;

    const auto now = std::chrono::steady_clock::now();
    hop_queue_->record(
        std::chrono::duration<double>(now - task.enqueued).count());
    if (now > task.deadline) {
        // Expired while queued: the admission estimate was optimistic.
        // Failing here still beats scoring — the client has already
        // given up on the answer.
        deadline_missed_.add(1);
        response.status = Status::kDeadlineExceeded;
        response.message = "deadline expired in queue";
        stamp_reply_trace(request, task.recv_ns, response);
        task.sink->send_response(response);
        return;
    }

    const serve::ModelRegistry* registry = router_.find(request.model);
    const std::shared_ptr<const serve::ServingModel> model =
        registry != nullptr ? registry->current() : nullptr;
    if (model == nullptr) {
        response.status = Status::kUnknownModel;
        response.message = "model disappeared while queued";
        stamp_reply_trace(request, task.recv_ns, response);
        task.sink->send_response(response);
        return;
    }

    obs::TracedSpan score_span("gate", "gate.score", task.ctx);
    Stopwatch compute;
    try {
        serve::ScoreResult result;
        switch (request.encoding) {
        case FeatureEncoding::kDenseF32:
            result = engine_.score_dense(*model, request.dense.data(),
                                         request.dense.size());
            break;
        case FeatureEncoding::kDenseQ8: {
            std::vector<float> features(request.q8.size());
            dequantize_features_q8(request.q8.data(), request.q8.size(),
                                   request.scale, features.data());
            result = engine_.score_dense(*model, features.data(),
                                         features.size());
            break;
        }
        case FeatureEncoding::kSparseF32:
            result = engine_.score_sparse(*model, request.index.data(),
                                          request.dense.data(),
                                          request.dense.size());
            break;
        }
        response.margin = result.margin;
        response.score = result.score;
        response.label = result.label;
        response.model_version = result.model_version;
        completed_.add(1);
    } catch (const std::exception& e) {
        response.status = Status::kInvalid;
        response.message = e.what();
    }
    cost_.observe(compute.seconds(),
                  static_cast<double>(request.feature_count()));
    hop_score_->record(compute.seconds());
    const double latency =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      task.enqueued)
            .count();
    latency_[static_cast<std::size_t>(request.lane)]->record(latency);
    stamp_reply_trace(request, task.recv_ns, response);
    task.sink->send_response(response);
}

} // namespace buckwild::gate
