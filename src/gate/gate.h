/**
 * @file
 * Umbrella header for the serving front door.
 *
 * The gate is the network edge of the serving tier: a binary wire
 * protocol over net:: frames (wire.h), a poll-based ingress event loop
 * (server.h), model-name routing over per-name ModelRegistry instances
 * (router.h), admission control — per-tenant token buckets plus
 * cost-aware deadline rejection seeded from the DMGC roofline
 * (admission.h) — and two strict-priority lanes between ingress and
 * the scoring workers (scheduler.h). client.h is the matching
 * pipelined client the tools and benchmarks drive load with.
 */
#ifndef BUCKWILD_GATE_GATE_H
#define BUCKWILD_GATE_GATE_H

#include "gate/admission.h"
#include "gate/client.h"
#include "gate/router.h"
#include "gate/scheduler.h"
#include "gate/server.h"
#include "gate/wire.h"

#endif // BUCKWILD_GATE_GATE_H
