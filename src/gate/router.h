/**
 * @file
 * ModelRouter — the name -> model table behind the front door.
 *
 * serve::ModelRegistry is deliberately single-model (one current
 * snapshot, atomic hot-swap); multi-model serving composes it rather
 * than complicating it: the router owns one registry per model *name*,
 * and a gate request's `model` field picks the registry its features
 * are scored against. Publishing to a named registry hot-swaps that
 * model without touching its neighbors.
 *
 * Registration is expected at startup / operator pace (mutex-guarded
 * map mutation); lookup on the ingress path touches the same mutex but
 * only for the map find — the returned registry pointer is stable for
 * the router's lifetime, so workers resolve the name once per request
 * and then take snapshots lock-free at ModelRegistry speed.
 */
#ifndef BUCKWILD_GATE_ROUTER_H
#define BUCKWILD_GATE_ROUTER_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/model_registry.h"

namespace buckwild::gate {

/// Thread-safe name -> ModelRegistry table.
class ModelRouter
{
  public:
    /**
     * Returns the registry serving `name`, creating an empty one on
     * first mention. The pointer stays valid for the router's lifetime.
     */
    serve::ModelRegistry& add(const std::string& name);

    /// Registers `name` and publishes `model` into it at `precision`.
    /// Returns the published version.
    std::uint64_t publish(const std::string& name,
                          const core::SavedModel& model,
                          serve::Precision precision);

    /// The registry for `name`, or nullptr when unregistered (the
    /// kUnknownModel path).
    const serve::ModelRegistry* find(const std::string& name) const;

    /// Registered model names, sorted.
    std::vector<std::string> names() const;

    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<serve::ModelRegistry>> models_;
};

} // namespace buckwild::gate

#endif // BUCKWILD_GATE_ROUTER_H
