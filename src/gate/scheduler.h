/**
 * @file
 * LaneScheduler — two-lane strict-priority dispatch between the ingress
 * thread and the scoring workers.
 *
 * The serving tier's RequestQueue is single-class: every request waits
 * in one FIFO, so one tenant's batch backfill adds its full queueing
 * delay to everyone's interactive traffic. The gate splits admission
 * into two bounded lanes:
 *
 *     ingress ──try_push(lane)──▶ [interactive] ──┐
 *               (reject when       [batch]      ──┴─pop()──▶ workers
 *                that lane full)                    strict priority
 *
 * pop() always drains interactive first; batch runs only when the
 * interactive lane is empty. Capacities are per-lane, so batch overload
 * rejects batch pushes while the interactive lane still admits — the
 * isolation property test_gate.cpp pins.
 *
 * The scheduler also keeps an atomic count of queued dataset numbers.
 * backlog_numbers() x CostModel::seconds_per_number() is the admission
 * controller's queue-wait estimate — read lock-free on the ingress
 * thread, maintained exactly at push/pop.
 */
#ifndef BUCKWILD_GATE_SCHEDULER_H
#define BUCKWILD_GATE_SCHEDULER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>

#include "gate/wire.h"
#include "obs/registry.h"

namespace buckwild::gate {

/// Where a worker delivers the response for one task. Implemented by
/// the server's per-connection writer; tasks hold a shared_ptr so a
/// connection that closes mid-queue just absorbs the late reply.
class Sink
{
  public:
    virtual ~Sink() = default;
    /// Must be callable from any worker thread.
    virtual void send_response(const ScoreResponse& response) = 0;
};

/// One admitted request waiting for a scoring worker.
struct GateTask
{
    ScoreRequest request;
    std::shared_ptr<Sink> sink;
    /// Trace identity carried from the request's wire block (invalid
    /// when the client was not tracing) — the worker's score span and
    /// the response echo both derive from it.
    obs::TraceContext ctx;
    /// Ingress arrival on this process's trace clock (wire_in hop and
    /// the response's recv echo).
    std::int64_t recv_ns = 0;
    std::chrono::steady_clock::time_point enqueued{};
    /// Absolute completion deadline (enqueued + deadline_us); max() when
    /// the request carries none. Checked again at dequeue: a task whose
    /// deadline passed while it queued is failed without scoring.
    std::chrono::steady_clock::time_point deadline{
        std::chrono::steady_clock::time_point::max()};
};

/// Bounded two-lane MPMC queue with strict interactive-over-batch pop.
class LaneScheduler
{
  public:
    /**
     * @param interactive_capacity  admission bound of Lane::kInteractive
     * @param batch_capacity        admission bound of Lane::kBatch
     * @param registry              where the per-lane depth gauges land
     *                              (`gate.queue_depth{lane="..."}`);
     *                              nullptr = the process-global registry.
     */
    LaneScheduler(std::size_t interactive_capacity,
                  std::size_t batch_capacity,
                  obs::MetricsRegistry* registry = nullptr);

    /// Enqueues onto the task's lane without blocking; false when that
    /// lane is full or the scheduler is closed (task untouched).
    bool try_push(GateTask&& task);

    /// Blocks for the next task, interactive lane first. False when
    /// closed and fully drained — the worker should exit.
    bool pop(GateTask& out);

    /// Closes both lanes: pushes are rejected, workers drain then exit.
    void close();

    std::size_t depth(Lane lane) const;

    /// Dataset numbers currently queued across both lanes (lock-free
    /// read — the admission backlog estimate).
    std::uint64_t backlog_numbers() const
    {
        return backlog_numbers_.load(std::memory_order_relaxed);
    }

  private:
    const std::size_t capacity_[kLanes];
    obs::Gauge* depth_gauge_[kLanes];
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::deque<GateTask> lanes_[kLanes];
    std::atomic<std::uint64_t> backlog_numbers_{0};
    bool closed_ = false;
};

} // namespace buckwild::gate

#endif // BUCKWILD_GATE_SCHEDULER_H
