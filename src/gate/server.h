/**
 * @file
 * GateServer — the production front door of the serving tier.
 *
 *     TCP clients
 *        │  net:: frames carrying gate/wire.h messages
 *        ▼
 *     event loop (ONE thread, poll over listener + every connection,
 *        │         FrameSplitter per connection)
 *        │  parse -> route (ModelRouter) -> admit (AdmissionController)
 *        │  rejects answered inline: one small NACK frame, no queueing
 *        ▼
 *     LaneScheduler (interactive over batch, bounded per lane)
 *        │
 *        ▼
 *     scoring workers (InferenceEngine against the routed model
 *                      snapshot; replies written back through the
 *                      task's connection Sink)
 *
 * The division of labor is the point: the event-loop thread does only
 * cheap work (framing, parsing, policy), so its capacity to *refuse*
 * survives any scoring overload — the property bench_gate_overload
 * measures as bounded admitted-p99 plus explicit shed past saturation.
 *
 * Everything observable lands in one obs registry under `gate.*`:
 * admitted/shed/deadline-miss counters (shed broken out by reason,
 * admissions by tenant), per-lane queue depth gauges and end-to-end
 * latency histograms — scraped as proper Prometheus labels via the
 * labeled-name convention.
 */
#ifndef BUCKWILD_GATE_SERVER_H
#define BUCKWILD_GATE_SERVER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "dmgc/perf_model.h"
#include "gate/admission.h"
#include "gate/router.h"
#include "gate/scheduler.h"
#include "gate/wire.h"
#include "net/socket.h"
#include "obs/registry.h"
#include "serve/engine.h"
#include "simd/ops.h"
#include "util/thread_pool.h"

namespace buckwild::gate {

/// Front-door knobs.
struct GateConfig
{
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral (report via port())
    std::size_t workers = 2; ///< scoring threads
    std::size_t interactive_capacity = 256; ///< interactive lane bound
    std::size_t batch_capacity = 1024;      ///< batch lane bound
    std::size_t max_frame_bytes = 1u << 20; ///< ingress frame cap
    std::size_t max_connections = 1024;
    AdmissionConfig admission; ///< per-tenant rate limits
    /// Roofline fallback when the serving signature has no calibration
    /// row (see CostModel::seed_seconds_per_number).
    double fallback_gnps = 1.0;
    simd::Impl impl = simd::best_impl();
    /// Registry for the gate.* instruments; nullptr = process-global
    /// (what the HTTP exporter scrapes).
    obs::MetricsRegistry* metrics_registry = nullptr;
};

/// Point-in-time totals, for tests and the load drivers.
struct GateStats
{
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0; ///< all reasons, including unknown model
    std::uint64_t deadline_missed = 0; ///< expired while queued
    std::uint64_t malformed = 0; ///< frames/payloads that dropped a conn
    std::uint64_t completed = 0; ///< responses with status kOk
};

/**
 * A running front door over a ModelRouter. The router and the perf
 * model are borrowed and must outlive the server; models published into
 * the router while the server runs become visible to the next request.
 */
class GateServer
{
  public:
    /// Binds and starts the event loop + workers.
    /// @throws std::runtime_error when the listener cannot bind.
    GateServer(ModelRouter& router, const dmgc::PerfModel& perf,
               GateConfig config);
    ~GateServer();

    GateServer(const GateServer&) = delete;
    GateServer& operator=(const GateServer&) = delete;

    /// The bound TCP port (resolves an ephemeral request).
    std::uint16_t port() const { return port_; }

    GateStats stats() const;

    /// Online service-time estimate, exposed for the load drivers.
    double seconds_per_number() const
    {
        return cost_.seconds_per_number();
    }

    /// Stops accepting, drains the lanes, joins all threads. Idempotent.
    void stop();

  private:
    class Connection;

    void event_loop();
    void worker_loop();
    void handle_payload(const std::shared_ptr<Connection>& connection,
                        const std::uint8_t* data, std::size_t n);
    void score_task(GateTask& task);
    obs::Counter& shed_counter(const char* reason);
    obs::Counter& tenant_counter(const std::string& tenant);

    ModelRouter& router_;
    GateConfig config_;
    obs::MetricsRegistry& metrics_;
    serve::InferenceEngine engine_;
    AdmissionController admission_;
    CostModel cost_;
    LaneScheduler scheduler_;

    net::Fd listener_;
    std::uint16_t port_ = 0;

    // gate.* instruments (direct handles: always live, even OBS=OFF).
    obs::Counter& admitted_;
    obs::Counter& deadline_missed_;
    obs::Counter& malformed_;
    obs::Counter& completed_;
    obs::Gauge& connections_;
    obs::Histo* latency_[kLanes]; ///< gate.latency_seconds{lane=...}
    // Per-hop latency decomposition: gate.hop_seconds{hop=...}.
    obs::Histo* hop_wire_in_;   ///< client send -> ingress arrival
    obs::Histo* hop_admission_; ///< route + cost + admission decision
    obs::Histo* hop_queue_;     ///< lane wait, admission to dequeue
    obs::Histo* hop_score_;     ///< engine compute on the worker
    std::map<std::string, obs::Counter*> shed_by_reason_;
    std::mutex shed_mutex_;
    std::map<std::string, obs::Counter*> by_tenant_; ///< event-loop only
    std::atomic<std::uint64_t> shed_total_{0};

    std::atomic<bool> stopping_{false};
    WorkerGroup io_thread_;
    WorkerGroup workers_;
    bool stopped_ = false;
};

} // namespace buckwild::gate

#endif // BUCKWILD_GATE_SERVER_H
