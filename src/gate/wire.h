/**
 * @file
 * The gate wire protocol — what a scoring client puts inside a net::
 * frame when it talks to the serving front door.
 *
 * Little-endian throughout, fixed field order, bounds-checked parsing,
 * in the ps/wire.h idiom. Every frame payload starts with a one-byte
 * message kind; the two kinds are:
 *
 * ScoreRequest (kind 1):
 *
 *     offset  size  field
 *     0       1     kind = 1
 *     1       1     feature encoding (FeatureEncoding)
 *     2       1     priority lane (Lane)
 *     3       1     reserved (must be 0)
 *     4       8     request id (client-chosen, echoed in the response)
 *     12      4     deadline_us (0 = no deadline; relative budget)
 *     16      4     q8 scale (IEEE-754 float bits; 0 unless kDenseQ8)
 *     20      2     model name length M
 *     22      2     tenant id length T
 *     24      4     feature count N
 *     28      M     model name bytes
 *     ...     T     tenant id bytes
 *     ...     ...   features:
 *                     kDenseF32  — N * 4 bytes of float features
 *                     kDenseQ8   — N * 1 byte of int8 levels (x = q *
 *                                  scale): the lowp-quantized payload
 *                                  that ships 4x fewer bytes for models
 *                                  served at Ms8
 *                     kSparseF32 — N * 4 bytes of u32 coordinates, then
 *                                  N * 4 bytes of float values
 *
 * ScoreResponse (kind 2):
 *
 *     offset  size  field
 *     0       1     kind = 2
 *     1       1     status (Status)
 *     2       2     reserved (must be 0)
 *     4       8     request id (echo)
 *     12      4     margin (float bits)
 *     16      4     score (float bits)
 *     20      4     label (float bits)
 *     24      8     model version
 *     32      2     message length, then that many bytes (rejection
 *                   reason / error detail)
 *
 * Either message may end with one optional 58-byte trace block
 * (obs/tracectx.h: tag 0xCE, version, trace/span/parent ids, send
 * timestamp, and the two echo timestamps that make a response a
 * complete NTP-style clock-offset sample). It is appended only when the
 * message carries a valid TraceContext, so tracing-off bytes are
 * identical to the historical layout; parsers accept either the exact
 * historical end or exactly one well-formed block, and still reject
 * every truncation and trailing-garbage shape in between.
 *
 * deserialize() is defensive: every length is checked against the
 * buffer and the protocol caps *before* any allocation, and trailing
 * garbage is rejected — a malformed payload returns false and the
 * ingress drops or NACKs the connection instead of crashing
 * (tests/test_gate.cpp sweeps every truncation point).
 */
#ifndef BUCKWILD_GATE_WIRE_H
#define BUCKWILD_GATE_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracectx.h"

namespace buckwild::gate {

/// First payload byte of every gate message.
enum class MsgKind : std::uint8_t {
    kScoreRequest = 1,
    kScoreResponse = 2,
};

/// How the request's feature numbers travel.
enum class FeatureEncoding : std::uint8_t {
    kDenseF32 = 0,  ///< N floats
    kDenseQ8 = 1,   ///< N int8 levels + one float scale (4x fewer bytes)
    kSparseF32 = 2, ///< N (u32 coordinate, float value) pairs
};

/// Priority lanes. Interactive traffic preempts batch at every pop;
/// admission sheds batch first under overload.
enum class Lane : std::uint8_t {
    kInteractive = 0,
    kBatch = 1,
};

/// Number of priority lanes.
inline constexpr std::size_t kLanes = 2;

/// "interactive" / "batch" (Prometheus label values, CLI flag values).
const char* to_string(Lane lane);

/// Response status — the explicit failure vocabulary that replaces
/// queue-to-collapse: a shed request costs one small frame, not a
/// timeout.
enum class Status : std::uint8_t {
    kOk = 0,
    kResourceExhausted = 1, ///< rate limit / queue full — shed, retry later
    kDeadlineExceeded = 2,  ///< could not (or would not) finish in budget
    kUnknownModel = 3,      ///< no model registered under that name
    kInvalid = 4,           ///< well-framed but unusable request
    kShuttingDown = 5,      ///< server is draining
};

/// "ok" / "resource_exhausted" / ... (label values).
const char* to_string(Status status);

// Protocol caps, enforced before allocation on the parse path.
inline constexpr std::size_t kMaxModelNameBytes = 256;
inline constexpr std::size_t kMaxTenantBytes = 256;
inline constexpr std::size_t kMaxFeatureCount = 1u << 24;
inline constexpr std::size_t kMaxMessageBytes = 1024;

/// One scoring request as the client authors it / the ingress sees it.
struct ScoreRequest
{
    std::uint64_t request_id = 0;
    std::string model;  ///< routing key into the model table
    std::string tenant; ///< rate-limit + accounting key
    Lane lane = Lane::kInteractive;
    std::uint32_t deadline_us = 0; ///< 0 = no deadline
    FeatureEncoding encoding = FeatureEncoding::kDenseF32;
    float scale = 0.0f; ///< q8 quantum (kDenseQ8 only)

    // Exactly one representation is populated, per `encoding`:
    std::vector<float> dense;        ///< kDenseF32 features / sparse values
    std::vector<std::int8_t> q8;     ///< kDenseQ8 levels
    std::vector<std::uint32_t> index; ///< kSparseF32 coordinates

    /// Optional distributed-tracing identity + timestamps; on the wire
    /// only while trace.ctx.valid() (the trailing block above).
    obs::WireTrace trace;

    /// Feature numbers this request carries (the admission cost input).
    std::size_t
    feature_count() const
    {
        return encoding == FeatureEncoding::kDenseQ8 ? q8.size()
                                                     : dense.size();
    }
};

/// The reply to one ScoreRequest.
struct ScoreResponse
{
    std::uint64_t request_id = 0;
    Status status = Status::kOk;
    float margin = 0.0f;
    float score = 0.0f;
    float label = 0.0f;
    std::uint64_t model_version = 0;
    std::string message; ///< human-readable rejection/error detail

    /// Optional trace echo (see ScoreRequest::trace); a traced response
    /// carries the request's send/recv timestamps back so the client
    /// can compute the server's clock offset statelessly.
    obs::WireTrace trace;

    bool ok() const { return status == Status::kOk; }
};

/// Flattens a request into the layout above.
std::vector<std::uint8_t> serialize(const ScoreRequest& request);

/// Parses `data[0..n)`. False (out unspecified) on truncated, oversized,
/// or otherwise malformed input — including trailing garbage.
bool deserialize(const std::uint8_t* data, std::size_t n,
                 ScoreRequest& out);

std::vector<std::uint8_t> serialize(const ScoreResponse& response);
bool deserialize(const std::uint8_t* data, std::size_t n,
                 ScoreResponse& out);

/**
 * Quantizes dense features onto a symmetric int8 grid fitted to
 * max|x| (the lowp biased array kernel — features are written once and
 * read once, so stochastic rounding buys nothing). Returns the scale
 * (real value of one level) to put into ScoreRequest::scale.
 */
float quantize_features_q8(const float* x, std::size_t n,
                           std::vector<std::int8_t>& out);

/// Reconstructs floats from q8 levels: x[i] = q[i] * scale.
void dequantize_features_q8(const std::int8_t* q, std::size_t n,
                            float scale, float* out);

} // namespace buckwild::gate

#endif // BUCKWILD_GATE_WIRE_H
