/**
 * @file
 * Admission control — the policy layer between ingress and the scoring
 * engine.
 *
 * Under overload the cheapest place to do work is *before* the queue:
 * refusing a request costs one small response frame, while queueing it
 * costs memory, scheduling, and — once the backlog exceeds the deadline
 * — the full service time of a result nobody will use. The controller
 * therefore sheds in order of increasing cost-to-refuse:
 *
 *   1. per-tenant token bucket — a misbehaving tenant is clipped before
 *      it can starve the others (kResourceExhausted);
 *   2. cost-aware deadline check — estimated queue wait plus service
 *      time, from the DMGC roofline seed refined by observation, is
 *      compared against the request's remaining budget; a request that
 *      cannot finish in time is refused NOW rather than scored late
 *      (kDeadlineExceeded);
 *   3. bounded lane push (scheduler.h) — the backstop when estimates
 *      lie (kResourceExhausted).
 *
 * Every decision point takes an explicit `now_s` clock so tests drive
 * time deterministically.
 */
#ifndef BUCKWILD_GATE_ADMISSION_H
#define BUCKWILD_GATE_ADMISSION_H

#include <atomic>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>

#include "dmgc/perf_model.h"
#include "gate/wire.h"

namespace buckwild::gate {

/**
 * A token bucket: capacity `burst`, refilled at `rate` tokens/second.
 * Starts full. Not internally synchronized — the AdmissionController
 * serializes access per tenant.
 */
class TokenBucket
{
  public:
    /// A non-positive rate means unlimited (every take succeeds).
    TokenBucket(double rate_per_s, double burst);

    /// Takes `cost` tokens at time `now_s`; false when short (no debt).
    bool try_take(double now_s, double cost = 1.0);

    /// Tokens available at `now_s` (refill applied, no take).
    double available(double now_s) const;

  private:
    double rate_;
    double burst_;
    mutable double tokens_;
    mutable double last_s_; ///< last refill time; -inf until first use

    void refill(double now_s) const;
};

/**
 * Service-time estimator: seconds per dataset number, seeded from the
 * DMGC roofline model (§4) and refined online by an EWMA of observed
 * (busy_seconds / numbers) from completed batches. The seed makes cost
 * rejection sane from the first request; the EWMA makes it honest on
 * hardware the roofline was never calibrated for.
 */
class CostModel
{
  public:
    explicit CostModel(double initial_seconds_per_number);

    /**
     * Roofline seed: 1 / (predict_gnps(sig, threads, dim) * 1e9)
     * seconds per number. Falls back to `fallback_gnps` when `sig` has
     * no calibration row (predict_gnps would throw).
     */
    static double seed_seconds_per_number(const dmgc::PerfModel& perf,
                                          const dmgc::Signature& sig,
                                          std::size_t threads,
                                          std::size_t dim,
                                          double fallback_gnps = 1.0);

    /// Folds one observation in: EWMA with alpha = 1/8. Thread-safe.
    void observe(double busy_seconds, double numbers);

    double seconds_per_number() const;

    /// Estimated service seconds for a request moving `numbers` numbers.
    double estimate_seconds(double numbers) const;

  private:
    std::atomic<double> seconds_per_number_;
};

/// Per-tenant rate limits.
struct AdmissionConfig
{
    double tenant_rate = 0.0;  ///< requests/s per tenant; <= 0 = unlimited
    double tenant_burst = 1.0; ///< bucket capacity (ignored if unlimited)
    /// Overrides for specific tenants: tenant -> {rate, burst}.
    std::map<std::string, std::pair<double, double>> overrides;
};

/// The verdict on one request, pre-queue.
struct Decision
{
    Status status = Status::kOk;
    const char* reason = ""; ///< label value for the shed counter
    bool admitted() const { return status == Status::kOk; }
};

/**
 * The admission policy: rate limit, then deadline feasibility. Lane
 * capacity is enforced by the scheduler push that follows an admit.
 */
class AdmissionController
{
  public:
    explicit AdmissionController(AdmissionConfig config);

    /**
     * Decides `request` at time `now_s`, given the scheduler's current
     * backlog (estimated seconds of queued work ahead of this request)
     * and this request's estimated service seconds.
     */
    Decision admit(const ScoreRequest& request, double backlog_seconds,
                   double service_seconds, double now_s);

    /// Tenants with a live bucket (lazily created on first request).
    std::size_t tenant_count() const;

  private:
    AdmissionConfig config_;
    mutable std::mutex mutex_;
    std::map<std::string, TokenBucket> buckets_;
};

} // namespace buckwild::gate

#endif // BUCKWILD_GATE_ADMISSION_H
