#include "gate/wire.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "lowp/grid.h"
#include "lowp/round.h"

namespace buckwild::gate {

namespace {

constexpr std::size_t kRequestFixedBytes = 28;
constexpr std::size_t kResponseFixedBytes = 34;

void
put_u16(std::vector<std::uint8_t>& out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    put_u32(out, static_cast<std::uint32_t>(v));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void
put_f32(std::vector<std::uint8_t>& out, float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u32(out, bits);
}

/// Cursor over the receive buffer; every read is bounds-checked.
class Reader
{
  public:
    Reader(const std::uint8_t* data, std::size_t n) : data_(data), n_(n) {}

    bool
    u8(std::uint8_t* out)
    {
        if (pos_ + 1 > n_) return false;
        *out = data_[pos_++];
        return true;
    }

    bool
    u16(std::uint16_t* out)
    {
        if (pos_ + 2 > n_) return false;
        *out = static_cast<std::uint16_t>(
            static_cast<std::uint16_t>(data_[pos_]) |
            (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
        pos_ += 2;
        return true;
    }

    bool
    u32(std::uint32_t* out)
    {
        if (pos_ + 4 > n_) return false;
        *out = static_cast<std::uint32_t>(data_[pos_]) |
               (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
               (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
               (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
        pos_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t* out)
    {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
        if (!u32(&lo) || !u32(&hi)) return false;
        *out = static_cast<std::uint64_t>(lo) |
               (static_cast<std::uint64_t>(hi) << 32);
        return true;
    }

    bool
    f32(float* out)
    {
        std::uint32_t bits = 0;
        if (!u32(&bits)) return false;
        std::memcpy(out, &bits, sizeof(*out));
        return true;
    }

    bool
    str(std::string* out, std::size_t count)
    {
        if (pos_ + count > n_ || pos_ + count < pos_) return false;
        out->assign(reinterpret_cast<const char*>(data_) + pos_, count);
        pos_ += count;
        return true;
    }

    /// Bulk byte copy — the q8 payload fast path. Keeping the ingress
    /// parse at memcpy speed is what keeps the event loop's capacity to
    /// refuse far above the workers' capacity to score.
    bool
    blob(void* out, std::size_t count)
    {
        if (pos_ + count > n_ || pos_ + count < pos_) return false;
        std::memcpy(out, data_ + pos_, count);
        pos_ += count;
        return true;
    }

    /// Remaining unread bytes (for count-times-size overflow checks).
    std::size_t remaining() const { return n_ - pos_; }

    /// Pointer to the first unread byte (trailing trace block parse).
    const std::uint8_t* cursor() const { return data_ + pos_; }

    bool done() const { return pos_ == n_; }

  private:
    const std::uint8_t* data_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

/// Common tail of both deserializers: accept the exact historical end
/// (no trace) or exactly one well-formed trailing trace block; reject
/// everything in between.
bool
finish_with_trace(Reader& reader, obs::WireTrace& trace)
{
    trace = obs::WireTrace{};
    if (reader.done()) return true;
    if (reader.remaining() != obs::kTraceBlockBytes) return false;
    return obs::parse_trace_block(reader.cursor(), reader.remaining(),
                                  trace);
}

} // namespace

const char*
to_string(Lane lane)
{
    switch (lane) {
    case Lane::kInteractive: return "interactive";
    case Lane::kBatch: return "batch";
    }
    return "?";
}

const char*
to_string(Status status)
{
    switch (status) {
    case Status::kOk: return "ok";
    case Status::kResourceExhausted: return "resource_exhausted";
    case Status::kDeadlineExceeded: return "deadline_exceeded";
    case Status::kUnknownModel: return "unknown_model";
    case Status::kInvalid: return "invalid";
    case Status::kShuttingDown: return "shutting_down";
    }
    return "?";
}

std::vector<std::uint8_t>
serialize(const ScoreRequest& request)
{
    const std::size_t n = request.feature_count();
    std::size_t feature_bytes = 0;
    switch (request.encoding) {
    case FeatureEncoding::kDenseF32: feature_bytes = n * 4; break;
    case FeatureEncoding::kDenseQ8: feature_bytes = n; break;
    case FeatureEncoding::kSparseF32: feature_bytes = n * 8; break;
    }
    std::vector<std::uint8_t> out;
    out.reserve(kRequestFixedBytes + request.model.size() +
                request.tenant.size() + feature_bytes);
    out.push_back(static_cast<std::uint8_t>(MsgKind::kScoreRequest));
    out.push_back(static_cast<std::uint8_t>(request.encoding));
    out.push_back(static_cast<std::uint8_t>(request.lane));
    out.push_back(0); // reserved
    put_u64(out, request.request_id);
    put_u32(out, request.deadline_us);
    put_f32(out, request.scale);
    put_u16(out, static_cast<std::uint16_t>(request.model.size()));
    put_u16(out, static_cast<std::uint16_t>(request.tenant.size()));
    put_u32(out, static_cast<std::uint32_t>(n));
    out.insert(out.end(), request.model.begin(), request.model.end());
    out.insert(out.end(), request.tenant.begin(), request.tenant.end());
    switch (request.encoding) {
    case FeatureEncoding::kDenseF32:
        for (const float x : request.dense) put_f32(out, x);
        break;
    case FeatureEncoding::kDenseQ8: {
        const auto* q8 =
            reinterpret_cast<const std::uint8_t*>(request.q8.data());
        out.insert(out.end(), q8, q8 + request.q8.size());
        break;
    }
    case FeatureEncoding::kSparseF32:
        for (const std::uint32_t i : request.index) put_u32(out, i);
        for (const float x : request.dense) put_f32(out, x);
        break;
    }
    if (request.trace.ctx.valid())
        obs::append_trace_block(out, request.trace);
    return out;
}

bool
deserialize(const std::uint8_t* data, std::size_t n, ScoreRequest& out)
{
    Reader reader(data, n);
    std::uint8_t kind = 0;
    std::uint8_t encoding = 0;
    std::uint8_t lane = 0;
    std::uint8_t reserved = 0;
    if (!reader.u8(&kind) || !reader.u8(&encoding) || !reader.u8(&lane) ||
        !reader.u8(&reserved))
        return false;
    if (kind != static_cast<std::uint8_t>(MsgKind::kScoreRequest))
        return false;
    if (encoding > static_cast<std::uint8_t>(FeatureEncoding::kSparseF32))
        return false;
    if (lane >= kLanes) return false;
    if (reserved != 0) return false;
    out.encoding = static_cast<FeatureEncoding>(encoding);
    out.lane = static_cast<Lane>(lane);
    std::uint16_t model_len = 0;
    std::uint16_t tenant_len = 0;
    std::uint32_t count = 0;
    if (!reader.u64(&out.request_id) || !reader.u32(&out.deadline_us) ||
        !reader.f32(&out.scale) || !reader.u16(&model_len) ||
        !reader.u16(&tenant_len) || !reader.u32(&count))
        return false;
    if (model_len > kMaxModelNameBytes) return false;
    if (tenant_len > kMaxTenantBytes) return false;
    if (count > kMaxFeatureCount) return false;
    if (!reader.str(&out.model, model_len)) return false;
    if (!reader.str(&out.tenant, tenant_len)) return false;
    // Check the declared feature payload fits the remaining buffer
    // BEFORE resizing — a corrupt count must not drive an allocation.
    const std::size_t k = count;
    out.dense.clear();
    out.q8.clear();
    out.index.clear();
    switch (out.encoding) {
    case FeatureEncoding::kDenseF32: {
        if (reader.remaining() < k * 4) return false;
        out.dense.resize(k);
        for (std::size_t i = 0; i < k; ++i)
            if (!reader.f32(&out.dense[i])) return false;
        break;
    }
    case FeatureEncoding::kDenseQ8: {
        if (reader.remaining() < k) return false;
        out.q8.resize(k);
        if (!reader.blob(out.q8.data(), k)) return false;
        break;
    }
    case FeatureEncoding::kSparseF32: {
        if (reader.remaining() < k * 8) return false;
        out.index.resize(k);
        out.dense.resize(k);
        for (std::size_t i = 0; i < k; ++i)
            if (!reader.u32(&out.index[i])) return false;
        for (std::size_t i = 0; i < k; ++i)
            if (!reader.f32(&out.dense[i])) return false;
        break;
    }
    }
    return finish_with_trace(reader, out.trace);
}

std::vector<std::uint8_t>
serialize(const ScoreResponse& response)
{
    std::vector<std::uint8_t> out;
    out.reserve(kResponseFixedBytes + response.message.size());
    out.push_back(static_cast<std::uint8_t>(MsgKind::kScoreResponse));
    out.push_back(static_cast<std::uint8_t>(response.status));
    put_u16(out, 0); // reserved
    put_u64(out, response.request_id);
    put_f32(out, response.margin);
    put_f32(out, response.score);
    put_f32(out, response.label);
    put_u64(out, response.model_version);
    put_u16(out, static_cast<std::uint16_t>(response.message.size()));
    out.insert(out.end(), response.message.begin(), response.message.end());
    if (response.trace.ctx.valid())
        obs::append_trace_block(out, response.trace);
    return out;
}

bool
deserialize(const std::uint8_t* data, std::size_t n, ScoreResponse& out)
{
    Reader reader(data, n);
    std::uint8_t kind = 0;
    std::uint8_t status = 0;
    std::uint16_t reserved = 0;
    if (!reader.u8(&kind) || !reader.u8(&status) || !reader.u16(&reserved))
        return false;
    if (kind != static_cast<std::uint8_t>(MsgKind::kScoreResponse))
        return false;
    if (status > static_cast<std::uint8_t>(Status::kShuttingDown))
        return false;
    if (reserved != 0) return false;
    out.status = static_cast<Status>(status);
    std::uint16_t message_len = 0;
    if (!reader.u64(&out.request_id) || !reader.f32(&out.margin) ||
        !reader.f32(&out.score) || !reader.f32(&out.label) ||
        !reader.u64(&out.model_version) || !reader.u16(&message_len))
        return false;
    if (message_len > kMaxMessageBytes) return false;
    if (!reader.str(&out.message, message_len)) return false;
    return finish_with_trace(reader, out.trace);
}

float
quantize_features_q8(const float* x, std::size_t n,
                     std::vector<std::int8_t>& out)
{
    out.resize(n);
    // Scan for the range ourselves rather than via lowp::max_abs: a NaN
    // loses every max() comparison, so it would slip past a range-only
    // finiteness check and quantize to a garbage level.
    float range = 0.0f;
    bool finite = true;
    for (std::size_t i = 0; i < n; ++i) {
        if (!std::isfinite(x[i])) finite = false;
        range = std::max(range, std::fabs(x[i]));
    }
    if (n == 0 || range == 0.0f || !finite) {
        std::fill(out.begin(), out.end(), std::int8_t{0});
        return 0.0f;
    }
    // Symmetric int8 grid fitted to max|x|: quantum = range/127 so the
    // largest-magnitude feature lands exactly on the outermost level.
    const lowp::GridSpec grid{static_cast<double>(range) / 127.0, -127,
                              127};
    lowp::quantize_biased(x, out.data(), n, grid);
    return grid.quantum_f();
}

void
dequantize_features_q8(const std::int8_t* q, std::size_t n, float scale,
                       float* out)
{
    const lowp::GridSpec grid{static_cast<double>(scale), -127, 127};
    lowp::dequantize(q, out, n, grid);
}

} // namespace buckwild::gate
