#include "gate/router.h"

namespace buckwild::gate {

serve::ModelRegistry&
ModelRouter::add(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = models_[name];
    if (!slot) slot = std::make_unique<serve::ModelRegistry>();
    return *slot;
}

std::uint64_t
ModelRouter::publish(const std::string& name,
                     const core::SavedModel& model,
                     serve::Precision precision)
{
    return add(name).publish(model, precision);
}

const serve::ModelRegistry*
ModelRouter::find(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(name);
    return it == models_.end() ? nullptr : it->second.get();
}

std::vector<std::string>
ModelRouter::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(models_.size());
    for (const auto& [name, registry] : models_) out.push_back(name);
    return out;
}

std::size_t
ModelRouter::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return models_.size();
}

} // namespace buckwild::gate
