#include "dataset/libsvm.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace buckwild::dataset {

SparseProblem
load_libsvm(std::istream& in, std::size_t dim)
{
    SparseProblem p;
    std::size_t max_index = 0;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        // Strip comments and blank lines.
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos) line.resize(hash);
        std::istringstream ls(line);
        float label;
        if (!(ls >> label)) continue; // blank line

        SparseRow row;
        std::string token;
        std::uint64_t prev = 0;
        bool first = true;
        while (ls >> token) {
            const std::size_t colon = token.find(':');
            if (colon == std::string::npos)
                fatal("libsvm line " + std::to_string(line_no) +
                      ": expected index:value, got '" + token + "'");
            std::uint64_t index = 0;
            float value = 0.0f;
            try {
                index = std::stoull(token.substr(0, colon));
                value = std::stof(token.substr(colon + 1));
            } catch (const std::exception&) {
                fatal("libsvm line " + std::to_string(line_no) +
                      ": malformed token '" + token + "'");
            }
            if (index == 0)
                fatal("libsvm line " + std::to_string(line_no) +
                      ": indices are 1-based");
            if (!first && index <= prev)
                fatal("libsvm line " + std::to_string(line_no) +
                      ": indices must be strictly ascending");
            first = false;
            prev = index;
            const std::uint64_t zero_based = index - 1;
            if (dim != 0 && zero_based >= dim)
                fatal("libsvm line " + std::to_string(line_no) +
                      ": index " + std::to_string(index) +
                      " exceeds dim " + std::to_string(dim));
            max_index = std::max<std::size_t>(max_index, zero_based);
            row.index.push_back(static_cast<std::uint32_t>(zero_based));
            row.value.push_back(value);
        }
        p.rows.push_back(std::move(row));
        p.y.push_back(label >= 0.0f ? 1.0f : -1.0f);
    }
    if (p.rows.empty()) fatal("libsvm stream contained no examples");
    p.dim = dim != 0 ? dim : max_index + 1;
    return p;
}

SparseProblem
load_libsvm_file(const std::string& path, std::size_t dim)
{
    std::ifstream in(path);
    if (!in) fatal("cannot open libsvm file: " + path);
    return load_libsvm(in, dim);
}

void
save_libsvm(const SparseProblem& problem, std::ostream& out)
{
    char buf[64];
    for (std::size_t i = 0; i < problem.rows.size(); ++i) {
        out << (problem.y[i] >= 0.0f ? "+1" : "-1");
        const SparseRow& row = problem.rows[i];
        for (std::size_t j = 0; j < row.index.size(); ++j) {
            std::snprintf(buf, sizeof(buf), " %u:%g", row.index[j] + 1,
                          static_cast<double>(row.value[j]));
            out << buf;
        }
        out << '\n';
    }
}

void
save_libsvm_file(const SparseProblem& problem, const std::string& path)
{
    std::ofstream out(path);
    if (!out) fatal("cannot open libsvm file for writing: " + path);
    save_libsvm(problem, out);
}

} // namespace buckwild::dataset
