/**
 * @file
 * Quantized dataset containers — the "D" (and "i") of the DMGC model.
 *
 * Dataset numbers are quantized *once*, before the algorithm runs (§3:
 * "because dataset numbers are constant inputs, to make them low-precision
 * we need to quantize them only once"). These containers own the quantized
 * storage and remember the fixed-point format so kernels can recover real
 * values.
 *
 * The rep type D is int8_t, int16_t, or float (float = no quantization,
 * the 32f dataset of full-precision signatures).
 *
 * Sparse storage is CSR with a configurable index type I (uint8_t /
 * uint16_t / uint32_t — the *index precision*). When I cannot address the
 * model directly the builder switches to delta encoding (footnote 6) and
 * inserts explicit zero-valued padding entries for gaps wider than I's
 * range, so the kernels never need a special case.
 */
#ifndef BUCKWILD_DATASET_QUANTIZED_H
#define BUCKWILD_DATASET_QUANTIZED_H

#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "dataset/problem.h"
#include "fixed/fixed_point.h"
#include "lowp/grid.h"
#include "lowp/rep_traits.h"
#include "lowp/round.h"
#include "simd/sparse_kernels.h"
#include "util/aligned_buffer.h"
#include "util/logging.h"

namespace buckwild::dataset {

/// Dense quantized dataset: row-major examples x dim.
template <typename D>
class DenseData
{
  public:
    /// Quantizes `p` into rep D using `fmt` (ignored when D = float).
    DenseData(const DenseProblem& p, const fixed::FixedFormat& fmt)
        : rows_(p.examples), cols_(p.dim), fmt_(fmt),
          values_(p.examples * p.dim), labels_(p.y)
    {
        if constexpr (lowp::is_float_rep<D>) {
            for (std::size_t i = 0; i < values_.size(); ++i)
                values_[i] = p.x[i];
        } else {
            // One-shot D-quantization of the whole matrix — the substrate's
            // vectorized biased path (bit-identical to per-value rounding).
            lowp::quantize_biased(p.x.data(), values_.data(), values_.size(),
                                  lowp::GridSpec::from_fixed(fmt));
        }
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    /// Real value of one raw unit.
    float quantum() const { return lowp::rep_quantum<D>(fmt_); }

    const D* row(std::size_t i) const { return values_.data() + i * cols_; }
    float label(std::size_t i) const { return labels_[i]; }

    /// Bytes of dataset storage (the DRAM-traffic figure of merit).
    std::size_t bytes() const { return values_.size() * sizeof(D); }

  private:
    std::size_t rows_;
    std::size_t cols_;
    fixed::FixedFormat fmt_;
    AlignedBuffer<D> values_;
    std::vector<float> labels_;
};

/// Sparse quantized dataset: CSR with low-precision value and index types.
template <typename D, typename I>
class SparseData
{
  public:
    static_assert(std::is_unsigned_v<I>, "index types are unsigned");

    SparseData(const SparseProblem& p, const fixed::FixedFormat& fmt)
        : dim_(p.dim), fmt_(fmt), labels_(p.y)
    {
        // Absolute indices when I can address every coordinate; otherwise
        // delta encoding with zero padding.
        const std::size_t max_index = std::numeric_limits<I>::max();
        mode_ = (p.dim - 1 <= max_index) ? simd::sparse::IndexMode::kAbsolute
                                         : simd::sparse::IndexMode::kDelta;

        std::vector<D> values;
        std::vector<I> indices;
        row_ptr_.reserve(p.rows.size() + 1);
        row_ptr_.push_back(0);
        for (const auto& row : p.rows) {
            std::size_t prev = 0;
            for (std::size_t j = 0; j < row.index.size(); ++j) {
                const std::size_t k = row.index[j];
                if (mode_ == simd::sparse::IndexMode::kAbsolute) {
                    indices.push_back(static_cast<I>(k));
                } else {
                    std::size_t gap = k - prev;
                    while (gap > max_index) { // zero-valued padding entry
                        indices.push_back(static_cast<I>(max_index));
                        values.push_back(D{});
                        gap -= max_index;
                    }
                    indices.push_back(static_cast<I>(gap));
                    prev = k;
                }
                values.push_back(
                    lowp::quantize_value<D>(row.value[j], fmt));
            }
            row_ptr_.push_back(values.size());
        }

        values_.reset(values.size());
        std::copy(values.begin(), values.end(), values_.begin());
        indices_.reset(indices.size());
        std::copy(indices.begin(), indices.end(), indices_.begin());
    }

    std::size_t rows() const { return row_ptr_.size() - 1; }
    std::size_t dim() const { return dim_; }
    float quantum() const { return lowp::rep_quantum<D>(fmt_); }
    simd::sparse::IndexMode index_mode() const { return mode_; }

    /// Nonzero count of row i (including any padding entries).
    std::size_t
    row_nnz(std::size_t i) const
    {
        return row_ptr_[i + 1] - row_ptr_[i];
    }

    const D* row_values(std::size_t i) const
    {
        return values_.data() + row_ptr_[i];
    }
    const I* row_indices(std::size_t i) const
    {
        return indices_.data() + row_ptr_[i];
    }
    float label(std::size_t i) const { return labels_[i]; }

    /// Total stored entries including padding.
    std::size_t stored_nnz() const { return values_.size(); }

    /// Bytes of dataset storage: values plus index stream.
    std::size_t
    bytes() const
    {
        return values_.size() * sizeof(D) + indices_.size() * sizeof(I);
    }

  private:
    std::size_t dim_;
    fixed::FixedFormat fmt_;
    simd::sparse::IndexMode mode_;
    AlignedBuffer<D> values_;
    AlignedBuffer<I> indices_;
    std::vector<std::size_t> row_ptr_;
    std::vector<float> labels_;
};

} // namespace buckwild::dataset

#endif // BUCKWILD_DATASET_QUANTIZED_H
