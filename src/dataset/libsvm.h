/**
 * @file
 * LIBSVM-format dataset I/O.
 *
 * The de-facto interchange format for sparse classification data (used by
 * LIBSVM/liblinear and most public benchmark datasets):
 *
 *     <label> <index>:<value> <index>:<value> ...
 *
 * one example per line, 1-based ascending indices, labels +1/-1 (other
 * labels are mapped by sign). load_libsvm() produces a SparseProblem
 * ready for the sparse Buckwild! trainer; save_libsvm() writes one back,
 * so synthetic problems can be exported to other tools.
 */
#ifndef BUCKWILD_DATASET_LIBSVM_H
#define BUCKWILD_DATASET_LIBSVM_H

#include <iosfwd>
#include <string>

#include "dataset/problem.h"

namespace buckwild::dataset {

/**
 * Parses a LIBSVM stream.
 *
 * @param in   the text stream
 * @param dim  model dimensionality; 0 = infer from the largest index
 * @throws std::runtime_error on malformed lines, non-ascending or
 *         out-of-range indices.
 */
SparseProblem load_libsvm(std::istream& in, std::size_t dim = 0);

/// Convenience: load from a file path.
SparseProblem load_libsvm_file(const std::string& path,
                               std::size_t dim = 0);

/// Writes `problem` in LIBSVM format (1-based indices, %g values).
void save_libsvm(const SparseProblem& problem, std::ostream& out);

/// Convenience: save to a file path.
void save_libsvm_file(const SparseProblem& problem,
                      const std::string& path);

} // namespace buckwild::dataset

#endif // BUCKWILD_DATASET_LIBSVM_H
