/**
 * @file
 * Procedurally generated digit-image dataset.
 *
 * The paper's §7 experiments use MNIST / CIFAR10, which are not available
 * offline; this generator produces a learnable 10-class image task with
 * the same role (see DESIGN.md's substitution table): 16x16 grayscale
 * images of stroke-rendered digits with per-sample jitter, thickness
 * variation, and pixel noise. The relative effects of precision on
 * training — which is what Fig 7b/7d/7e measure — are preserved because
 * the quantized-training code path is identical.
 */
#ifndef BUCKWILD_DATASET_DIGITS_H
#define BUCKWILD_DATASET_DIGITS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace buckwild::dataset {

/// Image geometry of the synthetic digit task.
inline constexpr std::size_t kDigitSide = 16;
inline constexpr std::size_t kDigitPixels = kDigitSide * kDigitSide;
inline constexpr std::size_t kDigitClasses = 10;

/// A labelled image dataset; pixels in [-1, 1], row-major images.
struct DigitDataset
{
    std::size_t count = 0;
    std::vector<float> pixels; ///< count x kDigitPixels
    std::vector<int> labels;   ///< 0..9

    const float* image(std::size_t i) const
    {
        return pixels.data() + i * kDigitPixels;
    }
};

/**
 * Generates `count` digit images with labels balanced across classes.
 *
 * @param noise  standard deviation of the additive pixel noise (0.15 is a
 *               moderately hard setting; 0 makes the task nearly
 *               separable).
 */
DigitDataset generate_digits(std::size_t count, std::uint64_t seed,
                             float noise = 0.15f);

} // namespace buckwild::dataset

#endif // BUCKWILD_DATASET_DIGITS_H
