/**
 * @file
 * Full-precision problem containers — the "ground truth" data that the
 * quantized dataset containers are built from.
 *
 * The paper's experiments (§4) use artificially generated datasets
 * "sampled from the generative model for logistic regression, using a true
 * model vector w* and example vectors xi all sampled uniformly from
 * [-1, 1]^n" (footnote 9), both dense and sparse (3% density).
 */
#ifndef BUCKWILD_DATASET_PROBLEM_H
#define BUCKWILD_DATASET_PROBLEM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace buckwild::dataset {

/// A dense binary-classification problem in full precision.
struct DenseProblem
{
    std::size_t dim = 0;      ///< model size n
    std::size_t examples = 0; ///< example count m
    std::vector<float> x;     ///< row-major examples, examples x dim
    std::vector<float> y;     ///< labels in {-1, +1}
    std::vector<float> w_true; ///< the generating model (for diagnostics)

    const float* row(std::size_t i) const { return x.data() + i * dim; }
};

/// One sparse example: sorted coordinates and their values.
struct SparseRow
{
    std::vector<std::uint32_t> index;
    std::vector<float> value;
};

/// A sparse binary-classification problem in full precision.
struct SparseProblem
{
    std::size_t dim = 0;
    std::vector<SparseRow> rows;
    std::vector<float> y;
    std::vector<float> w_true;

    std::size_t examples() const { return rows.size(); }

    /// Total nonzeros across all rows.
    std::size_t nnz() const;
};

/// Density / nnz summary of a sparse problem — what the sparse cluster
/// tools print at startup and the density benches report.
struct SparseStats
{
    std::size_t examples = 0;
    std::size_t dim = 0;
    std::size_t nnz = 0;         ///< total nonzeros
    std::size_t min_row_nnz = 0; ///< sparsest example
    std::size_t max_row_nnz = 0; ///< densest example
    double mean_row_nnz = 0.0;   ///< nnz / examples
    double density = 0.0;        ///< nnz / (examples * dim)
};

/// Computes the density/nnz summary of `problem` in one pass.
SparseStats sparse_stats(const SparseProblem& problem);

/**
 * Samples a dense logistic-regression problem from the generative model:
 * w* ~ U[-1,1]^n, x_i ~ U[-1,1]^n, y_i = +1 with prob sigmoid(w*.x_i).
 */
DenseProblem generate_logistic_dense(std::size_t dim, std::size_t examples,
                                     std::uint64_t seed);

/**
 * Samples the sparse analogue: each example has ceil(density*dim) nonzero
 * coordinates chosen uniformly (sorted), values ~ U[-1,1]; the label is
 * drawn from the logistic model restricted to the support.
 *
 * @param density  fraction of nonzero coordinates, e.g. 0.03 (the paper's
 *                 3%).
 */
SparseProblem generate_logistic_sparse(std::size_t dim, std::size_t examples,
                                       double density, std::uint64_t seed);

} // namespace buckwild::dataset

#endif // BUCKWILD_DATASET_PROBLEM_H
