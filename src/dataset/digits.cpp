#include "dataset/digits.h"

#include <algorithm>
#include <cmath>

#include "rng/xorshift.h"
#include "util/logging.h"

namespace buckwild::dataset {

namespace {

// Digits are rendered seven-segment style:
//
//      A
//    F   B
//      G
//    E   C
//      D
//
// with per-sample geometric jitter and additive noise, which yields a
// 10-class task with genuine intra-class variation.
constexpr std::uint8_t kSegA = 1 << 0;
constexpr std::uint8_t kSegB = 1 << 1;
constexpr std::uint8_t kSegC = 1 << 2;
constexpr std::uint8_t kSegD = 1 << 3;
constexpr std::uint8_t kSegE = 1 << 4;
constexpr std::uint8_t kSegF = 1 << 5;
constexpr std::uint8_t kSegG = 1 << 6;

constexpr std::uint8_t kDigitSegments[kDigitClasses] = {
    // 0
    kSegA | kSegB | kSegC | kSegD | kSegE | kSegF,
    // 1
    kSegB | kSegC,
    // 2
    kSegA | kSegB | kSegG | kSegE | kSegD,
    // 3
    kSegA | kSegB | kSegG | kSegC | kSegD,
    // 4
    kSegF | kSegG | kSegB | kSegC,
    // 5
    kSegA | kSegF | kSegG | kSegC | kSegD,
    // 6
    kSegA | kSegF | kSegG | kSegE | kSegC | kSegD,
    // 7
    kSegA | kSegB | kSegC,
    // 8
    kSegA | kSegB | kSegC | kSegD | kSegE | kSegF | kSegG,
    // 9
    kSegA | kSegB | kSegC | kSegD | kSegF | kSegG,
};

struct Frame
{
    int left, right, top, mid, bottom; // jittered segment coordinates
    int thickness;
};

void
draw_hline(float* img, int y, int x0, int x1, int thickness, float value)
{
    for (int t = 0; t < thickness; ++t) {
        const int yy = y + t;
        if (yy < 0 || yy >= static_cast<int>(kDigitSide)) continue;
        for (int x = x0; x <= x1; ++x) {
            if (x < 0 || x >= static_cast<int>(kDigitSide)) continue;
            img[yy * kDigitSide + x] = value;
        }
    }
}

void
draw_vline(float* img, int x, int y0, int y1, int thickness, float value)
{
    for (int t = 0; t < thickness; ++t) {
        const int xx = x + t;
        if (xx < 0 || xx >= static_cast<int>(kDigitSide)) continue;
        for (int y = y0; y <= y1; ++y) {
            if (y < 0 || y >= static_cast<int>(kDigitSide)) continue;
            img[y * kDigitSide + xx] = value;
        }
    }
}

void
render(float* img, int digit, const Frame& f, float ink)
{
    const std::uint8_t segs = kDigitSegments[digit];
    if (segs & kSegA)
        draw_hline(img, f.top, f.left, f.right, f.thickness, ink);
    if (segs & kSegG)
        draw_hline(img, f.mid, f.left, f.right, f.thickness, ink);
    if (segs & kSegD)
        draw_hline(img, f.bottom, f.left, f.right, f.thickness, ink);
    if (segs & kSegF)
        draw_vline(img, f.left, f.top, f.mid, f.thickness, ink);
    if (segs & kSegB)
        draw_vline(img, f.right, f.top, f.mid, f.thickness, ink);
    if (segs & kSegE)
        draw_vline(img, f.left, f.mid, f.bottom, f.thickness, ink);
    if (segs & kSegC)
        draw_vline(img, f.right, f.mid, f.bottom, f.thickness, ink);
}

} // namespace

DigitDataset
generate_digits(std::size_t count, std::uint64_t seed, float noise)
{
    if (count == 0) fatal("generate_digits requires count >= 1");
    rng::Xorshift128Plus gen(seed);
    auto next_word = [&gen] {
        return static_cast<std::uint32_t>(gen() >> 32);
    };
    auto uniform = [&] { return rng::to_unit_float(next_word()); };
    // Approximate standard normal via the sum of 4 uniforms (Irwin-Hall).
    auto gauss = [&] {
        return (uniform() + uniform() + uniform() + uniform() - 2.0f) *
               1.732f;
    };

    DigitDataset ds;
    ds.count = count;
    ds.pixels.assign(count * kDigitPixels, -1.0f);
    ds.labels.resize(count);

    for (std::size_t i = 0; i < count; ++i) {
        const int digit = static_cast<int>(i % kDigitClasses);
        ds.labels[i] = digit;
        float* img = ds.pixels.data() + i * kDigitPixels;

        Frame f;
        const int jx = static_cast<int>(next_word() % 3); // 0..2
        const int jy = static_cast<int>(next_word() % 3);
        f.left = 3 + jx;
        f.right = 11 + jx;
        f.top = 2 + jy;
        f.mid = 7 + jy;
        f.bottom = 12 + jy;
        f.thickness = 1 + static_cast<int>(next_word() % 2);
        const float ink = 0.7f + 0.3f * uniform(); // stroke intensity

        render(img, digit, f, ink * 2.0f - 1.0f); // stroke in ~[0.4, 1]

        if (noise > 0.0f) {
            for (std::size_t p = 0; p < kDigitPixels; ++p) {
                img[p] = std::clamp(img[p] + noise * gauss(), -1.0f, 1.0f);
            }
        }
    }
    return ds;
}

} // namespace buckwild::dataset
