#include "dataset/problem.h"

#include <algorithm>
#include <cmath>

#include "rng/xorshift.h"
#include "util/logging.h"

namespace buckwild::dataset {

namespace {

float
unit_to_pm1(std::uint32_t word)
{
    return rng::to_unit_float(word) * 2.0f - 1.0f;
}

float
sigmoid(double z)
{
    return static_cast<float>(1.0 / (1.0 + std::exp(-z)));
}

} // namespace

std::size_t
SparseProblem::nnz() const
{
    std::size_t total = 0;
    for (const auto& row : rows) total += row.index.size();
    return total;
}

SparseStats
sparse_stats(const SparseProblem& problem)
{
    SparseStats stats;
    stats.examples = problem.examples();
    stats.dim = problem.dim;
    if (problem.rows.empty()) return stats;
    stats.min_row_nnz = problem.rows.front().index.size();
    for (const auto& row : problem.rows) {
        const std::size_t nnz = row.index.size();
        stats.nnz += nnz;
        stats.min_row_nnz = std::min(stats.min_row_nnz, nnz);
        stats.max_row_nnz = std::max(stats.max_row_nnz, nnz);
    }
    stats.mean_row_nnz = static_cast<double>(stats.nnz) /
                         static_cast<double>(stats.examples);
    if (problem.dim > 0)
        stats.density = stats.mean_row_nnz /
                        static_cast<double>(problem.dim);
    return stats;
}

DenseProblem
generate_logistic_dense(std::size_t dim, std::size_t examples,
                        std::uint64_t seed)
{
    if (dim == 0 || examples == 0)
        fatal("generate_logistic_dense requires dim, examples >= 1");
    rng::Xorshift128Plus gen(seed);
    auto next_pm1 = [&gen] {
        return unit_to_pm1(static_cast<std::uint32_t>(gen() >> 32));
    };

    DenseProblem p;
    p.dim = dim;
    p.examples = examples;
    p.w_true.resize(dim);
    for (auto& w : p.w_true) w = next_pm1();

    p.x.resize(dim * examples);
    p.y.resize(examples);
    for (std::size_t i = 0; i < examples; ++i) {
        double dot = 0.0;
        float* row = p.x.data() + i * dim;
        for (std::size_t k = 0; k < dim; ++k) {
            row[k] = next_pm1();
            dot += static_cast<double>(row[k]) * p.w_true[k];
        }
        // Scale the margin so labels stay learnable-but-noisy across n.
        const double z = dot * 8.0 / std::sqrt(static_cast<double>(dim));
        const float u = rng::to_unit_float(
            static_cast<std::uint32_t>(gen() >> 32));
        p.y[i] = (u < sigmoid(z)) ? 1.0f : -1.0f;
    }
    return p;
}

SparseProblem
generate_logistic_sparse(std::size_t dim, std::size_t examples,
                         double density, std::uint64_t seed)
{
    if (dim == 0 || examples == 0)
        fatal("generate_logistic_sparse requires dim, examples >= 1");
    if (density <= 0.0 || density > 1.0)
        fatal("density must be in (0, 1]");
    rng::Xorshift128Plus gen(seed);
    auto next_word = [&gen] {
        return static_cast<std::uint32_t>(gen() >> 32);
    };
    auto next_pm1 = [&] { return unit_to_pm1(next_word()); };

    const auto nnz_per_row = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(density *
                                              static_cast<double>(dim))));

    SparseProblem p;
    p.dim = dim;
    p.w_true.resize(dim);
    for (auto& w : p.w_true) w = next_pm1();

    p.rows.resize(examples);
    p.y.resize(examples);
    std::vector<std::uint32_t> coords(nnz_per_row);
    for (std::size_t i = 0; i < examples; ++i) {
        // Sample distinct sorted coordinates (rejection on duplicates is
        // cheap at 3% density).
        for (auto& c : coords) {
            for (;;) {
                const auto cand = static_cast<std::uint32_t>(
                    next_word() % dim);
                bool dup = false;
                for (const auto& prev : coords) {
                    if (&prev == &c) break;
                    if (prev == cand) {
                        dup = true;
                        break;
                    }
                }
                if (!dup) {
                    c = cand;
                    break;
                }
            }
        }
        std::sort(coords.begin(), coords.end());

        SparseRow& row = p.rows[i];
        row.index = coords;
        row.value.resize(nnz_per_row);
        double dot = 0.0;
        for (std::size_t j = 0; j < nnz_per_row; ++j) {
            row.value[j] = next_pm1();
            dot += static_cast<double>(row.value[j]) * p.w_true[coords[j]];
        }
        const double z =
            dot * 8.0 / std::sqrt(static_cast<double>(nnz_per_row));
        p.y[i] = (rng::to_unit_float(next_word()) < sigmoid(z)) ? 1.0f
                                                                : -1.0f;
    }
    return p;
}

} // namespace buckwild::dataset
