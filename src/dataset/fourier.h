/**
 * @file
 * Random Fourier features (Rahimi & Recht, 2007) — the kernel-SVM proxy of
 * §7: "we evaluated our techniques by running kernel SVMs on MNIST using
 * the random Fourier features technique, a standard proxy for Gaussian
 * kernels".
 *
 * The transform maps an input x in R^d to
 *     z(x) = sqrt(2 / D) * cos(W x + b),   W_ij ~ N(0, 1/sigma^2),
 *     b_j ~ U[0, 2*pi),
 * so that z(x).z(x') approximates the Gaussian kernel
 * exp(-|x-x'|^2 / (2 sigma^2)). A linear SVM on z is then an approximate
 * kernel SVM — and our Buckwild! trainer can quantize z like any dataset.
 */
#ifndef BUCKWILD_DATASET_FOURIER_H
#define BUCKWILD_DATASET_FOURIER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace buckwild::dataset {

/// A sampled random Fourier feature map.
class FourierFeatures
{
  public:
    /**
     * Samples the feature map.
     *
     * @param input_dim   d, the dimensionality of raw inputs
     * @param feature_dim D, the number of random features
     * @param sigma       Gaussian kernel bandwidth
     */
    FourierFeatures(std::size_t input_dim, std::size_t feature_dim,
                    float sigma, std::uint64_t seed);

    std::size_t input_dim() const { return input_dim_; }
    std::size_t feature_dim() const { return feature_dim_; }

    /// Transforms one input vector; `out` must hold feature_dim() floats.
    /// Output components lie in [-sqrt(2/D), sqrt(2/D)].
    void transform(const float* x, float* out) const;

    /// Transforms a batch of `count` row-major inputs.
    std::vector<float> transform_batch(const float* x,
                                       std::size_t count) const;

  private:
    std::size_t input_dim_;
    std::size_t feature_dim_;
    std::vector<float> weights_; ///< feature_dim x input_dim, row-major
    std::vector<float> phases_;  ///< feature_dim
    float scale_;                ///< sqrt(2 / feature_dim)
};

} // namespace buckwild::dataset

#endif // BUCKWILD_DATASET_FOURIER_H
