#include "dataset/fourier.h"

#include <cmath>

#include "rng/xorshift.h"
#include "util/logging.h"

namespace buckwild::dataset {

FourierFeatures::FourierFeatures(std::size_t input_dim,
                                 std::size_t feature_dim, float sigma,
                                 std::uint64_t seed)
    : input_dim_(input_dim), feature_dim_(feature_dim),
      weights_(input_dim * feature_dim), phases_(feature_dim),
      scale_(std::sqrt(2.0f / static_cast<float>(feature_dim)))
{
    if (input_dim == 0 || feature_dim == 0)
        fatal("FourierFeatures requires positive dimensions");
    if (sigma <= 0.0f) fatal("FourierFeatures requires sigma > 0");

    rng::Xorshift128Plus gen(seed);
    auto uniform = [&gen] {
        return rng::to_unit_float(static_cast<std::uint32_t>(gen() >> 32));
    };
    // Box-Muller for the Gaussian frequency matrix.
    const float inv_sigma = 1.0f / sigma;
    for (std::size_t k = 0; k < weights_.size(); k += 2) {
        float u1 = uniform();
        if (u1 < 1e-7f) u1 = 1e-7f;
        const float u2 = uniform();
        const float r = std::sqrt(-2.0f * std::log(u1));
        const float a = 2.0f * static_cast<float>(M_PI) * u2;
        weights_[k] = r * std::cos(a) * inv_sigma;
        if (k + 1 < weights_.size())
            weights_[k + 1] = r * std::sin(a) * inv_sigma;
    }
    for (auto& b : phases_)
        b = 2.0f * static_cast<float>(M_PI) * uniform();
}

void
FourierFeatures::transform(const float* x, float* out) const
{
    for (std::size_t j = 0; j < feature_dim_; ++j) {
        const float* row = weights_.data() + j * input_dim_;
        float dot = phases_[j];
        for (std::size_t k = 0; k < input_dim_; ++k) dot += row[k] * x[k];
        out[j] = scale_ * std::cos(dot);
    }
}

std::vector<float>
FourierFeatures::transform_batch(const float* x, std::size_t count) const
{
    std::vector<float> out(count * feature_dim_);
    for (std::size_t i = 0; i < count; ++i)
        transform(x + i * input_dim_, out.data() + i * feature_dim_);
    return out;
}

} // namespace buckwild::dataset
