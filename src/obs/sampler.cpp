#include "obs/sampler.h"

#include <utility>

#include "obs/export.h"
#include "util/logging.h"

namespace buckwild::obs {

Sampler::Sampler(MetricsRegistry& registry, SamplerConfig config)
    : registry_(registry), config_(std::move(config))
{
    if (config_.capacity == 0) config_.capacity = 1;
}

Sampler::~Sampler()
{
    stop();
}

void
Sampler::add_listener(Listener listener)
{
    listeners_.push_back(std::move(listener));
}

Sample
Sampler::sample_now(double t_seconds, std::int64_t unix_ms)
{
    // Listeners see the raw snapshot and may write derived instruments
    // (conformance ratio, perf counters) back into the registry; the
    // re-snapshot below folds those into this tick's series.
    Sample probe;
    probe.t_seconds = t_seconds;
    probe.unix_ms = unix_ms;
    probe.snapshot = registry_.snapshot();
    for (const Listener& listener : listeners_) listener(probe);

    Sample s;
    s.t_seconds = t_seconds;
    s.unix_ms = unix_ms;
    s.snapshot = listeners_.empty() ? std::move(probe.snapshot)
                                    : registry_.snapshot();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const double dt = t_seconds - prev_t_;
        if (has_prev_ && dt > 0.0) {
            for (const auto& [name, v] : s.snapshot.counters) {
                const auto prev = prev_counters_.find(name);
                // A counter born mid-run has accumulated since creation,
                // not since the last tick — skip it until it has a
                // baseline. A backwards step (registry reset) likewise.
                if (prev != prev_counters_.end() && v >= prev->second)
                    s.rates[name] =
                        static_cast<double>(v - prev->second) / dt;
            }
            for (const std::string& name : config_.rate_gauges) {
                const auto cur = s.snapshot.gauges.find(name);
                const auto prev = prev_gauges_.find(name);
                if (cur != s.snapshot.gauges.end() &&
                    prev != prev_gauges_.end() &&
                    cur->second >= prev->second)
                    s.rates[name] = (cur->second - prev->second) / dt;
            }
        }
        prev_counters_ = s.snapshot.counters;
        prev_gauges_.clear();
        for (const std::string& name : config_.rate_gauges) {
            const auto it = s.snapshot.gauges.find(name);
            if (it != s.snapshot.gauges.end())
                prev_gauges_[name] = it->second;
        }
        prev_t_ = t_seconds;
        has_prev_ = true;

        series_.push_back(s);
        while (series_.size() > config_.capacity) series_.pop_front();
        ++taken_;
    }

    if (config_.publish_rates)
        for (const auto& [name, rate] : s.rates)
            registry_.gauge(name + ".rate").set(rate);

    write_jsonl(s);
    return s;
}

void
Sampler::write_jsonl(const Sample& s)
{
    std::lock_guard<std::mutex> lock(jsonl_mutex_);
    if (!jsonl_.is_open()) return;
    JsonWriter w(jsonl_);
    w.begin_object();
    w.key("t").value(s.t_seconds);
    w.key("unix_ms").value(static_cast<std::int64_t>(s.unix_ms));
    w.key("counters").begin_object();
    for (const auto& [name, v] : s.snapshot.counters) w.key(name).value(v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : s.snapshot.gauges) w.key(name).value(v);
    w.end_object();
    w.key("rates").begin_object();
    for (const auto& [name, v] : s.rates) w.key(name).value(v);
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : s.snapshot.histograms) {
        w.key(name).begin_object();
        w.key("count").value(static_cast<std::uint64_t>(h.count));
        w.key("sum").value(h.sum);
        w.key("min").value(h.min);
        w.key("max").value(h.max);
        w.key("p50").value(h.p50);
        w.key("p95").value(h.p95);
        w.key("p99").value(h.p99);
        if (h.sampled) {
            w.key("sampled").value(true);
            w.key("reservoir").value(
                static_cast<std::uint64_t>(h.reservoir_cap));
        }
        w.end_object();
    }
    w.end_object();
    w.end_object();
    jsonl_ << '\n';
    jsonl_.flush(); // a killed run keeps every completed tick
}

void
Sampler::start()
{
    if (thread_.joinable()) return;
    if (!config_.jsonl_path.empty()) {
        std::lock_guard<std::mutex> lock(jsonl_mutex_);
        jsonl_.open(config_.jsonl_path, std::ios::trunc);
        if (!jsonl_)
            warn("obs: cannot open timeseries output file '" +
                 config_.jsonl_path + "'");
    }
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        stop_requested_ = false;
    }
    started_at_ = std::chrono::steady_clock::now();
    sample_now(0.0,
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count());
    thread_ = std::thread(&Sampler::run, this);
}

void
Sampler::run()
{
    std::unique_lock<std::mutex> lock(stop_mutex_);
    for (;;) {
        if (stop_cv_.wait_for(lock, config_.period,
                              [&] { return stop_requested_; }))
            return;
        lock.unlock();
        const double t = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started_at_)
                             .count();
        sample_now(t,
                   std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count());
        lock.lock();
    }
}

void
Sampler::stop()
{
    if (!thread_.joinable()) return;
    {
        std::lock_guard<std::mutex> lock(stop_mutex_);
        stop_requested_ = true;
    }
    stop_cv_.notify_all();
    thread_.join();
    // One final tick so even a run shorter than the period leaves a
    // baseline *and* a delta sample in the flight record.
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - started_at_)
                         .count();
    sample_now(t,
               std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count());
    std::lock_guard<std::mutex> lock(jsonl_mutex_);
    if (jsonl_.is_open()) jsonl_.close();
}

std::vector<Sample>
Sampler::series() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return {series_.begin(), series_.end()};
}

Sample
Sampler::latest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return series_.empty() ? Sample{} : series_.back();
}

std::uint64_t
Sampler::samples_taken() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return taken_;
}

} // namespace buckwild::obs
