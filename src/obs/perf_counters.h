/**
 * @file
 * PerfCounters — a perf_event_open wrapper making the paper's §5.3
 * cache-behaviour story observable on real runs.
 *
 * Opens three hardware counters over the whole process (instructions
 * retired, CPU cycles, last-level-cache misses; user space only, with
 * inherit so worker threads spawned after construction are counted) and
 * publishes them into a MetricsRegistry on every sampler tick:
 *
 *   obs.perf.available        gauge    1 when counting, 0 when the
 *                                      kernel denied perf_event_open
 *   obs.perf.instructions     counter  cumulative (delta-added per tick)
 *   obs.perf.cycles           counter  cumulative
 *   obs.perf.llc_misses       counter  cumulative
 *   obs.perf.ipc              gauge    instructions/cycle over the tick
 *   obs.perf.llc_miss_per_kinsn gauge  LLC misses per 1000 instructions
 *                                      over the tick — the §5.3 signal:
 *                                      a low-precision run whose misses
 *                                      per instruction jump is off its
 *                                      prefetch-friendly access pattern
 *
 * Counters (not gauges) for the cumulative series means the sampler
 * derives obs.perf.*.rate automatically and Prometheus scrapers can
 * rate() them natively.
 *
 * Degrades gracefully: in CI containers perf_event_open typically fails
 * with EPERM/EACCES (perf_event_paranoid, seccomp) — available() turns
 * false, the availability gauge reads 0, unavailable_reason() says why,
 * and everything else is a no-op. Construction never throws.
 */
#ifndef BUCKWILD_OBS_PERF_COUNTERS_H
#define BUCKWILD_OBS_PERF_COUNTERS_H

#include <cstdint>
#include <string>

#include "obs/registry.h"

namespace buckwild::obs {

class PerfCounters
{
  public:
    /// Opens the counters; check available() for the outcome.
    PerfCounters();
    ~PerfCounters();

    PerfCounters(const PerfCounters&) = delete;
    PerfCounters& operator=(const PerfCounters&) = delete;

    bool available() const { return available_; }

    /// Human-readable reason when available() is false (e.g.
    /// "perf_event_open(instructions): Permission denied").
    const std::string& unavailable_reason() const { return reason_; }

    struct Reading
    {
        bool ok = false;
        std::uint64_t instructions = 0;
        std::uint64_t cycles = 0;
        std::uint64_t llc_misses = 0;
    };

    /// Reads the cumulative counts (ok=false when unavailable).
    Reading read() const;

    /// Publishes the current counts into `registry` (see file comment).
    /// Designed as a Sampler listener: call once per tick.
    void publish(MetricsRegistry& registry);

  private:
    int open_counter(std::uint64_t config, const char* what);

    int fd_instructions_ = -1;
    int fd_cycles_ = -1;
    int fd_llc_misses_ = -1;
    bool available_ = false;
    std::string reason_;
    Reading last_published_;
    bool has_last_ = false;
};

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_PERF_COUNTERS_H
