/**
 * @file
 * FleetAggregator — one scrape for the whole cluster.
 *
 * A spawned multi-process run (`buckwild_cluster --spawn`) gives every
 * node its own registry and its own ephemeral /metrics endpoint, which
 * means N scrape targets for what is logically one training job. The
 * aggregator runs on the control node: merged_body() HTTP-GETs every
 * registered target's /metrics, injects a `node="<label>"` label into
 * each sample line, deduplicates the `# HELP`/`# TYPE` comment lines
 * across nodes, optionally prepends the control process's own registry
 * (relabeled the same way), and returns one text-exposition body. Wired
 * into HttpExporterConfig::metrics_body, the control node re-exposes
 * the merged view so a single scrape sees every shard's
 * `ps_staleness_total{worker=...,staleness=...,node="shard0"}` next to
 * every worker's push timings.
 *
 * Scrapes are on-demand (one per merged_body() call) over the net::
 * primitives — no HTTP client dependency. A target that fails to answer
 * serves its last good snapshot instead (workers exit before shards, so
 * their final numbers should outlive them in the merged view); targets
 * that never answered are simply absent, with a failure counter for
 * visibility.
 */
#ifndef BUCKWILD_OBS_FLEET_H
#define BUCKWILD_OBS_FLEET_H

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/socket.h"
#include "obs/registry.h"

namespace buckwild::obs {

/// One node endpoint in the fleet, and the `node` label its series get.
struct FleetTarget
{
    std::string node;
    net::Address address;
};

struct FleetConfig
{
    std::vector<FleetTarget> targets;
    /// Per-target connect + response budget for one scrape.
    std::chrono::milliseconds scrape_timeout{1000};
    /// When non-empty, the aggregating process's own registry is
    /// included under this node label (the control node counts too).
    std::string local_node;
    /// Registry for local_node; nullptr = the global registry.
    MetricsRegistry* local_registry = nullptr;
};

class FleetAggregator
{
  public:
    explicit FleetAggregator(FleetConfig config);

    /// Registers another scrape target (e.g. as spawned children report
    /// their ephemeral ports). Thread-safe.
    void add_target(FleetTarget target);

    std::size_t target_count() const;

    /// Scrapes every target now and returns the merged, node-labeled
    /// exposition body. Thread-safe; called by the HTTP exporter thread.
    std::string merged_body();

    /// Scrapes that returned no usable body since construction (the
    /// per-target last-good cache still covered those nodes if they had
    /// answered before).
    std::uint64_t scrape_failures() const;

    /// Injects `node="<node>"` into every sample line of a Prometheus
    /// text-exposition `body`. Exposed for tests.
    static std::string relabel(const std::string& body,
                               const std::string& node);

    /// One HTTP GET of `path` (e.g. "/metrics") from `address`; empty
    /// string on connect/timeout/non-200. Exposed for tests.
    static std::string http_get(const net::Address& address,
                                const std::string& path,
                                std::chrono::milliseconds timeout);

  private:
    FleetConfig config_;
    mutable std::mutex mutex_;
    std::vector<FleetTarget> targets_;
    /// node label -> last successfully scraped (already relabeled) body.
    std::map<std::string, std::string> last_good_;
    std::uint64_t failures_ = 0;
};

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_FLEET_H
