#include "obs/tracectx.h"

#include <atomic>
#include <chrono>

#include <unistd.h>

namespace buckwild::obs {
namespace {

/// splitmix64 — tiny, well-mixed, and stateless given a counter; the
/// standard choice for seeding ids without dragging in <random>.
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Per-process id stream: the seed folds in wall clock, steady clock,
/// and pid so two processes forked in the same microsecond still draw
/// from different streams.
std::uint64_t
next_id()
{
    static const std::uint64_t seed = [] {
        const auto wall = std::chrono::system_clock::now();
        const auto steady = std::chrono::steady_clock::now();
        std::uint64_t s = static_cast<std::uint64_t>(
            wall.time_since_epoch().count());
        s ^= splitmix64(static_cast<std::uint64_t>(
            steady.time_since_epoch().count()));
        s ^= splitmix64(static_cast<std::uint64_t>(::getpid()) << 32);
        return s;
    }();
    static std::atomic<std::uint64_t> counter{0};
    const std::uint64_t n =
        counter.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = splitmix64(seed + n);
    return id == 0 ? 1 : id;
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint64_t
get_u64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

char
hex_digit(std::uint64_t nibble)
{
    return "0123456789abcdef"[nibble & 0xF];
}

void
append_hex64(std::string& out, std::uint64_t v)
{
    for (int shift = 60; shift >= 0; shift -= 4)
        out.push_back(hex_digit(v >> shift));
}

} // namespace

TraceContext
make_root_context()
{
    TraceContext ctx;
    ctx.trace_lo = next_id();
    ctx.trace_hi = next_id();
    ctx.span = next_id();
    ctx.parent = 0;
    return ctx;
}

TraceContext
child_of(const TraceContext& ctx)
{
    if (!ctx.valid()) return TraceContext{};
    TraceContext child;
    child.trace_lo = ctx.trace_lo;
    child.trace_hi = ctx.trace_hi;
    child.span = next_id();
    child.parent = ctx.span;
    return child;
}

std::string
trace_id_hex(const TraceContext& ctx)
{
    std::string out;
    out.reserve(32);
    append_hex64(out, ctx.trace_hi);
    append_hex64(out, ctx.trace_lo);
    return out;
}

std::string
span_id_hex(std::uint64_t span)
{
    std::string out;
    out.reserve(16);
    append_hex64(out, span);
    return out;
}

void
append_trace_block(std::vector<std::uint8_t>& out, const WireTrace& trace)
{
    out.reserve(out.size() + kTraceBlockBytes);
    out.push_back(kTraceBlockTag);
    out.push_back(kTraceBlockVersion);
    put_u64(out, trace.ctx.trace_lo);
    put_u64(out, trace.ctx.trace_hi);
    put_u64(out, trace.ctx.span);
    put_u64(out, trace.ctx.parent);
    put_u64(out, static_cast<std::uint64_t>(trace.send_ts_ns));
    put_u64(out, static_cast<std::uint64_t>(trace.echo_send_ts_ns));
    put_u64(out, static_cast<std::uint64_t>(trace.echo_recv_ts_ns));
}

bool
parse_trace_block(const std::uint8_t* data, std::size_t n, WireTrace& out)
{
    if (n != kTraceBlockBytes) return false;
    if (data[0] != kTraceBlockTag) return false;
    if (data[1] != kTraceBlockVersion) return false;
    WireTrace trace;
    trace.ctx.trace_lo = get_u64(data + 2);
    trace.ctx.trace_hi = get_u64(data + 10);
    trace.ctx.span = get_u64(data + 18);
    trace.ctx.parent = get_u64(data + 26);
    trace.send_ts_ns = static_cast<std::int64_t>(get_u64(data + 34));
    trace.echo_send_ts_ns = static_cast<std::int64_t>(get_u64(data + 42));
    trace.echo_recv_ts_ns = static_cast<std::int64_t>(get_u64(data + 50));
    // A block whose context is invalid could never have been emitted by
    // append_trace_block; treat it as trailing garbage.
    if (!trace.ctx.valid()) return false;
    out = trace;
    return true;
}

ClockSample
clock_sample_from_reply(const WireTrace& reply, std::int64_t recv_ts_ns)
{
    ClockSample sample;
    const std::int64_t a1 = reply.echo_send_ts_ns; // our request left
    const std::int64_t b1 = reply.echo_recv_ts_ns; // responder received
    const std::int64_t b2 = reply.send_ts_ns;      // responder replied
    const std::int64_t a2 = recv_ts_ns;            // we received
    if (a1 == 0 || b1 == 0 || b2 == 0 || a2 == 0) return sample;
    if (a2 < a1 || b2 < b1) return sample;
    sample.offset_ns = ((b1 - a1) + (b2 - a2)) / 2;
    sample.rtt_ns = (a2 - a1) - (b2 - b1);
    sample.valid = true;
    return sample;
}

} // namespace buckwild::obs
