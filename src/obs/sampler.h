/**
 * @file
 * Sampler — the live tier of the observability layer.
 *
 * A background thread snapshots a MetricsRegistry on a fixed period and
 * turns the cumulative instruments into *live* telemetry:
 *
 *  - per-interval rates from counter deltas (`requests/s`, `bytes/s`),
 *    plus deltas of explicitly listed monotone gauges (the GNPS inputs
 *    `serve.numbers` / `ps.worker.numbers` are accumulated gauges);
 *  - a bounded in-memory time series (a deque capped at
 *    `SamplerConfig::capacity`, oldest samples dropped) for in-process
 *    consumers;
 *  - one JSONL line per tick appended to `jsonl_path` (--timeseries-out)
 *    so a run leaves a machine-readable flight record;
 *  - rate gauges written back into the registry as `<name>.rate`, which
 *    is how the HTTP /metrics endpoint serves live req/s without any
 *    coupling between the exporter and the sampler.
 *
 * Listeners (the perf-counter publisher and the DMGC conformance
 * watchdog) run on the sampler thread after each snapshot, *before*
 * rates are derived and published, so anything they write into the
 * registry is part of the same tick's series.
 *
 * Testability: the whole derivation pipeline is in sample_now(t), which
 * the background thread calls with real elapsed time and tests call
 * directly with a hand-driven fake clock — rate math is asserted
 * deterministically without sleeping.
 */
#ifndef BUCKWILD_OBS_SAMPLER_H
#define BUCKWILD_OBS_SAMPLER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.h"

namespace buckwild::obs {

/// One tick of the live time series.
struct Sample
{
    /// Seconds since the sampler started (or as driven by a test clock).
    double t_seconds = 0.0;
    /// Wall-clock milliseconds since the Unix epoch (0 under fake clocks).
    std::int64_t unix_ms = 0;
    MetricsSnapshot snapshot;
    /// Per-second rates derived from the previous tick: every counter,
    /// plus each configured monotone gauge. Empty on the first tick.
    std::map<std::string, double> rates;
};

struct SamplerConfig
{
    std::chrono::milliseconds period{500};
    /// Retained in-memory samples (oldest dropped past this).
    std::size_t capacity = 720; // 6 minutes at the default period
    /// JSONL flight-record path; empty = no file output.
    std::string jsonl_path;
    /// Monotone (accumulate-only) gauges to differentiate into rates —
    /// the GNPS numerators/denominators live here, not in counters.
    std::vector<std::string> rate_gauges;
    /// Write each derived rate back as a `<name>.rate` gauge so scrape
    /// endpoints serve live rates.
    bool publish_rates = true;
};

class Sampler
{
  public:
    using Listener = std::function<void(const Sample&)>;

    Sampler(MetricsRegistry& registry, SamplerConfig config);
    ~Sampler(); ///< stops the thread if still running

    Sampler(const Sampler&) = delete;
    Sampler& operator=(const Sampler&) = delete;

    /// Registers a per-tick callback (run on the sampler thread).
    /// Call before start(); not synchronized against a running thread.
    void add_listener(Listener listener);

    /// Spawns the background thread and takes an immediate baseline
    /// sample (so rates exist from the first full period onward).
    void start();

    /// Takes one final sample, stops the thread, and closes the JSONL
    /// file. Idempotent; also called by the destructor.
    void stop();

    bool running() const { return thread_.joinable(); }

    /**
     * Takes one sample at timeline point `t_seconds` and returns it.
     * The background thread calls this with real elapsed time; tests
     * call it directly with a fake clock (monotonically increasing t).
     * Thread-safe with respect to concurrent readers.
     */
    Sample sample_now(double t_seconds, std::int64_t unix_ms = 0);

    /// Copy of the retained window, oldest first.
    std::vector<Sample> series() const;

    /// The most recent sample (default-constructed if none yet).
    Sample latest() const;

    /// Total ticks taken (monotone; not bounded by capacity).
    std::uint64_t samples_taken() const;

    const SamplerConfig& config() const { return config_; }

  private:
    void run();
    void write_jsonl(const Sample& s);

    MetricsRegistry& registry_;
    SamplerConfig config_;
    std::vector<Listener> listeners_;

    mutable std::mutex mutex_; ///< guards series_ + derivation state
    std::deque<Sample> series_;
    std::uint64_t taken_ = 0;
    bool has_prev_ = false;
    double prev_t_ = 0.0;
    std::map<std::string, std::uint64_t> prev_counters_;
    std::map<std::string, double> prev_gauges_;

    std::ofstream jsonl_;
    std::mutex jsonl_mutex_;

    std::thread thread_;
    std::mutex stop_mutex_;
    std::condition_variable stop_cv_;
    bool stop_requested_ = false;
    std::chrono::steady_clock::time_point started_at_;
};

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_SAMPLER_H
