#include "obs/conformance.h"

#include "obs/trace.h"

namespace buckwild::obs {

ConformanceWatchdog::ConformanceWatchdog(MetricsRegistry& registry,
                                         ConformanceConfig config,
                                         dmgc::PerfModel model)
    : config_(std::move(config)),
      ratio_(&registry.gauge("obs.conformance.ratio")),
      measured_(&registry.gauge("obs.conformance.measured_gnps")),
      violations_(&registry.counter("obs.conformance.violations")),
      registry_(registry)
{
    // Create the whole family eagerly so a scrape taken before any load
    // arrives already carries the series (CI asserts on their presence).
    const bool calibrated = model.is_calibrated(config_.signature);
    if (calibrated && config_.model_size > 0 && config_.threads > 0)
        predicted_ = model.predict_gnps(config_.signature, config_.threads,
                                        config_.model_size);
    registry.gauge("obs.conformance.predicted_gnps").set(predicted_);
    registry.gauge("obs.conformance.calibrated").set(calibrated ? 1.0 : 0.0);
    registry.gauge("obs.conformance.band_lo").set(config_.band_lo);
    registry.gauge("obs.conformance.band_hi").set(config_.band_hi);
    ratio_->set(0.0);
    measured_->set(0.0);
}

void
ConformanceWatchdog::observe(const Sample& sample)
{
    observe(sample.t_seconds, sample.snapshot);
}

void
ConformanceWatchdog::observe(double /*t_seconds*/,
                             const MetricsSnapshot& snapshot)
{
    const auto num_it = snapshot.gauges.find(config_.numbers_gauge);
    const auto sec_it = snapshot.gauges.find(config_.seconds_gauge);
    if (num_it == snapshot.gauges.end() || sec_it == snapshot.gauges.end())
        return; // the workload has not published its GNPS inputs yet

    const double numbers = num_it->second;
    const double seconds = sec_it->second;
    if (!has_prev_) {
        has_prev_ = true;
        prev_numbers_ = numbers;
        prev_seconds_ = seconds;
        return; // baseline only; a rate needs two points
    }

    const double d_numbers = numbers - prev_numbers_;
    const double d_seconds = seconds - prev_seconds_;
    prev_numbers_ = numbers;
    prev_seconds_ = seconds;

    // Idle tick (or a registry reset walking the gauges backwards):
    // leave the last measured value standing rather than reporting a
    // spurious zero-throughput violation.
    if (d_seconds < config_.min_interval_seconds || d_numbers < 0.0) return;

    const double measured_gnps = d_numbers / d_seconds / 1e9;
    measured_->set(measured_gnps);
    if (predicted_ <= 0.0) return; // uncalibrated: no ratio, no violations

    const double ratio = measured_gnps / predicted_;
    ratio_->set(ratio);
    if (ratio < config_.band_lo || ratio > config_.band_hi) {
        violations_->add(1);
        Tracer::global().instant("conformance", "out_of_band");
    }
}

} // namespace buckwild::obs
