/**
 * @file
 * ConformanceWatchdog — roofline conformance as first-class telemetry.
 *
 * The paper's §4 DMGC performance model predicts what throughput a
 * signature *should* sustain: T(t) = T1·t / (1 + (t-1)(1-p)) with
 * p(n) = 0.89 − 22/√n and T1 from the Table-2 calibration. This
 * watchdog closes the loop at run time: each sampler tick it derives
 * measured live GNPS from two cumulative registry gauges (numbers
 * processed and busy/compute seconds — the same numerator/denominator
 * the post-run gnps() reports use), divides by the model's prediction
 * for the active signature, and maintains:
 *
 *   obs.conformance.ratio          gauge    measured / predicted GNPS
 *   obs.conformance.measured_gnps  gauge    live GNPS this interval
 *   obs.conformance.predicted_gnps gauge    model prediction (constant)
 *   obs.conformance.band_lo/_hi    gauge    the configured band
 *   obs.conformance.calibrated     gauge    1 if the signature has a
 *                                           Table-2 row, else 0
 *   obs.conformance.violations     counter  ticks the ratio left the band
 *
 * When the ratio leaves [band_lo, band_hi] the watchdog also emits a
 * trace instant ("conformance", "out_of_band"), so a perf regression or
 * a staleness stall shows up in the Chrome trace exactly where it
 * happened instead of as a post-hoc bench diff.
 *
 * Band semantics: the prediction is calibrated on the paper's Xeon
 * E7-8890 v3, so on another host the ratio settles at a machine factor
 * rather than 1.0 — the band is about *stability* (detecting the ratio
 * leaving its envelope), and the default [0.02, 50] band only flags
 * order-of-magnitude departures. Operators who have observed their
 * host's steady ratio tighten the band around it (--conformance-band).
 *
 * Idle intervals (busy-seconds delta below min_interval_seconds) are
 * skipped entirely: an unloaded server is not a roofline violation.
 *
 * Uncalibrated signatures (e.g. the Cs-term cluster signatures that
 * have no Table-2 row) publish calibrated=0 and measured GNPS only —
 * never a ratio, never a violation.
 */
#ifndef BUCKWILD_OBS_CONFORMANCE_H
#define BUCKWILD_OBS_CONFORMANCE_H

#include <cstdint>
#include <string>

#include "dmgc/perf_model.h"
#include "dmgc/signature.h"
#include "obs/registry.h"
#include "obs/sampler.h"

namespace buckwild::obs {

struct ConformanceConfig
{
    /// The signature whose roofline the run is held to.
    dmgc::Signature signature;
    std::size_t threads = 1;
    /// Model size n for p(n); 0 disables prediction (measured only).
    std::size_t model_size = 0;
    /// Cumulative registry gauges the live GNPS is derived from.
    std::string numbers_gauge = "serve.numbers";
    std::string seconds_gauge = "serve.busy_seconds";
    /// Acceptable measured/predicted envelope (see file comment).
    double band_lo = 0.02;
    double band_hi = 50.0;
    /// Busy-second delta below which a tick is treated as idle.
    double min_interval_seconds = 1e-4;
};

class ConformanceWatchdog
{
  public:
    ConformanceWatchdog(MetricsRegistry& registry, ConformanceConfig config,
                        dmgc::PerfModel model = dmgc::PerfModel::paper_model());

    /// Sampler listener: derives this tick's measured GNPS and updates
    /// the conformance instruments.
    void observe(const Sample& sample);

    /// Testable core — the same update from an explicit snapshot.
    void observe(double t_seconds, const MetricsSnapshot& snapshot);

    /// The model's prediction for the configured signature (0 when
    /// uncalibrated or model_size is 0).
    double predicted_gnps() const { return predicted_; }

    std::uint64_t violations() const { return violations_->value(); }

    const ConformanceConfig& config() const { return config_; }

  private:
    ConformanceConfig config_;
    double predicted_ = 0.0;

    Gauge* ratio_;
    Gauge* measured_;
    Counter* violations_;

    MetricsRegistry& registry_;
    bool has_prev_ = false;
    double prev_numbers_ = 0.0;
    double prev_seconds_ = 0.0;
};

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_CONFORMANCE_H
