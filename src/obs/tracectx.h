/**
 * @file
 * TraceContext — the distributed-tracing identity that crosses process
 * boundaries, and its wire representation.
 *
 * A context is a 128-bit trace id (one end-to-end request or push),
 * a 64-bit span id (one operation inside it), and the parent span id.
 * Contexts are minted at the request/push origin (make_root_context)
 * and derived on the far side (child_of), so every hop of one logical
 * operation shares the trace id while keeping its own span lineage.
 *
 * On the wire a context travels as an optional fixed-size trailing
 * block appended after a message's last regular field:
 *
 *     offset  size  field
 *     0       1     tag = 0xCE
 *     1       1     version = 1
 *     2       8     trace id low 64 bits (LE)
 *     10      8     trace id high 64 bits
 *     18      8     span id
 *     26      8     parent span id
 *     34      8     send timestamp, sender's steady clock, ns (int64)
 *     42      8     echoed request send timestamp (responses only)
 *     50      8     echoed request receive timestamp (responses only)
 *
 * The block is emitted only when the context is valid, so a message
 * serialized with tracing off is byte-identical to the pre-trace wire
 * format (the frame goldens in tests/test_net.cpp and tests/test_gate.cpp
 * re-run unchanged), and an old-format frame parses in new code as a
 * message with no context. The three timestamps make every *response*
 * a complete NTP-style clock-offset sample with zero sender-side state:
 * the receiver of a response holds a1 (its own send, echoed back), b1
 * (the responder's receive, echoed back), b2 (the responder's reply
 * send) and a2 (its own receive) — offset = ((b1-a1)+(b2-a2))/2,
 * rtt = (a2-a1)-(b2-b1).
 */
#ifndef BUCKWILD_OBS_TRACECTX_H
#define BUCKWILD_OBS_TRACECTX_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace buckwild::obs {

/// The identity one distributed operation carries across processes.
struct TraceContext
{
    std::uint64_t trace_lo = 0; ///< trace id, low 64 bits
    std::uint64_t trace_hi = 0; ///< trace id, high 64 bits
    std::uint64_t span = 0;     ///< this operation's span id
    std::uint64_t parent = 0;   ///< parent span id (0 = root)

    /// A zero trace id means "no context" (tracing off / old frame).
    bool valid() const { return (trace_lo | trace_hi) != 0; }

    bool
    same_trace(const TraceContext& other) const
    {
        return trace_lo == other.trace_lo && trace_hi == other.trace_hi;
    }
};

/// Mints a fresh root context: new 128-bit trace id, new span, no
/// parent. Ids are unique per process (counter) and across processes
/// (seeded from the clock and pid), never zero.
TraceContext make_root_context();

/// Derives a child span inside `ctx`'s trace: same trace id, fresh span
/// id, parent = ctx.span. Invalid input yields an invalid context.
TraceContext child_of(const TraceContext& ctx);

/// 32 lowercase hex chars of the 128-bit trace id (hi then lo).
std::string trace_id_hex(const TraceContext& ctx);

/// 16 lowercase hex chars of a span id.
std::string span_id_hex(std::uint64_t span);

/// A context plus the wire timestamps of the trailing trace block.
struct WireTrace
{
    TraceContext ctx;
    std::int64_t send_ts_ns = 0;      ///< sender's steady clock at send
    std::int64_t echo_send_ts_ns = 0; ///< responses: request's send_ts_ns
    std::int64_t echo_recv_ts_ns = 0; ///< responses: request's arrival ts
};

/// Serialized size of the optional trailing trace block.
inline constexpr std::size_t kTraceBlockBytes = 58;
inline constexpr std::uint8_t kTraceBlockTag = 0xCE;
inline constexpr std::uint8_t kTraceBlockVersion = 1;

/// Appends the 58-byte trace block to `out`. Call only when
/// `trace.ctx.valid()` — an invalid context must stay off the wire so
/// trace-less serialization remains byte-identical to the old format.
void append_trace_block(std::vector<std::uint8_t>& out,
                        const WireTrace& trace);

/// Parses exactly kTraceBlockBytes at data[0..n). False when n is not
/// exactly the block size, the tag/version mismatch, or the embedded
/// context is invalid — a deserializer that finds trailing bytes which
/// are not one well-formed trace block must reject the whole message
/// (preserving the truncation/trailing-garbage sweeps).
bool parse_trace_block(const std::uint8_t* data, std::size_t n,
                       WireTrace& out);

/**
 * One NTP-style offset sample from a response's trace block:
 * `offset_ns` estimates (responder clock - local clock), `rtt_ns` the
 * network round trip excluding responder service time. `valid` is false
 * when the response carried no usable timestamps.
 */
struct ClockSample
{
    std::int64_t offset_ns = 0;
    std::int64_t rtt_ns = 0;
    bool valid = false;
};

/// Computes the offset sample for a response received at `recv_ts_ns`
/// (local steady clock). See the file comment for the a1/b1/b2/a2 roles.
ClockSample clock_sample_from_reply(const WireTrace& reply,
                                    std::int64_t recv_ts_ns);

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_TRACECTX_H
