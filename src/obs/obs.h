/**
 * @file
 * Umbrella header for the observability layer plus the hot-path
 * instrumentation macros.
 *
 * The macros are the only part of the layer that appears inside
 * per-minibatch / per-message code, and they compile to `((void)0)`
 * when the tree is configured with -DBUCKWILD_OBS=OFF (which defines
 * BUCKWILD_OBS_ENABLED=0). The library API itself (registry, tracer,
 * exporters) always builds, so tools and tests link either way — an
 * OFF build just produces empty traces and only explicitly published
 * metrics.
 *
 * Costs when ON:
 *  - BUCKWILD_OBS_SPAN: one relaxed atomic load when tracing is off;
 *    two steady_clock reads plus an uncontended mutex push (~100ns)
 *    when on.
 *  - BUCKWILD_OBS_COUNT / _GAUGE_ADD: a function-local static lookup
 *    (one registry map lookup ever) then one relaxed atomic RMW.
 *  - BUCKWILD_OBS_HISTO: a mutex push_back — record per batch, not per
 *    item.
 */
#ifndef BUCKWILD_OBS_OBS_H
#define BUCKWILD_OBS_OBS_H

#include "obs/conformance.h"
#include "obs/export.h"
#include "obs/http_exporter.h"
#include "obs/perf_counters.h"
#include "obs/prom.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/trace.h"

#ifndef BUCKWILD_OBS_ENABLED
#define BUCKWILD_OBS_ENABLED 1
#endif

#if BUCKWILD_OBS_ENABLED

#define BUCKWILD_OBS_CONCAT_IMPL(a, b) a##b
#define BUCKWILD_OBS_CONCAT(a, b) BUCKWILD_OBS_CONCAT_IMPL(a, b)

/// RAII span covering the rest of the enclosing scope. Literal args only.
#define BUCKWILD_OBS_SPAN(category, name)                                      \
    ::buckwild::obs::ScopedSpan BUCKWILD_OBS_CONCAT(obs_span_, __LINE__)(      \
        category, name)

/// Adds `n` to the named global counter. The registry lookup happens
/// once per call site (function-local static), so the steady-state cost
/// is a single relaxed fetch_add.
#define BUCKWILD_OBS_COUNT(metric, n)                                          \
    do {                                                                       \
        static ::buckwild::obs::Counter& obs_counter_ =                        \
            ::buckwild::obs::MetricsRegistry::global().counter(metric);        \
        obs_counter_.add(static_cast<std::uint64_t>(n));                       \
    } while (0)

/// Accumulates `dv` into the named global gauge (e.g. seconds busy).
#define BUCKWILD_OBS_GAUGE_ADD(metric, dv)                                     \
    do {                                                                       \
        static ::buckwild::obs::Gauge& obs_gauge_ =                            \
            ::buckwild::obs::MetricsRegistry::global().gauge(metric);          \
        obs_gauge_.add(static_cast<double>(dv));                               \
    } while (0)

/// Records one sample into the named global histogram.
#define BUCKWILD_OBS_HISTO(metric, x)                                          \
    do {                                                                       \
        static ::buckwild::obs::Histo& obs_histo_ =                            \
            ::buckwild::obs::MetricsRegistry::global().histogram(metric);      \
        obs_histo_.record(static_cast<double>(x));                             \
    } while (0)

/// Emits a point event into the trace (no-op unless tracing is on).
#define BUCKWILD_OBS_INSTANT(category, name)                                   \
    ::buckwild::obs::Tracer::global().instant(category, name)

/// Samples a value into the trace's counter track.
#define BUCKWILD_OBS_TRACE_COUNTER(category, name, v)                          \
    ::buckwild::obs::Tracer::global().counter(category, name,                  \
                                              static_cast<double>(v))

#else // !BUCKWILD_OBS_ENABLED

#define BUCKWILD_OBS_SPAN(category, name) ((void)0)
#define BUCKWILD_OBS_COUNT(metric, n) ((void)0)
#define BUCKWILD_OBS_GAUGE_ADD(metric, dv) ((void)0)
#define BUCKWILD_OBS_HISTO(metric, x) ((void)0)
#define BUCKWILD_OBS_INSTANT(category, name) ((void)0)
#define BUCKWILD_OBS_TRACE_COUNTER(category, name, v) ((void)0)

#endif // BUCKWILD_OBS_ENABLED

#endif // BUCKWILD_OBS_OBS_H
