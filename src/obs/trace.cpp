#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include <unistd.h>

namespace buckwild::obs {

std::int64_t trace_now_ns()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

TraceRing::TraceRing(std::size_t capacity, std::uint32_t tid)
    : capacity_(capacity), tid_(tid)
{
    events_.reserve(capacity_);
}

bool TraceRing::record(const TraceEvent& ev)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (events_.size() >= capacity_) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    events_.push_back(ev);
    return true;
}

std::size_t TraceRing::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void TraceRing::drain(std::vector<TraceEvent>& out)
{
    std::lock_guard<std::mutex> lock(mutex_);
    out.insert(out.end(), events_.begin(), events_.end());
    events_.clear();
    dropped_.store(0, std::memory_order_relaxed);
}

Tracer& Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

TraceRing& Tracer::ring()
{
    // One ring per (thread, process lifetime). The thread_local holds a
    // shared_ptr copy so the registry's copy keeps the events alive for
    // a flush that happens after the thread has exited.
    thread_local std::shared_ptr<TraceRing> t_ring;
    if (!t_ring) {
        t_ring = std::make_shared<TraceRing>(
            ring_capacity_.load(std::memory_order_relaxed),
            next_tid_.fetch_add(1, std::memory_order_relaxed));
        std::lock_guard<std::mutex> lock(rings_mutex_);
        rings_.push_back(t_ring);
    }
    return *t_ring;
}

void Tracer::set_process(const std::string& label, std::uint32_t pid)
{
    std::lock_guard<std::mutex> lock(process_mutex_);
    process_label_ = label;
    process_id_ =
        pid != 0 ? pid : static_cast<std::uint32_t>(::getpid());
}

std::string Tracer::process_label() const
{
    std::lock_guard<std::mutex> lock(process_mutex_);
    return process_label_;
}

std::uint32_t Tracer::process_id() const
{
    std::lock_guard<std::mutex> lock(process_mutex_);
    return process_id_;
}

void Tracer::complete(const char* category, const char* name, std::int64_t ts_ns,
                      std::int64_t dur_ns)
{
    complete(category, name, ts_ns, dur_ns, TraceContext{});
}

void Tracer::complete(const char* category, const char* name, std::int64_t ts_ns,
                      std::int64_t dur_ns, const TraceContext& ctx)
{
    if (!enabled()) return;
    TraceEvent ev;
    ev.category = category;
    ev.name = name;
    ev.type = TraceEvent::Type::kComplete;
    ev.ts_ns = ts_ns;
    ev.dur_ns = dur_ns;
    ev.ctx = ctx;
    TraceRing& r = ring();
    ev.tid = r.tid();
    r.record(ev);
}

void Tracer::instant(const char* category, const char* name)
{
    instant(category, name, TraceContext{});
}

void Tracer::instant(const char* category, const char* name,
                     const TraceContext& ctx)
{
    if (!enabled()) return;
    TraceEvent ev;
    ev.category = category;
    ev.name = name;
    ev.type = TraceEvent::Type::kInstant;
    ev.ts_ns = trace_now_ns();
    ev.ctx = ctx;
    TraceRing& r = ring();
    ev.tid = r.tid();
    r.record(ev);
}

void Tracer::clocksync(const char* category, const TraceContext& ctx,
                       std::int64_t offset_ns, std::int64_t rtt_ns)
{
    if (!enabled()) return;
    TraceEvent ev;
    ev.category = category;
    ev.name = "clocksync";
    ev.type = TraceEvent::Type::kClockSync;
    ev.ts_ns = trace_now_ns();
    ev.dur_ns = rtt_ns;
    ev.value = static_cast<double>(offset_ns);
    ev.ctx = ctx;
    TraceRing& r = ring();
    ev.tid = r.tid();
    r.record(ev);
}

void Tracer::counter(const char* category, const char* name, double value)
{
    if (!enabled()) return;
    TraceEvent ev;
    ev.category = category;
    ev.name = name;
    ev.type = TraceEvent::Type::kCounter;
    ev.ts_ns = trace_now_ns();
    ev.value = value;
    TraceRing& r = ring();
    ev.tid = r.tid();
    r.record(ev);
}

std::vector<TraceEvent> Tracer::flush()
{
    std::vector<TraceEvent> merged;
    {
        std::lock_guard<std::mutex> lock(rings_mutex_);
        for (auto& r : rings_) r->drain(merged);
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                         return a.ts_ns < b.ts_ns;
                     });
    return merged;
}

std::uint64_t Tracer::dropped() const
{
    std::uint64_t total = 0;
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& r : rings_) total += r->dropped();
    return total;
}

} // namespace buckwild::obs
