#include "obs/registry.h"

#include <algorithm>

#include "util/stats.h"

namespace buckwild::obs {

void Histo::record(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.push_back(x);
}

void Histo::record_many(const std::vector<double>& xs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.insert(samples_.end(), xs.begin(), xs.end());
}

std::size_t Histo::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_.size();
}

double Histo::percentile(double p) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return percentile_of(samples_, p);
}

double Histo::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double s = 0.0;
    for (double x : samples_) s += x;
    return s;
}

std::vector<double> Histo::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

void Histo::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
}

Counter& MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histo& MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histo>();
    return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_) {
        MetricsSnapshot::HistoSummary s;
        std::vector<double> xs = h->samples();
        s.count = xs.size();
        for (double x : xs) s.sum += x;
        if (!xs.empty()) {
            s.min = *std::min_element(xs.begin(), xs.end());
            s.max = *std::max_element(xs.begin(), xs.end());
        }
        s.p50 = percentile_of(xs, 50.0);
        s.p95 = percentile_of(xs, 95.0);
        s.p99 = percentile_of(xs, 99.0);
        snap.histograms[name] = s;
    }
    return snap;
}

void MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace buckwild::obs
