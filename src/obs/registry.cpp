#include "obs/registry.h"

#include "util/stats.h"

namespace buckwild::obs {

namespace {

/// Fixed seed so two identical record streams keep identical reservoirs
/// (the determinism contract the replay tests assert).
constexpr std::uint64_t kReservoirSeed = 0x9E3779B97F4A7C15ull;

/// xorshift64* step — same generator family as src/rng, inlined here so
/// the registry stays dependency-free below util.
std::uint64_t
xorshift64star(std::uint64_t& state)
{
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1Dull;
}

} // namespace

Histo::Histo(std::size_t reservoir_cap)
    : cap_(reservoir_cap == 0 ? 1 : reservoir_cap), rng_(kReservoirSeed)
{
}

void Histo::record_locked(double x)
{
    ++count_;
    sum_ += x;
    if (count_ == 1) {
        min_ = max_ = x;
    } else {
        if (x < min_) min_ = x;
        if (x > max_) max_ = x;
    }
    if (samples_.size() < cap_) {
        samples_.push_back(x);
        return;
    }
    // Vitter's algorithm R: replace a uniformly random slot with
    // probability cap/count, so the reservoir stays a uniform sample of
    // everything ever recorded.
    const std::uint64_t j = xorshift64star(rng_) % count_;
    if (j < cap_) samples_[j] = x;
}

void Histo::record(double x)
{
    std::lock_guard<std::mutex> lock(mutex_);
    record_locked(x);
}

void Histo::record_many(const std::vector<double>& xs)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (double x : xs) record_locked(x);
}

std::size_t Histo::count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::size_t>(count_);
}

double Histo::percentile(double p) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return percentile_of(samples_, p);
}

double Histo::sum() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return sum_;
}

std::vector<double> Histo::samples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return samples_;
}

bool Histo::sampled() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return count_ > cap_;
}

double Histo::min() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return min_;
}

double Histo::max() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return max_;
}

MetricsSnapshot::HistoSummary Histo::summary() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot::HistoSummary s;
    s.count = static_cast<std::size_t>(count_);
    s.sum = sum_;
    s.min = min_;
    s.max = max_;
    s.p50 = percentile_of(samples_, 50.0);
    s.p95 = percentile_of(samples_, 95.0);
    s.p99 = percentile_of(samples_, 99.0);
    s.reservoir_cap = cap_;
    s.sampled = count_ > cap_;
    return s;
}

void Histo::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
    count_ = 0;
    sum_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
    rng_ = kReservoirSeed; // a reset histogram replays identically
}

Counter& MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histo& MetricsRegistry::histogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<Histo>();
    return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
    for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
    for (const auto& [name, h] : histograms_)
        snap.histograms[name] = h->summary();
    return snap;
}

void MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace buckwild::obs
