#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/prom.h"
#include "util/logging.h"

namespace buckwild::obs {

namespace {

void
send_all(int fd, const std::string& bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        // MSG_NOSIGNAL: a scraper that hung up mid-response must not
        // SIGPIPE the serving process.
        const ssize_t n = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) return;
        sent += static_cast<std::size_t>(n);
    }
}

std::string
http_response(const char* status, const char* content_type,
              const std::string& body)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << status << "\r\n"
        << "Content-Type: " << content_type << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n"
        << "\r\n"
        << body;
    return out.str();
}

} // namespace

HttpExporter::HttpExporter(HttpExporterConfig config)
    : config_(std::move(config)),
      registry_(config_.registry ? *config_.registry
                                 : MetricsRegistry::global())
{
}

HttpExporter::~HttpExporter()
{
    stop();
}

bool
HttpExporter::start()
{
    if (thread_.joinable()) return true;

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        warn(std::string("obs: socket() failed: ") + std::strerror(errno));
        return false;
    }
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                    &addr.sin_addr) != 1) {
        warn("obs: bad bind address '" + config_.bind_address + "'");
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 16) != 0) {
        warn("obs: cannot listen on " + config_.bind_address + ":" +
             std::to_string(config_.port) + ": " + std::strerror(errno));
        ::close(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    stop_requested_.store(false, std::memory_order_relaxed);
    thread_ = std::thread(&HttpExporter::run, this);
    return true;
}

void
HttpExporter::run()
{
    while (!stop_requested_.load(std::memory_order_relaxed)) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
        if (ready <= 0) continue; // timeout or EINTR: re-check stop flag
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) continue;
        handle(client);
        ::close(client);
    }
}

void
HttpExporter::handle(int client_fd)
{
    // A scraper that connects but never writes must not wedge the loop.
    timeval timeout{};
    timeout.tv_sec = 1;
    ::setsockopt(client_fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                 sizeof(timeout));

    std::string request;
    char buf[2048];
    while (request.size() < 16 * 1024 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        request.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t line_end = request.find("\r\n");
    std::istringstream first_line(request.substr(
        0, line_end == std::string::npos ? request.size() : line_end));
    std::string method, path;
    first_line >> method >> path;
    // Strip any query string: /metrics?format=... still serves.
    if (const std::size_t q = path.find('?'); q != std::string::npos)
        path.resize(q);

    served_.fetch_add(1, std::memory_order_relaxed);
    if (method != "GET") {
        send_all(client_fd,
                 http_response("405 Method Not Allowed", "text/plain",
                               "only GET is supported\n"));
        return;
    }
    if (path == "/metrics") {
        send_all(client_fd,
                 http_response("200 OK", kPromContentType,
                               render_prometheus(registry_.snapshot())));
    } else if (path == "/healthz") {
        send_all(client_fd, http_response("200 OK", "text/plain", "ok\n"));
    } else {
        send_all(client_fd, http_response("404 Not Found", "text/plain",
                                          "not found\n"));
    }
}

void
HttpExporter::stop()
{
    if (!thread_.joinable()) return;
    stop_requested_.store(true, std::memory_order_relaxed);
    thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

} // namespace buckwild::obs
