#include "obs/http_exporter.h"

#include <sys/socket.h>

#include <cstring>
#include <sstream>

#include "net/socket.h"
#include "obs/prom.h"
#include "util/logging.h"

namespace buckwild::obs {

namespace {

std::string
http_response(const char* status, const char* content_type,
              const std::string& body)
{
    std::ostringstream out;
    out << "HTTP/1.1 " << status << "\r\n"
        << "Content-Type: " << content_type << "\r\n"
        << "Content-Length: " << body.size() << "\r\n"
        << "Connection: close\r\n"
        << "\r\n"
        << body;
    return out.str();
}

} // namespace

HttpExporter::HttpExporter(HttpExporterConfig config)
    : config_(std::move(config)),
      registry_(config_.registry ? *config_.registry
                                 : MetricsRegistry::global())
{
}

HttpExporter::~HttpExporter()
{
    stop();
}

bool
HttpExporter::start()
{
    if (thread_.joinable()) return true;

    std::string error;
    std::uint16_t port = config_.port;
    net::Fd listener =
        net::listen_tcp(config_.bind_address, port, 16, &port, &error);
    if (!listener.valid()) {
        warn("obs: cannot listen on " + config_.bind_address + ":" +
             std::to_string(config_.port) + ": " + error);
        return false;
    }
    listen_fd_ = listener.release();
    port_ = port;

    stop_requested_.store(false, std::memory_order_relaxed);
    thread_ = std::thread(&HttpExporter::run, this);
    return true;
}

void
HttpExporter::run()
{
    while (!stop_requested_.load(std::memory_order_relaxed)) {
        // Timeout or error both mean "re-check the stop flag and poll
        // again".
        net::Fd client = net::accept_client(listen_fd_, /*timeout_ms=*/100);
        if (client.valid()) handle(client.get());
    }
}

void
HttpExporter::handle(int client_fd)
{
    // A scraper that connects but never writes must not wedge the loop.
    net::set_recv_timeout(client_fd, std::chrono::milliseconds(1000));

    std::string request;
    char buf[2048];
    while (request.size() < 16 * 1024 &&
           request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
        if (n <= 0) break;
        request.append(buf, static_cast<std::size_t>(n));
    }
    const std::size_t line_end = request.find("\r\n");
    std::istringstream first_line(request.substr(
        0, line_end == std::string::npos ? request.size() : line_end));
    std::string method, path;
    first_line >> method >> path;
    // Strip any query string: /metrics?format=... still serves.
    if (const std::size_t q = path.find('?'); q != std::string::npos)
        path.resize(q);

    served_.fetch_add(1, std::memory_order_relaxed);
    if (method != "GET") {
        net::write_full(client_fd,
                      http_response("405 Method Not Allowed", "text/plain",
                                    "only GET is supported\n"));
        return;
    }
    if (path == "/metrics") {
        const std::string body =
            config_.metrics_body ? config_.metrics_body()
                                 : render_prometheus(registry_.snapshot());
        net::write_full(client_fd,
                      http_response("200 OK", kPromContentType, body));
    } else if (path == "/healthz") {
        net::write_full(client_fd,
                      http_response("200 OK", "text/plain", "ok\n"));
    } else {
        net::write_full(client_fd,
                      http_response("404 Not Found", "text/plain",
                                    "not found\n"));
    }
}

void
HttpExporter::stop()
{
    if (!thread_.joinable()) return;
    stop_requested_.store(true, std::memory_order_relaxed);
    thread_.join();
    if (listen_fd_ >= 0) {
        net::Fd(listen_fd_).reset(); // close via the RAII owner
        listen_fd_ = -1;
    }
}

} // namespace buckwild::obs
