/**
 * @file
 * Prometheus text-exposition rendering (format version 0.0.4) of a
 * MetricsSnapshot — the payload behind `GET /metrics` on the live HTTP
 * exporter. No third-party client library: the format is line-oriented
 * text and the snapshot is already a sorted map, so rendering is a
 * single pass.
 *
 * Mapping from registry instruments:
 *  - Counter  -> `# TYPE name_total counter` + one sample line. The
 *    `_total` suffix is the Prometheus counter convention (not appended
 *    twice if the name already ends in `_total`).
 *  - Gauge    -> `# TYPE name gauge` + one sample line.
 *  - Histo    -> a summary family: `name{quantile="0.5|0.95|0.99"}`,
 *    `name_sum`, `name_count` — the same p50/p95/p99 the JSON exports
 *    carry, so the two surfaces always agree.
 *
 * Registry names use dots (`serve.requests`); Prometheus names allow
 * only `[a-zA-Z_:][a-zA-Z0-9_:]*`, so every invalid byte becomes `_`
 * (`serve.requests` -> `serve_requests_total`). Each family carries a
 * `# HELP` line holding the original registry name (escaped), so the
 * mapping stays recoverable from the scrape itself.
 *
 * Labels: a registry name may carry a `{key="value",...}` suffix built
 * with labeled() (`gate.shed{tenant="t0"}`). The renderer sanitizes only
 * the base name and emits the label block verbatim, so per-tenant /
 * per-lane series from the gate scrape as proper Prometheus labels
 * (`gate_shed_total{tenant="t0"}`); the `_total` / `_sum` / `_count` /
 * `quantile` decorations compose with author labels correctly.
 */
#ifndef BUCKWILD_OBS_PROM_H
#define BUCKWILD_OBS_PROM_H

#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

#include "obs/registry.h"

namespace buckwild::obs {

/// Sanitizes a registry name into a valid Prometheus metric name. A
/// `{...}` label suffix (see labeled()) passes through untouched.
std::string prom_name(std::string_view raw);

/**
 * Builds a labeled registry name: `base{k1="v1",k2="v2"}`. Label keys
 * must already be valid Prometheus label names; values are escaped.
 * Instruments for distinct label values are distinct registry entries —
 * create them once and cache the handle on hot paths.
 */
std::string labeled(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Escapes a HELP docstring / label value: `\` -> `\\`, LF -> `\n`
/// (and `"` -> `\"`, harmless in HELP, required in label values).
std::string prom_escape(std::string_view s);

/// Renders one value the way Prometheus expects: shortest round-trip
/// decimal for finite doubles, `NaN` / `+Inf` / `-Inf` otherwise.
std::string prom_value(double v);

/// Renders the whole snapshot in text-exposition format, families in
/// name order (counters, then gauges, then histogram summaries).
void render_prometheus(std::ostream& out, const MetricsSnapshot& snap);

/// Convenience overload returning the rendered body.
std::string render_prometheus(const MetricsSnapshot& snap);

/// The Content-Type a conforming scraper expects for this body.
inline constexpr const char* kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_PROM_H
