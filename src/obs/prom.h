/**
 * @file
 * Prometheus text-exposition rendering (format version 0.0.4) of a
 * MetricsSnapshot — the payload behind `GET /metrics` on the live HTTP
 * exporter. No third-party client library: the format is line-oriented
 * text and the snapshot is already a sorted map, so rendering is a
 * single pass.
 *
 * Mapping from registry instruments:
 *  - Counter  -> `# TYPE name_total counter` + one sample line. The
 *    `_total` suffix is the Prometheus counter convention (not appended
 *    twice if the name already ends in `_total`).
 *  - Gauge    -> `# TYPE name gauge` + one sample line.
 *  - Histo    -> a summary family: `name{quantile="0.5|0.95|0.99"}`,
 *    `name_sum`, `name_count` — the same p50/p95/p99 the JSON exports
 *    carry, so the two surfaces always agree.
 *
 * Registry names use dots (`serve.requests`); Prometheus names allow
 * only `[a-zA-Z_:][a-zA-Z0-9_:]*`, so every invalid byte becomes `_`
 * (`serve.requests` -> `serve_requests_total`). Each family carries a
 * `# HELP` line holding the original registry name (escaped), so the
 * mapping stays recoverable from the scrape itself.
 */
#ifndef BUCKWILD_OBS_PROM_H
#define BUCKWILD_OBS_PROM_H

#include <ostream>
#include <string>
#include <string_view>

#include "obs/registry.h"

namespace buckwild::obs {

/// Sanitizes a registry name into a valid Prometheus metric name.
std::string prom_name(std::string_view raw);

/// Escapes a HELP docstring / label value: `\` -> `\\`, LF -> `\n`
/// (and `"` -> `\"`, harmless in HELP, required in label values).
std::string prom_escape(std::string_view s);

/// Renders one value the way Prometheus expects: shortest round-trip
/// decimal for finite doubles, `NaN` / `+Inf` / `-Inf` otherwise.
std::string prom_value(double v);

/// Renders the whole snapshot in text-exposition format, families in
/// name order (counters, then gauges, then histogram summaries).
void render_prometheus(std::ostream& out, const MetricsSnapshot& snap);

/// Convenience overload returning the rendered body.
std::string render_prometheus(const MetricsSnapshot& snap);

/// The Content-Type a conforming scraper expects for this body.
inline constexpr const char* kPromContentType =
    "text/plain; version=0.0.4; charset=utf-8";

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_PROM_H
