#include "obs/fleet.h"

#include <sys/socket.h>

#include <sstream>

#include "obs/prom.h"

namespace buckwild::obs {

namespace {

/// Splits `body` into lines (without terminators), tolerating a missing
/// final newline.
std::vector<std::string>
split_lines(const std::string& body)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start < body.size()) {
        std::size_t end = body.find('\n', start);
        if (end == std::string::npos) end = body.size();
        lines.push_back(body.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

/// The dedup key of a `# HELP name ...` / `# TYPE name ...` line:
/// "HELP name" / "TYPE name". Empty for other comments.
std::string
comment_key(const std::string& line)
{
    std::istringstream in(line);
    std::string hash, kind, name;
    in >> hash >> kind >> name;
    if ((kind == "HELP" || kind == "TYPE") && !name.empty())
        return kind + " " + name;
    return std::string();
}

} // namespace

FleetAggregator::FleetAggregator(FleetConfig config)
    : config_(std::move(config)), targets_(config_.targets)
{
}

void
FleetAggregator::add_target(FleetTarget target)
{
    std::lock_guard<std::mutex> lock(mutex_);
    targets_.push_back(std::move(target));
}

std::size_t
FleetAggregator::target_count() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return targets_.size();
}

std::string
FleetAggregator::relabel(const std::string& body, const std::string& node)
{
    std::string label = "node=\"" + prom_escape(node) + "\"";
    std::string out;
    out.reserve(body.size() + 32 * 16);
    for (const std::string& line : split_lines(body)) {
        if (line.empty() || line[0] == '#') {
            out += line;
            out += '\n';
            continue;
        }
        // `name{labels} value` or `name value`. Metric names cannot
        // contain '{' or whitespace, so the first of either tells the
        // two shapes apart.
        const std::size_t brace = line.find('{');
        const std::size_t space = line.find_first_of(" \t");
        if (brace != std::string::npos &&
            (space == std::string::npos || brace < space)) {
            out += line.substr(0, brace + 1);
            out += label;
            // An empty label set `name{}` must not gain a trailing comma.
            if (brace + 1 < line.size() && line[brace + 1] != '}')
                out += ',';
            out += line.substr(brace + 1);
        } else if (space != std::string::npos) {
            out += line.substr(0, space);
            out += '{';
            out += label;
            out += '}';
            out += line.substr(space);
        } else {
            out += line; // not a sample line; pass through untouched
        }
        out += '\n';
    }
    return out;
}

std::string
FleetAggregator::http_get(const net::Address& address,
                          const std::string& path,
                          std::chrono::milliseconds timeout)
{
    std::string error;
    net::Fd fd = net::connect_tcp(address, timeout, &error);
    if (!fd.valid()) return std::string();
    net::set_recv_timeout(fd.get(), timeout);

    const std::string request = "GET " + path +
                                " HTTP/1.1\r\nHost: " + address.host +
                                "\r\nConnection: close\r\n\r\n";
    if (!net::write_full(fd.get(), request)) return std::string();

    // The exporter answers one request and closes, so read to EOF.
    std::string response;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd.get(), buf, sizeof(buf), 0);
        if (n <= 0) break;
        response.append(buf, static_cast<std::size_t>(n));
        if (response.size() > 16 * 1024 * 1024) break; // runaway guard
    }

    const std::size_t line_end = response.find("\r\n");
    if (line_end == std::string::npos) return std::string();
    const std::string status_line = response.substr(0, line_end);
    if (status_line.find(" 200") == std::string::npos)
        return std::string();
    const std::size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos) return std::string();
    return response.substr(header_end + 4);
}

std::string
FleetAggregator::merged_body()
{
    // Snapshot the target list, then scrape without holding the lock:
    // a slow peer must not block add_target() or a concurrent scrape.
    std::vector<FleetTarget> targets;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        targets = targets_;
    }

    std::vector<std::pair<std::string, std::string>> bodies;
    if (!config_.local_node.empty()) {
        MetricsRegistry& registry = config_.local_registry
                                        ? *config_.local_registry
                                        : MetricsRegistry::global();
        bodies.emplace_back(
            config_.local_node,
            relabel(render_prometheus(registry.snapshot()),
                    config_.local_node));
    }
    for (const FleetTarget& target : targets) {
        const std::string raw =
            http_get(target.address, "/metrics", config_.scrape_timeout);
        if (!raw.empty())
            bodies.emplace_back(target.node, relabel(raw, target.node));
        else
            bodies.emplace_back(target.node, std::string());
    }

    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    std::map<std::string, bool> seen_comments;
    for (auto& [node, body] : bodies) {
        if (body.empty()) {
            // Fall back to the node's last good scrape (workers exit
            // before the run ends; their final numbers stay visible).
            auto it = last_good_.find(node);
            if (it == last_good_.end()) {
                ++failures_;
                continue;
            }
            body = it->second;
        } else {
            last_good_[node] = body;
        }
        for (const std::string& line : split_lines(body)) {
            if (!line.empty() && line[0] == '#') {
                const std::string key = comment_key(line);
                if (!key.empty()) {
                    if (seen_comments[key]) continue;
                    seen_comments[key] = true;
                }
            }
            out += line;
            out += '\n';
        }
    }
    return out;
}

std::uint64_t
FleetAggregator::scrape_failures() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failures_;
}

} // namespace buckwild::obs
