#include "obs/export.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/logging.h"

namespace buckwild::obs {

std::string json_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void JsonWriter::separate()
{
    if (pending_key_) {
        // A key was just written; this value completes the pair.
        pending_key_ = false;
        return;
    }
    if (!has_element_.empty()) {
        if (has_element_.back()) out_ << ',';
        has_element_.back() = true;
    }
}

JsonWriter& JsonWriter::begin_object()
{
    separate();
    out_ << '{';
    has_element_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_object()
{
    has_element_.pop_back();
    out_ << '}';
    return *this;
}

JsonWriter& JsonWriter::begin_array()
{
    separate();
    out_ << '[';
    has_element_.push_back(false);
    return *this;
}

JsonWriter& JsonWriter::end_array()
{
    has_element_.pop_back();
    out_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(std::string_view k)
{
    separate();
    out_ << '"' << json_escape(k) << "\":";
    pending_key_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(std::string_view v)
{
    separate();
    out_ << '"' << json_escape(v) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        out_ << "null"; // JSON has no NaN / Inf
        return *this;
    }
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out_.write(buf, res.ptr - buf);
    return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v)
{
    separate();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v)
{
    separate();
    out_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(bool v)
{
    separate();
    out_ << (v ? "true" : "false");
    return *this;
}

namespace {

/// Emits `args:{trace,span[,parent][,offset_ns,rtt_ns]}` for a traced
/// event — the correlation hooks buckwild_tracemerge keys on.
void write_trace_args(JsonWriter& w, const TraceEvent& ev)
{
    w.key("args").begin_object();
    w.key("trace").value(trace_id_hex(ev.ctx));
    w.key("span").value(span_id_hex(ev.ctx.span));
    if (ev.ctx.parent != 0)
        w.key("parent").value(span_id_hex(ev.ctx.parent));
    if (ev.type == TraceEvent::Type::kClockSync) {
        w.key("offset_ns").value(ev.value);
        w.key("rtt_ns").value(static_cast<std::int64_t>(ev.dur_ns));
    }
    w.end_object();
}

} // namespace

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events)
{
    TraceProcessInfo process;
    process.label = Tracer::global().process_label();
    process.pid = process.label.empty() ? 0 : Tracer::global().process_id();
    write_chrome_trace(out, events, process);
}

void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events,
                        const TraceProcessInfo& process)
{
    // Unlabeled processes keep the historical fixed pid 1 so existing
    // golden traces stay byte-identical.
    const std::uint64_t pid =
        process.pid != 0 ? process.pid : std::uint64_t{1};
    JsonWriter w(out);
    w.begin_object();
    w.key("displayTimeUnit").value("ms");
    w.key("traceEvents").begin_array();
    if (!process.label.empty()) {
        out << '\n';
        w.begin_object();
        w.key("name").value("process_name");
        w.key("ph").value("M");
        w.key("pid").value(pid);
        w.key("tid").value(std::uint64_t{0});
        w.key("args").begin_object().key("name").value(process.label).end_object();
        w.end_object();
    }
    for (const TraceEvent& ev : events) {
        out << '\n';
        w.begin_object();
        w.key("name").value(ev.name);
        w.key("cat").value(ev.category);
        w.key("pid").value(pid);
        w.key("tid").value(static_cast<std::uint64_t>(ev.tid));
        w.key("ts").value(static_cast<double>(ev.ts_ns) / 1000.0);
        switch (ev.type) {
        case TraceEvent::Type::kComplete:
            w.key("ph").value("X");
            w.key("dur").value(static_cast<double>(ev.dur_ns) / 1000.0);
            if (ev.ctx.valid()) write_trace_args(w, ev);
            break;
        case TraceEvent::Type::kInstant:
            w.key("ph").value("i");
            w.key("s").value("t");
            if (ev.ctx.valid()) write_trace_args(w, ev);
            break;
        case TraceEvent::Type::kCounter:
            w.key("ph").value("C");
            w.key("args").begin_object().key("value").value(ev.value).end_object();
            break;
        case TraceEvent::Type::kClockSync:
            // Rendered as an instant so viewers show it; the args carry
            // the sample for buckwild_tracemerge.
            w.key("ph").value("i");
            w.key("s").value("t");
            write_trace_args(w, ev);
            break;
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
    out << '\n';
}

void write_flat_metrics(std::ostream& out, const MetricsSnapshot& snap)
{
    JsonWriter w(out);
    w.begin_object();
    w.key("counters").begin_object();
    for (const auto& [name, v] : snap.counters) {
        out << '\n';
        w.key(name).value(v);
    }
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [name, v] : snap.gauges) {
        out << '\n';
        w.key(name).value(v);
    }
    w.end_object();
    w.key("histograms").begin_object();
    for (const auto& [name, h] : snap.histograms) {
        out << '\n';
        w.key(name).begin_object();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("min").value(h.min);
        w.key("max").value(h.max);
        w.key("p50").value(h.p50);
        w.key("p95").value(h.p95);
        w.key("p99").value(h.p99);
        if (h.sampled) {
            // Reservoir subsampling engaged: percentiles are estimates
            // over `reservoir` uniform samples of `count` values.
            w.key("sampled").value(true);
            w.key("reservoir").value(static_cast<std::uint64_t>(h.reservoir_cap));
        }
        w.end_object();
    }
    w.end_object();
    w.end_object();
    out << '\n';
}

bool export_trace_file(const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        warn("obs: cannot open trace output file '" + path + "'");
        return false;
    }
    std::uint64_t dropped = Tracer::global().dropped();
    if (dropped > 0) {
        warn("obs: " + std::to_string(dropped) +
             " trace events dropped (ring full); raise the ring capacity or "
             "trace a shorter run");
    }
    write_chrome_trace(out, Tracer::global().flush());
    return static_cast<bool>(out);
}

bool export_metrics_file(const std::string& path, const MetricsRegistry& registry)
{
    std::ofstream out(path);
    if (!out) {
        warn("obs: cannot open metrics output file '" + path + "'");
        return false;
    }
    write_flat_metrics(out, registry.snapshot());
    return static_cast<bool>(out);
}

} // namespace buckwild::obs
