/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and histograms
 * with stable addresses, cheap hot-path updates, and a consistent
 * snapshot for export.
 *
 * Design notes (DESIGN.md §9):
 *  - Handles returned by counter()/gauge()/histogram() are references to
 *    heap-allocated instruments owned by the registry; they stay valid
 *    for the registry's lifetime, so hot paths look the name up once
 *    (e.g. through a function-local static) and then touch only an
 *    atomic.
 *  - Counters and gauges are lock-free atomics; histograms take a small
 *    mutex per record because they keep raw samples so that summaries
 *    can reuse util::percentile_of, the same estimator the serving
 *    latency reports were already built on.
 *  - snapshot() is ordered by name so exports are deterministic.
 */
#ifndef BUCKWILD_OBS_REGISTRY_H
#define BUCKWILD_OBS_REGISTRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace buckwild::obs {

/// Monotonically increasing event count. Lock-free; relaxed ordering is
/// enough because readers only ever want an eventually-consistent total.
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/// A last-written double with atomic add, for point-in-time values
/// (seconds spent, queue depth) that may also be accumulated.
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    void add(double dv)
    {
        double cur = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(cur, cur + dv, std::memory_order_relaxed)) {
        }
    }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/// Value-type view of every instrument at one instant, ordered by name.
struct MetricsSnapshot
{
    struct HistoSummary
    {
        std::size_t count = 0;
        double sum = 0.0;
        double min = 0.0;
        double max = 0.0;
        double p50 = 0.0;
        double p95 = 0.0;
        double p99 = 0.0;
        /// Reservoir bound of the source histogram; percentiles are an
        /// estimate over a uniform subsample once `sampled` is true.
        std::size_t reservoir_cap = 0;
        bool sampled = false;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistoSummary> histograms;
};

/// Sample histogram with a bounded, deterministic reservoir. The first
/// `reservoir_cap` recorded values are kept verbatim (so short runs get
/// exact percentiles, as before); past the cap, Vitter's algorithm R
/// with a fixed-seed xorshift keeps a uniform sample of everything seen,
/// bounding memory in a long-running server. count/sum/min/max stay
/// exact running totals either way. record() is a mutex push, so hot
/// paths should record per batch, not per item.
class Histo
{
  public:
    /// Default reservoir bound: enough for stable p99 estimates while
    /// capping a histogram at 64 KiB of samples.
    static constexpr std::size_t kDefaultReservoir = 8192;

    explicit Histo(std::size_t reservoir_cap = kDefaultReservoir);

    void record(double x);
    /// Appends every sample under one lock (batch-amortized hot paths).
    void record_many(const std::vector<double>& xs);
    /// Exact number of values ever recorded (not the reservoir size).
    std::size_t count() const;
    /// Percentile via util::percentile_of over the reservoir (exact
    /// until count() exceeds reservoir_cap(), an estimate after).
    double percentile(double p) const;
    /// Exact running sum of every recorded value.
    double sum() const;
    /// The retained reservoir (all samples while count() <= cap).
    std::vector<double> samples() const;
    std::size_t reservoir_cap() const { return cap_; }
    /// True once the reservoir has started subsampling.
    bool sampled() const;
    double min() const;
    double max() const;
    /// Everything an export needs, under one lock (no torn reads
    /// between count and percentiles while writers race).
    MetricsSnapshot::HistoSummary summary() const;
    void reset();

  private:
    void record_locked(double x);

    mutable std::mutex mutex_;
    std::vector<double> samples_;
    std::size_t cap_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t rng_; ///< fixed-seed xorshift64* state (deterministic)
};

/**
 * Named-instrument registry. create-or-get semantics: the first call for
 * a name allocates the instrument, later calls return the same object.
 * Instances can be constructed for per-run isolation (the serving
 * MetricsCollector does this); global() is the process-wide one the
 * instrumentation macros use.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    Histo& histogram(const std::string& name);

    MetricsSnapshot snapshot() const;

    /// Zeroes every instrument but keeps all handles valid.
    void reset();

    static MetricsRegistry& global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histo>> histograms_;
};

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_REGISTRY_H
