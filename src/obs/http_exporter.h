/**
 * @file
 * HttpExporter — a minimal POSIX-socket HTTP server exposing the live
 * registry as a Prometheus scrape target. No third-party dependencies:
 * operators get `GET /metrics` (text-exposition of the current registry
 * snapshot, including the sampler's `.rate` gauges and the conformance
 * watchdog's ratio) and `GET /healthz` (readiness probe), everything
 * else is 404/405.
 *
 * Scope is deliberately tiny: one accept loop on a background thread,
 * one request per connection, `Connection: close`. A scrape is a
 * registry snapshot plus a text render — a few tens of microseconds —
 * so there is no need for concurrency in the server itself, and the hot
 * serving/training paths never see the exporter at all (the registry's
 * instruments are the only shared state, and reads there are relaxed
 * atomics).
 *
 * The accept loop polls with a short timeout and re-checks a stop flag,
 * so stop() returns promptly without signals or self-pipes. Binding
 * port 0 picks an ephemeral port (port() reports the real one), which
 * is how the end-to-end tests run without fixed-port collisions.
 */
#ifndef BUCKWILD_OBS_HTTP_EXPORTER_H
#define BUCKWILD_OBS_HTTP_EXPORTER_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "obs/registry.h"

namespace buckwild::obs {

struct HttpExporterConfig
{
    /// TCP port to listen on; 0 = any free port (see port()).
    std::uint16_t port = 9090;
    /// Bind address; 0.0.0.0 so a containerized run is scrapable.
    std::string bind_address = "0.0.0.0";
    /// The registry /metrics renders. Defaults to the global one.
    MetricsRegistry* registry = nullptr;
    /// When set, /metrics serves this callback's result instead of a
    /// registry render — how the fleet aggregator re-exposes the merged
    /// cluster scrape through the standard exporter. Called on the
    /// exporter thread; must be thread-safe.
    std::function<std::string()> metrics_body;
};

class HttpExporter
{
  public:
    explicit HttpExporter(HttpExporterConfig config);
    ~HttpExporter(); ///< stops the server if running

    HttpExporter(const HttpExporter&) = delete;
    HttpExporter& operator=(const HttpExporter&) = delete;

    /// Binds, listens, and spawns the accept thread. Returns false
    /// (after logging a warning) if the socket cannot be bound.
    bool start();

    /// Closes the listening socket and joins the thread. Idempotent.
    void stop();

    bool running() const { return thread_.joinable(); }

    /// The actually bound port (resolves port 0 after start()).
    std::uint16_t port() const { return port_; }

    /// Requests answered so far (any status).
    std::uint64_t requests_served() const
    {
        return served_.load(std::memory_order_relaxed);
    }

  private:
    void run();
    void handle(int client_fd);

    HttpExporterConfig config_;
    MetricsRegistry& registry_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> stop_requested_{false};
    std::atomic<std::uint64_t> served_{0};
};

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_HTTP_EXPORTER_H
