/**
 * @file
 * Low-overhead event tracer: fixed-capacity per-thread rings merged on
 * flush, exported as Chrome trace_event JSON (see obs/export.h).
 *
 * The recording fast path is: one relaxed atomic load (is tracing on?),
 * a steady_clock read, and an uncontended per-ring mutex push into a
 * preallocated buffer — ~100ns per event on this box, and a single
 * branch when tracing is off. Rings drop new events once full and count
 * the drops; flush() merges every thread's ring into one time-sorted
 * stream and clears them.
 *
 * Event names/categories are stored as `const char*` and are NOT
 * copied: pass string literals (the instrumentation macros do).
 */
#ifndef BUCKWILD_OBS_TRACE_H
#define BUCKWILD_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/tracectx.h"

namespace buckwild::obs {

/// Monotonic timestamp in nanoseconds (steady_clock).
std::int64_t trace_now_ns();

struct TraceEvent
{
    enum class Type : std::uint8_t {
        kComplete,  ///< span with duration ("ph":"X")
        kInstant,   ///< point event ("ph":"i")
        kCounter,   ///< sampled value ("ph":"C")
        kClockSync, ///< one NTP-style offset sample vs a peer process
    };

    const char* category = "";
    const char* name = "";
    Type type = Type::kInstant;
    std::uint32_t tid = 0;
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0; ///< kComplete: duration; kClockSync: rtt_ns
    double value = 0.0;      ///< kCounter: value; kClockSync: offset_ns

    /// Distributed-trace identity; all-zero (invalid) on local events.
    /// Exported as "trace"/"span"/"parent" args so buckwild_tracemerge
    /// can stitch spans carrying the same trace id across processes.
    TraceContext ctx;
};

/**
 * Fixed-capacity event buffer owned by one thread, drained by the
 * tracer on flush. The mutex is uncontended except during a flush, so a
 * record is a lock + push_back into preallocated storage.
 */
class TraceRing
{
  public:
    explicit TraceRing(std::size_t capacity, std::uint32_t tid);

    /// Appends the event; returns false (and counts a drop) if full.
    bool record(const TraceEvent& ev);

    std::size_t size() const;
    std::size_t capacity() const { return capacity_; }
    std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
    std::uint32_t tid() const { return tid_; }

    /// Moves all buffered events into `out` and empties the ring.
    void drain(std::vector<TraceEvent>& out);

  private:
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
    std::size_t capacity_;
    std::uint32_t tid_;
    std::atomic<std::uint64_t> dropped_{0};
};

/**
 * Process-wide tracer. Disabled by default: every record helper first
 * checks one relaxed atomic and returns, so instrumented binaries pay a
 * single predictable branch unless --trace-out (or a test) turns
 * tracing on. Each thread lazily registers one TraceRing; rings are
 * shared_ptr so a flush after a worker thread exits still sees its
 * events.
 */
class Tracer
{
  public:
    static Tracer& global();

    void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

    /// Capacity used for rings created after the call (default 65536).
    void set_ring_capacity(std::size_t capacity)
    {
        ring_capacity_.store(capacity, std::memory_order_relaxed);
    }

    /// This thread's ring, creating and registering it on first use.
    TraceRing& ring();

    /**
     * Tags every event this process exports with a node identity: the
     * label becomes the Chrome-trace process_name and the pid the
     * timeline lane, so a merged multi-process trace keeps the shards,
     * workers, gate and clients apart. Unset (the default) exports keep
     * the historical fixed pid 1 and no process metadata. `pid` 0 means
     * "use the real OS pid".
     */
    void set_process(const std::string& label, std::uint32_t pid = 0);
    std::string process_label() const;
    std::uint32_t process_id() const;

    void complete(const char* category, const char* name, std::int64_t ts_ns,
                  std::int64_t dur_ns);
    void complete(const char* category, const char* name, std::int64_t ts_ns,
                  std::int64_t dur_ns, const TraceContext& ctx);
    void instant(const char* category, const char* name);
    void instant(const char* category, const char* name,
                 const TraceContext& ctx);
    void counter(const char* category, const char* name, double value);

    /// Records one clock-offset sample against the peer that answered
    /// the RPC carrying `ctx` (the trace id identifies the peer pair in
    /// the merged timeline).
    void clocksync(const char* category, const TraceContext& ctx,
                   std::int64_t offset_ns, std::int64_t rtt_ns);

    /// Merges every ring's events, sorted by timestamp, and clears them.
    std::vector<TraceEvent> flush();

    /// Total events dropped across all rings (cleared by flush()).
    std::uint64_t dropped() const;

  private:
    Tracer() = default;

    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> ring_capacity_{65536};
    std::atomic<std::uint32_t> next_tid_{1};
    mutable std::mutex rings_mutex_;
    std::vector<std::shared_ptr<TraceRing>> rings_;
    mutable std::mutex process_mutex_;
    std::string process_label_;
    std::uint32_t process_id_ = 0;
};

/**
 * RAII span: captures the start time on construction and records one
 * kComplete event on destruction. Costs one atomic load when tracing is
 * off. Only string literals may be passed (names are not copied).
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char* category, const char* name)
        : category_(category), name_(name), armed_(Tracer::global().enabled())
    {
        if (armed_) start_ns_ = trace_now_ns();
    }

    ~ScopedSpan()
    {
        if (armed_) {
            Tracer& t = Tracer::global();
            t.complete(category_, name_, start_ns_, trace_now_ns() - start_ns_);
        }
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    const char* category_;
    const char* name_;
    std::int64_t start_ns_ = 0;
    bool armed_;
};

/**
 * ScopedSpan that carries a distributed-trace context: the recorded
 * span is a fresh child of `parent`, so nested TracedSpans across
 * processes reconstruct the whole call tree in the merged timeline.
 * ctx() exposes the child context for propagating further down.
 */
class TracedSpan
{
  public:
    TracedSpan(const char* category, const char* name,
               const TraceContext& parent)
        : category_(category), name_(name),
          armed_(Tracer::global().enabled() && parent.valid())
    {
        if (armed_) {
            ctx_ = child_of(parent);
            start_ns_ = trace_now_ns();
        }
    }

    ~TracedSpan()
    {
        if (armed_)
            Tracer::global().complete(category_, name_, start_ns_,
                                      trace_now_ns() - start_ns_, ctx_);
    }

    TracedSpan(const TracedSpan&) = delete;
    TracedSpan& operator=(const TracedSpan&) = delete;

    /// The child context this span records under (invalid when unarmed).
    const TraceContext& ctx() const { return ctx_; }

  private:
    const char* category_;
    const char* name_;
    TraceContext ctx_;
    std::int64_t start_ns_ = 0;
    bool armed_;
};

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_TRACE_H
