#include "obs/prom.h"

#include <charconv>
#include <cmath>
#include <sstream>

namespace buckwild::obs {

namespace {

/// Splits `raw` into (base, label block). The label block includes the
/// braces and is empty when the name is unlabeled.
std::pair<std::string_view, std::string_view>
split_labels(std::string_view raw)
{
    const std::size_t brace = raw.find('{');
    if (brace == std::string_view::npos || !raw.ends_with('}'))
        return {raw, {}};
    return {raw.substr(0, brace), raw.substr(brace)};
}

std::string
sanitize_base(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty()) out.assign(1, '_');
    if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
    return out;
}

} // namespace

std::string
prom_name(std::string_view raw)
{
    const auto [base, labels] = split_labels(raw);
    return sanitize_base(base) + std::string(labels);
}

std::string
labeled(std::string_view base,
        std::initializer_list<std::pair<std::string_view, std::string_view>>
            labels)
{
    std::string out(base);
    out += '{';
    bool first = true;
    for (const auto& [key, value] : labels) {
        if (!first) out += ',';
        first = false;
        out += key;
        out += "=\"";
        out += prom_escape(value);
        out += '"';
    }
    out += '}';
    return out;
}

std::string
prom_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '"': out += "\\\""; break;
        default: out += c;
        }
    }
    return out;
}

std::string
prom_value(double v)
{
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

/// Appends the label block (possibly with extra `key="value"` pairs
/// merged in) to a sanitized base name.
std::string
with_labels(const std::string& base, std::string_view labels,
            std::string_view extra = {})
{
    if (labels.empty() && extra.empty()) return base;
    std::string out = base;
    out += '{';
    if (!labels.empty())
        out.append(labels.substr(1, labels.size() - 2)); // shed braces
    if (!extra.empty()) {
        if (!labels.empty() && labels.size() > 2) out += ',';
        out += extra;
    }
    out += '}';
    return out;
}

/// Emits `# HELP` / `# TYPE` once per family — labeled series of one
/// family are adjacent in the name-ordered snapshot, so a simple
/// last-family check is enough to avoid duplicate headers.
void
family_header(std::ostream& out, const std::string& family,
              std::string_view raw_base, const char* type,
              std::string* last_family)
{
    if (family == *last_family) return;
    *last_family = family;
    out << "# HELP " << family << ' ' << prom_escape(raw_base) << '\n';
    out << "# TYPE " << family << ' ' << type << '\n';
}

} // namespace

void
render_prometheus(std::ostream& out, const MetricsSnapshot& snap)
{
    std::string last_family;
    for (const auto& [raw, v] : snap.counters) {
        const auto [raw_base, labels] = split_labels(raw);
        std::string family = sanitize_base(raw_base);
        if (!family.ends_with("_total")) family += "_total";
        family_header(out, family, raw_base, "counter", &last_family);
        out << with_labels(family, labels) << ' ' << v << '\n';
    }
    last_family.clear();
    for (const auto& [raw, v] : snap.gauges) {
        const auto [raw_base, labels] = split_labels(raw);
        const std::string family = sanitize_base(raw_base);
        family_header(out, family, raw_base, "gauge", &last_family);
        out << with_labels(family, labels) << ' ' << prom_value(v) << '\n';
    }
    last_family.clear();
    for (const auto& [raw, h] : snap.histograms) {
        const auto [raw_base, labels] = split_labels(raw);
        const std::string family = sanitize_base(raw_base);
        family_header(out, family, raw_base, "summary", &last_family);
        out << with_labels(family, labels, "quantile=\"0.5\"") << ' '
            << prom_value(h.p50) << '\n';
        out << with_labels(family, labels, "quantile=\"0.95\"") << ' '
            << prom_value(h.p95) << '\n';
        out << with_labels(family, labels, "quantile=\"0.99\"") << ' '
            << prom_value(h.p99) << '\n';
        out << with_labels(family + "_sum", labels) << ' '
            << prom_value(h.sum) << '\n';
        out << with_labels(family + "_count", labels) << ' ' << h.count
            << '\n';
    }
}

std::string
render_prometheus(const MetricsSnapshot& snap)
{
    std::ostringstream out;
    render_prometheus(out, snap);
    return out.str();
}

} // namespace buckwild::obs
