#include "obs/prom.h"

#include <charconv>
#include <cmath>
#include <sstream>

namespace buckwild::obs {

std::string
prom_name(std::string_view raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty()) out.assign(1, '_');
    if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
    return out;
}

std::string
prom_escape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '"': out += "\\\""; break;
        default: out += c;
        }
    }
    return out;
}

std::string
prom_value(double v)
{
    if (std::isnan(v)) return "NaN";
    if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

namespace {

std::string
counter_name(std::string_view raw)
{
    std::string name = prom_name(raw);
    if (!name.ends_with("_total")) name += "_total";
    return name;
}

void
family_header(std::ostream& out, const std::string& name,
              std::string_view raw, const char* type)
{
    out << "# HELP " << name << ' ' << prom_escape(raw) << '\n';
    out << "# TYPE " << name << ' ' << type << '\n';
}

} // namespace

void
render_prometheus(std::ostream& out, const MetricsSnapshot& snap)
{
    for (const auto& [raw, v] : snap.counters) {
        const std::string name = counter_name(raw);
        family_header(out, name, raw, "counter");
        out << name << ' ' << v << '\n';
    }
    for (const auto& [raw, v] : snap.gauges) {
        const std::string name = prom_name(raw);
        family_header(out, name, raw, "gauge");
        out << name << ' ' << prom_value(v) << '\n';
    }
    for (const auto& [raw, h] : snap.histograms) {
        const std::string name = prom_name(raw);
        family_header(out, name, raw, "summary");
        out << name << "{quantile=\"0.5\"} " << prom_value(h.p50) << '\n';
        out << name << "{quantile=\"0.95\"} " << prom_value(h.p95) << '\n';
        out << name << "{quantile=\"0.99\"} " << prom_value(h.p99) << '\n';
        out << name << "_sum " << prom_value(h.sum) << '\n';
        out << name << "_count " << h.count << '\n';
    }
}

std::string
render_prometheus(const MetricsSnapshot& snap)
{
    std::ostringstream out;
    render_prometheus(out, snap);
    return out.str();
}

} // namespace buckwild::obs
