#include "obs/perf_counters.h"

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace buckwild::obs {

#ifdef __linux__

int
PerfCounters::open_counter(std::uint64_t config, const char* what)
{
    perf_event_attr attr{};
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = config;
    attr.disabled = 0;
    // User space only: works at perf_event_paranoid <= 2 (the common
    // unprivileged ceiling), and the update loops we care about are
    // user-space anyway.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    // Count worker threads spawned after this open (the tools construct
    // PerfCounters before starting the run).
    attr.inherit = 1;

    const long fd = ::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                              /*cpu=*/-1, /*group_fd=*/-1, /*flags=*/0UL);
    if (fd < 0 && reason_.empty())
        reason_ = std::string("perf_event_open(") + what +
            "): " + std::strerror(errno);
    return static_cast<int>(fd);
}

PerfCounters::PerfCounters()
{
    fd_instructions_ =
        open_counter(PERF_COUNT_HW_INSTRUCTIONS, "instructions");
    fd_cycles_ = open_counter(PERF_COUNT_HW_CPU_CYCLES, "cycles");
    fd_llc_misses_ = open_counter(PERF_COUNT_HW_CACHE_MISSES, "llc_misses");
    available_ =
        fd_instructions_ >= 0 && fd_cycles_ >= 0 && fd_llc_misses_ >= 0;
    if (!available_) {
        if (fd_instructions_ >= 0) ::close(fd_instructions_);
        if (fd_cycles_ >= 0) ::close(fd_cycles_);
        if (fd_llc_misses_ >= 0) ::close(fd_llc_misses_);
        fd_instructions_ = fd_cycles_ = fd_llc_misses_ = -1;
        if (reason_.empty()) reason_ = "perf_event_open failed";
    }
}

PerfCounters::~PerfCounters()
{
    if (fd_instructions_ >= 0) ::close(fd_instructions_);
    if (fd_cycles_ >= 0) ::close(fd_cycles_);
    if (fd_llc_misses_ >= 0) ::close(fd_llc_misses_);
}

PerfCounters::Reading
PerfCounters::read() const
{
    Reading r;
    if (!available_) return r;
    auto read_one = [](int fd, std::uint64_t& out) {
        return ::read(fd, &out, sizeof(out)) ==
            static_cast<ssize_t>(sizeof(out));
    };
    r.ok = read_one(fd_instructions_, r.instructions) &&
        read_one(fd_cycles_, r.cycles) &&
        read_one(fd_llc_misses_, r.llc_misses);
    return r;
}

#else // !__linux__

int
PerfCounters::open_counter(std::uint64_t, const char*)
{
    return -1;
}

PerfCounters::PerfCounters()
{
    reason_ = "perf_event_open: unsupported platform";
}

PerfCounters::~PerfCounters() = default;

PerfCounters::Reading
PerfCounters::read() const
{
    return {};
}

#endif // __linux__

void
PerfCounters::publish(MetricsRegistry& registry)
{
    const Reading now = read();
    registry.gauge("obs.perf.available").set(now.ok ? 1.0 : 0.0);
    if (!now.ok) return;

    if (has_last_) {
        // Counters want deltas (add), and the deltas double as the
        // per-tick denominators for the derived ratios.
        const std::uint64_t d_insn =
            now.instructions - last_published_.instructions;
        const std::uint64_t d_cyc = now.cycles - last_published_.cycles;
        const std::uint64_t d_miss =
            now.llc_misses - last_published_.llc_misses;
        registry.counter("obs.perf.instructions").add(d_insn);
        registry.counter("obs.perf.cycles").add(d_cyc);
        registry.counter("obs.perf.llc_misses").add(d_miss);
        if (d_cyc > 0)
            registry.gauge("obs.perf.ipc")
                .set(static_cast<double>(d_insn) /
                     static_cast<double>(d_cyc));
        if (d_insn > 0)
            registry.gauge("obs.perf.llc_miss_per_kinsn")
                .set(1000.0 * static_cast<double>(d_miss) /
                     static_cast<double>(d_insn));
    } else {
        registry.counter("obs.perf.instructions").add(now.instructions);
        registry.counter("obs.perf.cycles").add(now.cycles);
        registry.counter("obs.perf.llc_misses").add(now.llc_misses);
    }
    last_published_ = now;
    has_last_ = true;
}

} // namespace buckwild::obs
