/**
 * @file
 * JSON exporters for the observability layer: a tiny comma-managing
 * JsonWriter (shared with the bench emitters), the Chrome trace_event
 * exporter for chrome://tracing / Perfetto, and the flat metrics
 * exporter for diffing runs.
 */
#ifndef BUCKWILD_OBS_EXPORT_H
#define BUCKWILD_OBS_EXPORT_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"

namespace buckwild::obs {

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/**
 * Minimal streaming JSON writer: tracks nesting and inserts commas so
 * call sites read linearly. Numbers are emitted via std::to_chars
 * (shortest round-trip form); non-finite doubles become null. No
 * pretty-printing beyond a newline per top-level element — the output
 * is for machines, diffs, and chrome://tracing.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& out) : out_(out) {}

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();
    /// Starts a `"key":` inside an object; follow with a value call.
    JsonWriter& key(std::string_view k);
    JsonWriter& value(std::string_view v);
    JsonWriter& value(const char* v) { return value(std::string_view(v)); }
    JsonWriter& value(double v);
    JsonWriter& value(std::uint64_t v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(bool v);
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }

  private:
    void separate();

    std::ostream& out_;
    // One entry per open container: true once the first element has
    // been written (so the next one needs a comma).
    std::vector<bool> has_element_;
    bool pending_key_ = false;
};

/**
 * The process identity stamped onto an exported trace. Default (empty
 * label, pid 0) reproduces the historical single-process output: fixed
 * pid 1, no process metadata — existing golden traces are unchanged.
 */
struct TraceProcessInfo
{
    std::string label;
    std::uint32_t pid = 0;
};

/**
 * Writes the Chrome trace_event JSON object (`{"traceEvents":[...]}`)
 * for a merged event stream. Timestamps and durations are microseconds
 * as the format requires; each ring's tid becomes the trace tid so
 * per-thread lanes line up in chrome://tracing.
 *
 * The no-info overload takes the process identity from
 * Tracer::global().set_process(). When a label is set, the export leads
 * with a `process_name` metadata event and stamps the real pid on every
 * event; events carrying a valid TraceContext gain
 * `args:{trace,span,parent}` (32/16-hex ids) and clock-sync samples
 * become instants with `args:{offset_ns,rtt_ns}` — the hooks
 * tools/buckwild_tracemerge.cpp stitches the fleet timeline from.
 */
void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events);
void write_chrome_trace(std::ostream& out, const std::vector<TraceEvent>& events,
                        const TraceProcessInfo& process);

/**
 * Writes a flat metrics JSON object:
 * `{"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,p50,p95,p99}}}`.
 * Keys are sorted (the snapshot's map order) so two runs diff cleanly.
 */
void write_flat_metrics(std::ostream& out, const MetricsSnapshot& snap);

/// Flushes the global tracer into `path` as Chrome trace JSON.
/// Returns false (after logging a warning) if the file can't be opened.
bool export_trace_file(const std::string& path);

/// Writes a registry snapshot into `path` as flat metrics JSON.
bool export_metrics_file(const std::string& path, const MetricsRegistry& registry);

} // namespace buckwild::obs

#endif // BUCKWILD_OBS_EXPORT_H
