#include "dmgc/advisor.h"

#include "dmgc/statistical.h"

#include "util/logging.h"
#include "util/table.h"

namespace buckwild::dmgc {

std::string
to_string(Regime regime)
{
    return regime == Regime::kCommunicationBound ? "communication-bound"
                                                 : "bandwidth-bound";
}

Advice
advise(const AdvisorQuery& query, const PerfModel& model)
{
    if (query.threads == 0) fatal("advisor requires threads >= 1");
    if (!model.is_calibrated(query.signature))
        fatal("signature " + query.signature.to_string() +
              " is not calibrated in the performance model");

    Advice advice;
    advice.parallel_fraction = model.parallel_fraction(query.model_size);
    advice.regime = advice.parallel_fraction < query.comm_bound_p
        ? Regime::kCommunicationBound
        : Regime::kBandwidthBound;
    advice.predicted_gnps =
        model.predict_gnps(query.signature, query.threads,
                           query.model_size);

    // Best calibrated signature of the same sparsity.
    advice.best_signature = query.signature;
    double best = model.base_throughput(query.signature);
    for (const auto& text : model.calibrated_signatures()) {
        Signature candidate = parse_signature(text);
        if (query.signature.sparse) {
            candidate.sparse = true;
            candidate.index_bits = candidate.dataset.is_float
                ? 32
                : candidate.dataset.bits;
        }
        const double t1 = model.base_throughput(candidate);
        if (t1 > best) {
            best = t1;
            advice.best_signature = candidate;
        }
    }
    advice.best_speedup = best / model.base_throughput(query.signature);

    auto add = [&advice](std::string action, std::string rationale,
                         std::string cost) {
        advice.recommendations.push_back(
            {std::move(action), std::move(rationale), std::move(cost)});
    };

    // Always-on optimizations (Table 3 rows 1 and 5).
    add("Hand-optimize the SIMD kernels (use Impl::kAvx2 or better)",
        "compiler-generated low-precision code loses up to ~11x (§5.1)",
        "None");
    if (advice.best_speedup > 1.05) {
        add("Lower precision to " + advice.best_signature.to_string(),
            "base throughput gain " +
                format_num(advice.best_speedup, 3) +
                "x from the Table-2 calibration",
            query.signature.sparse
                ? "Possible (dataset quantization)"
                : "Small for well-conditioned problems (§7)");
    }
    if (query.unbiased_rounding) {
        add("Use the shared vectorized-XORSHIFT dither "
            "(RoundingStrategy::kSharedXorshift)",
            "per-write PRNGs dominate the cheap low-precision compute "
            "(§5.2)",
            "Negligible");
    } else if (!query.signature.model.is_float &&
               query.signature.model.bits <= 8) {
        add("Consider unbiased rounding",
            "nearest rounding can freeze sub-half-quantum updates at 8-bit "
            "models (§5.2)",
            "- (it *gains* statistical efficiency)");
    }
    // Statistical-efficiency check: warn when the model-residue noise
    // approaches the usable margin at this model size.
    {
        NoiseQuery nq;
        nq.signature = query.signature;
        nq.model_size = query.model_size;
        const double snr = margin_snr(nq);
        if (snr < 3.0) {
            add("Raise the model precision (predicted margin SNR " +
                    format_num(snr, 2) + " at n = " +
                    std::to_string(query.model_size) + ")",
                "model-residue noise grows as sqrt(n) * quantum while the "
                "usable margin stays O(1) (§3 / De Sa et al. [11])",
                "- (this *recovers* statistical efficiency)");
        }
    }
    if (advice.regime == Regime::kCommunicationBound) {
        add("Disable the hardware prefetcher (MSR 0x1A4)",
            "prefetched model lines are invalidated before use and the "
            "fills waste bandwidth (§5.3)",
            "Negligible");
        add("Use mini-batches (start around B = 8-16)",
            "amortizes model-write invalidations; effectively raises p(n) "
            "(§5.4)",
            "Possible — validate the loss curve");
        add("On obstinate-cache hardware, set q ~ 0.5 on model pages",
            "ignoring invalidates removes the small-model coherence cost "
            "(§6.2)",
            "Negligible (Fig 6f)");
    } else {
        add("Keep the hardware prefetcher enabled",
            "streaming dataset reads benefit; model-line churn is minor "
            "at this size (§5.3)",
            "None");
    }
    return advice;
}

} // namespace buckwild::dmgc
