#include "dmgc/statistical.h"

#include <cmath>

#include "fixed/fixed_point.h"
#include "util/logging.h"

namespace buckwild::dmgc {

double
quantization_variance(double quantum)
{
    return quantum * quantum / 12.0;
}

double
default_quantum(const Precision& p)
{
    if (p.is_float) return 0.0;
    if (!fixed::is_supported_width(p.bits))
        fatal("no default quantum for " + std::to_string(p.bits) +
              "-bit precision");
    return fixed::default_format(p.bits).quantum();
}

double
NoiseQuery::w_rms() const
{
    const double n = static_cast<double>(model_size);
    return target_margin / (std::sqrt(n) * x_rms);
}

double
margin_noise_std(const NoiseQuery& q)
{
    if (q.model_size == 0) fatal("model_size must be >= 1");
    if (q.x_rms <= 0.0 || q.target_margin <= 0.0)
        fatal("x_rms and target_margin must be positive");
    const double n = static_cast<double>(q.model_size);
    const double qm = default_quantum(q.signature.model);
    const double qx = default_quantum(q.signature.dataset);
    const double wr = q.w_rms();
    const double variance = n * q.x_rms * q.x_rms *
                                quantization_variance(qm) +
                            n * wr * wr * quantization_variance(qx);
    return std::sqrt(variance);
}

double
margin_snr(const NoiseQuery& q)
{
    const double noise = margin_noise_std(q);
    if (noise == 0.0) return std::numeric_limits<double>::infinity();
    return q.target_margin / noise;
}

std::size_t
max_model_size_for_snr(const Signature& signature, double snr,
                       double x_rms, double target_margin)
{
    if (snr <= 0.0) fatal("snr must be positive");
    NoiseQuery q;
    q.signature = signature;
    q.x_rms = x_rms;
    q.target_margin = target_margin;
    std::size_t best = 0;
    for (std::size_t n = 1; n <= (std::size_t{1} << 30); n <<= 1) {
        q.model_size = n;
        if (margin_snr(q) >= snr)
            best = n;
        else
            break;
    }
    return best;
}

} // namespace buckwild::dmgc
