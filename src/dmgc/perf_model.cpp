#include "dmgc/perf_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace buckwild::dmgc {

const std::vector<CalibrationRow>&
xeon_e7_8890_calibration()
{
    // Table 2 of the paper, with the "[i]" bracket expanded: the same row
    // calibrates both the dense signature and the sparse signature whose
    // index width equals the dataset width.
    static const std::vector<CalibrationRow> kTable2 = {
        {"D32fM8", {0.203, 0.103}},
        {"D32fM16", {0.208, 0.080}},
        {"D32fM32f", {0.936, 0.101}},
        {"D8M32f", {0.999, 0.089}},
        {"D16M32f", {1.183, 0.089}},
        {"D16M16", {1.739, 0.106}},
        {"D8M16", {2.238, 0.105}},
        {"D16M8", {2.526, 0.172}},
        {"D8M8", {3.339, 0.166}},
    };
    return kTable2;
}

PerfModel::PerfModel(std::vector<CalibrationRow> calibration,
                     Coefficients coeffs)
    : rows_(std::move(calibration)), coeffs_(coeffs)
{
    for (const auto& row : rows_) {
        const Signature sig = parse_signature(row.signature_text);
        by_key_[key_of(sig)] = row.t1;
    }
}

PerfModel
PerfModel::paper_model()
{
    return PerfModel(xeon_e7_8890_calibration(), Coefficients{});
}

double
PerfModel::parallel_fraction(std::size_t model_size) const
{
    if (model_size == 0) return 0.0;
    const double p = coeffs_.bandwidth_fraction -
        coeffs_.comm_coeff / std::sqrt(static_cast<double>(model_size));
    return std::clamp(p, 0.0, 1.0);
}

double
PerfModel::amdahl(double t1, std::size_t threads, double p)
{
    const double t = static_cast<double>(threads);
    return t1 * t / (1.0 + (t - 1.0) * (1.0 - p));
}

std::string
PerfModel::key_of(const Signature& sig)
{
    // Calibration rows are keyed on the D and M precisions only: the i
    // term follows the dataset width and the remaining terms are omitted
    // for every Table-2 configuration.
    return "D" + sig.dataset.to_string() + "M" + sig.model.to_string();
}

bool
PerfModel::is_calibrated(const Signature& sig) const
{
    return by_key_.contains(key_of(sig));
}

double
PerfModel::base_throughput(const Signature& sig) const
{
    const auto it = by_key_.find(key_of(sig));
    if (it == by_key_.end())
        fatal("signature " + sig.to_string() +
              " has no calibration row in the performance model");
    return sig.sparse ? it->second.sparse_gnps : it->second.dense_gnps;
}

double
PerfModel::predict_gnps(const Signature& sig, std::size_t threads,
                        std::size_t model_size) const
{
    if (threads == 0) fatal("predict_gnps requires threads >= 1");
    return amdahl(base_throughput(sig), threads,
                  parallel_fraction(model_size));
}

std::vector<std::string>
PerfModel::calibrated_signatures() const
{
    std::vector<std::string> out;
    out.reserve(rows_.size());
    for (const auto& row : rows_) out.push_back(row.signature_text);
    return out;
}

PerfModel::Coefficients
fit_coefficients(const std::vector<std::pair<std::size_t, double>>& samples)
{
    if (samples.size() < 2)
        fatal("fit_coefficients needs at least two (n, p) samples");
    // Least squares for p = a - b * x with x = 1/sqrt(n).
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double m = static_cast<double>(samples.size());
    for (const auto& [n, p] : samples) {
        const double x = 1.0 / std::sqrt(static_cast<double>(n));
        sx += x;
        sy += p;
        sxx += x * x;
        sxy += x * p;
    }
    const double denom = m * sxx - sx * sx;
    if (std::fabs(denom) < 1e-18)
        fatal("fit_coefficients: degenerate sample set (all same n)");
    const double slope = (m * sxy - sx * sy) / denom;
    const double intercept = (sy - slope * sx) / m;
    return {intercept, -slope};
}

double
infer_parallel_fraction(double t1, double tt, std::size_t threads)
{
    if (threads < 2) fatal("infer_parallel_fraction requires threads >= 2");
    if (t1 <= 0.0 || tt <= 0.0)
        fatal("infer_parallel_fraction requires positive throughputs");
    const double t = static_cast<double>(threads);
    const double r = tt / t1;
    const double p = t * (r - 1.0) / (r * (t - 1.0));
    return std::clamp(p, 0.0, 1.0);
}

} // namespace buckwild::dmgc
