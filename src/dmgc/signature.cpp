#include "dmgc/signature.h"

#include <cctype>
#include <cstddef>

#include "util/logging.h"

namespace buckwild::dmgc {

std::string
Precision::to_string() const
{
    return std::to_string(bits) + (is_float ? "f" : "");
}

std::string
Signature::to_string() const
{
    std::string out;
    // For sparse problems the paper always spells out the D/i/M terms
    // (e.g. sparse Hogwild! is written "D32f i32 M32f"); for dense
    // problems, full-precision D and M are omitted.
    if (sparse || !(dataset == Precision::full()))
        out += "D" + dataset.to_string();
    if (sparse)
        out += "i" + std::to_string(index_bits.value_or(32));
    if (sparse || !(model == Precision::full()))
        out += "M" + model.to_string();
    if (gradient.has_value())
        out += "G" + gradient->to_string();
    if (communication != Communication::kImplicitCache) {
        out += "C";
        if (communication == Communication::kSynchronous) out += "s";
        if (comm_precision.has_value()) out += comm_precision->to_string();
    }
    if (out.empty()) out = sparse ? "D32fi32M32f" : "D32fM32f";
    return out;
}

bool
Signature::is_full_precision() const
{
    return dataset == Precision::full() && model == Precision::full() &&
           !gradient.has_value();
}

int
Signature::dataset_bits_per_number() const
{
    int bits = dataset.bits;
    if (sparse) bits += index_bits.value_or(32);
    return bits;
}

Signature
Signature::dense_fixed(int dataset_bits, int model_bits)
{
    Signature sig;
    sig.dataset = dataset_bits == 32 ? Precision::full()
                                     : Precision::fixed(dataset_bits);
    sig.model = model_bits == 32 ? Precision::full()
                                 : Precision::fixed(model_bits);
    return sig;
}

Signature
Signature::sparse_fixed(int dataset_bits, int index_bits, int model_bits)
{
    Signature sig = dense_fixed(dataset_bits, model_bits);
    sig.sparse = true;
    sig.index_bits = index_bits;
    return sig;
}

Signature
Signature::dense_hogwild()
{
    return Signature{};
}

Signature
Signature::sparse_hogwild()
{
    Signature sig;
    sig.sparse = true;
    sig.index_bits = 32;
    return sig;
}

namespace {

/// Cursor over the signature text.
struct Cursor
{
    const std::string& text;
    std::size_t pos = 0;

    bool done() const { return pos >= text.size(); }
    char peek() const { return text[pos]; }

    int
    read_int()
    {
        if (done() || !std::isdigit(static_cast<unsigned char>(peek())))
            fatal("expected a bit-width at position " + std::to_string(pos) +
                  " of DMGC signature '" + text + "'");
        int v = 0;
        while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) {
            v = v * 10 + (text[pos] - '0');
            ++pos;
        }
        return v;
    }

    Precision
    read_precision()
    {
        Precision p;
        p.bits = read_int();
        p.is_float = !done() && peek() == 'f';
        if (p.is_float) ++pos;
        return p;
    }
};

} // namespace

Signature
parse_signature(const std::string& text)
{
    Signature sig;
    Cursor cur{text};
    bool saw_any = false;
    while (!cur.done()) {
        const char c = cur.peek();
        ++cur.pos;
        switch (c) {
          case 'D':
            sig.dataset = cur.read_precision();
            saw_any = true;
            break;
          case 'i':
            sig.sparse = true;
            sig.index_bits = cur.read_int();
            saw_any = true;
            break;
          case 'M':
            sig.model = cur.read_precision();
            saw_any = true;
            break;
          case 'G':
            sig.gradient = cur.read_precision();
            saw_any = true;
            break;
          case 'C': {
            sig.communication = Communication::kAsynchronous;
            if (!cur.done() && cur.peek() == 's') {
                sig.communication = Communication::kSynchronous;
                ++cur.pos;
            }
            if (!cur.done() &&
                std::isdigit(static_cast<unsigned char>(cur.peek())))
                sig.comm_precision = cur.read_precision();
            saw_any = true;
            break;
          }
          case ' ':
            break; // the paper writes "D32f i32 M32f" with spaces
          default:
            fatal(std::string("unexpected character '") + c +
                  "' in DMGC signature '" + text + "'");
        }
    }
    if (!saw_any)
        fatal("empty DMGC signature");
    return sig;
}

} // namespace buckwild::dmgc
