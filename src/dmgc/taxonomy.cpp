#include "dmgc/taxonomy.h"

namespace buckwild::dmgc {

const std::vector<TaxonomyEntry>&
prior_work_taxonomy()
{
    static const std::vector<TaxonomyEntry> kTable = [] {
        std::vector<TaxonomyEntry> t;
        auto add = [&t](std::string paper, std::string text,
                        std::string note) {
            TaxonomyEntry e;
            e.paper = std::move(paper);
            e.signature_text = text;
            e.signature = parse_signature(text);
            e.note = std::move(note);
            t.push_back(std::move(e));
        };
        add("Niu et al. [36] (Hogwild!, sparse)", "D32fi32M32f",
            "full precision; implicit communication via cache coherence");
        add("Savich and Moussa [45], 18-bit", "G18",
            "18-bit intermediate (gradient) arithmetic on an FPGA RBM");
        add("Seide et al. [46] (1-bit SGD)", "Cs1",
            "1-bit quantized gradients exchanged synchronously; "
            "full-precision dataset/model carry the quantization error");
        add("Courbariaux et al. [9], 10-bit", "G10",
            "10-bit multipliers with full-precision accumulators");
        add("Gupta et al. [14]", "D8M16",
            "8-bit data, 16-bit model, stochastic (unbiased) rounding");
        add("De Sa et al. [11] (Buckwild!), 8-bit", "D8M8",
            "8-bit data and model, asynchronous, unbiased rounding");
        return t;
    }();
    return kTable;
}

} // namespace buckwild::dmgc
