/**
 * @file
 * Taxonomy of prior low-precision SGD systems (Table 1 of the paper).
 *
 * The DMGC model doubles as a classification scheme: each previously
 * published low-precision system corresponds to a signature. This registry
 * reproduces Table 1 and is used by `bench_table1_taxonomy` and the unit
 * tests that check the classification rules round-trip.
 */
#ifndef BUCKWILD_DMGC_TAXONOMY_H
#define BUCKWILD_DMGC_TAXONOMY_H

#include <string>
#include <vector>

#include "dmgc/signature.h"

namespace buckwild::dmgc {

/// One prior-work entry of Table 1.
struct TaxonomyEntry
{
    std::string paper;          ///< citation, e.g. "Seide et al. [46]"
    std::string signature_text; ///< textual signature as printed in Table 1
    Signature signature;        ///< parsed form
    std::string note;           ///< what the system quantizes
};

/// The five rows of Table 1 plus standard Hogwild! as a reference row.
const std::vector<TaxonomyEntry>& prior_work_taxonomy();

} // namespace buckwild::dmgc

#endif // BUCKWILD_DMGC_TAXONOMY_H
