/**
 * @file
 * The DMGC roofline-like performance model (§4).
 *
 * Hardware efficiency is expressed as *dataset throughput* in
 * giga-numbers-per-second (GNPS): the rate at which dataset numbers are
 * consumed. The paper's model has three parts:
 *
 *   (1) Amdahl scaling over threads t:      T(t) = T1 * t / (1 + (t-1)(1-p))
 *   (2) base throughput T1 = f(DMGC signature)            [Table 2]
 *   (3) parallelizable fraction p = f(model size n):
 *           p(n) = 0.89 - 22 / sqrt(n)                    [Eq. 3]
 *
 * The first term of p is the *bandwidth bound* (model-size independent);
 * the second is the *communication bound*, which grows as the model
 * shrinks because coherence invalidates become more frequent.
 *
 * A PerfModel can be constructed from the paper's Xeon E7-8890 v3
 * calibration (Table 2) or refit from measurements taken on the host, so
 * bench_fig3_perf_model can compare measured-vs-predicted on any machine.
 */
#ifndef BUCKWILD_DMGC_PERF_MODEL_H
#define BUCKWILD_DMGC_PERF_MODEL_H

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "dmgc/signature.h"

namespace buckwild::dmgc {

/// Base sequential throughput for one signature (dense and sparse), GNPS.
struct BaseThroughput
{
    double dense_gnps;
    double sparse_gnps;
};

/// One (signature, T1) calibration row — Table 2 of the paper.
struct CalibrationRow
{
    std::string signature_text; ///< with the paper's [i] bracket expanded
    BaseThroughput t1;
};

/// The paper's published Table 2 (Xeon E7-8890 v3, 2.5 GHz).
const std::vector<CalibrationRow>& xeon_e7_8890_calibration();

/**
 * The throughput model. Immutable after construction; all methods are
 * const and thread-safe.
 */
class PerfModel
{
  public:
    /// Eq. 3 coefficients: p(n) = bandwidth_fraction - comm_coeff/sqrt(n).
    struct Coefficients
    {
        double bandwidth_fraction = 0.89;
        double comm_coeff = 22.0;
    };

    /// Builds the model from calibration rows + Eq. 3 coefficients.
    PerfModel(std::vector<CalibrationRow> calibration, Coefficients coeffs);

    /// The paper's model: Table 2 T1 values with the published Eq. 3.
    static PerfModel paper_model();

    /// Parallelizable fraction p(n), clamped into [0, 1].
    double parallel_fraction(std::size_t model_size) const;

    /// Amdahl throughput T(t) given T1 and p — Eq. 2.
    static double amdahl(double t1, std::size_t threads, double p);

    /**
     * Predicted dataset throughput (GNPS) for `sig` at `threads` threads
     * and model size `model_size`.
     *
     * @throws std::runtime_error if the signature is not calibrated.
     */
    double predict_gnps(const Signature& sig, std::size_t threads,
                        std::size_t model_size) const;

    /// Base T1 for a calibrated signature.
    double base_throughput(const Signature& sig) const;

    /// True if `sig` has a calibration row.
    bool is_calibrated(const Signature& sig) const;

    /// All calibrated signatures (textual form), in calibration order.
    std::vector<std::string> calibrated_signatures() const;

    const Coefficients& coefficients() const { return coeffs_; }

  private:
    /// Canonical lookup key (dense and sparse variants share a row).
    static std::string key_of(const Signature& sig);

    std::vector<CalibrationRow> rows_;
    std::map<std::string, BaseThroughput> by_key_;
    Coefficients coeffs_;
};

/**
 * Fits Eq. 3 coefficients from (model_size, measured p) samples via least
 * squares on the basis {1, 1/sqrt(n)}. Used to recalibrate the model on
 * the host machine.
 */
PerfModel::Coefficients fit_coefficients(
    const std::vector<std::pair<std::size_t, double>>& samples);

/**
 * Recovers an empirical p from throughput measurements at 1 and t threads:
 * inverting Eq. 2 gives p = (t - T(t)/T1) * T(t)/T1 ... solved exactly:
 *     p = t (r - 1) / (r (t - 1)),  r = T(t)/T1.
 * Returns p clamped to [0, 1]; requires t >= 2.
 */
double infer_parallel_fraction(double t1, double tt, std::size_t threads);

} // namespace buckwild::dmgc

#endif // BUCKWILD_DMGC_PERF_MODEL_H
