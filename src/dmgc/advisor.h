/**
 * @file
 * The DMGC advisor: turns the paper's decision rules into executable
 * recommendations.
 *
 * The paper's pitch is that the DMGC model gives "a principled way of
 * reasoning about these decisions" instead of ad-hoc per-system analysis.
 * Given a configuration (signature, model size, thread count), the
 * advisor:
 *
 *  - classifies the operating regime via the §4 performance model
 *    (bandwidth-bound vs communication-bound);
 *  - predicts throughput, and the speedup available from lowering
 *    precision (from the Table-2 calibration);
 *  - emits the applicable Table-3 optimizations with their
 *    statistical-efficiency caveats (prefetch off / mini-batch /
 *    obstinate cache only when communication-bound; fast PRNG only when
 *    rounding unbiased; etc.).
 */
#ifndef BUCKWILD_DMGC_ADVISOR_H
#define BUCKWILD_DMGC_ADVISOR_H

#include <string>
#include <vector>

#include "dmgc/perf_model.h"
#include "dmgc/signature.h"

namespace buckwild::dmgc {

/// The §4 operating regimes.
enum class Regime {
    kCommunicationBound, ///< small model: coherence latency dominates
    kBandwidthBound,     ///< large model: memory bandwidth dominates
};

/// "communication-bound" / "bandwidth-bound".
std::string to_string(Regime regime);

/// One actionable recommendation.
struct Recommendation
{
    std::string action;        ///< what to do
    std::string rationale;     ///< why (tied to the paper's analysis)
    std::string stat_eff_cost; ///< Table 3's statistical-efficiency column
};

/// The advisor's full report for one configuration.
struct Advice
{
    Regime regime;
    double parallel_fraction;   ///< p(n) from Eq. 3
    double predicted_gnps;      ///< at the requested thread count
    /// Best calibrated signature of the same sparsity and its predicted
    /// speedup over the requested one (1.0 when already optimal).
    Signature best_signature;
    double best_speedup;
    std::vector<Recommendation> recommendations;
};

/// Parameters the advisor reasons over.
struct AdvisorQuery
{
    Signature signature = Signature::dense_fixed(8, 8);
    std::size_t model_size = 1 << 16;
    std::size_t threads = 18;
    bool unbiased_rounding = true;
    /// Model sizes below this p(n) threshold count as communication-bound.
    double comm_bound_p = 0.6;
};

/// Produces advice from a performance model (use PerfModel::paper_model()
/// or a host-recalibrated model).
Advice advise(const AdvisorQuery& query, const PerfModel& model);

} // namespace buckwild::dmgc

#endif // BUCKWILD_DMGC_ADVISOR_H
