/**
 * @file
 * First-principles statistical-efficiency estimates.
 *
 * §3: "The information in a DMGC signature is enough to model the
 * statistical efficiency of an algorithm from first principles by using
 * techniques from previous work like De Sa et al. [11]." This header
 * implements the first-order version of that claim for the dot-and-AXPY
 * problem family:
 *
 *  - *dataset quantization* leaves each stored value with an error
 *    ~ U[-qx/2, qx/2] (variance qx^2 / 12);
 *  - *model quantization* with unbiased rounding keeps each coordinate
 *    hovering within about a quantum of its target (steady-state residue
 *    modeled as U[-qm/2, qm/2], variance qm^2 / 12);
 *  - the margin z = w.x therefore carries zero-mean noise of variance
 *
 *        n * x_rms^2 * qm^2 / 12   (model residue)
 *      + n * w_rms^2 * qx^2 / 12   (dataset rounding).
 *
 * For classification the useful margin is O(1) regardless of n (the
 * model spreads it over n coordinates: w_rms ~ margin / (sqrt(n) x_rms)),
 * while the model-residue noise grows as sqrt(n) * qm. The margin
 * signal-to-noise ratio therefore *falls* as the model grows — the
 * quantitative form of the paper's "round-off error ... is especially
 * significant when the precision of the model is small", and the reason
 * 8-bit models misbehave on very high-dimensional problems. The advisor
 * surfaces a warning when the predicted SNR is low.
 */
#ifndef BUCKWILD_DMGC_STATISTICAL_H
#define BUCKWILD_DMGC_STATISTICAL_H

#include <cstddef>

#include "dmgc/signature.h"

namespace buckwild::dmgc {

/// Variance of the value error from storing a real number on a grid with
/// the given quantum (uniform residue model): q^2 / 12.
double quantization_variance(double quantum);

/// The library's default quantum for a precision term (0 for float).
double default_quantum(const Precision& p);

/// Inputs for the margin-noise estimate.
struct NoiseQuery
{
    Signature signature;
    std::size_t model_size = 1 << 16; ///< n
    double x_rms = 0.577;             ///< RMS dataset value (U[-1,1])
    /// The margin magnitude the trained model aims for (logistic/hinge
    /// classifiers: O(1); 2.0 is a comfortable working value).
    double target_margin = 2.0;

    /// Implied RMS model coordinate: margin spread over n coordinates.
    double w_rms() const;
};

/// Standard deviation of the quantization-induced margin noise.
double margin_noise_std(const NoiseQuery& query);

/// target_margin / margin_noise_std — below ~3 the precision is
/// statistically risky for this model size.
double margin_snr(const NoiseQuery& query);

/// Largest model size at which the signature keeps margin_snr >= snr.
std::size_t max_model_size_for_snr(const Signature& signature, double snr,
                                   double x_rms = 0.577,
                                   double target_margin = 2.0);

} // namespace buckwild::dmgc

#endif // BUCKWILD_DMGC_STATISTICAL_H
