/**
 * @file
 * DMGC signatures (§3) — the paper's conceptual contribution.
 *
 * A DMGC signature classifies a low-precision SGD implementation by the
 * precision of four classes of numbers:
 *
 *   D — dataset numbers (with an optional i index precision when sparse)
 *   M — model numbers
 *   G — gradient (intermediate) numbers
 *   C — communication numbers (subscript s = synchronous)
 *
 * written e.g. `D8i8M16G32fCs32`. Rules from the paper:
 *   - an `f` suffix marks floating point (otherwise fixed point);
 *   - the G term is omitted when gradient computation loses no fidelity;
 *   - D and M are omitted when full precision (32-bit float);
 *   - C is omitted when communication is implicit through cache coherence
 *     (Hogwild!-style), `Cs` marks explicit synchronous communication;
 *   - `i` appears only for sparse problems.
 *
 * This header provides the Signature value type, a parser/formatter for the
 * textual notation, and helpers the trainer uses to dispatch kernels.
 */
#ifndef BUCKWILD_DMGC_SIGNATURE_H
#define BUCKWILD_DMGC_SIGNATURE_H

#include <optional>
#include <string>

namespace buckwild::dmgc {

/// One term of a signature: a bit-width plus float/fixed flag.
struct Precision
{
    int bits = 32;
    bool is_float = true;

    bool operator==(const Precision&) const = default;

    /// Full-precision IEEE float, the implicit default for omitted terms.
    static Precision
    full()
    {
        return {32, true};
    }

    /// k-bit fixed point.
    static Precision
    fixed(int k)
    {
        return {k, false};
    }

    /// e.g. "32f" or "8".
    std::string to_string() const;
};

/// How workers communicate (the C term).
enum class Communication {
    kImplicitCache, ///< Hogwild!-style: coherence protocol only (C omitted)
    kAsynchronous,  ///< explicit asynchronous messages (C)
    kSynchronous,   ///< explicit synchronous exchange (Cs)
};

/**
 * A full DMGC signature.
 *
 * `gradient` and `comm_precision` are optional: disengaged means the term
 * is omitted from the textual form (lossless gradients / implicit
 * communication respectively).
 */
struct Signature
{
    Precision dataset = Precision::full();
    /// Index precision; only meaningful when `sparse` is true.
    std::optional<int> index_bits;
    Precision model = Precision::full();
    std::optional<Precision> gradient;
    Communication communication = Communication::kImplicitCache;
    std::optional<Precision> comm_precision;
    bool sparse = false;

    bool operator==(const Signature&) const = default;

    /// Renders the paper's textual notation, applying the omission rules.
    std::string to_string() const;

    /// True when both D and M are full-precision floats (plain Hogwild!).
    bool is_full_precision() const;

    /// Total data bits moved from the dataset per processed number
    /// (dataset bits plus index bits when sparse).
    int dataset_bits_per_number() const;

    // --- Common signatures used throughout the paper -------------------

    /// Dense D{d}M{m} fixed-point Buckwild! (implicit communication).
    static Signature dense_fixed(int dataset_bits, int model_bits);

    /// Sparse D{d}i{i}M{m} Buckwild!.
    static Signature sparse_fixed(int dataset_bits, int index_bits,
                                  int model_bits);

    /// Plain dense Hogwild!: D32fM32f.
    static Signature dense_hogwild();

    /// Plain sparse Hogwild!: D32f i32 M32f.
    static Signature sparse_hogwild();
};

/**
 * Parses the textual notation, e.g. "D8i8M16", "D32fi32M32f", "G10",
 * "Cs1" (Seide et al.), "D8M16G32fCs32".
 *
 * @throws std::runtime_error on malformed input.
 */
Signature parse_signature(const std::string& text);

} // namespace buckwild::dmgc

#endif // BUCKWILD_DMGC_SIGNATURE_H
