#include "core/comm_sgd.h"

#include <algorithm>

#include "ps/gradient_view.h"
#include "ps/quantize.h"
#include "util/logging.h"

namespace buckwild::core {

CommSgdResult
train_comm_sgd(const dataset::DenseProblem& problem,
               const CommSgdConfig& cfg)
{
    if (cfg.workers == 0) fatal("workers must be >= 1");
    if (cfg.batch_per_worker == 0) fatal("batch_per_worker must be >= 1");
    ps::validate_comm_bits(cfg.comm_bits);
    if (!(cfg.step_size > 0.0f)) fatal("step_size must be positive");
    if (!(cfg.step_decay > 0.0f)) fatal("step_decay must be positive");
    if (cfg.workers * cfg.batch_per_worker > problem.examples)
        fatal("one exchange round needs workers * batch_per_worker <= " +
              std::to_string(problem.examples) + " examples");

    const std::size_t n = problem.dim;
    std::vector<float> model(n, 0.0f);
    std::vector<std::vector<float>> residual(
        cfg.workers, std::vector<float>(n, 0.0f));

    CommSgdResult result;
    result.signature = cfg.comm_bits == 32
        ? "Cs32"
        : "Cs" + std::to_string(cfg.comm_bits);
    result.bytes_per_round =
        static_cast<double>(n) * cfg.comm_bits / 8.0 + sizeof(float);

    auto eval = [&] {
        double total = 0.0;
        std::size_t correct = 0;
        for (std::size_t i = 0; i < problem.examples; ++i) {
            float z = 0.0f;
            const float* x = problem.row(i);
            for (std::size_t k = 0; k < n; ++k) z += model[k] * x[k];
            total += loss_value(cfg.loss, z, problem.y[i]);
            if (loss_correct(cfg.loss, z, problem.y[i])) ++correct;
        }
        result.accuracy = static_cast<double>(correct) /
                          static_cast<double>(problem.examples);
        return total / static_cast<double>(problem.examples);
    };

    const std::size_t round_examples = cfg.workers * cfg.batch_per_worker;
    float eta = cfg.step_size;
    std::vector<float> gradient(n);
    std::vector<float> reduced(n);

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (std::size_t base = 0; base + round_examples <= problem.examples;
             base += round_examples) {
            std::fill(reduced.begin(), reduced.end(), 0.0f);
            for (std::size_t w = 0; w < cfg.workers; ++w) {
                // Worker w's shard of this round's examples.
                std::fill(gradient.begin(), gradient.end(), 0.0f);
                for (std::size_t b = 0; b < cfg.batch_per_worker; ++b) {
                    const std::size_t i =
                        base + w * cfg.batch_per_worker + b;
                    const float* x = problem.row(i);
                    float z = 0.0f;
                    for (std::size_t k = 0; k < n; ++k)
                        z += model[k] * x[k];
                    const float g =
                        loss_gradient_coefficient(cfg.loss, z, problem.y[i]);
                    if (g == 0.0f) continue;
                    for (std::size_t k = 0; k < n; ++k)
                        gradient[k] += g * x[k];
                }
                // Error feedback: add the carried residual before
                // quantizing, as in Seide et al.
                if (cfg.error_feedback)
                    for (std::size_t k = 0; k < n; ++k)
                        gradient[k] += residual[w][k];
                const auto q = ps::quantize_gradient(
                    gradient, cfg.comm_bits,
                    cfg.error_feedback ? &residual[w] : nullptr);
                for (std::size_t k = 0; k < n; ++k) reduced[k] += q[k];
            }
            // Synchronous model update from the all-reduced gradient.
            const float scale =
                eta / static_cast<float>(round_examples);
            for (std::size_t k = 0; k < n; ++k)
                model[k] -= scale * reduced[k];
            ++result.rounds;
        }
        eta *= cfg.step_decay;
        result.loss_trace.push_back(eval());
    }
    result.final_loss =
        result.loss_trace.empty() ? eval() : result.loss_trace.back();
    return result;
}

CommSgdResult
train_comm_sgd(const dataset::SparseProblem& problem,
               const CommSgdConfig& cfg)
{
    if (cfg.workers == 0) fatal("workers must be >= 1");
    if (cfg.batch_per_worker == 0) fatal("batch_per_worker must be >= 1");
    ps::validate_comm_bits(cfg.comm_bits);
    if (!(cfg.step_size > 0.0f)) fatal("step_size must be positive");
    if (!(cfg.step_decay > 0.0f)) fatal("step_decay must be positive");
    if (cfg.workers * cfg.batch_per_worker > problem.examples())
        fatal("one exchange round needs workers * batch_per_worker <= " +
              std::to_string(problem.examples()) + " examples");

    const std::size_t n = problem.dim;
    const ps::Codec codec = ps::Codec::from_bits(cfg.comm_bits);
    std::vector<float> model(n, 0.0f);
    // Per-worker *sparse* error-feedback residual: the coordinates this
    // worker has exchanged with nonzero untransmitted remainder.
    std::vector<std::vector<std::uint32_t>> residual_index(cfg.workers);
    std::vector<std::vector<float>> residual_value(cfg.workers);

    CommSgdResult result;
    result.signature = cfg.comm_bits == 32
        ? "Cs32"
        : "Cs" + std::to_string(cfg.comm_bits);

    auto eval = [&] {
        double total = 0.0;
        std::size_t correct = 0;
        for (std::size_t i = 0; i < problem.examples(); ++i) {
            const dataset::SparseRow& x = problem.rows[i];
            double z = 0.0;
            for (std::size_t j = 0; j < x.index.size(); ++j)
                z += static_cast<double>(model[x.index[j]]) *
                     static_cast<double>(x.value[j]);
            const float zf = static_cast<float>(z);
            total += loss_value(cfg.loss, zf, problem.y[i]);
            if (loss_correct(cfg.loss, zf, problem.y[i])) ++correct;
        }
        result.accuracy = static_cast<double>(correct) /
                          static_cast<double>(problem.examples());
        return total / static_cast<double>(problem.examples());
    };

    const std::size_t round_examples = cfg.workers * cfg.batch_per_worker;
    float eta = cfg.step_size;
    // Touched-coordinate scratch (per worker) and the round's reduced
    // gradient over the union of worker supports.
    std::vector<float> acc(n, 0.0f);
    std::vector<std::uint8_t> in_support(n, 0);
    std::vector<std::uint32_t> touched;
    std::vector<float> reduced(n, 0.0f);
    std::vector<std::uint8_t> in_round(n, 0);
    std::vector<std::uint32_t> round_touched;
    // The exchanged stream: delta-encoded u16 index gaps (paper footnote
    // 6), with explicit zero-valued padding entries where a gap overflows
    // the rep.
    constexpr std::uint32_t kMaxGap = 65535;
    std::vector<std::uint16_t> delta_index;
    std::vector<float> delta_value;
    std::vector<float> entry_residual;
    std::uint64_t exchanged_bytes = 0;
    std::uint64_t exchanges = 0;

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (std::size_t base = 0;
             base + round_examples <= problem.examples();
             base += round_examples) {
            for (std::size_t w = 0; w < cfg.workers; ++w) {
                // Worker w's shard of this round's examples, accumulated
                // over only the touched coordinates.
                for (std::size_t b = 0; b < cfg.batch_per_worker; ++b) {
                    const std::size_t i =
                        base + w * cfg.batch_per_worker + b;
                    const dataset::SparseRow& x = problem.rows[i];
                    float z = 0.0f;
                    for (std::size_t j = 0; j < x.index.size(); ++j)
                        z += model[x.index[j]] * x.value[j];
                    const float g =
                        loss_gradient_coefficient(cfg.loss, z, problem.y[i]);
                    if (g == 0.0f) continue;
                    for (std::size_t j = 0; j < x.index.size(); ++j) {
                        const std::uint32_t k = x.index[j];
                        if (!in_support[k]) {
                            in_support[k] = 1;
                            touched.push_back(k);
                        }
                        acc[k] += g * x.value[j];
                    }
                }
                // Error feedback: the carried sparse residual joins the
                // support before quantizing, as in Seide et al.
                if (cfg.error_feedback)
                    for (std::size_t j = 0; j < residual_index[w].size();
                         ++j) {
                        const std::uint32_t k = residual_index[w][j];
                        if (!in_support[k]) {
                            in_support[k] = 1;
                            touched.push_back(k);
                        }
                        acc[k] += residual_value[w][j];
                    }
                std::sort(touched.begin(), touched.end());

                // Delta-encode the support into the u16 index rep.
                delta_index.clear();
                delta_value.clear();
                std::uint32_t prev = 0;
                for (const std::uint32_t k : touched) {
                    std::uint32_t gap = k - prev;
                    while (gap > kMaxGap) {
                        delta_index.push_back(
                            static_cast<std::uint16_t>(kMaxGap));
                        delta_value.push_back(0.0f);
                        gap -= kMaxGap;
                    }
                    delta_index.push_back(static_cast<std::uint16_t>(gap));
                    delta_value.push_back(acc[k]);
                    prev = k;
                }
                const std::size_t count = delta_index.size();
                entry_residual.assign(count, 0.0f);
                const ps::GradientView view =
                    ps::GradientView::sparse_view<std::uint16_t>(
                        delta_value.data(), delta_index.data(), count,
                        static_cast<std::uint32_t>(n),
                        simd::sparse::IndexMode::kDelta);
                // The real wire round-trip — what a worker would send.
                const ps::WireGradient wire = ps::encode_sparse_gradient(
                    view, codec,
                    cfg.error_feedback ? entry_residual.data() : nullptr,
                    nullptr);
                exchanged_bytes += wire.wire_bytes();
                ++exchanges;
                const ps::SparseGradient q =
                    ps::decode_sparse_gradient(wire);
                for (std::size_t j = 0; j < q.nnz(); ++j) {
                    const std::uint32_t k = q.index[j];
                    if (!in_round[k]) {
                        in_round[k] = 1;
                        round_touched.push_back(k);
                    }
                    reduced[k] += q.value[j];
                }
                if (cfg.error_feedback) {
                    residual_index[w].clear();
                    residual_value[w].clear();
                    std::size_t cursor = 0;
                    for (std::size_t j = 0; j < count; ++j) {
                        cursor += delta_index[j];
                        if (entry_residual[j] != 0.0f) {
                            residual_index[w].push_back(
                                static_cast<std::uint32_t>(cursor));
                            residual_value[w].push_back(entry_residual[j]);
                        }
                    }
                }
                for (const std::uint32_t k : touched) {
                    acc[k] = 0.0f;
                    in_support[k] = 0;
                }
                touched.clear();
            }
            // Synchronous model update from the all-reduced gradient,
            // over only the union of the workers' supports.
            const float scale = eta / static_cast<float>(round_examples);
            for (const std::uint32_t k : round_touched) {
                model[k] -= scale * reduced[k];
                reduced[k] = 0.0f;
                in_round[k] = 0;
            }
            round_touched.clear();
            ++result.rounds;
        }
        eta *= cfg.step_decay;
        result.loss_trace.push_back(eval());
    }
    result.final_loss =
        result.loss_trace.empty() ? eval() : result.loss_trace.back();
    result.bytes_per_round =
        exchanges > 0 ? static_cast<double>(exchanged_bytes) *
                            static_cast<double>(cfg.workers) /
                            static_cast<double>(exchanges)
                      : 0.0;
    return result;
}

} // namespace buckwild::core
