#include "core/comm_sgd.h"

#include "ps/quantize.h"
#include "util/logging.h"

namespace buckwild::core {

CommSgdResult
train_comm_sgd(const dataset::DenseProblem& problem,
               const CommSgdConfig& cfg)
{
    if (cfg.workers == 0) fatal("workers must be >= 1");
    if (cfg.batch_per_worker == 0) fatal("batch_per_worker must be >= 1");
    ps::validate_comm_bits(cfg.comm_bits);
    if (!(cfg.step_size > 0.0f)) fatal("step_size must be positive");
    if (!(cfg.step_decay > 0.0f)) fatal("step_decay must be positive");
    if (cfg.workers * cfg.batch_per_worker > problem.examples)
        fatal("one exchange round needs workers * batch_per_worker <= " +
              std::to_string(problem.examples) + " examples");

    const std::size_t n = problem.dim;
    std::vector<float> model(n, 0.0f);
    std::vector<std::vector<float>> residual(
        cfg.workers, std::vector<float>(n, 0.0f));

    CommSgdResult result;
    result.signature = cfg.comm_bits == 32
        ? "Cs32"
        : "Cs" + std::to_string(cfg.comm_bits);
    result.bytes_per_round =
        static_cast<double>(n) * cfg.comm_bits / 8.0 + sizeof(float);

    auto eval = [&] {
        double total = 0.0;
        std::size_t correct = 0;
        for (std::size_t i = 0; i < problem.examples; ++i) {
            float z = 0.0f;
            const float* x = problem.row(i);
            for (std::size_t k = 0; k < n; ++k) z += model[k] * x[k];
            total += loss_value(cfg.loss, z, problem.y[i]);
            if (loss_correct(cfg.loss, z, problem.y[i])) ++correct;
        }
        result.accuracy = static_cast<double>(correct) /
                          static_cast<double>(problem.examples);
        return total / static_cast<double>(problem.examples);
    };

    const std::size_t round_examples = cfg.workers * cfg.batch_per_worker;
    float eta = cfg.step_size;
    std::vector<float> gradient(n);
    std::vector<float> reduced(n);

    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (std::size_t base = 0; base + round_examples <= problem.examples;
             base += round_examples) {
            std::fill(reduced.begin(), reduced.end(), 0.0f);
            for (std::size_t w = 0; w < cfg.workers; ++w) {
                // Worker w's shard of this round's examples.
                std::fill(gradient.begin(), gradient.end(), 0.0f);
                for (std::size_t b = 0; b < cfg.batch_per_worker; ++b) {
                    const std::size_t i =
                        base + w * cfg.batch_per_worker + b;
                    const float* x = problem.row(i);
                    float z = 0.0f;
                    for (std::size_t k = 0; k < n; ++k)
                        z += model[k] * x[k];
                    const float g =
                        loss_gradient_coefficient(cfg.loss, z, problem.y[i]);
                    if (g == 0.0f) continue;
                    for (std::size_t k = 0; k < n; ++k)
                        gradient[k] += g * x[k];
                }
                // Error feedback: add the carried residual before
                // quantizing, as in Seide et al.
                if (cfg.error_feedback)
                    for (std::size_t k = 0; k < n; ++k)
                        gradient[k] += residual[w][k];
                const auto q = ps::quantize_gradient(
                    gradient, cfg.comm_bits,
                    cfg.error_feedback ? &residual[w] : nullptr);
                for (std::size_t k = 0; k < n; ++k) reduced[k] += q[k];
            }
            // Synchronous model update from the all-reduced gradient.
            const float scale =
                eta / static_cast<float>(round_examples);
            for (std::size_t k = 0; k < n; ++k)
                model[k] -= scale * reduced[k];
            ++result.rounds;
        }
        eta *= cfg.step_decay;
        result.loss_trace.push_back(eval());
    }
    result.final_loss =
        result.loss_trace.empty() ? eval() : result.loss_trace.back();
    return result;
}

} // namespace buckwild::core
