/**
 * @file
 * Low-precision matrix factorization — the recommender-system workload.
 *
 * §3 singles out recommender systems as an application where "the input
 * dataset is naturally quantized" (star ratings), so dataset quantization
 * is free of fidelity loss. SGD matrix completion is also one of the
 * classic Hogwild! workloads (the paper cites Yu et al. [54]).
 *
 * The model here is two factor matrices U (users x k) and V (items x k);
 * one SGD step on a rating (u, i, r):
 *
 *     e   = r - dot(U_u, V_i)
 *     U_u = Q(U_u + eta * e * V_i)        (AXPY, rounded to the M grid)
 *     V_i = Q(V_i + eta * e * U_u_old)
 *
 * Both the dot and the AXPYs run through the library's kernels with the
 * factor rows as both "dataset" and "model" reps, so the whole update is
 * genuinely low-precision (signature D{b}M{b} with b the factor width).
 */
#ifndef BUCKWILD_CORE_MATRIX_FACT_H
#define BUCKWILD_CORE_MATRIX_FACT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "simd/ops.h"

namespace buckwild::core {

/// One observed rating.
struct Rating
{
    std::uint32_t user;
    std::uint32_t item;
    float value; ///< naturally quantized (e.g. 1..5 stars)
};

/// A rating dataset plus its ground truth for evaluation.
struct RatingProblem
{
    std::size_t users = 0;
    std::size_t items = 0;
    std::vector<Rating> train;
    std::vector<Rating> test;
};

/// Samples a synthetic low-rank rating problem: true rank-`rank` factors,
/// ratings rounded to half-star steps in [1, 5] (the natural
/// quantization), split into train/test.
RatingProblem generate_ratings(std::size_t users, std::size_t items,
                               std::size_t rank, std::size_t train_count,
                               std::size_t test_count, std::uint64_t seed);

/// Matrix-factorization trainer configuration.
struct MfConfig
{
    std::size_t factor_dim = 32; ///< k
    int factor_bits = 32;        ///< 8, 16, or 32 (float) factor storage
    simd::Impl impl = simd::best_impl();
    std::size_t epochs = 10;
    float step_size = 0.05f;
    float step_decay = 0.92f;
    std::uint64_t seed = 88;
};

/// Outcome metrics.
struct MfResult
{
    std::vector<double> train_rmse_trace;
    double train_rmse = 0.0;
    double test_rmse = 0.0;
    /// Dataset numbers processed per second (2k numbers per rating step).
    double gnps = 0.0;
};

/// Trains low-precision SGD matrix factorization.
/// @throws std::runtime_error for unsupported factor widths.
MfResult train_matrix_factorization(const RatingProblem& problem,
                                    const MfConfig& config);

} // namespace buckwild::core

#endif // BUCKWILD_CORE_MATRIX_FACT_H
