#include "core/matrix_fact.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "lowp/rep_traits.h"
#include "rng/avx2_xorshift.h"
#include "rng/xorshift.h"
#include "util/aligned_buffer.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace buckwild::core {

RatingProblem
generate_ratings(std::size_t users, std::size_t items, std::size_t rank,
                 std::size_t train_count, std::size_t test_count,
                 std::uint64_t seed)
{
    if (users == 0 || items == 0 || rank == 0)
        fatal("generate_ratings requires positive dimensions");
    rng::Xorshift128Plus gen(seed);
    auto uniform = [&gen] {
        return rng::to_unit_float(static_cast<std::uint32_t>(gen() >> 32));
    };

    // True factors with positive entries scaled so dots land around 3.
    const float scale =
        std::sqrt(3.0f / (0.42f * static_cast<float>(rank)));
    std::vector<float> tu(users * rank), tv(items * rank);
    for (auto& v : tu) v = scale * (0.3f + 0.7f * uniform());
    for (auto& v : tv) v = scale * (0.3f + 0.7f * uniform());

    auto sample = [&](std::size_t count) {
        std::vector<Rating> out;
        out.reserve(count);
        for (std::size_t s = 0; s < count; ++s) {
            const auto u = static_cast<std::uint32_t>(gen() % users);
            const auto i = static_cast<std::uint32_t>(gen() % items);
            float r = 0.0f;
            for (std::size_t f = 0; f < rank; ++f)
                r += tu[u * rank + f] * tv[i * rank + f];
            r += 0.5f * (uniform() - 0.5f); // observation noise
            // The natural quantization: half-star steps in [1, 5].
            r = std::clamp(std::round(r * 2.0f) / 2.0f, 1.0f, 5.0f);
            out.push_back({u, i, r});
        }
        return out;
    };

    RatingProblem p;
    p.users = users;
    p.items = items;
    p.train = sample(train_count);
    p.test = sample(test_count);
    return p;
}

namespace {

/// Typed trainer over the factor rep M.
template <typename M>
MfResult
run(const RatingProblem& problem, const MfConfig& cfg)
{
    const std::size_t k = cfg.factor_dim;
    const float qm = lowp::rep_default_quantum<M>();

    AlignedBuffer<M> uf(problem.users * k);
    AlignedBuffer<M> vf(problem.items * k);
    rng::Xorshift128 init(static_cast<std::uint32_t>(cfg.seed));
    // Positive init around the true factors' scale keeps dots in range.
    const float s = std::sqrt(3.0f / (0.42f * static_cast<float>(k)));
    auto draw = [&] {
        const float x = s * (0.3f + 0.7f * rng::to_unit_float(init()));
        return lowp::quantize_value<M>(x, lowp::rep_default_format<M>());
    };
    for (auto& v : uf) v = draw();
    for (auto& v : vf) v = draw();

    rng::Avx2Xorshift128Plus dither_gen(cfg.seed + 1);
    simd::DitherBlock dither;
    auto fresh_dither = [&] {
        dither_gen.fill(reinterpret_cast<std::uint32_t*>(dither.bytes), 8);
    };
    fresh_dither();

    auto predict = [&](const Rating& r) {
        return simd::DenseOps<M, M>::dot(cfg.impl, uf.data() + r.user * k,
                                         vf.data() + r.item * k, k, qm,
                                         qm);
    };
    auto rmse = [&](const std::vector<Rating>& set) {
        double ss = 0.0;
        for (const auto& r : set) {
            const double e = r.value - predict(r);
            ss += e * e;
        }
        return std::sqrt(ss / static_cast<double>(set.size()));
    };

    MfResult result;
    AlignedBuffer<M> old_u(k);
    float eta = cfg.step_size;
    Stopwatch watch;
    double train_seconds = 0.0;
    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        watch.restart();
        for (const auto& r : problem.train) {
            M* urow = uf.data() + r.user * k;
            M* vrow = vf.data() + r.item * k;
            const float e = r.value - predict(r);
            const float c = eta * e;
            if (c == 0.0f) continue;
            std::copy(urow, urow + k, old_u.begin());
            fresh_dither();
            simd::DenseOps<M, M>::axpy(cfg.impl, urow, vrow, k, c, qm, qm,
                                       dither);
            fresh_dither();
            simd::DenseOps<M, M>::axpy(cfg.impl, vrow, old_u.data(), k, c,
                                       qm, qm, dither);
        }
        train_seconds += watch.seconds();
        eta *= cfg.step_decay;
        result.train_rmse_trace.push_back(rmse(problem.train));
    }
    result.train_rmse = result.train_rmse_trace.back();
    result.test_rmse = rmse(problem.test);
    // Per step: one k-dot + two k-AXPYs over the factors ~ 3k numbers.
    result.gnps = train_seconds > 0.0
        ? 3.0 * static_cast<double>(k) *
              static_cast<double>(problem.train.size()) *
              static_cast<double>(cfg.epochs) / train_seconds / 1e9
        : 0.0;
    return result;
}

} // namespace

MfResult
train_matrix_factorization(const RatingProblem& problem,
                           const MfConfig& cfg)
{
    if (problem.train.empty()) fatal("rating problem has no training data");
    if (cfg.factor_dim == 0) fatal("factor_dim must be >= 1");
    switch (cfg.factor_bits) {
      case 8: return run<std::int8_t>(problem, cfg);
      case 16: return run<std::int16_t>(problem, cfg);
      case 32: return run<float>(problem, cfg);
      default:
        fatal("factor_bits must be 8, 16, or 32");
    }
}

} // namespace buckwild::core
