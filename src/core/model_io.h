/**
 * @file
 * Model serialization: save/load trained models with their DMGC metadata.
 *
 * Text format ("BUCKWILD-MODEL v1"):
 *
 *     BUCKWILD-MODEL v1
 *     signature <textual DMGC signature>
 *     loss <logistic|squared|hinge>
 *     dim <n>
 *     <n lines of float coordinates>
 *
 * Models are stored dequantized (floats); the signature line records how
 * they were trained so downstream consumers can reason about the
 * precision provenance.
 */
#ifndef BUCKWILD_CORE_MODEL_IO_H
#define BUCKWILD_CORE_MODEL_IO_H

#include <iosfwd>
#include <string>
#include <vector>

#include "core/loss.h"
#include "dmgc/signature.h"

namespace buckwild::core {

/// A persisted model: coordinates plus training provenance.
struct SavedModel
{
    dmgc::Signature signature;
    Loss loss = Loss::kLogistic;
    std::vector<float> weights;
};

/// Writes a model to a stream / file.
void save_model(const SavedModel& model, std::ostream& out);
void save_model_file(const SavedModel& model, const std::string& path);

/// Reads a model back. @throws std::runtime_error on malformed input.
SavedModel load_model(std::istream& in);
SavedModel load_model_file(const std::string& path);

} // namespace buckwild::core

#endif // BUCKWILD_CORE_MODEL_IO_H
