/**
 * @file
 * The library's main public API: a DMGC-signature-configured trainer.
 *
 * Example (the quickstart):
 *
 *     using namespace buckwild;
 *     auto problem = dataset::generate_logistic_dense(4096, 10000, 42);
 *     core::TrainerConfig cfg;
 *     cfg.signature = dmgc::parse_signature("D8M8");
 *     cfg.threads = 4;
 *     core::Trainer trainer(cfg);
 *     core::TrainingMetrics m = trainer.fit(problem);
 *     // m.gnps(), m.final_loss, trainer.model() ...
 *
 * The Trainer owns the quantized dataset copy and the engine; the engine
 * type (which D/M/I reps, dense or sparse) is chosen at fit() time from
 * the signature.
 */
#ifndef BUCKWILD_CORE_TRAINER_H
#define BUCKWILD_CORE_TRAINER_H

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "dataset/problem.h"

namespace buckwild::core {

/// Type-erased engine interface (see engine.h for the implementations).
class IEngine
{
  public:
    virtual ~IEngine() = default;
    virtual TrainingMetrics train() = 0;
    virtual double average_loss() const = 0;
    virtual double accuracy() const = 0;
    virtual std::vector<float> model_floats() const = 0;
};

/// DMGC-configured SGD trainer (the Buckwild! public API).
class Trainer
{
  public:
    explicit Trainer(TrainerConfig config);

    /// Quantizes `problem` per the signature's D term and trains.
    /// The signature must be dense.
    TrainingMetrics fit(const dataset::DenseProblem& problem);

    /// Sparse counterpart: the signature must be sparse; its index
    /// precision selects the stored index type (8/16/32 bits).
    TrainingMetrics fit(const dataset::SparseProblem& problem);

    /// The trained model, dequantized to floats. Empty before fit().
    std::vector<float> model() const;

    /// Average training loss under the current model.
    double loss() const;

    /// Training accuracy under the current model.
    double accuracy() const;

    const TrainerConfig& config() const { return config_; }

  private:
    TrainerConfig config_;
    std::shared_ptr<void> data_holder_; ///< keeps the quantized data alive
    std::unique_ptr<IEngine> engine_;
};

/// Margin of a full-precision example under a float model (for held-out
/// evaluation).
float predict_margin(const std::vector<float>& model, const float* x);

} // namespace buckwild::core

#endif // BUCKWILD_CORE_TRAINER_H
