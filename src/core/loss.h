/**
 * @file
 * Loss functions for the single dot-and-AXPY SGD family.
 *
 * §2: "many other problems can be solved using SGD with a single
 * dot-and-AXPY pair ... including linear regression and support vector
 * machines". For all three losses here the gradient of one example is
 * coefficient(y, w.x) * x, so one SGD step is:
 *
 *     z = dot(w, x)
 *     c = -eta * coefficient(y, z)
 *     w = w + c * x            (the AXPY)
 *
 * which is exactly the structure the hardware analysis of the paper rests
 * on.
 */
#ifndef BUCKWILD_CORE_LOSS_H
#define BUCKWILD_CORE_LOSS_H

#include <string>

namespace buckwild::core {

/// The supported single-dot-and-AXPY losses.
enum class Loss {
    kLogistic, ///< log(1 + exp(-y z)) — the paper's running example
    kSquared,  ///< (z - y)^2 / 2 — linear regression (the FPGA study, §8)
    kHinge,    ///< max(0, 1 - y z) — linear SVM (the RFF kernel SVM, §7)
};

/// "logistic" / "squared" / "hinge".
std::string to_string(Loss loss);

/// Loss value of one example given margin-input z = w.x and label y.
float loss_value(Loss loss, float z, float y);

/**
 * The gradient coefficient g(y, z) such that grad = g * x.
 * (The caller multiplies by -eta to form the AXPY coefficient.)
 */
float loss_gradient_coefficient(Loss loss, float z, float y);

/// True if the example is classified correctly (sign agreement); for
/// squared loss, true if |z - y| < 0.5.
bool loss_correct(Loss loss, float z, float y);

} // namespace buckwild::core

#endif // BUCKWILD_CORE_LOSS_H
