/**
 * @file
 * Explicit-communication data-parallel SGD — the C term of the DMGC model.
 *
 * Hogwild!/Buckwild! communicate implicitly through cache coherence (no C
 * term). The other corner of the taxonomy is *explicit synchronous*
 * communication: each worker computes a mini-batch gradient on its shard,
 * the gradients are quantized to the communication precision, exchanged
 * (all-reduce), and applied to every replica. Two classified systems:
 *
 *  - Cs32: full-precision synchronous exchange (classic data-parallel
 *    SGD);
 *  - Cs1 (Seide et al. [46], Table 1): gradients "quantized ... to but
 *    one bit per value", with the quantization error carried forward in
 *    full precision and added to the next round's gradient — the *error
 *    feedback* that makes 1-bit exchange work.
 *
 * This module emulates W workers deterministically in one thread (the
 * communication pattern, not wall-clock speed, is what the DMGC C axis
 * is about) and reports both statistical efficiency and the bytes
 * exchanged per round, so benches can show the 32x traffic reduction at
 * matched convergence.
 */
#ifndef BUCKWILD_CORE_COMM_SGD_H
#define BUCKWILD_CORE_COMM_SGD_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/loss.h"
#include "dataset/problem.h"

namespace buckwild::core {

/// Configuration of the explicit-communication trainer.
struct CommSgdConfig
{
    std::size_t workers = 4;
    /// Communication precision in bits per gradient value: 32 (float),
    /// 8, or 1 (Seide-style sign exchange with error feedback).
    int comm_bits = 32;
    /// Carry the quantization error forward (essential at 1 bit).
    bool error_feedback = true;
    std::size_t epochs = 10;
    /// Per-worker mini-batch per round.
    std::size_t batch_per_worker = 8;
    float step_size = 0.15f;
    float step_decay = 0.9f;
    Loss loss = Loss::kLogistic;
    std::uint64_t seed = 11;
};

/// Outcome: convergence metrics plus communication volume.
struct CommSgdResult
{
    std::vector<double> loss_trace;
    double final_loss = 0.0;
    double accuracy = 0.0;
    /// Bytes each worker sends per exchange round.
    double bytes_per_round = 0.0;
    std::size_t rounds = 0;
    /// The DMGC signature of the configuration, e.g. "Cs1".
    std::string signature;
};

/// Runs synchronous data-parallel SGD with quantized gradient exchange.
CommSgdResult train_comm_sgd(const dataset::DenseProblem& problem,
                             const CommSgdConfig& config);

/**
 * The sparse-workload sibling: each worker accumulates its mini-batch
 * gradient over only the touched coordinates, carries a *sparse*
 * error-feedback residual, and exchanges a quantized sparse gradient —
 * a ps::GradientView with delta-encoded low-precision (u16) indices,
 * zero-padded where a gap overflows the rep (paper footnote 6) — through
 * the real wire codec round-trip. bytes_per_round is measured from the
 * encoded frames (sparse traffic is nnz-dependent at every tier).
 */
CommSgdResult train_comm_sgd(const dataset::SparseProblem& problem,
                             const CommSgdConfig& config);

} // namespace buckwild::core

#endif // BUCKWILD_CORE_COMM_SGD_H
