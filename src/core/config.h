/**
 * @file
 * Trainer configuration: every knob of the DMGC trade-off space plus the
 * software-optimization switches of §5.
 */
#ifndef BUCKWILD_CORE_CONFIG_H
#define BUCKWILD_CORE_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "core/loss.h"
#include "dmgc/signature.h"
#include "fixed/quantize.h"
#include "simd/ops.h"

namespace buckwild::core {

/// How the unbiased-rounding randomness is produced (§5.2 / Fig 5).
enum class RoundingStrategy {
    kBiased,           ///< nearest rounding, no randomness
    kMersennePerWrite, ///< fresh Mersenne-twister draw per model write
    kXorshiftPerWrite, ///< fresh scalar XORSHIFT draw per model write
    kSharedXorshift,   ///< one vectorized draw per AXPY, shared (default)
};

/// "biased" / "mersenne" / "xorshift" / "shared".
const char* to_string(RoundingStrategy strategy);

/// Full trainer configuration.
struct TrainerConfig
{
    /// The DMGC signature: selects dataset/model precisions and sparsity.
    dmgc::Signature signature = dmgc::Signature::dense_fixed(8, 8);

    Loss loss = Loss::kLogistic;

    /// Kernel implementation (§5.1). kAvx2 is the paper's recommendation.
    simd::Impl impl = simd::best_impl();

    /// Rounding for model writes (§5.2).
    RoundingStrategy rounding = RoundingStrategy::kSharedXorshift;

    /// Gradient (G-term) precision: when the signature carries a fixed
    /// G term, intermediate values — the margin z and the gradient
    /// coefficient — are quantized to that many bits before use,
    /// emulating low-precision intermediate arithmetic (Courbariaux et
    /// al.'s G10, Savich & Moussa's G18). Full-precision signatures leave
    /// intermediates untouched.
    /// (Derived from `signature.gradient`; no separate knob.)
    /// Iterations between fresh shared-randomness draws (1 = every AXPY).
    std::size_t shared_refresh_iters = 1;

    /// Hogwild! worker threads (1 = sequential SGD).
    std::size_t threads = 1;

    /// Mini-batch size B (§5.4); 1 = plain SGD.
    std::size_t batch_size = 1;

    /// Visit examples in a fresh pseudorandom order each epoch (the
    /// standard SGD practice; workers still partition the permutation).
    bool shuffle = false;

    std::size_t epochs = 10;
    float step_size = 0.2f;
    /// Multiplicative per-epoch step decay (1.0 = constant step).
    float step_decay = 0.95f;

    std::uint64_t seed = 0x5EED;

    /// Record the average training loss after every epoch (costs one
    /// evaluation pass per epoch).
    bool record_loss_trace = true;
};

} // namespace buckwild::core

#endif // BUCKWILD_CORE_CONFIG_H
