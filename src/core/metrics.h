/**
 * @file
 * Training outcome metrics: statistical efficiency (loss/accuracy traces)
 * and hardware efficiency (dataset throughput in GNPS, §4).
 */
#ifndef BUCKWILD_CORE_METRICS_H
#define BUCKWILD_CORE_METRICS_H

#include <cstddef>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace buckwild::core {

/// Result of a training run.
struct TrainingMetrics
{
    std::size_t epochs = 0;
    /// Wall-clock seconds spent in the update loop (excludes evaluation).
    double train_seconds = 0.0;
    /// Dataset numbers processed: epochs * m * n dense, epochs * nnz
    /// sparse — the numerator of the paper's GNPS metric.
    double numbers_processed = 0.0;
    /// Average training loss after each epoch (if recording was enabled).
    std::vector<double> loss_trace;
    /// Final average training loss.
    double final_loss = 0.0;
    /// Final training accuracy in [0, 1].
    double accuracy = 0.0;

    /// Dataset throughput in giga-numbers-per-second (§4).
    double
    gnps() const
    {
        return train_seconds > 0.0
            ? numbers_processed / train_seconds / 1e9
            : 0.0;
    }

    /// Copies the run's totals into `registry` under `prefix` (e.g.
    /// "train.") so CLI runs can export them as flat metrics JSON. The
    /// struct itself stays the per-run value the engines return; this
    /// bridge runs once per completed run.
    void
    publish(obs::MetricsRegistry& registry, const std::string& prefix) const
    {
        registry.counter(prefix + "epochs").add(epochs);
        registry.gauge(prefix + "train_seconds").add(train_seconds);
        registry.gauge(prefix + "numbers_processed").add(numbers_processed);
        registry.gauge(prefix + "final_loss").set(final_loss);
        registry.gauge(prefix + "accuracy").set(accuracy);
        registry.gauge(prefix + "gnps").set(gnps());
        obs::Histo& trace = registry.histogram(prefix + "epoch_loss");
        for (double l : loss_trace) trace.record(l);
    }
};

} // namespace buckwild::core

#endif // BUCKWILD_CORE_METRICS_H
