/**
 * @file
 * Training outcome metrics: statistical efficiency (loss/accuracy traces)
 * and hardware efficiency (dataset throughput in GNPS, §4).
 */
#ifndef BUCKWILD_CORE_METRICS_H
#define BUCKWILD_CORE_METRICS_H

#include <cstddef>
#include <vector>

namespace buckwild::core {

/// Result of a training run.
struct TrainingMetrics
{
    std::size_t epochs = 0;
    /// Wall-clock seconds spent in the update loop (excludes evaluation).
    double train_seconds = 0.0;
    /// Dataset numbers processed: epochs * m * n dense, epochs * nnz
    /// sparse — the numerator of the paper's GNPS metric.
    double numbers_processed = 0.0;
    /// Average training loss after each epoch (if recording was enabled).
    std::vector<double> loss_trace;
    /// Final average training loss.
    double final_loss = 0.0;
    /// Final training accuracy in [0, 1].
    double accuracy = 0.0;

    /// Dataset throughput in giga-numbers-per-second (§4).
    double
    gnps() const
    {
        return train_seconds > 0.0
            ? numbers_processed / train_seconds / 1e9
            : 0.0;
    }
};

} // namespace buckwild::core

#endif // BUCKWILD_CORE_METRICS_H
