/**
 * @file
 * The Buckwild! training engines.
 *
 * DenseEngine<D, M> and SparseEngine<V, I, M> implement asynchronous
 * low-precision SGD over a quantized dataset (rep D / value rep V with
 * index rep I) and a quantized shared model (rep M):
 *
 *  - Each epoch, `threads` Hogwild! workers sweep the dataset without any
 *    locking, sharing the single model array (§2). Workers synchronize
 *    only at epoch boundaries.
 *  - One iteration = one dot (margin), one scalar gradient coefficient,
 *    one AXPY (§2), executed by the kernel implementation selected in the
 *    config (reference / naive / AVX2, §5.1).
 *  - Model writes round with the configured strategy (§5.2): biased,
 *    per-write Mersenne/XORSHIFT, or vectorized shared randomness.
 *  - Mini-batching (§5.4) accumulates B gradients into a per-worker float
 *    scratch vector and applies one quantized model update per batch.
 *
 * The racing Hogwild! path is the algorithm the paper measures: the model
 * is deliberately accessed without synchronization, and the resulting
 * races are benign by the Hogwild!/Buckwild! analyses the paper builds on.
 */
#ifndef BUCKWILD_CORE_ENGINE_H
#define BUCKWILD_CORE_ENGINE_H

#include <cmath>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "core/config.h"
#include "core/metrics.h"
#include "obs/obs.h"
#include "dataset/quantized.h"
#include "lowp/grid.h"
#include "lowp/rep_traits.h"
#include "lowp/round.h"
#include "lowp/shared_random.h"
#include "rng/random_source.h"
#include "simd/dense_ref.h"
#include "simd/ops.h"
#include "simd/sparse_kernels.h"
#include "util/aligned_buffer.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace buckwild::core {

namespace detail {

/// G-term emulation (§3 "Gradient numbers"): quantizes an intermediate
/// value to a b-bit *symmetric* grid over [-range, range] with nearest
/// rounding (lowp::GridSpec::symmetric — bounds ±(2^(b-1)-1), so negation
/// never saturates; pinned by tests/test_lowp.cpp). Returns the input
/// unchanged for b >= 32.
inline float
quantize_intermediate(float v, int bits, float range)
{
    if (bits >= 32) return v;
    return lowp::snap_nearest(
        v, lowp::GridSpec::symmetric(bits, static_cast<double>(range)));
}

/// The fixed-scalar shift constant of a (D, M) kernel pair.
template <typename D, typename M>
constexpr int
pair_shift()
{
    if constexpr (std::is_same_v<D, std::int8_t> &&
                  std::is_same_v<M, std::int8_t>)
        return simd::kShiftD8M8;
    else if constexpr (std::is_same_v<D, std::int16_t> &&
                       std::is_same_v<M, std::int8_t>)
        return simd::kShiftD16M8;
    else if constexpr (std::is_same_v<D, std::int8_t> &&
                       std::is_same_v<M, std::int16_t>)
        return simd::kShiftD8M16;
    else
        return simd::kShiftD16M16;
}

/// Builds the pair's fixed scalar from a model-quanta-per-raw-unit value.
template <typename D, typename M>
simd::FixedScalar
pair_scalar(float c_units)
{
    if constexpr (std::is_same_v<D, std::int8_t> &&
                  std::is_same_v<M, std::int8_t>)
        return simd::make_scalar_d8m8(c_units);
    else if constexpr (std::is_same_v<D, std::int16_t> &&
                       std::is_same_v<M, std::int8_t>)
        return simd::make_scalar_d16m8(c_units);
    else if constexpr (std::is_same_v<D, std::int8_t> &&
                       std::is_same_v<M, std::int16_t>)
        return simd::make_scalar_d8m16(c_units);
    else
        return simd::make_scalar_d16m16(c_units);
}

/// The deterministic dither block for biased rounding, selected by how the
/// AXPY kernel will interpret the block.
template <typename D, typename M>
const simd::DitherBlock&
biased_block()
{
    static const simd::DitherBlock kUnit = simd::biased_unit();
    if constexpr (std::is_same_v<M, float>)
        return kUnit; // never actually read (float models don't round)
    else if constexpr (std::is_same_v<D, float>) {
        return kUnit;
    } else {
        static const simd::DitherBlock kFixed =
            simd::biased_fixed(pair_shift<D, M>());
        return kFixed;
    }
}

/// Per-write unbiased AXPY (the Mersenne / scalar-XORSHIFT strategies of
/// Fig 5): a fresh random word is drawn for every model write. Only
/// meaningful for fixed models; float models have nothing to round.
template <typename D, typename M>
void
axpy_per_write(M* w, const D* x, std::size_t n, float c, float qx, float qm,
               rng::RandomWordSource& src)
{
    if constexpr (std::is_same_v<M, float>) {
        (void)src;
        simd::DenseOps<D, M>::axpy(simd::Impl::kReference, w, x, n, c, qx,
                                   qm, biased_block<D, M>());
    } else if constexpr (std::is_same_v<D, float>) {
        const float cf = c / qm;
        for (std::size_t i = 0; i < n; ++i) {
            const std::int32_t delta = simd::ref::quantize_delta(
                cf, x[i], src.next_unit_float());
            if constexpr (std::is_same_v<M, std::int8_t>)
                w[i] = static_cast<M>(simd::ref::saturate_model8(
                    w[i] + simd::saturate_i16(delta)));
            else
                w[i] = static_cast<M>(simd::ref::saturate_model16(
                    w[i] + simd::saturate_i16(delta)));
        }
    } else {
        const auto cs = pair_scalar<D, M>(c * qx / qm);
        const std::uint32_t mask = (1u << cs.shift) - 1u;
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t dither = src.next_word() & mask;
            if constexpr (std::is_same_v<M, std::int8_t>)
                w[i] = simd::ref::update_m8(w[i], x[i], cs, dither);
            else
                w[i] = simd::ref::update_m16(w[i], x[i], cs, dither);
        }
    }
}

/// Per-worker rounding state: the substrate's §5.2 shared-randomness
/// block (lowp::SharedRandom) mirrored into the SIMD kernels' DitherBlock
/// layout, plus the per-write sources.
struct WorkerRounding
{
    WorkerRounding(const TrainerConfig& cfg, std::size_t tid)
        : strategy(cfg.rounding),
          shared(lowp::SharedRandom::worker_seed(cfg.seed, tid),
                 cfg.shared_refresh_iters),
          mersenne(static_cast<std::uint32_t>(cfg.seed + 77 * tid + 1)),
          xorshift(static_cast<std::uint32_t>(cfg.seed + 131 * tid + 7))
    {
        sync_block();
    }

    /// Called once per AXPY in shared mode.
    void
    tick()
    {
        if (shared.tick()) sync_block();
    }

    /// Mirrors the current shared 256-bit block into the kernel view.
    void
    sync_block()
    {
        std::memcpy(block.bytes, shared.words(), sizeof(block.bytes));
    }

    RoundingStrategy strategy;
    lowp::SharedRandom shared;
    simd::DitherBlock block{};
    rng::MersenneSource mersenne;
    rng::XorshiftSource xorshift;
};

} // namespace detail

/// Dense Buckwild! engine over DenseData<D> with an M-typed model.
template <typename D, typename M>
class DenseEngine
{
  public:
    DenseEngine(const dataset::DenseData<D>& data, const TrainerConfig& cfg)
        : data_(data), cfg_(cfg), model_(data.cols()),
          gradient_bits_(cfg.signature.gradient.has_value() &&
                                 !cfg.signature.gradient->is_float
                             ? cfg.signature.gradient->bits
                             : 32)
    {
        if (cfg.threads == 0) fatal("threads must be >= 1");
        if (cfg.batch_size == 0) fatal("batch_size must be >= 1");
        if (gradient_bits_ != 32 && gradient_bits_ < 2)
            fatal("gradient precision must be >= 2 bits");
    }

    /// Runs the configured number of epochs and reports metrics.
    TrainingMetrics
    train()
    {
        TrainingMetrics metrics;
        metrics.epochs = cfg_.epochs;
        float eta = cfg_.step_size;
        for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
            if (cfg_.shuffle) reshuffle(epoch);
            BUCKWILD_OBS_SPAN("core", "sgd.epoch");
            Stopwatch watch;
            run_epoch(eta);
            const double epoch_seconds = watch.seconds();
            metrics.train_seconds += epoch_seconds;
            // Cumulative GNPS inputs for the live conformance watchdog.
            BUCKWILD_OBS_GAUGE_ADD("train.numbers",
                                   static_cast<double>(data_.rows()) *
                                       static_cast<double>(data_.cols()));
            BUCKWILD_OBS_GAUGE_ADD("train.seconds", epoch_seconds);
            eta *= cfg_.step_decay;
            if (cfg_.record_loss_trace)
                metrics.loss_trace.push_back(average_loss());
        }
        metrics.numbers_processed =
            static_cast<double>(cfg_.epochs) *
            static_cast<double>(data_.rows()) *
            static_cast<double>(data_.cols());
        metrics.final_loss = average_loss();
        metrics.accuracy = accuracy();
        return metrics;
    }

    /// Average training loss under the current model.
    double
    average_loss() const
    {
        double total = 0.0;
        for (std::size_t i = 0; i < data_.rows(); ++i)
            total += loss_value(cfg_.loss, margin(i), data_.label(i));
        return total / static_cast<double>(data_.rows());
    }

    /// Training accuracy under the current model.
    double
    accuracy() const
    {
        std::size_t correct = 0;
        for (std::size_t i = 0; i < data_.rows(); ++i)
            if (loss_correct(cfg_.loss, margin(i), data_.label(i)))
                ++correct;
        return static_cast<double>(correct) /
               static_cast<double>(data_.rows());
    }

    /// Margin w.x of training example i (real units).
    float
    margin(std::size_t i) const
    {
        return simd::DenseOps<D, M>::dot(cfg_.impl, data_.row(i),
                                         model_.data(), data_.cols(),
                                         data_.quantum(),
                                         lowp::rep_default_quantum<M>());
    }

    /// The model dequantized to floats.
    std::vector<float>
    model_floats() const
    {
        std::vector<float> out(model_.size());
        const float qm = lowp::rep_default_quantum<M>();
        for (std::size_t k = 0; k < model_.size(); ++k)
            out[k] = static_cast<float>(model_[k]) * qm;
        return out;
    }

  private:
    void
    run_epoch(float eta)
    {
        run_parallel(cfg_.threads, [this, eta](std::size_t tid) {
            worker(tid, eta);
        });
    }

    /// Fisher-Yates permutation of the example order, fresh per epoch.
    void
    reshuffle(std::size_t epoch)
    {
        if (order_.empty()) {
            order_.resize(data_.rows());
            for (std::size_t i = 0; i < order_.size(); ++i)
                order_[i] = static_cast<std::uint32_t>(i);
        }
        rng::Xorshift128Plus gen(cfg_.seed ^ (0x9E3779B9ull * (epoch + 1)));
        for (std::size_t i = order_.size(); i > 1; --i)
            std::swap(order_[i - 1], order_[gen() % i]);
    }

    /// The example visited at logical position i this epoch.
    std::size_t
    example_at(std::size_t i) const
    {
        return cfg_.shuffle ? order_[i] : i;
    }

    /// Chooses the dither block for the next fixed-model AXPY.
    const simd::DitherBlock&
    axpy_block(detail::WorkerRounding& rounding)
    {
        if (rounding.strategy == RoundingStrategy::kBiased)
            return detail::biased_block<D, M>();
        rounding.tick();
        return rounding.block;
    }

    void
    worker(std::size_t tid, float eta)
    {
        detail::WorkerRounding rounding(cfg_, tid);
        const std::size_t n = data_.cols();
        const float qx = data_.quantum();
        const float qm = lowp::rep_default_quantum<M>();
        M* w = model_.data();

        AlignedBuffer<float> scratch;
        if (cfg_.batch_size > 1) scratch.reset(n);

        std::size_t in_batch = 0;
        for (std::size_t pos = tid; pos < data_.rows(); pos += cfg_.threads) {
            const std::size_t i = example_at(pos);
            const D* x = data_.row(i);
            float z;
            if (cfg_.batch_size == 1) {
                z = simd::DenseOps<D, M>::dot(cfg_.impl, x, w, n, qx, qm);
            } else {
                // Mini-batch gradients are computed against the model as
                // of the batch start (plus any concurrent updates — this
                // is still Hogwild!).
                z = simd::DenseOps<D, M>::dot(cfg_.impl, x, w, n, qx, qm);
            }
            // G-term: low-precision intermediates (margin + coefficient).
            z = detail::quantize_intermediate(z, gradient_bits_, 16.0f);
            float g =
                loss_gradient_coefficient(cfg_.loss, z, data_.label(i));
            g = detail::quantize_intermediate(g, gradient_bits_, 2.0f);
            const float c = -eta * g;

            if (cfg_.batch_size == 1) {
                if (c != 0.0f) apply_direct(w, x, n, c, qx, qm, rounding);
            } else {
                if (c != 0.0f)
                    simd::DenseOps<D, float>::axpy(
                        cfg_.impl, scratch.data(), x, n, c, qx, 1.0f,
                        detail::biased_block<D, float>());
                if (++in_batch == cfg_.batch_size) {
                    apply_scratch(w, scratch, n, qm, rounding);
                    in_batch = 0;
                }
            }
        }
        if (in_batch > 0) apply_scratch(w, scratch, n, qm, rounding);
    }

    /// Single-example model update (batch_size == 1 path).
    void
    apply_direct(M* w, const D* x, std::size_t n, float c, float qx,
                 float qm, detail::WorkerRounding& rounding)
    {
        switch (rounding.strategy) {
          case RoundingStrategy::kMersennePerWrite:
            detail::axpy_per_write<D, M>(w, x, n, c, qx, qm,
                                         rounding.mersenne);
            return;
          case RoundingStrategy::kXorshiftPerWrite:
            detail::axpy_per_write<D, M>(w, x, n, c, qx, qm,
                                         rounding.xorshift);
            return;
          default:
            simd::DenseOps<D, M>::axpy(cfg_.impl, w, x, n, c, qx, qm,
                                       axpy_block(rounding));
        }
    }

    /// Applies (and clears) the mini-batch scratch gradient to the model.
    void
    apply_scratch(M* w, AlignedBuffer<float>& scratch, std::size_t n,
                  float qm, detail::WorkerRounding& rounding)
    {
        switch (rounding.strategy) {
          case RoundingStrategy::kMersennePerWrite:
            detail::axpy_per_write<float, M>(w, scratch.data(), n, 1.0f,
                                             1.0f, qm, rounding.mersenne);
            break;
          case RoundingStrategy::kXorshiftPerWrite:
            detail::axpy_per_write<float, M>(w, scratch.data(), n, 1.0f,
                                             1.0f, qm, rounding.xorshift);
            break;
          default:
            if (rounding.strategy == RoundingStrategy::kBiased) {
                simd::DenseOps<float, M>::axpy(
                    cfg_.impl, w, scratch.data(), n, 1.0f, 1.0f, qm,
                    detail::biased_block<float, M>());
            } else {
                rounding.tick();
                simd::DenseOps<float, M>::axpy(cfg_.impl, w, scratch.data(),
                                               n, 1.0f, 1.0f, qm,
                                               rounding.block);
            }
        }
        scratch.clear();
    }

    const dataset::DenseData<D>& data_;
    TrainerConfig cfg_;
    AlignedBuffer<M> model_;
    std::vector<std::uint32_t> order_;
    int gradient_bits_;
};

/// Sparse Buckwild! engine over SparseData<V, I> with an M-typed model.
template <typename V, typename I, typename M>
class SparseEngine
{
  public:
    SparseEngine(const dataset::SparseData<V, I>& data,
                 const TrainerConfig& cfg)
        : data_(data), cfg_(cfg), model_(data.dim())
    {
        if (cfg.threads == 0) fatal("threads must be >= 1");
        if (cfg.batch_size != 1)
            fatal("the sparse engine supports batch_size == 1 only "
                  "(mini-batching is a dense-model optimization, §5.4)");
    }

    TrainingMetrics
    train()
    {
        TrainingMetrics metrics;
        metrics.epochs = cfg_.epochs;
        float eta = cfg_.step_size;
        for (std::size_t epoch = 0; epoch < cfg_.epochs; ++epoch) {
            if (cfg_.shuffle) reshuffle(epoch);
            BUCKWILD_OBS_SPAN("core", "sgd.epoch");
            Stopwatch watch;
            run_parallel(cfg_.threads, [this, eta](std::size_t tid) {
                worker(tid, eta);
            });
            const double epoch_seconds = watch.seconds();
            metrics.train_seconds += epoch_seconds;
            // Cumulative GNPS inputs for the live conformance watchdog
            // (sparse: a number is a stored nonzero).
            BUCKWILD_OBS_GAUGE_ADD(
                "train.numbers", static_cast<double>(data_.stored_nnz()));
            BUCKWILD_OBS_GAUGE_ADD("train.seconds", epoch_seconds);
            eta *= cfg_.step_decay;
            if (cfg_.record_loss_trace)
                metrics.loss_trace.push_back(average_loss());
        }
        metrics.numbers_processed =
            static_cast<double>(cfg_.epochs) *
            static_cast<double>(data_.stored_nnz());
        metrics.final_loss = average_loss();
        metrics.accuracy = accuracy();
        return metrics;
    }

    double
    average_loss() const
    {
        double total = 0.0;
        for (std::size_t i = 0; i < data_.rows(); ++i)
            total += loss_value(cfg_.loss, margin(i), data_.label(i));
        return total / static_cast<double>(data_.rows());
    }

    double
    accuracy() const
    {
        std::size_t correct = 0;
        for (std::size_t i = 0; i < data_.rows(); ++i)
            if (loss_correct(cfg_.loss, margin(i), data_.label(i)))
                ++correct;
        return static_cast<double>(correct) /
               static_cast<double>(data_.rows());
    }

    float
    margin(std::size_t i) const
    {
        const float scale = dot_scale();
        if (simd::is_vectorized(cfg_.impl) &&
            data_.index_mode() == simd::sparse::IndexMode::kAbsolute) {
            return simd::sparse::dot_unrolled(
                data_.row_values(i), data_.row_indices(i), data_.row_nnz(i),
                model_.data(), scale);
        }
        return simd::sparse::dot(data_.row_values(i), data_.row_indices(i),
                                 data_.row_nnz(i), model_.data(), scale,
                                 data_.index_mode());
    }

    std::vector<float>
    model_floats() const
    {
        std::vector<float> out(model_.size());
        const float qm = lowp::rep_default_quantum<M>();
        for (std::size_t k = 0; k < model_.size(); ++k)
            out[k] = static_cast<float>(model_[k]) * qm;
        return out;
    }

  private:
    /// dot() scale: product of value and model quanta (either may be 1).
    float
    dot_scale() const
    {
        return data_.quantum() * lowp::rep_default_quantum<M>();
    }

    void
    worker(std::size_t tid, float eta)
    {
        detail::WorkerRounding rounding(cfg_, tid);
        const float qv = data_.quantum();
        const float qm = lowp::rep_default_quantum<M>();
        M* w = model_.data();

        for (std::size_t pos = tid; pos < data_.rows();
             pos += cfg_.threads) {
            const std::size_t i =
                cfg_.shuffle ? order_[pos] : pos;
            const float z = margin(i);
            const float g =
                loss_gradient_coefficient(cfg_.loss, z, data_.label(i));
            const float c = -eta * g;
            if (c == 0.0f) continue;

            // Fixed-value scale in model quanta per raw value unit, and
            // the float-value coefficient for float/float-model paths.
            simd::FixedScalar cs{0, simd::kShiftD8M8};
            if constexpr (!std::is_same_v<M, float> &&
                          !std::is_same_v<V, float>)
                cs = detail::pair_scalar<V, M>(c * qv / qm);
            float cf;
            if constexpr (std::is_same_v<M, float>)
                cf = c * qv; // w += cf * raw value
            else
                cf = c / qm; // used when V is float

            const simd::DitherBlock& block =
                (rounding.strategy == RoundingStrategy::kBiased)
                    ? detail::biased_block<V, M>()
                    : (rounding.tick(), rounding.block);
            simd::sparse::axpy(w, data_.row_values(i), data_.row_indices(i),
                               data_.row_nnz(i), cs, cf, block,
                               data_.index_mode());
        }
    }

    /// Fisher-Yates permutation of the example order, fresh per epoch.
    void
    reshuffle(std::size_t epoch)
    {
        if (order_.empty()) {
            order_.resize(data_.rows());
            for (std::size_t i = 0; i < order_.size(); ++i)
                order_[i] = static_cast<std::uint32_t>(i);
        }
        rng::Xorshift128Plus gen(cfg_.seed ^ (0x9E3779B9ull * (epoch + 1)));
        for (std::size_t i = order_.size(); i > 1; --i)
            std::swap(order_[i - 1], order_[gen() % i]);
    }

    const dataset::SparseData<V, I>& data_;
    TrainerConfig cfg_;
    AlignedBuffer<M> model_;
    std::vector<std::uint32_t> order_;
};

} // namespace buckwild::core

#endif // BUCKWILD_CORE_ENGINE_H
