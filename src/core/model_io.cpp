#include "core/model_io.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace buckwild::core {

namespace {

Loss
loss_from_string(const std::string& name)
{
    if (name == "logistic") return Loss::kLogistic;
    if (name == "squared") return Loss::kSquared;
    if (name == "hinge") return Loss::kHinge;
    fatal("unknown loss in model file: \"" + name +
          "\" (expected logistic, squared, or hinge)");
}

/// Upper bound on a plausible model dimension (2^31 coordinates = 8 GiB
/// of float weights). Rejecting here turns a hostile or corrupt dim line
/// into a clean error instead of an attempted giant allocation.
constexpr long long kMaxModelDim = 1LL << 31;

} // namespace

void
save_model(const SavedModel& model, std::ostream& out)
{
    out << "BUCKWILD-MODEL v1\n";
    out << "signature " << model.signature.to_string() << '\n';
    out << "loss " << to_string(model.loss) << '\n';
    out << "dim " << model.weights.size() << '\n';
    out.precision(9);
    for (float w : model.weights) out << w << '\n';
    if (!out) fatal("model write failed");
}

void
save_model_file(const SavedModel& model, const std::string& path)
{
    std::ofstream out(path);
    if (!out) fatal("cannot open model file for writing: " + path);
    save_model(model, out);
}

SavedModel
load_model(std::istream& in)
{
    std::string line;
    if (!std::getline(in, line) || line != "BUCKWILD-MODEL v1")
        fatal("not a BUCKWILD-MODEL v1 file");

    SavedModel model;
    std::size_t dim = 0;
    bool have_sig = false, have_dim = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "signature") {
            std::string text;
            ls >> text;
            model.signature = dmgc::parse_signature(text);
            have_sig = true;
        } else if (key == "loss") {
            std::string name;
            ls >> name;
            model.loss = loss_from_string(name);
        } else if (key == "dim") {
            // Parse through a signed type so "dim -5" is a clear error
            // rather than a wrapped-around huge unsigned value; overflow
            // of long long sets failbit and is caught the same way.
            long long sdim = 0;
            if (!(ls >> sdim))
                fatal("malformed or overflowing dim line in model file: " +
                      line);
            if (sdim < 0)
                fatal("negative dim in model file: " +
                      std::to_string(sdim));
            if (sdim > kMaxModelDim)
                fatal("implausibly large dim in model file: " +
                      std::to_string(sdim));
            dim = static_cast<std::size_t>(sdim);
            have_dim = true;
            break; // weights follow
        } else {
            fatal("unexpected header line in model file: " + line);
        }
    }
    if (!have_sig || !have_dim)
        fatal("model file missing signature or dim header");

    model.weights.resize(dim);
    for (std::size_t k = 0; k < dim; ++k) {
        if (!(in >> model.weights[k]))
            fatal("model file truncated or malformed at coordinate " +
                  std::to_string(k) + " of " + std::to_string(dim));
    }
    return model;
}

SavedModel
load_model_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in) fatal("cannot open model file: " + path);
    return load_model(in);
}

} // namespace buckwild::core
