#include "core/delayed_sgd.h"

#include <deque>

#include "rng/xorshift.h"
#include "util/logging.h"

namespace buckwild::core {

DelayedSgdResult
train_with_delayed_updates(const dataset::DenseProblem& problem,
                           const DelayedSgdConfig& cfg)
{
    const std::size_t n = problem.dim;
    std::vector<float> model(n, 0.0f);
    rng::Xorshift128Plus gen(cfg.seed);

    // Pending updates: (due time, coefficient, example index). The
    // update vector itself is c * x_i, reconstructed from the dataset at
    // application time to keep memory bounded.
    struct Pending
    {
        std::uint64_t due;
        float coefficient;
        std::uint32_t example;
    };
    std::deque<Pending> queue;

    DelayedSgdResult result;
    auto eval = [&] {
        double total = 0.0;
        std::size_t correct = 0;
        for (std::size_t i = 0; i < problem.examples; ++i) {
            float z = 0.0f;
            const float* x = problem.row(i);
            for (std::size_t k = 0; k < n; ++k) z += model[k] * x[k];
            total += loss_value(cfg.loss, z, problem.y[i]);
            if (loss_correct(cfg.loss, z, problem.y[i])) ++correct;
        }
        result.accuracy = static_cast<double>(correct) /
                          static_cast<double>(problem.examples);
        return total / static_cast<double>(problem.examples);
    };
    auto apply = [&](const Pending& p) {
        const float* x = problem.row(p.example);
        for (std::size_t k = 0; k < n; ++k)
            model[k] += p.coefficient * x[k];
    };

    std::uint64_t now = 0;
    double delay_sum = 0.0;
    std::uint64_t delay_count = 0;
    float eta = cfg.step_size;
    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
        for (std::size_t i = 0; i < problem.examples; ++i, ++now) {
            // 1. Deliver matured updates (queue is due-ordered because
            //    delays are bounded and times increase; scan the front).
            while (!queue.empty() && queue.front().due <= now) {
                apply(queue.front());
                queue.pop_front();
            }
            // 2. Gradient against the stale model.
            const float* x = problem.row(i);
            float z = 0.0f;
            for (std::size_t k = 0; k < n; ++k) z += model[k] * x[k];
            const float g =
                loss_gradient_coefficient(cfg.loss, z, problem.y[i]);
            const float c = -eta * g;
            if (c == 0.0f) continue;
            // 3. Enqueue with a random bounded delay.
            const std::uint64_t delay = cfg.max_delay == 0
                ? 0
                : 1 + gen() % cfg.max_delay;
            delay_sum += static_cast<double>(delay);
            ++delay_count;
            if (delay == 0) {
                apply({now, c, static_cast<std::uint32_t>(i)});
            } else {
                // Keep the queue due-ordered under variable delays.
                Pending p{now + delay, c, static_cast<std::uint32_t>(i)};
                auto it = queue.end();
                while (it != queue.begin() && (it - 1)->due > p.due) --it;
                queue.insert(it, p);
            }
        }
        eta *= cfg.step_decay;
        result.loss_trace.push_back(eval());
    }
    // Flush whatever is still in flight.
    for (const auto& p : queue) apply(p);
    queue.clear();

    result.final_loss = eval();
    result.average_delay =
        delay_count > 0 ? delay_sum / static_cast<double>(delay_count)
                        : 0.0;
    return result;
}

} // namespace buckwild::core
