#include "core/trainer.h"

#include <cstdint>

#include "core/engine.h"
#include "util/logging.h"

namespace buckwild::core {

const char*
to_string(RoundingStrategy strategy)
{
    switch (strategy) {
      case RoundingStrategy::kBiased: return "biased";
      case RoundingStrategy::kMersennePerWrite: return "mersenne";
      case RoundingStrategy::kXorshiftPerWrite: return "xorshift";
      case RoundingStrategy::kSharedXorshift: return "shared";
    }
    return "?";
}

namespace {

/// Adapts a concrete engine (and its owned dataset copy) to IEngine.
template <typename Engine, typename Data>
class EngineAdapter final : public IEngine
{
  public:
    EngineAdapter(std::shared_ptr<Data> data, const TrainerConfig& cfg)
        : data_(std::move(data)), engine_(*data_, cfg)
    {}

    TrainingMetrics train() override { return engine_.train(); }
    double average_loss() const override { return engine_.average_loss(); }
    double accuracy() const override { return engine_.accuracy(); }
    std::vector<float>
    model_floats() const override
    {
        return engine_.model_floats();
    }

  private:
    std::shared_ptr<Data> data_;
    Engine engine_;
};

/// Validates and normalizes a precision term into a rep-width selector.
int
rep_width(const dmgc::Precision& p, const char* what)
{
    if (p.is_float) {
        if (p.bits != 32)
            fatal(std::string(what) + " float precision must be 32 bits");
        return 32;
    }
    if (p.bits != 8 && p.bits != 16)
        fatal(std::string(what) +
              " fixed precision must be 8 or 16 bits (got " +
              std::to_string(p.bits) + "); use src/isa for 4-bit emulation");
    return p.bits;
}

template <typename D>
std::unique_ptr<IEngine>
make_dense_with_data(const dataset::DenseProblem& problem,
                     const TrainerConfig& cfg, int model_width)
{
    const fixed::FixedFormat fmt = std::is_same_v<D, float>
        ? fixed::FixedFormat{32, 0}
        : fixed::default_format(static_cast<int>(sizeof(D)) * 8);
    auto data = std::make_shared<dataset::DenseData<D>>(problem, fmt);
    switch (model_width) {
      case 8:
        return std::make_unique<EngineAdapter<
            DenseEngine<D, std::int8_t>, dataset::DenseData<D>>>(data, cfg);
      case 16:
        return std::make_unique<EngineAdapter<
            DenseEngine<D, std::int16_t>, dataset::DenseData<D>>>(data,
                                                                  cfg);
      default:
        return std::make_unique<EngineAdapter<
            DenseEngine<D, float>, dataset::DenseData<D>>>(data, cfg);
    }
}

template <typename V, typename I>
std::unique_ptr<IEngine>
make_sparse_with_data(const dataset::SparseProblem& problem,
                      const TrainerConfig& cfg, int model_width)
{
    const fixed::FixedFormat fmt = std::is_same_v<V, float>
        ? fixed::FixedFormat{32, 0}
        : fixed::default_format(static_cast<int>(sizeof(V)) * 8);
    auto data =
        std::make_shared<dataset::SparseData<V, I>>(problem, fmt);
    switch (model_width) {
      case 8:
        return std::make_unique<
            EngineAdapter<SparseEngine<V, I, std::int8_t>,
                          dataset::SparseData<V, I>>>(data, cfg);
      case 16:
        return std::make_unique<
            EngineAdapter<SparseEngine<V, I, std::int16_t>,
                          dataset::SparseData<V, I>>>(data, cfg);
      default:
        return std::make_unique<
            EngineAdapter<SparseEngine<V, I, float>,
                          dataset::SparseData<V, I>>>(data, cfg);
    }
}

template <typename V>
std::unique_ptr<IEngine>
make_sparse_with_index(const dataset::SparseProblem& problem,
                       const TrainerConfig& cfg, int index_bits,
                       int model_width)
{
    switch (index_bits) {
      case 8:
        return make_sparse_with_data<V, std::uint8_t>(problem, cfg,
                                                      model_width);
      case 16:
        return make_sparse_with_data<V, std::uint16_t>(problem, cfg,
                                                       model_width);
      case 32:
        return make_sparse_with_data<V, std::uint32_t>(problem, cfg,
                                                       model_width);
      default:
        fatal("index precision must be 8, 16, or 32 bits (got " +
              std::to_string(index_bits) + ")");
    }
}

} // namespace

Trainer::Trainer(TrainerConfig config) : config_(std::move(config)) {}

TrainingMetrics
Trainer::fit(const dataset::DenseProblem& problem)
{
    if (config_.signature.sparse)
        fatal("signature " + config_.signature.to_string() +
              " is sparse but a dense problem was supplied");
    const int d = rep_width(config_.signature.dataset, "dataset");
    const int m = rep_width(config_.signature.model, "model");
    switch (d) {
      case 8:
        engine_ = make_dense_with_data<std::int8_t>(problem, config_, m);
        break;
      case 16:
        engine_ = make_dense_with_data<std::int16_t>(problem, config_, m);
        break;
      default:
        engine_ = make_dense_with_data<float>(problem, config_, m);
    }
    return engine_->train();
}

TrainingMetrics
Trainer::fit(const dataset::SparseProblem& problem)
{
    if (!config_.signature.sparse)
        fatal("signature " + config_.signature.to_string() +
              " is dense but a sparse problem was supplied");
    const int d = rep_width(config_.signature.dataset, "dataset");
    const int m = rep_width(config_.signature.model, "model");
    const int i = config_.signature.index_bits.value_or(32);
    switch (d) {
      case 8:
        engine_ = make_sparse_with_index<std::int8_t>(problem, config_, i,
                                                      m);
        break;
      case 16:
        engine_ = make_sparse_with_index<std::int16_t>(problem, config_, i,
                                                       m);
        break;
      default:
        engine_ = make_sparse_with_index<float>(problem, config_, i, m);
    }
    return engine_->train();
}

std::vector<float>
Trainer::model() const
{
    if (!engine_) return {};
    return engine_->model_floats();
}

double
Trainer::loss() const
{
    if (!engine_) panic("Trainer::loss() called before fit()");
    return engine_->average_loss();
}

double
Trainer::accuracy() const
{
    if (!engine_) panic("Trainer::accuracy() called before fit()");
    return engine_->accuracy();
}

float
predict_margin(const std::vector<float>& model, const float* x)
{
    float z = 0.0f;
    for (std::size_t k = 0; k < model.size(); ++k) z += model[k] * x[k];
    return z;
}

} // namespace buckwild::core
