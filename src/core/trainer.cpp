#include "core/trainer.h"

#include <cstdint>

#include "core/engine.h"
#include "lowp/dispatch.h"
#include "lowp/rep_traits.h"
#include "util/logging.h"

namespace buckwild::core {

const char*
to_string(RoundingStrategy strategy)
{
    switch (strategy) {
      case RoundingStrategy::kBiased: return "biased";
      case RoundingStrategy::kMersennePerWrite: return "mersenne";
      case RoundingStrategy::kXorshiftPerWrite: return "xorshift";
      case RoundingStrategy::kSharedXorshift: return "shared";
    }
    return "?";
}

namespace {

/// Adapts a concrete engine (and its owned dataset copy) to IEngine.
template <typename Engine, typename Data>
class EngineAdapter final : public IEngine
{
  public:
    EngineAdapter(std::shared_ptr<Data> data, const TrainerConfig& cfg)
        : data_(std::move(data)), engine_(*data_, cfg)
    {}

    TrainingMetrics train() override { return engine_.train(); }
    double average_loss() const override { return engine_.average_loss(); }
    double accuracy() const override { return engine_.accuracy(); }
    std::vector<float>
    model_floats() const override
    {
        return engine_.model_floats();
    }

  private:
    std::shared_ptr<Data> data_;
    Engine engine_;
};

/// Builds a dense engine for the signature's (D, M) rep widths via the
/// substrate's signature-driven dispatch (lowp::with_value_rep replaces
/// the per-letter switch pyramid this file used to carry).
std::unique_ptr<IEngine>
make_dense(const dataset::DenseProblem& problem, const TrainerConfig& cfg,
           int data_width, int model_width)
{
    return lowp::with_value_rep(data_width, [&](auto d) {
        using D = typename decltype(d)::type;
        auto data = std::make_shared<dataset::DenseData<D>>(
            problem, lowp::rep_default_format<D>());
        return lowp::with_value_rep(
            model_width, [&](auto m) -> std::unique_ptr<IEngine> {
                using M = typename decltype(m)::type;
                return std::make_unique<EngineAdapter<
                    DenseEngine<D, M>, dataset::DenseData<D>>>(data, cfg);
            });
    });
}

/// Builds a sparse engine for the signature's (V, i, M) rep widths.
std::unique_ptr<IEngine>
make_sparse(const dataset::SparseProblem& problem, const TrainerConfig& cfg,
            int data_width, int index_bits, int model_width)
{
    return lowp::with_value_rep(data_width, [&](auto v) {
        using V = typename decltype(v)::type;
        return lowp::with_index_rep(
            index_bits, [&](auto ix) -> std::unique_ptr<IEngine> {
                using I = typename decltype(ix)::type;
                auto data = std::make_shared<dataset::SparseData<V, I>>(
                    problem, lowp::rep_default_format<V>());
                return lowp::with_value_rep(
                    model_width, [&](auto m) -> std::unique_ptr<IEngine> {
                        using M = typename decltype(m)::type;
                        return std::make_unique<
                            EngineAdapter<SparseEngine<V, I, M>,
                                          dataset::SparseData<V, I>>>(data,
                                                                      cfg);
                    });
            });
    });
}

} // namespace

Trainer::Trainer(TrainerConfig config) : config_(std::move(config)) {}

TrainingMetrics
Trainer::fit(const dataset::DenseProblem& problem)
{
    if (config_.signature.sparse)
        fatal("signature " + config_.signature.to_string() +
              " is sparse but a dense problem was supplied");
    const int d = lowp::checked_rep_width(config_.signature.dataset,
                                          "dataset");
    const int m = lowp::checked_rep_width(config_.signature.model, "model");
    engine_ = make_dense(problem, config_, d, m);
    return engine_->train();
}

TrainingMetrics
Trainer::fit(const dataset::SparseProblem& problem)
{
    if (!config_.signature.sparse)
        fatal("signature " + config_.signature.to_string() +
              " is dense but a sparse problem was supplied");
    const int d = lowp::checked_rep_width(config_.signature.dataset,
                                          "dataset");
    const int m = lowp::checked_rep_width(config_.signature.model, "model");
    const int i = config_.signature.index_bits.value_or(32);
    engine_ = make_sparse(problem, config_, d, i, m);
    return engine_->train();
}

std::vector<float>
Trainer::model() const
{
    if (!engine_) return {};
    return engine_->model_floats();
}

double
Trainer::loss() const
{
    if (!engine_) panic("Trainer::loss() called before fit()");
    return engine_->average_loss();
}

double
Trainer::accuracy() const
{
    if (!engine_) panic("Trainer::accuracy() called before fit()");
    return engine_->accuracy();
}

float
predict_margin(const std::vector<float>& model, const float* x)
{
    float z = 0.0f;
    for (std::size_t k = 0; k < model.size(); ++k) z += model[k] * x[k];
    return z;
}

} // namespace buckwild::core
