#include "core/loss.h"

#include <cmath>
#include <stdexcept>

namespace buckwild::core {

std::string
to_string(Loss loss)
{
    switch (loss) {
      case Loss::kLogistic: return "logistic";
      case Loss::kSquared: return "squared";
      case Loss::kHinge: return "hinge";
    }
    throw std::invalid_argument("unknown Loss");
}

float
loss_value(Loss loss, float z, float y)
{
    switch (loss) {
      case Loss::kLogistic: {
        // Numerically stable log(1 + exp(-y z)).
        const float m = -y * z;
        return m > 0.0f ? m + std::log1p(std::exp(-m))
                        : std::log1p(std::exp(m));
      }
      case Loss::kSquared: {
        const float d = z - y;
        return 0.5f * d * d;
      }
      case Loss::kHinge: return std::max(0.0f, 1.0f - y * z);
    }
    throw std::invalid_argument("unknown Loss");
}

float
loss_gradient_coefficient(Loss loss, float z, float y)
{
    switch (loss) {
      case Loss::kLogistic: {
        // d/dz log(1+exp(-y z)) = -y * sigmoid(-y z)
        const float m = -y * z;
        const float s = 1.0f / (1.0f + std::exp(-m));
        return -y * s;
      }
      case Loss::kSquared: return z - y;
      case Loss::kHinge: return (y * z < 1.0f) ? -y : 0.0f;
    }
    throw std::invalid_argument("unknown Loss");
}

bool
loss_correct(Loss loss, float z, float y)
{
    if (loss == Loss::kSquared) return std::fabs(z - y) < 0.5f;
    return (z >= 0.0f) == (y >= 0.0f);
}

} // namespace buckwild::core
