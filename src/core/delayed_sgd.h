/**
 * @file
 * Bounded-staleness SGD emulation — the asynchrony axis.
 *
 * Hogwild!'s convergence analyses (Niu et al. [36], the perturbed-iterate
 * view of Mania et al. [31], and the unified Buckwild! analysis of De Sa
 * et al. [11]) model asynchrony as *delayed updates*: a gradient computed
 * at time t lands in the shared model up to tau steps later. This harness
 * injects exactly that delay deterministically, so the paper's claim that
 * "race conditions ... only marginally affect statistical efficiency" can
 * be tested as a function of tau — including regimes far beyond what real
 * hardware produces.
 *
 * One logical step:
 *   1. apply every enqueued update whose scheduled time has arrived;
 *   2. compute a gradient against the (stale) current model;
 *   3. enqueue its update with delay ~ U{1 .. max_delay}.
 */
#ifndef BUCKWILD_CORE_DELAYED_SGD_H
#define BUCKWILD_CORE_DELAYED_SGD_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/loss.h"
#include "dataset/problem.h"

namespace buckwild::core {

/// Configuration of the delayed-update emulation.
struct DelayedSgdConfig
{
    /// Maximum update delay tau in iterations (0 = fully synchronous).
    std::size_t max_delay = 0;
    std::size_t epochs = 10;
    float step_size = 0.15f;
    float step_decay = 0.9f;
    Loss loss = Loss::kLogistic;
    std::uint64_t seed = 3;
};

/// Outcome metrics.
struct DelayedSgdResult
{
    std::vector<double> loss_trace;
    double final_loss = 0.0;
    double accuracy = 0.0;
    double average_delay = 0.0; ///< realized mean delay in iterations
};

/// Trains full-precision logistic/hinge/squared SGD with delayed updates.
DelayedSgdResult train_with_delayed_updates(
    const dataset::DenseProblem& problem, const DelayedSgdConfig& config);

} // namespace buckwild::core

#endif // BUCKWILD_CORE_DELAYED_SGD_H
