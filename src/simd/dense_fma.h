/**
 * @file
 * FMA-unrolled dense kernels — the float-path variant of the registry.
 *
 * The AVX2 float dots use two 8-lane accumulators (16 elements/iter);
 * with FMA's 4-5 cycle latency that leaves the FMA pipes under-fed on
 * long vectors. This family widens the float-involving dots to four
 * independent accumulators (32 elements/iter), a different summation
 * order and hence a different (ULP-level) float result — the comparator
 * checks it against the reference with the same tolerance class as AVX2.
 *
 * Everything whose contract is bit-exact — the four fixed-point pairs
 * and every AXPY — forwards to the AVX2 kernels: elementwise AXPYs gain
 * nothing from extra accumulators, and sharing the code keeps the
 * bit-identity proofs in one place.
 */
#ifndef BUCKWILD_SIMD_DENSE_FMA_H
#define BUCKWILD_SIMD_DENSE_FMA_H

#include <cstddef>
#include <cstdint>

#include "simd/dense_avx2.h"
#include "simd/fixed_scalar.h"

namespace buckwild::simd::fma {

/// True when this build carries FMA codegen AND the host executes it.
bool available();

float dot_d8mf(const std::int8_t* x, const float* w, std::size_t n,
               float qx);
float dot_d16mf(const std::int16_t* x, const float* w, std::size_t n,
                float qx);
float dot_dfm8(const float* x, const std::int8_t* w, std::size_t n,
               float qm);
float dot_dfm16(const float* x, const std::int16_t* w, std::size_t n,
                float qm);
float dot_dfmf(const float* x, const float* w, std::size_t n);

// Bit-exact-contract paths share the AVX2 implementations.
inline float dot_d8m8(const std::int8_t* x, const std::int8_t* w,
                      std::size_t n, float scale)
{ return avx2::dot_d8m8(x, w, n, scale); }
inline float dot_d8m16(const std::int8_t* x, const std::int16_t* w,
                       std::size_t n, float scale)
{ return avx2::dot_d8m16(x, w, n, scale); }
inline float dot_d16m8(const std::int16_t* x, const std::int8_t* w,
                       std::size_t n, float scale)
{ return avx2::dot_d16m8(x, w, n, scale); }
inline float dot_d16m16(const std::int16_t* x, const std::int16_t* w,
                        std::size_t n, float scale)
{ return avx2::dot_d16m16(x, w, n, scale); }
inline void axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
                      FixedScalar cs, const DitherBlock& d)
{ avx2::axpy_d8m8(w, x, n, cs, d); }
inline void axpy_d16m8(std::int8_t* w, const std::int16_t* x,
                       std::size_t n, FixedScalar cs, const DitherBlock& d)
{ avx2::axpy_d16m8(w, x, n, cs, d); }
inline void axpy_d8m16(std::int16_t* w, const std::int8_t* x,
                       std::size_t n, FixedScalar cs, const DitherBlock& d)
{ avx2::axpy_d8m16(w, x, n, cs, d); }
inline void axpy_d16m16(std::int16_t* w, const std::int16_t* x,
                        std::size_t n, FixedScalar cs, const DitherBlock& d)
{ avx2::axpy_d16m16(w, x, n, cs, d); }
inline void axpy_dfm8(std::int8_t* w, const float* x, std::size_t n,
                      float cf, const DitherBlock& d)
{ avx2::axpy_dfm8(w, x, n, cf, d); }
inline void axpy_dfm16(std::int16_t* w, const float* x, std::size_t n,
                       float cf, const DitherBlock& d)
{ avx2::axpy_dfm16(w, x, n, cf, d); }
inline void axpy_d8mf(float* w, const std::int8_t* x, std::size_t n,
                      float cf)
{ avx2::axpy_d8mf(w, x, n, cf); }
inline void axpy_d16mf(float* w, const std::int16_t* x, std::size_t n,
                       float cf)
{ avx2::axpy_d16mf(w, x, n, cf); }
inline void axpy_dfmf(float* w, const float* x, std::size_t n, float cf)
{ avx2::axpy_dfmf(w, x, n, cf); }

} // namespace buckwild::simd::fma

#endif // BUCKWILD_SIMD_DENSE_FMA_H
