#include "simd/dense_avx512.h"

#include "simd/cpu.h"
#include "simd/dense_avx2.h"
#include "simd/dense_ref.h"

#if defined(__AVX512BW__) && defined(__AVX512F__)
#define BUCKWILD_HAVE_AVX512 1
#include <immintrin.h>
#else
#define BUCKWILD_HAVE_AVX512 0
#endif

namespace buckwild::simd::avx512 {

bool
available()
{
#if BUCKWILD_HAVE_AVX512
    // One cached probe (cpu.h) shared with the registry predicates; the
    // per-kernel available() guards below stay so direct namespace calls
    // remain safe off the registry path.
    return host_cpu().avx512();
#else
    return false;
#endif
}

#if BUCKWILD_HAVE_AVX512

namespace {

/// Horizontal sum of eight int64 lanes.
inline std::int64_t
hsum512_epi64(__m512i v)
{
    return _mm512_reduce_add_epi64(v);
}

/// Widens a 512-bit int32 accumulator into the int64 accumulator.
inline void
flush512(__m512i& acc32, __m512i& acc64)
{
    acc64 = _mm512_add_epi64(
        acc64, _mm512_cvtepi32_epi64(_mm512_castsi512_si256(acc32)));
    acc64 = _mm512_add_epi64(
        acc64,
        _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64(acc32, 1)));
    acc32 = _mm512_setzero_si512();
}

/// Restores element order after _mm512_packs_epi16 (which interleaves
/// the two sources' 128-bit lanes).
inline __m512i
fix_pack512(__m512i v)
{
    const __m512i idx =
        _mm512_set_epi64(7, 5, 3, 1, 6, 4, 2, 0);
    return _mm512_permutexvar_epi64(idx, v);
}

} // namespace

float
dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
         float scale)
{
    if (!available()) return avx2::dot_d8m8(x, w, n, scale);
    __m512i acc32 = _mm512_setzero_si512();
    __m512i acc64 = _mm512_setzero_si512();
    std::size_t i = 0;
    int pending = 0;
    for (; i + 64 <= n; i += 64) {
        const __m512i xv = _mm512_loadu_si512(x + i);
        const __m512i wv = _mm512_loadu_si512(w + i);
        // Widen both to int16 and vpmaddwd: exact products, pair sums
        // <= 2 * 128 * 127 per int32 lane.
        const __m512i xlo =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(xv));
        const __m512i xhi =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(xv, 1));
        const __m512i wlo =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(wv));
        const __m512i whi =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(wv, 1));
        acc32 = _mm512_add_epi32(acc32, _mm512_madd_epi16(xlo, wlo));
        acc32 = _mm512_add_epi32(acc32, _mm512_madd_epi16(xhi, whi));
        // Growth < 2^17 per lane per iteration; flush well before 2^31.
        if (++pending == 8192) {
            flush512(acc32, acc64);
            pending = 0;
        }
    }
    flush512(acc32, acc64);
    std::int64_t total = hsum512_epi64(acc64);
    for (; i < n; ++i)
        total += static_cast<std::int64_t>(x[i]) * w[i];
    return static_cast<float>(total) * scale;
}

void
axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
          FixedScalar cs, const DitherBlock& dither)
{
    if (!available()) {
        avx2::axpy_d8m8(w, x, n, cs, dither);
        return;
    }
    const __m512i mult = _mm512_set1_epi16(static_cast<short>(cs.mult));
    // The u16 dither lens repeats with period 16 = one 256-bit half;
    // broadcast it across both halves of a 512-bit int16 vector.
    const __m256i d256 = _mm256_and_si256(
        _mm256_load_si256(reinterpret_cast<const __m256i*>(dither.bytes)),
        _mm256_set1_epi16(0x7F));
    const __m512i dv = _mm512_broadcast_i64x4(d256);
    const __m512i floor8 = _mm512_set1_epi8(-127);

    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m512i xv = _mm512_loadu_si512(x + i);
        const __m512i xlo =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(xv));
        const __m512i xhi =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(xv, 1));
        const __m512i slo = _mm512_srai_epi16(
            _mm512_add_epi16(_mm512_mullo_epi16(xlo, mult), dv),
            kShiftD8M8);
        const __m512i shi = _mm512_srai_epi16(
            _mm512_add_epi16(_mm512_mullo_epi16(xhi, mult), dv),
            kShiftD8M8);
        const __m512i wv = _mm512_loadu_si512(w + i);
        const __m512i wlo =
            _mm512_cvtepi8_epi16(_mm512_castsi512_si256(wv));
        const __m512i whi =
            _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(wv, 1));
        const __m512i rlo = _mm512_adds_epi16(wlo, slo);
        const __m512i rhi = _mm512_adds_epi16(whi, shi);
        __m512i packed = fix_pack512(_mm512_packs_epi16(rlo, rhi));
        packed = _mm512_max_epi8(packed, floor8);
        _mm512_storeu_si512(w + i, packed);
    }
    for (; i < n; ++i)
        w[i] = ref::update_m8(w[i], x[i], cs,
                              dither.dither_fixed(i, cs.shift));
}

float
dot_dfmf(const float* x, const float* w, std::size_t n)
{
    if (!available()) return avx2::dot_dfmf(x, w, n);
    __m512 acc0 = _mm512_setzero_ps();
    __m512 acc1 = _mm512_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i),
                               _mm512_loadu_ps(w + i), acc0);
        acc1 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i + 16),
                               _mm512_loadu_ps(w + i + 16), acc1);
    }
    float total = _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1));
    for (; i < n; ++i) total += x[i] * w[i];
    return total;
}

void
axpy_dfmf(float* w, const float* x, std::size_t n, float cf)
{
    if (!available()) {
        avx2::axpy_dfmf(w, x, n, cf);
        return;
    }
    const __m512 cfv = _mm512_set1_ps(cf);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm512_storeu_ps(w + i,
                         _mm512_fmadd_ps(cfv, _mm512_loadu_ps(x + i),
                                         _mm512_loadu_ps(w + i)));
    }
    for (; i < n; ++i) w[i] += cf * x[i];
}

#else // !BUCKWILD_HAVE_AVX512

float
dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
         float scale)
{
    return avx2::dot_d8m8(x, w, n, scale);
}

void
axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
          FixedScalar cs, const DitherBlock& dither)
{
    avx2::axpy_d8m8(w, x, n, cs, dither);
}

float
dot_dfmf(const float* x, const float* w, std::size_t n)
{
    return avx2::dot_dfmf(x, w, n);
}

void
axpy_dfmf(float* w, const float* x, std::size_t n, float cf)
{
    avx2::axpy_dfmf(w, x, n, cf);
}

#endif // BUCKWILD_HAVE_AVX512

} // namespace buckwild::simd::avx512
