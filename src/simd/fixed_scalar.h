/**
 * @file
 * Fixed-point representation of the AXPY scale factor, and the dither
 * values that implement rounding inside the kernels.
 *
 * The SGD update  w <- w + c * x  (c = -eta * scalar gradient term) is
 * executed in integer arithmetic: the float coefficient c (expressed in
 * model quanta per raw dataset unit) is converted once per AXPY into a
 * (multiplier, shift) pair such that c ~= mult / 2^shift, and every
 * element update becomes
 *
 *     delta_i = (mult * x_i + dither_i) >> shift            (arithmetic)
 *     w_i     = saturate_model(w_i + saturate16(delta_i))
 *
 * The dither term implements the rounding mode:
 *   - biased (nearest):  dither = 2^(shift-1)  (deterministic half-up)
 *   - unbiased (Eq. 4):  dither ~ U{0 .. 2^shift - 1}
 *
 * This is exactly the structure of the paper's proposed AXPY instruction
 * (§6.1): "multiplies an 8-bit vector by an 8-bit scalar, producing 16-bit
 * intermediate values, which it then adds to a hardware-generated
 * pseudorandom 8-bit vector, before truncating".
 *
 * The shift is chosen per (dataset, model) pair so that (a) products never
 * overflow the kernel's lane width and (b) the multiplier has enough
 * resolution for realistic step sizes even when the dataset quantum is
 * tiny (the D16 -> M8 case needs c values around eta * qx/qm ~ eta/256):
 *
 *   pair      shift  mult cap  lane math
 *   D8  M8      7      255     int16: |mult*x| + dither <= 32640+127
 *   D8  M16     9     32767    int32: |mult*x| <= 2^22
 *   D16 M16    14     32767    int32: |mult*x| <= 2^30
 *   D16 M8     20     32767    int32: |mult*x| <= 2^30, dither < 2^20
 *
 * Dithers are read from a 256-bit shared block through a single uniform
 * lens: sixteen u16 words, repeating with period 16. For shift <= 16 the
 * word is masked to `shift` bits; for shift > 16 it is scaled up by
 * 2^(shift-16), which quantizes the ideal uniform dither to 2^(shift-16)
 * levels of granularity — a relative rounding bias below 2^-16, far under
 * the noise floor of SGD.
 */
#ifndef BUCKWILD_SIMD_FIXED_SCALAR_H
#define BUCKWILD_SIMD_FIXED_SCALAR_H

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace buckwild::simd {

/// Per-pair shift constants (see table above).
inline constexpr int kShiftD8M8 = 7;
inline constexpr int kShiftD8M16 = 9;
inline constexpr int kShiftD16M16 = 14;
inline constexpr int kShiftD16M8 = 20;

/// Multiplier bound for the int16-lane D8M8 path.
inline constexpr int kMultLimitM8 = 255;
/// Multiplier bound for the int32-lane paths.
inline constexpr int kMultLimit32 = 32767;

/// A fixed-point scale factor c ~= mult / 2^shift.
struct FixedScalar
{
    std::int32_t mult;
    int shift;

    /// The float value this scalar actually applies.
    float value() const
    {
        return static_cast<float>(mult) /
               static_cast<float>(1 << shift);
    }
};

namespace detail {

inline FixedScalar
make_scalar(float c, int shift, int limit)
{
    const double scaled =
        static_cast<double>(c) * static_cast<double>(1 << shift);
    const long raw = std::lround(scaled);
    return {static_cast<std::int32_t>(std::clamp<long>(raw, -limit, limit)),
            shift};
}

} // namespace detail

/// Scale builders, one per (dataset, model) kernel pair.
inline FixedScalar
make_scalar_d8m8(float c)
{
    return detail::make_scalar(c, kShiftD8M8, kMultLimitM8);
}

inline FixedScalar
make_scalar_d8m16(float c)
{
    return detail::make_scalar(c, kShiftD8M16, kMultLimit32);
}

inline FixedScalar
make_scalar_d16m16(float c)
{
    return detail::make_scalar(c, kShiftD16M16, kMultLimit32);
}

inline FixedScalar
make_scalar_d16m8(float c)
{
    return detail::make_scalar(c, kShiftD16M8, kMultLimit32);
}

/// Saturates to the int16 range (mirrors packs semantics).
inline std::int32_t
saturate_i16(std::int32_t v)
{
    return std::clamp<std::int32_t>(v, -32768, 32767);
}

/// Saturates to the int8 range.
inline std::int32_t
saturate_i8(std::int32_t v)
{
    return std::clamp<std::int32_t>(v, -128, 127);
}

/**
 * The 32-byte dither block shared by one AXPY call (§5.2 footnote 11: the
 * vectorized XORSHIFT is run "once every iteration to produce 256 fresh
 * bits of randomness ... shared for rounding throughout the AXPY").
 *
 * Fixed-point kernels read it as sixteen u16 words (period 16) shaped to
 * the pair's shift by dither_fixed(); float-dataset kernels read unit
 * floats in [0, 1) via dither_unit().
 */
struct alignas(32) DitherBlock
{
    std::uint8_t bytes[32];

    /// Raw u16 word for element i.
    std::uint32_t
    word16(std::size_t i) const
    {
        const std::size_t k = (i % 16) * 2;
        return static_cast<std::uint32_t>(bytes[k]) |
               (static_cast<std::uint32_t>(bytes[k + 1]) << 8);
    }

    /// Dither for a fixed-point AXPY with the given shift: uniform-ish on
    /// [0, 2^shift) (exactly uniform for shift <= 16).
    std::uint32_t
    dither_fixed(std::size_t i, int shift) const
    {
        const std::uint32_t w = word16(i);
        if (shift <= 16) return w & ((1u << shift) - 1u);
        return w << (shift - 16);
    }

    /// Dither for float-dataset quantization: uniform on [0, 1).
    float
    dither_unit(std::size_t i) const
    {
        return static_cast<float>(word16(i)) * 0x1.0p-16f;
    }
};

/// Deterministic block implementing biased (round-half-up) rounding for a
/// fixed-point AXPY with the given shift: every dither is 2^(shift-1).
inline DitherBlock
biased_fixed(int shift)
{
    const std::uint32_t u16 =
        shift <= 16 ? (1u << (shift - 1)) : (1u << 15);
    DitherBlock block;
    for (std::size_t k = 0; k < 32; k += 2) {
        block.bytes[k] = static_cast<std::uint8_t>(u16 & 0xFF);
        block.bytes[k + 1] = static_cast<std::uint8_t>(u16 >> 8);
    }
    return block;
}

/// Biased dither block for float-quantization paths: every u16 0x8000 so
/// dither_unit() = 0.5 exactly.
inline DitherBlock
biased_unit()
{
    return biased_fixed(17); // u16 = 2^15 -> unit dither 0.5
}

} // namespace buckwild::simd

#endif // BUCKWILD_SIMD_FIXED_SCALAR_H
