#include "simd/dense_avx2.h"

#include "simd/cpu.h"
#include "simd/dense_ref.h"

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace buckwild::simd::avx2 {

#ifndef __AVX2__

// Fallback build (BUCKWILD_ENABLE_AVX2=OFF): forward to the reference
// kernels so the library still links and behaves identically.
bool available() { return false; }

float dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
               float scale) { return ref::dot_d8m8(x, w, n, scale); }
float dot_d8m16(const std::int8_t* x, const std::int16_t* w, std::size_t n,
                float scale) { return ref::dot_d8m16(x, w, n, scale); }
float dot_d16m8(const std::int16_t* x, const std::int8_t* w, std::size_t n,
                float scale) { return ref::dot_d16m8(x, w, n, scale); }
float dot_d16m16(const std::int16_t* x, const std::int16_t* w, std::size_t n,
                 float scale) { return ref::dot_d16m16(x, w, n, scale); }
float dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx)
{ return ref::dot_d8mf(x, w, n, qx); }
float dot_d16mf(const std::int16_t* x, const float* w, std::size_t n,
                float qx) { return ref::dot_d16mf(x, w, n, qx); }
float dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm)
{ return ref::dot_dfm8(x, w, n, qm); }
float dot_dfm16(const float* x, const std::int16_t* w, std::size_t n,
                float qm) { return ref::dot_dfm16(x, w, n, qm); }
float dot_dfmf(const float* x, const float* w, std::size_t n)
{ return ref::dot_dfmf(x, w, n); }
void axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
               FixedScalar cs, const DitherBlock& d)
{ ref::axpy_d8m8(w, x, n, cs, d); }
void axpy_d16m8(std::int8_t* w, const std::int16_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& d)
{ ref::axpy_d16m8(w, x, n, cs, d); }
void axpy_d8m16(std::int16_t* w, const std::int8_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& d)
{ ref::axpy_d8m16(w, x, n, cs, d); }
void axpy_d16m16(std::int16_t* w, const std::int16_t* x, std::size_t n,
                 FixedScalar cs, const DitherBlock& d)
{ ref::axpy_d16m16(w, x, n, cs, d); }
void axpy_dfm8(std::int8_t* w, const float* x, std::size_t n, float cf,
               const DitherBlock& d) { ref::axpy_dfm8(w, x, n, cf, d); }
void axpy_dfm16(std::int16_t* w, const float* x, std::size_t n, float cf,
                const DitherBlock& d) { ref::axpy_dfm16(w, x, n, cf, d); }
void axpy_d8mf(float* w, const std::int8_t* x, std::size_t n, float cf)
{ ref::axpy_d8mf(w, x, n, cf); }
void axpy_d16mf(float* w, const std::int16_t* x, std::size_t n, float cf)
{ ref::axpy_d16mf(w, x, n, cf); }
void axpy_dfmf(float* w, const float* x, std::size_t n, float cf)
{ ref::axpy_dfmf(w, x, n, cf); }

#else // __AVX2__

bool
available()
{
    return host_cpu().avx2;
}

namespace {

/// Horizontal sum of four int64 lanes.
inline std::int64_t
hsum_epi64(__m256i v)
{
    const __m128i lo = _mm256_castsi256_si128(v);
    const __m128i hi = _mm256_extracti128_si256(v, 1);
    const __m128i s = _mm_add_epi64(lo, hi);
    return _mm_extract_epi64(s, 0) + _mm_extract_epi64(s, 1);
}

/// Horizontal sum of eight float lanes.
inline float
hsum_ps(__m256 v)
{
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(v),
                          _mm256_extractf128_ps(v, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    return _mm_cvtss_f32(s);
}

/// Widens an int32 accumulator into the int64 accumulator pair.
inline void
flush_acc32(__m256i& acc32, __m256i& acc64)
{
    acc64 = _mm256_add_epi64(
        acc64,
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(acc32)));
    acc64 = _mm256_add_epi64(
        acc64,
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(acc32, 1)));
    acc32 = _mm256_setzero_si256();
}

/// After vpacksswb/vpackssdw, the two source registers' 128-bit halves are
/// interleaved; this permutation restores element order.
inline __m256i
fix_pack_order(__m256i v)
{
    return _mm256_permute4x64_epi64(v, 0xD8);
}

} // namespace

// ==================================================================== dot

float
dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
         float scale)
{
    const __m256i ones = _mm256_set1_epi16(1);
    __m256i acc32 = _mm256_setzero_si256();
    __m256i acc64 = _mm256_setzero_si256();
    std::size_t i = 0;
    int pending = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        // Signed*signed via unsigned*signed vpmaddubsw: |x| * sign(w, x).
        // Model values avoid -128, so vpsignb never overflows; |x| = 128
        // is fine because the first operand is treated as unsigned.
        const __m256i a = _mm256_abs_epi8(xv);
        const __m256i b = _mm256_sign_epi8(wv, xv);
        const __m256i p16 = _mm256_maddubs_epi16(a, b);
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(p16, ones));
        // Each int32 lane grows by at most 2^17 per iteration; flush well
        // before 2^31.
        if (++pending == 8192) {
            flush_acc32(acc32, acc64);
            pending = 0;
        }
    }
    flush_acc32(acc32, acc64);
    std::int64_t total = hsum_epi64(acc64);
    for (; i < n; ++i)
        total += static_cast<std::int64_t>(x[i]) * w[i];
    return static_cast<float>(total) * scale;
}

float
dot_d8m16(const std::int8_t* x, const std::int16_t* w, std::size_t n,
          float scale)
{
    __m256i acc32 = _mm256_setzero_si256();
    __m256i acc64 = _mm256_setzero_si256();
    std::size_t i = 0;
    int pending = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i xlo =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
        const __m256i xhi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
        const __m256i wlo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m256i whi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i + 16));
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(xlo, wlo));
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(xhi, whi));
        // |x*w| <= 127*32767 ~ 2^22 -> per-lane growth < 2^24 per
        // iteration; flush every 64 iterations (< 2^30).
        if (++pending == 64) {
            flush_acc32(acc32, acc64);
            pending = 0;
        }
    }
    flush_acc32(acc32, acc64);
    std::int64_t total = hsum_epi64(acc64);
    for (; i < n; ++i)
        total += static_cast<std::int64_t>(x[i]) * w[i];
    return static_cast<float>(total) * scale;
}

float
dot_d16m8(const std::int16_t* x, const std::int8_t* w, std::size_t n,
          float scale)
{
    __m256i acc32 = _mm256_setzero_si256();
    __m256i acc64 = _mm256_setzero_si256();
    std::size_t i = 0;
    int pending = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m256i wlo =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
        const __m256i whi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1));
        const __m256i xlo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i xhi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 16));
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(xlo, wlo));
        acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(xhi, whi));
        if (++pending == 64) {
            flush_acc32(acc32, acc64);
            pending = 0;
        }
    }
    flush_acc32(acc32, acc64);
    std::int64_t total = hsum_epi64(acc64);
    for (; i < n; ++i)
        total += static_cast<std::int64_t>(x[i]) * w[i];
    return static_cast<float>(total) * scale;
}

float
dot_d16m16(const std::int16_t* x, const std::int16_t* w, std::size_t n,
           float scale)
{
    __m256i acc64 = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        // Pair sums reach ~2^31, so widen to int64 every iteration.
        __m256i p = _mm256_madd_epi16(xv, wv);
        flush_acc32(p, acc64);
    }
    std::int64_t total = hsum_epi64(acc64);
    for (; i < n; ++i)
        total += static_cast<std::int64_t>(x[i]) * w[i];
    return static_cast<float>(total) * scale;
}

float
dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i xv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
        const __m256 f0 =
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(xv));
        const __m256 f1 = _mm256_cvtepi32_ps(
            _mm256_cvtepi8_epi32(_mm_srli_si128(xv, 8)));
        acc0 = _mm256_fmadd_ps(f0, _mm256_loadu_ps(w + i), acc0);
        acc1 = _mm256_fmadd_ps(f1, _mm256_loadu_ps(w + i + 8), acc1);
    }
    float total = hsum_ps(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) total += static_cast<float>(x[i]) * w[i];
    return total * qx;
}

float
dot_d16mf(const std::int16_t* x, const float* w, std::size_t n, float qx)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256 f0 = _mm256_cvtepi32_ps(
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(xv)));
        const __m256 f1 = _mm256_cvtepi32_ps(
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(xv, 1)));
        acc0 = _mm256_fmadd_ps(f0, _mm256_loadu_ps(w + i), acc0);
        acc1 = _mm256_fmadd_ps(f1, _mm256_loadu_ps(w + i + 8), acc1);
    }
    float total = hsum_ps(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) total += static_cast<float>(x[i]) * w[i];
    return total * qx;
}

float
dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i wv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + i));
        const __m256 f0 =
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(wv));
        const __m256 f1 = _mm256_cvtepi32_ps(
            _mm256_cvtepi8_epi32(_mm_srli_si128(wv, 8)));
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), f0, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), f1, acc1);
    }
    float total = hsum_ps(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) total += x[i] * static_cast<float>(w[i]);
    return total * qm;
}

float
dot_dfm16(const float* x, const std::int16_t* w, std::size_t n, float qm)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m256 f0 = _mm256_cvtepi32_ps(
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(wv)));
        const __m256 f1 = _mm256_cvtepi32_ps(
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(wv, 1)));
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), f0, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), f1, acc1);
    }
    float total = hsum_ps(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) total += x[i] * static_cast<float>(w[i]);
    return total * qm;
}

float
dot_dfmf(const float* x, const float* w, std::size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(w + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                               _mm256_loadu_ps(w + i + 8), acc1);
    }
    float total = hsum_ps(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i) total += x[i] * w[i];
    return total;
}

// =================================================================== AXPY

namespace {

/// Loads the dither block for the D8M8 path as one int16 vector: the u16
/// lens repeats with period 16, so the same register serves elements
/// 0..15 and 16..31. Masked to [0, 2^7).
inline __m256i
load_dither_d8m8(const DitherBlock& dither)
{
    const __m256i raw = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(dither.bytes));
    return _mm256_and_si256(raw, _mm256_set1_epi16(0x7F));
}

/// Loads the dither block for an int32-lane fixed AXPY with the given
/// pair shift, as two constant int32 vectors (elements i%16 in 0..7 and
/// 8..15). Mirrors DitherBlock::dither_fixed exactly.
inline void
load_dither_fixed_epi32(const DitherBlock& dither, int shift, __m256i& lo,
                        __m256i& hi)
{
    const __m256i raw = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(dither.bytes));
    __m256i w0 = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(raw));
    __m256i w1 = _mm256_cvtepu16_epi32(_mm256_extracti128_si256(raw, 1));
    if (shift <= 16) {
        const __m256i mask = _mm256_set1_epi32((1 << shift) - 1);
        lo = _mm256_and_si256(w0, mask);
        hi = _mm256_and_si256(w1, mask);
    } else {
        const __m128i count = _mm_cvtsi32_si128(shift - 16);
        lo = _mm256_sll_epi32(w0, count);
        hi = _mm256_sll_epi32(w1, count);
    }
}

/// Loads the unit-dither block (16 u16s scaled by 2^-16) as two constant
/// float vectors.
inline void
load_dither_unit(const DitherBlock& dither, __m256& lo, __m256& hi)
{
    const __m256i raw = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(dither.bytes));
    const __m256i ulo = _mm256_cvtepu16_epi32(_mm256_castsi256_si128(raw));
    const __m256i uhi =
        _mm256_cvtepu16_epi32(_mm256_extracti128_si256(raw, 1));
    const __m256 scale = _mm256_set1_ps(0x1.0p-16f);
    lo = _mm256_mul_ps(_mm256_cvtepi32_ps(ulo), scale);
    hi = _mm256_mul_ps(_mm256_cvtepi32_ps(uhi), scale);
}

/// Packs four int32 delta vectors (elements 8k..8k+7) into two ordered
/// int16 vectors with saturation.
inline void
pack_delta32_to_16(const __m256i d[4], __m256i& lo, __m256i& hi)
{
    lo = fix_pack_order(_mm256_packs_epi32(d[0], d[1]));
    hi = fix_pack_order(_mm256_packs_epi32(d[2], d[3]));
}

/// Applies two ordered int16 delta vectors to 32 int8 model elements with
/// the symmetric [-127, 127] saturation contract.
inline void
apply_delta16_to_m8(std::int8_t* w, __m256i dlo, __m256i dhi)
{
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
    const __m256i wlo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(wv));
    const __m256i whi =
        _mm256_cvtepi8_epi16(_mm256_extracti128_si256(wv, 1));
    const __m256i rlo = _mm256_adds_epi16(wlo, dlo);
    const __m256i rhi = _mm256_adds_epi16(whi, dhi);
    __m256i packed = fix_pack_order(_mm256_packs_epi16(rlo, rhi));
    packed = _mm256_max_epi8(packed, _mm256_set1_epi8(-127));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w), packed);
}

/// Applies two int32 delta vectors to 16 int16 model elements with the
/// symmetric [-32767, 32767] saturation contract.
inline void
apply_delta32_to_m16(std::int16_t* w, __m256i d0, __m256i d1)
{
    const __m256i delta =
        fix_pack_order(_mm256_packs_epi32(d0, d1));
    const __m256i wv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
    __m256i r = _mm256_adds_epi16(wv, delta);
    r = _mm256_max_epi16(r, _mm256_set1_epi16(-32767));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(w), r);
}

} // namespace

void
axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n, FixedScalar cs,
          const DitherBlock& dither)
{
    const __m256i mult = _mm256_set1_epi16(static_cast<short>(cs.mult));
    const __m256i dv = load_dither_d8m8(dither);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i xlo =
            _mm256_cvtepi8_epi16(_mm256_castsi256_si128(xv));
        const __m256i xhi =
            _mm256_cvtepi8_epi16(_mm256_extracti128_si256(xv, 1));
        // mult*x + dither fits int16 (|mult| <= 255, |x| <= 128, d < 128).
        const __m256i slo = _mm256_srai_epi16(
            _mm256_add_epi16(_mm256_mullo_epi16(xlo, mult), dv),
            kShiftD8M8);
        const __m256i shi = _mm256_srai_epi16(
            _mm256_add_epi16(_mm256_mullo_epi16(xhi, mult), dv),
            kShiftD8M8);
        apply_delta16_to_m8(w + i, slo, shi);
    }
    for (; i < n; ++i)
        w[i] = ref::update_m8(w[i], x[i], cs,
                              dither.dither_fixed(i, cs.shift));
}

void
axpy_d16m8(std::int8_t* w, const std::int16_t* x, std::size_t n,
           FixedScalar cs, const DitherBlock& dither)
{
    const __m256i mult = _mm256_set1_epi32(cs.mult);
    // Dithers repeat with period 16, so vectors 0/2 share d01[0] and 1/3
    // share d01[1].
    __m256i d01[2];
    load_dither_fixed_epi32(dither, kShiftD16M8, d01[0], d01[1]);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i delta[4];
        for (int k = 0; k < 4; ++k) {
            const __m128i x16 = _mm_loadu_si128(
                reinterpret_cast<const __m128i*>(x + i + 8 * k));
            const __m256i x32 = _mm256_cvtepi16_epi32(x16);
            delta[k] = _mm256_srai_epi32(
                _mm256_add_epi32(_mm256_mullo_epi32(x32, mult),
                                 d01[k % 2]),
                kShiftD16M8);
        }
        __m256i dlo, dhi;
        pack_delta32_to_16(delta, dlo, dhi);
        apply_delta16_to_m8(w + i, dlo, dhi);
    }
    for (; i < n; ++i)
        w[i] = ref::update_m8(w[i], x[i], cs,
                              dither.dither_fixed(i, cs.shift));
}

void
axpy_d8m16(std::int16_t* w, const std::int8_t* x, std::size_t n,
           FixedScalar cs, const DitherBlock& dither)
{
    const __m256i mult = _mm256_set1_epi32(cs.mult);
    __m256i dlo, dhi;
    load_dither_fixed_epi32(dither, kShiftD8M16, dlo, dhi);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i x8 =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
        const __m256i x0 = _mm256_cvtepi8_epi32(x8);
        const __m256i x1 = _mm256_cvtepi8_epi32(_mm_srli_si128(x8, 8));
        const __m256i d0 = _mm256_srai_epi32(
            _mm256_add_epi32(_mm256_mullo_epi32(x0, mult), dlo),
            kShiftD8M16);
        const __m256i d1 = _mm256_srai_epi32(
            _mm256_add_epi32(_mm256_mullo_epi32(x1, mult), dhi),
            kShiftD8M16);
        apply_delta32_to_m16(w + i, d0, d1);
    }
    for (; i < n; ++i)
        w[i] = ref::update_m16(w[i], x[i], cs,
                               dither.dither_fixed(i, cs.shift));
}

void
axpy_d16m16(std::int16_t* w, const std::int16_t* x, std::size_t n,
            FixedScalar cs, const DitherBlock& dither)
{
    const __m256i mult = _mm256_set1_epi32(cs.mult);
    __m256i dlo, dhi;
    load_dither_fixed_epi32(dither, kShiftD16M16, dlo, dhi);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i x0 =
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(xv));
        const __m256i x1 =
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(xv, 1));
        const __m256i d0 = _mm256_srai_epi32(
            _mm256_add_epi32(_mm256_mullo_epi32(x0, mult), dlo),
            kShiftD16M16);
        const __m256i d1 = _mm256_srai_epi32(
            _mm256_add_epi32(_mm256_mullo_epi32(x1, mult), dhi),
            kShiftD16M16);
        apply_delta32_to_m16(w + i, d0, d1);
    }
    for (; i < n; ++i)
        w[i] = ref::update_m16(w[i], x[i], cs,
                               dither.dither_fixed(i, cs.shift));
}

namespace {

/// Quantizes 8 float deltas (vfmadd of cf*x+u, clamp, floor) to int32 —
/// the vector counterpart of ref::quantize_delta.
inline __m256i
quantize_delta_ps(__m256 cf, __m256 xv, __m256 u)
{
    __m256 v = _mm256_fmadd_ps(cf, xv, u);
    v = _mm256_min_ps(v, _mm256_set1_ps(32767.0f));
    v = _mm256_max_ps(v, _mm256_set1_ps(-32768.0f));
    return _mm256_cvttps_epi32(_mm256_floor_ps(v));
}

} // namespace

void
axpy_dfm8(std::int8_t* w, const float* x, std::size_t n, float cf,
          const DitherBlock& dither)
{
    const __m256 cfv = _mm256_set1_ps(cf);
    __m256 ulo, uhi;
    load_dither_unit(dither, ulo, uhi);
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        __m256i delta[4];
        // Unit dithers repeat with period 16, so vectors 0/2 share ulo and
        // 1/3 share uhi — matching dither_unit(i)'s i % 16 indexing.
        delta[0] = quantize_delta_ps(cfv, _mm256_loadu_ps(x + i), ulo);
        delta[1] = quantize_delta_ps(cfv, _mm256_loadu_ps(x + i + 8), uhi);
        delta[2] = quantize_delta_ps(cfv, _mm256_loadu_ps(x + i + 16), ulo);
        delta[3] = quantize_delta_ps(cfv, _mm256_loadu_ps(x + i + 24), uhi);
        __m256i dlo, dhi;
        pack_delta32_to_16(delta, dlo, dhi);
        apply_delta16_to_m8(w + i, dlo, dhi);
    }
    for (; i < n; ++i) {
        const std::int32_t delta =
            ref::quantize_delta(cf, x[i], dither.dither_unit(i));
        w[i] = static_cast<std::int8_t>(
            ref::saturate_model8(w[i] + saturate_i16(delta)));
    }
}

void
axpy_dfm16(std::int16_t* w, const float* x, std::size_t n, float cf,
           const DitherBlock& dither)
{
    const __m256 cfv = _mm256_set1_ps(cf);
    __m256 ulo, uhi;
    load_dither_unit(dither, ulo, uhi);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i d0 =
            quantize_delta_ps(cfv, _mm256_loadu_ps(x + i), ulo);
        const __m256i d1 =
            quantize_delta_ps(cfv, _mm256_loadu_ps(x + i + 8), uhi);
        apply_delta32_to_m16(w + i, d0, d1);
    }
    for (; i < n; ++i) {
        const std::int32_t delta =
            ref::quantize_delta(cf, x[i], dither.dither_unit(i));
        w[i] = static_cast<std::int16_t>(
            ref::saturate_model16(w[i] + saturate_i16(delta)));
    }
}

void
axpy_d8mf(float* w, const std::int8_t* x, std::size_t n, float cf)
{
    const __m256 cfv = _mm256_set1_ps(cf);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i xv =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
        const __m256 f0 =
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(xv));
        const __m256 f1 = _mm256_cvtepi32_ps(
            _mm256_cvtepi8_epi32(_mm_srli_si128(xv, 8)));
        _mm256_storeu_ps(
            w + i, _mm256_fmadd_ps(cfv, f0, _mm256_loadu_ps(w + i)));
        _mm256_storeu_ps(
            w + i + 8,
            _mm256_fmadd_ps(cfv, f1, _mm256_loadu_ps(w + i + 8)));
    }
    for (; i < n; ++i) w[i] += cf * static_cast<float>(x[i]);
}

void
axpy_d16mf(float* w, const std::int16_t* x, std::size_t n, float cf)
{
    const __m256 cfv = _mm256_set1_ps(cf);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256 f0 = _mm256_cvtepi32_ps(
            _mm256_cvtepi16_epi32(_mm256_castsi256_si128(xv)));
        const __m256 f1 = _mm256_cvtepi32_ps(
            _mm256_cvtepi16_epi32(_mm256_extracti128_si256(xv, 1)));
        _mm256_storeu_ps(
            w + i, _mm256_fmadd_ps(cfv, f0, _mm256_loadu_ps(w + i)));
        _mm256_storeu_ps(
            w + i + 8,
            _mm256_fmadd_ps(cfv, f1, _mm256_loadu_ps(w + i + 8)));
    }
    for (; i < n; ++i) w[i] += cf * static_cast<float>(x[i]);
}

void
axpy_dfmf(float* w, const float* x, std::size_t n, float cf)
{
    const __m256 cfv = _mm256_set1_ps(cf);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        _mm256_storeu_ps(w + i,
                         _mm256_fmadd_ps(cfv, _mm256_loadu_ps(x + i),
                                         _mm256_loadu_ps(w + i)));
        _mm256_storeu_ps(
            w + i + 8,
            _mm256_fmadd_ps(cfv, _mm256_loadu_ps(x + i + 8),
                            _mm256_loadu_ps(w + i + 8)));
    }
    for (; i < n; ++i) w[i] += cf * x[i];
}

#endif // __AVX2__

} // namespace buckwild::simd::avx2
