/**
 * @file
 * Uniform typed facade over the kernel implementations.
 *
 * The SGD engine (src/core) is templated on the dataset rep D and model
 * rep M; DenseOps<D, M> routes its dot/AXPY calls to the reference, naive
 * (compiler-baseline), or hand-optimized AVX2 kernels based on the runtime
 * `Impl` selector, and converts real-valued scale factors into each
 * kernel's native parameterization (FixedScalar, pre-multiplied quanta).
 *
 * Supported (D, M) pairs are exactly Table 2's nine signatures:
 * {int8, int16, float} x {int8, int16, float}.
 */
#ifndef BUCKWILD_SIMD_OPS_H
#define BUCKWILD_SIMD_OPS_H

#include <cstdint>

#include "simd/dense_avx2.h"
#include "simd/dense_avx512.h"
#include "simd/dense_naive.h"
#include "simd/dense_ref.h"
#include "simd/fixed_scalar.h"

namespace buckwild::simd {

/// Which kernel implementation executes the linear algebra.
enum class Impl {
    kReference, ///< exact-contract scalar loops
    kNaive,     ///< Figure-1-style code, compiler-vectorized at -Ofast
    kAvx2,      ///< hand-optimized AVX2 intrinsics (§5.1)
    kAvx512,    ///< 512-bit kernels (D8M8 + float native; rest via AVX2)
};

/// "reference" / "naive" / "avx2".
const char* to_string(Impl impl);

/// The fastest implementation available in this build.
Impl best_impl();

template <typename D, typename M>
struct DenseOps;

// Helper macro: stamps out the three-way dispatch for one (D, M) pair.
// qx/qm are the dataset/model quanta (1.0f for float reps); c is the
// real-valued AXPY coefficient (w += c * x in real units).
#define BUCKWILD_DENSE_OPS(D, M, SUFFIX, DOT_SCALE, MAKE_CS, CS_EXPR)         \
    template <>                                                               \
    struct DenseOps<D, M>                                                     \
    {                                                                         \
        static float                                                         \
        dot(Impl impl, const D* x, const M* w, std::size_t n, float qx,      \
            float qm)                                                        \
        {                                                                    \
            const float scale = (DOT_SCALE);                                 \
            switch (impl) {                                                  \
              case Impl::kNaive: return naive::dot_##SUFFIX(x, w, n, scale); \
              case Impl::kAvx2: return avx2::dot_##SUFFIX(x, w, n, scale);   \
              case Impl::kAvx512:                                            \
                return avx512::dot_##SUFFIX(x, w, n, scale);                 \
              default: return ref::dot_##SUFFIX(x, w, n, scale);             \
            }                                                                \
        }                                                                    \
        static void                                                         \
        axpy(Impl impl, M* w, const D* x, std::size_t n, float c, float qx, \
             float qm, const DitherBlock& dither)                           \
        {                                                                    \
            const auto cs = MAKE_CS(CS_EXPR);                                \
            switch (impl) {                                                  \
              case Impl::kNaive:                                             \
                naive::axpy_##SUFFIX(w, x, n, cs, dither);                   \
                break;                                                       \
              case Impl::kAvx2:                                              \
                avx2::axpy_##SUFFIX(w, x, n, cs, dither);                    \
                break;                                                       \
              case Impl::kAvx512:                                            \
                avx512::axpy_##SUFFIX(w, x, n, cs, dither);                  \
                break;                                                       \
              default: ref::axpy_##SUFFIX(w, x, n, cs, dither);              \
            }                                                                \
        }                                                                    \
    };

// Fixed-model pairs: the AXPY coefficient in model quanta per raw x unit.
BUCKWILD_DENSE_OPS(std::int8_t, std::int8_t, d8m8, qx* qm, make_scalar_d8m8,
                   c* qx / qm)
BUCKWILD_DENSE_OPS(std::int16_t, std::int8_t, d16m8, qx* qm,
                   make_scalar_d16m8, c* qx / qm)
BUCKWILD_DENSE_OPS(std::int8_t, std::int16_t, d8m16, qx* qm,
                   make_scalar_d8m16, c* qx / qm)
BUCKWILD_DENSE_OPS(std::int16_t, std::int16_t, d16m16, qx* qm,
                   make_scalar_d16m16, c* qx / qm)

#undef BUCKWILD_DENSE_OPS

// The float-involving pairs have enough signature variation that the
// dispatch is written out explicitly.

template <>
struct DenseOps<float, std::int8_t>
{
    static float
    dot(Impl impl, const float* x, const std::int8_t* w, std::size_t n,
        float /*qx*/, float qm)
    {
        switch (impl) {
          case Impl::kNaive: return naive::dot_dfm8(x, w, n, qm);
          case Impl::kAvx2: return avx2::dot_dfm8(x, w, n, qm);
          case Impl::kAvx512: return avx512::dot_dfm8(x, w, n, qm);
          default: return ref::dot_dfm8(x, w, n, qm);
        }
    }
    static void
    axpy(Impl impl, std::int8_t* w, const float* x, std::size_t n, float c,
         float /*qx*/, float qm, const DitherBlock& dither)
    {
        const float cf = c / qm;
        switch (impl) {
          case Impl::kNaive: naive::axpy_dfm8(w, x, n, cf, dither); break;
          case Impl::kAvx2: avx2::axpy_dfm8(w, x, n, cf, dither); break;
          case Impl::kAvx512:
            avx512::axpy_dfm8(w, x, n, cf, dither);
            break;
          default: ref::axpy_dfm8(w, x, n, cf, dither);
        }
    }
};

template <>
struct DenseOps<float, std::int16_t>
{
    static float
    dot(Impl impl, const float* x, const std::int16_t* w, std::size_t n,
        float /*qx*/, float qm)
    {
        switch (impl) {
          case Impl::kNaive: return naive::dot_dfm16(x, w, n, qm);
          case Impl::kAvx2: return avx2::dot_dfm16(x, w, n, qm);
          case Impl::kAvx512: return avx512::dot_dfm16(x, w, n, qm);
          default: return ref::dot_dfm16(x, w, n, qm);
        }
    }
    static void
    axpy(Impl impl, std::int16_t* w, const float* x, std::size_t n, float c,
         float /*qx*/, float qm, const DitherBlock& dither)
    {
        const float cf = c / qm;
        switch (impl) {
          case Impl::kNaive: naive::axpy_dfm16(w, x, n, cf, dither); break;
          case Impl::kAvx2: avx2::axpy_dfm16(w, x, n, cf, dither); break;
          case Impl::kAvx512:
            avx512::axpy_dfm16(w, x, n, cf, dither);
            break;
          default: ref::axpy_dfm16(w, x, n, cf, dither);
        }
    }
};

template <>
struct DenseOps<std::int8_t, float>
{
    static float
    dot(Impl impl, const std::int8_t* x, const float* w, std::size_t n,
        float qx, float /*qm*/)
    {
        switch (impl) {
          case Impl::kNaive: return naive::dot_d8mf(x, w, n, qx);
          case Impl::kAvx2: return avx2::dot_d8mf(x, w, n, qx);
          case Impl::kAvx512: return avx512::dot_d8mf(x, w, n, qx);
          default: return ref::dot_d8mf(x, w, n, qx);
        }
    }
    static void
    axpy(Impl impl, float* w, const std::int8_t* x, std::size_t n, float c,
         float qx, float /*qm*/, const DitherBlock& /*dither*/)
    {
        const float cf = c * qx;
        switch (impl) {
          case Impl::kNaive: naive::axpy_d8mf(w, x, n, cf); break;
          case Impl::kAvx2: avx2::axpy_d8mf(w, x, n, cf); break;
          case Impl::kAvx512: avx512::axpy_d8mf(w, x, n, cf); break;
          default: ref::axpy_d8mf(w, x, n, cf);
        }
    }
};

template <>
struct DenseOps<std::int16_t, float>
{
    static float
    dot(Impl impl, const std::int16_t* x, const float* w, std::size_t n,
        float qx, float /*qm*/)
    {
        switch (impl) {
          case Impl::kNaive: return naive::dot_d16mf(x, w, n, qx);
          case Impl::kAvx2: return avx2::dot_d16mf(x, w, n, qx);
          case Impl::kAvx512: return avx512::dot_d16mf(x, w, n, qx);
          default: return ref::dot_d16mf(x, w, n, qx);
        }
    }
    static void
    axpy(Impl impl, float* w, const std::int16_t* x, std::size_t n, float c,
         float qx, float /*qm*/, const DitherBlock& /*dither*/)
    {
        const float cf = c * qx;
        switch (impl) {
          case Impl::kNaive: naive::axpy_d16mf(w, x, n, cf); break;
          case Impl::kAvx2: avx2::axpy_d16mf(w, x, n, cf); break;
          case Impl::kAvx512: avx512::axpy_d16mf(w, x, n, cf); break;
          default: ref::axpy_d16mf(w, x, n, cf);
        }
    }
};

template <>
struct DenseOps<float, float>
{
    static float
    dot(Impl impl, const float* x, const float* w, std::size_t n,
        float /*qx*/, float /*qm*/)
    {
        switch (impl) {
          case Impl::kNaive: return naive::dot_dfmf(x, w, n);
          case Impl::kAvx2: return avx2::dot_dfmf(x, w, n);
          case Impl::kAvx512: return avx512::dot_dfmf(x, w, n);
          default: return ref::dot_dfmf(x, w, n);
        }
    }
    static void
    axpy(Impl impl, float* w, const float* x, std::size_t n, float c,
         float /*qx*/, float /*qm*/, const DitherBlock& /*dither*/)
    {
        switch (impl) {
          case Impl::kNaive: naive::axpy_dfmf(w, x, n, c); break;
          case Impl::kAvx2: avx2::axpy_dfmf(w, x, n, c); break;
          case Impl::kAvx512: avx512::axpy_dfmf(w, x, n, c); break;
          default: ref::axpy_dfmf(w, x, n, c);
        }
    }
};

} // namespace buckwild::simd

#endif // BUCKWILD_SIMD_OPS_H
