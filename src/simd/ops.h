/**
 * @file
 * Uniform typed facade over the kernel registry.
 *
 * The SGD engine (src/core) is templated on the dataset rep D and model
 * rep M; DenseOps<D, M> routes its dot/AXPY calls through a per-(D, M)
 * vtable of registry-resolved function pointers — one slot per `Impl`,
 * resolved once per process (registry.h) so the hot path is a single
 * indirect call with no switch and no per-call CPU probing. Unsupported
 * requests (say Impl::kAvx512 on an AVX2-only host) resolve down the
 * fallback chain at vtable-build time.
 *
 * Each registered variant is a thin adapter (ops.cpp) that converts the
 * real-valued scale factors into the kernel's native parameterization
 * (FixedScalar, pre-multiplied quanta), exactly the conversions the old
 * switch pyramids performed inline.
 *
 * Supported (D, M) pairs are exactly Table 2's nine signatures:
 * {int8, int16, float} x {int8, int16, float}.
 */
#ifndef BUCKWILD_SIMD_OPS_H
#define BUCKWILD_SIMD_OPS_H

#include <cstddef>
#include <cstdint>

#include "simd/fixed_scalar.h"
#include "simd/registry.h"

namespace buckwild::simd {

template <typename D, typename M>
struct DenseOps
{
    /// Registry-normalized signatures: every variant of every pair takes
    /// the real-valued quanta; adapters do the native conversions.
    using DotFn = float (*)(const D*, const M*, std::size_t, float, float);
    using AxpyFn = void (*)(M*, const D*, std::size_t, float, float, float,
                            const DitherBlock&);

    struct Vtable
    {
        DotFn dot[kImplCount];
        AxpyFn axpy[kImplCount];
    };

    /// The per-(D, M) kernel table, resolved once per process from the
    /// KernelLibrary (defined in ops.cpp for the nine signatures).
    static const Vtable& vtable();

    static float
    dot(Impl impl, const D* x, const M* w, std::size_t n, float qx,
        float qm)
    {
        return vtable().dot[impl_index(impl)](x, w, n, qx, qm);
    }

    static void
    axpy(Impl impl, M* w, const D* x, std::size_t n, float c, float qx,
         float qm, const DitherBlock& dither)
    {
        vtable().axpy[impl_index(impl)](w, x, n, c, qx, qm, dither);
    }

    // Ambient dispatch: the per-process resolver's pick, honoring the
    // BUCKWILD_KERNEL_IMPL / force_impl() override at call time.
    static float
    dot(const D* x, const M* w, std::size_t n, float qx, float qm)
    {
        return dot(best_impl(), x, w, n, qx, qm);
    }

    static void
    axpy(M* w, const D* x, std::size_t n, float c, float qx, float qm,
         const DitherBlock& dither)
    {
        axpy(best_impl(), w, x, n, c, qx, qm, dither);
    }
};

/// Resolves every (D, M) vtable now. Latency-sensitive components (the
/// RPC-serving ps shard, the inference engine) call this at construction
/// so the one-time registration + resolution never lands inside a
/// deadline'd first request — under sanitizers it is slow enough to trip
/// the in-proc RPC retransmit timeout.
void warm_dense_kernels();

/// Registry op names for one (D, M) pair ("simd.dot_d8m8", ...), for
/// sweeps that want to pair a vtable with its library entries.
template <typename D, typename M>
struct DensePairNames;

#define BUCKWILD_DENSE_PAIR_NAMES(D, M, SUFFIX)                            \
    template <>                                                            \
    struct DensePairNames<D, M>                                            \
    {                                                                      \
        static constexpr const char* suffix = #SUFFIX;                     \
        static constexpr const char* dot = "simd.dot_" #SUFFIX;            \
        static constexpr const char* axpy = "simd.axpy_" #SUFFIX;          \
    };

BUCKWILD_DENSE_PAIR_NAMES(std::int8_t, std::int8_t, d8m8)
BUCKWILD_DENSE_PAIR_NAMES(std::int16_t, std::int8_t, d16m8)
BUCKWILD_DENSE_PAIR_NAMES(std::int8_t, std::int16_t, d8m16)
BUCKWILD_DENSE_PAIR_NAMES(std::int16_t, std::int16_t, d16m16)
BUCKWILD_DENSE_PAIR_NAMES(float, std::int8_t, dfm8)
BUCKWILD_DENSE_PAIR_NAMES(float, std::int16_t, dfm16)
BUCKWILD_DENSE_PAIR_NAMES(std::int8_t, float, d8mf)
BUCKWILD_DENSE_PAIR_NAMES(std::int16_t, float, d16mf)
BUCKWILD_DENSE_PAIR_NAMES(float, float, dfmf)

#undef BUCKWILD_DENSE_PAIR_NAMES

} // namespace buckwild::simd

#endif // BUCKWILD_SIMD_OPS_H
