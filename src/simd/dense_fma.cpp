#include "simd/dense_fma.h"

#include "simd/cpu.h"
#include "simd/dense_ref.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define BUCKWILD_HAVE_FMA_KERNELS 1
#endif

namespace buckwild::simd::fma {

#ifndef BUCKWILD_HAVE_FMA_KERNELS

// Fallback build: the registry predicate reports unavailable, and the
// symbols forward so direct calls still behave.
bool available() { return false; }

float dot_d8mf(const std::int8_t* x, const float* w, std::size_t n,
               float qx) { return avx2::dot_d8mf(x, w, n, qx); }
float dot_d16mf(const std::int16_t* x, const float* w, std::size_t n,
                float qx) { return avx2::dot_d16mf(x, w, n, qx); }
float dot_dfm8(const float* x, const std::int8_t* w, std::size_t n,
               float qm) { return avx2::dot_dfm8(x, w, n, qm); }
float dot_dfm16(const float* x, const std::int16_t* w, std::size_t n,
                float qm) { return avx2::dot_dfm16(x, w, n, qm); }
float dot_dfmf(const float* x, const float* w, std::size_t n)
{ return avx2::dot_dfmf(x, w, n); }

#else // BUCKWILD_HAVE_FMA_KERNELS

bool
available()
{
    return host_cpu().avx2 && host_cpu().fma;
}

namespace {

/// Horizontal sum of eight float lanes.
inline float
hsum_ps(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_hadd_ps(s, s);
    s = _mm_hadd_ps(s, s);
    return _mm_cvtss_f32(s);
}

inline __m256
cvt_i8lo_ps(__m128i v)
{
    return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(v));
}

inline __m256
cvt_i16lo_ps(__m128i v)
{
    return _mm256_cvtepi32_ps(_mm256_cvtepi16_epi32(v));
}

} // namespace

float
dot_dfmf(const float* x, const float* w, std::size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(w + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                               _mm256_loadu_ps(w + i + 8), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16),
                               _mm256_loadu_ps(w + i + 16), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24),
                               _mm256_loadu_ps(w + i + 24), acc3);
    }
    for (; i + 8 <= n; i += 8)
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(w + i), acc0);
    float total = hsum_ps(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                        _mm256_add_ps(acc2, acc3)));
    for (; i < n; ++i) total += x[i] * w[i];
    return total;
}

float
dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i xv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m128i lo = _mm256_castsi256_si128(xv);
        const __m128i hi = _mm256_extracti128_si256(xv, 1);
        acc0 = _mm256_fmadd_ps(cvt_i8lo_ps(lo),
                               _mm256_loadu_ps(w + i), acc0);
        acc1 = _mm256_fmadd_ps(cvt_i8lo_ps(_mm_srli_si128(lo, 8)),
                               _mm256_loadu_ps(w + i + 8), acc1);
        acc2 = _mm256_fmadd_ps(cvt_i8lo_ps(hi),
                               _mm256_loadu_ps(w + i + 16), acc2);
        acc3 = _mm256_fmadd_ps(cvt_i8lo_ps(_mm_srli_si128(hi, 8)),
                               _mm256_loadu_ps(w + i + 24), acc3);
    }
    float total = hsum_ps(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                        _mm256_add_ps(acc2, acc3)));
    for (; i < n; ++i) total += static_cast<float>(x[i]) * w[i];
    return total * qx;
}

float
dot_d16mf(const std::int16_t* x, const float* w, std::size_t n, float qx)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(x + i + 16));
        acc0 = _mm256_fmadd_ps(cvt_i16lo_ps(_mm256_castsi256_si128(v0)),
                               _mm256_loadu_ps(w + i), acc0);
        acc1 = _mm256_fmadd_ps(
            cvt_i16lo_ps(_mm256_extracti128_si256(v0, 1)),
            _mm256_loadu_ps(w + i + 8), acc1);
        acc2 = _mm256_fmadd_ps(cvt_i16lo_ps(_mm256_castsi256_si128(v1)),
                               _mm256_loadu_ps(w + i + 16), acc2);
        acc3 = _mm256_fmadd_ps(
            cvt_i16lo_ps(_mm256_extracti128_si256(v1, 1)),
            _mm256_loadu_ps(w + i + 24), acc3);
    }
    float total = hsum_ps(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                        _mm256_add_ps(acc2, acc3)));
    for (; i < n; ++i) total += static_cast<float>(x[i]) * w[i];
    return total * qx;
}

float
dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m128i lo = _mm256_castsi256_si128(wv);
        const __m128i hi = _mm256_extracti128_si256(wv, 1);
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               cvt_i8lo_ps(lo), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8),
                               cvt_i8lo_ps(_mm_srli_si128(lo, 8)), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16),
                               cvt_i8lo_ps(hi), acc2);
        acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 24),
                               cvt_i8lo_ps(_mm_srli_si128(hi, 8)), acc3);
    }
    float total = hsum_ps(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                        _mm256_add_ps(acc2, acc3)));
    for (; i < n; ++i) total += x[i] * static_cast<float>(w[i]);
    return total * qm;
}

float
dot_dfm16(const float* x, const std::int16_t* w, std::size_t n, float qm)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    __m256 acc2 = _mm256_setzero_ps();
    __m256 acc3 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
        const __m256i v1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(w + i + 16));
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i),
                               cvt_i16lo_ps(_mm256_castsi256_si128(v0)),
                               acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(x + i + 8),
            cvt_i16lo_ps(_mm256_extracti128_si256(v0, 1)), acc1);
        acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 16),
                               cvt_i16lo_ps(_mm256_castsi256_si128(v1)),
                               acc2);
        acc3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(x + i + 24),
            cvt_i16lo_ps(_mm256_extracti128_si256(v1, 1)), acc3);
    }
    float total = hsum_ps(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                        _mm256_add_ps(acc2, acc3)));
    for (; i < n; ++i) total += x[i] * static_cast<float>(w[i]);
    return total * qm;
}

#endif // BUCKWILD_HAVE_FMA_KERNELS

} // namespace buckwild::simd::fma
