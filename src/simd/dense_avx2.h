/**
 * @file
 * Hand-optimized AVX2 dense kernels (§5.1) — the "programming in assembly"
 * implementation the paper recommends.
 *
 * The signature-defining instruction choices, per the paper:
 *
 *  - D8M8 dot uses `vpmaddubsw` (8-bit fused multiply-add producing 16-bit
 *    pairs with no loss of precision) via the abs/sign trick for
 *    signed x signed inputs, then `vpmaddwd` to widen to 32-bit lanes —
 *    one or two instructions where GCC's float-cast code needs a dozen.
 *  - 16-bit dots use `vpmaddwd` directly.
 *  - fixed-model AXPYs multiply by the fixed-point scalar in 16/32-bit
 *    lanes, add the shared 256-bit dither register (§5.2: one vectorized
 *    XORSHIFT draw per iteration), arithmetic-shift, and pack back with
 *    saturation.
 *
 * Every fixed-point kernel here is bit-identical to its reference
 * counterpart in dense_ref.h (enforced by tests/test_simd.cpp); the
 * float-accumulating dots differ only in summation order.
 *
 * All kernels handle arbitrary n (vector body + exact scalar tail) and
 * tolerate unaligned pointers.
 */
#ifndef BUCKWILD_SIMD_DENSE_AVX2_H
#define BUCKWILD_SIMD_DENSE_AVX2_H

#include <cstddef>
#include <cstdint>

#include "simd/fixed_scalar.h"

namespace buckwild::simd::avx2 {

/// True when the library was built with AVX2 kernels (BUCKWILD_ENABLE_AVX2).
bool available();

float dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
               float scale);
float dot_d8m16(const std::int8_t* x, const std::int16_t* w, std::size_t n,
                float scale);
float dot_d16m8(const std::int16_t* x, const std::int8_t* w, std::size_t n,
                float scale);
float dot_d16m16(const std::int16_t* x, const std::int16_t* w, std::size_t n,
                 float scale);
float dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx);
float dot_d16mf(const std::int16_t* x, const float* w, std::size_t n,
                float qx);
float dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm);
float dot_dfm16(const float* x, const std::int16_t* w, std::size_t n,
                float qm);
float dot_dfmf(const float* x, const float* w, std::size_t n);

void axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
               FixedScalar cs, const DitherBlock& dither);
void axpy_d16m8(std::int8_t* w, const std::int16_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& dither);
void axpy_d8m16(std::int16_t* w, const std::int8_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& dither);
void axpy_d16m16(std::int16_t* w, const std::int16_t* x, std::size_t n,
                 FixedScalar cs, const DitherBlock& dither);
void axpy_dfm8(std::int8_t* w, const float* x, std::size_t n, float cf,
               const DitherBlock& dither);
void axpy_dfm16(std::int16_t* w, const float* x, std::size_t n, float cf,
                const DitherBlock& dither);
void axpy_d8mf(float* w, const std::int8_t* x, std::size_t n, float cf);
void axpy_d16mf(float* w, const std::int16_t* x, std::size_t n, float cf);
void axpy_dfmf(float* w, const float* x, std::size_t n, float cf);

} // namespace buckwild::simd::avx2

#endif // BUCKWILD_SIMD_DENSE_AVX2_H
