/**
 * @file
 * Sparse kernel registration and per-index-rep vtable resolution.
 *
 * Two backends (reference scalar, unrolled "avx2 tier") x three index
 * reps (i8 / i16 / i32) x {dot, axpy} register into the KernelLibrary
 * under stable op names with the normalized SparseOps signatures. The
 * unrolled tier only applies to absolute index streams — delta decoding
 * carries a loop dependence — so its adapters fall back to the scalar
 * loop for IndexMode::kDelta rather than mis-decoding.
 */
#include "simd/sparse_ops.h"

namespace buckwild::simd {

namespace {

template <typename I>
float
ref_dot(const float* val, const I* idx, std::size_t nnz, const float* w,
        float scale, sparse::IndexMode mode)
{
    return sparse::dot<float, float, I>(val, idx, nnz, w, scale, mode);
}

template <typename I>
void
ref_axpy(float* w, const float* val, const I* idx, std::size_t nnz,
         float c, sparse::IndexMode mode)
{
    sparse::axpy<float, float, I>(w, val, idx, nnz, FixedScalar{0, 0}, c,
                                  biased_unit(), mode);
}

template <typename I>
float
unrolled_dot(const float* val, const I* idx, std::size_t nnz,
             const float* w, float scale, sparse::IndexMode mode)
{
    if (mode == sparse::IndexMode::kDelta)
        return sparse::dot<float, float, I>(val, idx, nnz, w, scale, mode);
    return sparse::dot_unrolled<float, float, I>(val, idx, nnz, w, scale);
}

/// 4-way unrolled scatter. The stores stay in program order (each
/// statement is a separate read-modify-write), so duplicate indices —
/// which the gradient path never produces, but the contract tolerates —
/// still apply sequentially.
template <typename I>
void
unrolled_axpy(float* w, const float* val, const I* idx, std::size_t nnz,
              float c, sparse::IndexMode mode)
{
    if (mode == sparse::IndexMode::kDelta) {
        ref_axpy<I>(w, val, idx, nnz, c, mode);
        return;
    }
    std::size_t j = 0;
    for (; j + 4 <= nnz; j += 4) {
        w[idx[j]] += c * val[j];
        w[idx[j + 1]] += c * val[j + 1];
        w[idx[j + 2]] += c * val[j + 2];
        w[idx[j + 3]] += c * val[j + 3];
    }
    for (; j < nnz; ++j) w[idx[j]] += c * val[j];
}

template <typename I>
void
register_index_rep(KernelLibrary& lib)
{
    lib.add(SparseIndexNames<I>::dot, Impl::kReference,
            reinterpret_cast<void*>(&ref_dot<I>), nullptr);
    lib.add(SparseIndexNames<I>::axpy, Impl::kReference,
            reinterpret_cast<void*>(&ref_axpy<I>), nullptr);
    // The unrolled tier is portable C++ (no intrinsics — sparse access
    // is gather bound), registered under kAvx2 so forced-tier sweeps and
    // the fallback chain treat it like the dense hand-optimized tier.
    lib.add(SparseIndexNames<I>::dot, Impl::kAvx2,
            reinterpret_cast<void*>(&unrolled_dot<I>), nullptr);
    lib.add(SparseIndexNames<I>::axpy, Impl::kAvx2,
            reinterpret_cast<void*>(&unrolled_axpy<I>), nullptr);
}

} // namespace

void
register_sparse_kernels()
{
    static const bool once = [] {
        KernelLibrary& lib = KernelLibrary::instance();
        register_index_rep<std::uint8_t>(lib);
        register_index_rep<std::uint16_t>(lib);
        register_index_rep<std::uint32_t>(lib);
        return true;
    }();
    (void)once;
}

template <typename I>
const typename SparseOps<I>::Vtable&
SparseOps<I>::vtable()
{
    static const Vtable vt = [] {
        register_sparse_kernels();
        const KernelLibrary& lib = KernelLibrary::instance();
        Vtable t;
        for (Impl impl : kAllImpls) {
            t.dot[impl_index(impl)] =
                lib.get<DotFn>(SparseIndexNames<I>::dot, impl);
            t.axpy[impl_index(impl)] =
                lib.get<AxpyFn>(SparseIndexNames<I>::axpy, impl);
        }
        return t;
    }();
    return vt;
}

template const SparseOps<std::uint8_t>::Vtable&
SparseOps<std::uint8_t>::vtable();
template const SparseOps<std::uint16_t>::Vtable&
SparseOps<std::uint16_t>::vtable();
template const SparseOps<std::uint32_t>::Vtable&
SparseOps<std::uint32_t>::vtable();

void
warm_sparse_kernels()
{
    (void)SparseOps<std::uint8_t>::vtable();
    (void)SparseOps<std::uint16_t>::vtable();
    (void)SparseOps<std::uint32_t>::vtable();
}

} // namespace buckwild::simd
