/**
 * @file
 * One cached CPUID probe for the whole process.
 *
 * Before the kernel registry existed, each kernel family carried its own
 * runtime check (`avx2::available()`, a per-call AVX-512 probe in
 * dense_avx512); this unit consolidates them. `host_cpu()` runs the
 * CPUID queries exactly once and every predicate — registry variant
 * selection, `best_impl()`, the avx512 safety guards — reads the cached
 * struct.
 *
 * Compile-time capability (were the AVX2 kernels even built?) is a
 * separate axis from host capability (does this CPU execute them?): a
 * fleet ships one binary built with AVX2 + FMA and each host narrows the
 * usable set at startup. `kBuiltWithAvx2` captures the build axis for
 * the globally-flagged translation units.
 */
#ifndef BUCKWILD_SIMD_CPU_H
#define BUCKWILD_SIMD_CPU_H

namespace buckwild::simd {

/// Host CPU capabilities relevant to the kernel variants.
struct CpuFeatures
{
    bool avx2 = false;
    bool fma = false;
    bool avx512f = false;
    bool avx512bw = false;

    /// The AVX-512 kernels need both F (32-bit lanes) and BW (8/16-bit).
    bool
    avx512() const
    {
        return avx512f && avx512bw;
    }
};

/// Fresh CPUID probe (exposed for testing; prefer host_cpu()).
CpuFeatures detect_cpu_features();

/// The cached once-per-process probe every dispatch decision reads.
const CpuFeatures& host_cpu();

/// True when this translation unit set was compiled with AVX2 codegen
/// (BUCKWILD_ENABLE_AVX2): the build axis of variant support.
#ifdef __AVX2__
inline constexpr bool kBuiltWithAvx2 = true;
#else
inline constexpr bool kBuiltWithAvx2 = false;
#endif

} // namespace buckwild::simd

#endif // BUCKWILD_SIMD_CPU_H
