/**
 * @file
 * See dense_naive.h. This translation unit is compiled with -Ofast
 * (set in src/simd/CMakeLists.txt) to give the compiler its best shot,
 * matching the paper's GCC baseline.
 */
#include "simd/dense_naive.h"

#include <cmath>

namespace buckwild::simd::naive {

namespace {

// The straightforward "cast up to float and accumulate" dot loop of
// Figure 1. GCC vectorizes this with cvt + mulps + addps chains — many
// instructions per element compared to one vpmaddubsw.
template <typename Dx, typename Dw>
float
dot_cast(const Dx* x, const Dw* w, std::size_t n, float scale)
{
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<float>(x[i]) * static_cast<float>(w[i]);
    return acc * scale;
}

// The straightforward fixed-model AXPY: everything in float, then round
// and clamp on the store.
template <typename Dx, typename Mw>
void
axpy_cast(Mw* w, const Dx* x, std::size_t n, FixedScalar cs,
          const DitherBlock& dither, float lo, float hi)
{
    const float mult = static_cast<float>(cs.mult);
    const float inv = 1.0f / static_cast<float>(1 << cs.shift);
    for (std::size_t i = 0; i < n; ++i) {
        const float u =
            static_cast<float>(dither.dither_fixed(i, cs.shift));
        const float delta =
            std::floor((mult * static_cast<float>(x[i]) + u) * inv);
        float v = static_cast<float>(w[i]) + delta;
        if (v > hi) v = hi;
        if (v < lo) v = lo;
        w[i] = static_cast<Mw>(v);
    }
}

template <typename Mw>
void
axpy_float_data(Mw* w, const float* x, std::size_t n, float cf,
                const DitherBlock& dither, float lo, float hi)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float delta = std::floor(cf * x[i] + dither.dither_unit(i));
        float v = static_cast<float>(w[i]) + delta;
        if (v > hi) v = hi;
        if (v < lo) v = lo;
        w[i] = static_cast<Mw>(v);
    }
}

} // namespace

float
dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
         float scale)
{
    return dot_cast(x, w, n, scale);
}

float
dot_d8m16(const std::int8_t* x, const std::int16_t* w, std::size_t n,
          float scale)
{
    return dot_cast(x, w, n, scale);
}

float
dot_d16m8(const std::int16_t* x, const std::int8_t* w, std::size_t n,
          float scale)
{
    return dot_cast(x, w, n, scale);
}

float
dot_d16m16(const std::int16_t* x, const std::int16_t* w, std::size_t n,
           float scale)
{
    return dot_cast(x, w, n, scale);
}

float
dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx)
{
    return dot_cast(x, w, n, qx);
}

float
dot_d16mf(const std::int16_t* x, const float* w, std::size_t n, float qx)
{
    return dot_cast(x, w, n, qx);
}

float
dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm)
{
    return dot_cast(x, w, n, qm);
}

float
dot_dfm16(const float* x, const std::int16_t* w, std::size_t n, float qm)
{
    return dot_cast(x, w, n, qm);
}

float
dot_dfmf(const float* x, const float* w, std::size_t n)
{
    return dot_cast(x, w, n, 1.0f);
}

void
axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n, FixedScalar cs,
          const DitherBlock& dither)
{
    axpy_cast(w, x, n, cs, dither, -127.0f, 127.0f);
}

void
axpy_d16m8(std::int8_t* w, const std::int16_t* x, std::size_t n,
           FixedScalar cs, const DitherBlock& dither)
{
    axpy_cast(w, x, n, cs, dither, -127.0f, 127.0f);
}

void
axpy_d8m16(std::int16_t* w, const std::int8_t* x, std::size_t n,
           FixedScalar cs, const DitherBlock& dither)
{
    axpy_cast(w, x, n, cs, dither, -32767.0f, 32767.0f);
}

void
axpy_d16m16(std::int16_t* w, const std::int16_t* x, std::size_t n,
            FixedScalar cs, const DitherBlock& dither)
{
    axpy_cast(w, x, n, cs, dither, -32767.0f, 32767.0f);
}

void
axpy_dfm8(std::int8_t* w, const float* x, std::size_t n, float cf,
          const DitherBlock& dither)
{
    axpy_float_data(w, x, n, cf, dither, -127.0f, 127.0f);
}

void
axpy_dfm16(std::int16_t* w, const float* x, std::size_t n, float cf,
           const DitherBlock& dither)
{
    axpy_float_data(w, x, n, cf, dither, -32767.0f, 32767.0f);
}

void
axpy_d8mf(float* w, const std::int8_t* x, std::size_t n, float cf)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] += cf * static_cast<float>(x[i]);
}

void
axpy_d16mf(float* w, const std::int16_t* x, std::size_t n, float cf)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] += cf * static_cast<float>(x[i]);
}

void
axpy_dfmf(float* w, const float* x, std::size_t n, float cf)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] += cf * x[i];
}

} // namespace buckwild::simd::naive
