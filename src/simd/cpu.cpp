#include "simd/cpu.h"

namespace buckwild::simd {

CpuFeatures
detect_cpu_features()
{
    CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2");
    f.fma = __builtin_cpu_supports("fma");
    f.avx512f = __builtin_cpu_supports("avx512f");
    f.avx512bw = __builtin_cpu_supports("avx512bw");
#endif
    return f;
}

const CpuFeatures&
host_cpu()
{
    static const CpuFeatures cached = detect_cpu_features();
    return cached;
}

} // namespace buckwild::simd
