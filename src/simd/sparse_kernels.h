/**
 * @file
 * Sparse dot and AXPY kernels.
 *
 * Sparse examples are (index, value) pairs from a CSR dataset. The index
 * stream may be stored at reduced *index precision* (§3: "these integer
 * values also can be made low-precision ... incurs no loss of statistical
 * efficiency"): absolute indices for widths that cover the model, or
 * delta-encoded gaps (footnote 6: "storing the difference between
 * successive nonzero entries") when the model is too large to index
 * directly. Gaps wider than the delta type are handled by the dataset
 * builder, which inserts explicit zero-valued padding entries.
 *
 * Unlike the dense case, sparse kernels are dominated by irregular
 * (gather/scatter) model accesses, so SIMD pays off far less — the paper's
 * Fig 4b even shows hand-vectorization *hurting* small sparse problems.
 * We provide:
 *   - reference scalar kernels (the semantic contract), and
 *   - "optimized" 4-way unrolled kernels with independent accumulators,
 *     which is as far as hand-optimization usefully goes here.
 */
#ifndef BUCKWILD_SIMD_SPARSE_KERNELS_H
#define BUCKWILD_SIMD_SPARSE_KERNELS_H

#include <cstddef>
#include <cstdint>
#include <type_traits>

#ifdef __AVX2__
#include <immintrin.h>
#endif

#include "simd/dense_ref.h"
#include "simd/fixed_scalar.h"

namespace buckwild::simd::sparse {

/// Index-stream decoding mode.
enum class IndexMode {
    kAbsolute, ///< idx[j] is the model coordinate directly
    kDelta,    ///< idx[j] is the gap from the previous coordinate
};

namespace detail {

template <typename I>
inline std::size_t
decode(IndexMode mode, std::size_t& cursor, I stored)
{
    if (mode == IndexMode::kAbsolute)
        return static_cast<std::size_t>(
            static_cast<std::make_unsigned_t<I>>(stored));
    cursor += static_cast<std::size_t>(
        static_cast<std::make_unsigned_t<I>>(stored));
    return cursor;
}

} // namespace detail

/**
 * Sparse dot: sum over nonzeros of value(x_j) * value(w[idx_j]).
 *
 * @tparam V  value rep: int8_t, int16_t, or float
 * @tparam W  model rep: int8_t, int16_t, or float
 * @tparam I  stored index type: uint8_t, uint16_t, or uint32_t
 * @param scale  qx*qm for fixed-fixed, the single quantum for mixed,
 *               1.0 for float-float.
 */
template <typename V, typename W, typename I>
float
dot(const V* val, const I* idx, std::size_t nnz, const W* w, float scale,
    IndexMode mode)
{
    std::size_t cursor = 0;
    if constexpr (std::is_integral_v<V> && std::is_integral_v<W>) {
        std::int64_t acc = 0;
        for (std::size_t j = 0; j < nnz; ++j) {
            const std::size_t k = detail::decode(mode, cursor, idx[j]);
            acc += static_cast<std::int64_t>(val[j]) *
                   static_cast<std::int64_t>(w[k]);
        }
        return static_cast<float>(acc) * scale;
    } else {
        double acc = 0.0;
        for (std::size_t j = 0; j < nnz; ++j) {
            const std::size_t k = detail::decode(mode, cursor, idx[j]);
            acc += static_cast<double>(val[j]) * static_cast<double>(w[k]);
        }
        return static_cast<float>(acc * scale);
    }
}

/// 4-way unrolled variant of dot() with independent accumulators — the
/// "hand-optimized" sparse path. Only valid for absolute indices (delta
/// decoding carries a loop dependence).
template <typename V, typename W, typename I>
float
dot_unrolled(const V* val, const I* idx, std::size_t nnz, const W* w,
             float scale)
{
    if constexpr (std::is_integral_v<V> && std::is_integral_v<W>) {
        std::int64_t a0 = 0, a1 = 0, a2 = 0, a3 = 0;
        std::size_t j = 0;
        for (; j + 4 <= nnz; j += 4) {
            a0 += static_cast<std::int64_t>(val[j]) * w[idx[j]];
            a1 += static_cast<std::int64_t>(val[j + 1]) * w[idx[j + 1]];
            a2 += static_cast<std::int64_t>(val[j + 2]) * w[idx[j + 2]];
            a3 += static_cast<std::int64_t>(val[j + 3]) * w[idx[j + 3]];
        }
        for (; j < nnz; ++j)
            a0 += static_cast<std::int64_t>(val[j]) * w[idx[j]];
        return static_cast<float>(a0 + a1 + a2 + a3) * scale;
    } else {
        double a0 = 0, a1 = 0, a2 = 0, a3 = 0;
        std::size_t j = 0;
        for (; j + 4 <= nnz; j += 4) {
            a0 += static_cast<double>(val[j]) * w[idx[j]];
            a1 += static_cast<double>(val[j + 1]) * w[idx[j + 1]];
            a2 += static_cast<double>(val[j + 2]) * w[idx[j + 2]];
            a3 += static_cast<double>(val[j + 3]) * w[idx[j + 3]];
        }
        for (; j < nnz; ++j)
            a0 += static_cast<double>(val[j]) * w[idx[j]];
        return static_cast<float>((a0 + a1 + a2 + a3) * scale);
    }
}

/**
 * Sparse AXPY for fixed models: w[idx_j] <- update(w[idx_j], val_j).
 * The rounding dither is indexed by nonzero position j (the dither block
 * is shared across the whole AXPY, as in the dense kernels).
 *
 * @param cs  fixed-point scale in model quanta per value raw unit
 *            (only used when V is integral)
 * @param cf  float scale in model quanta per value unit
 *            (only used when V is float)
 */
template <typename V, typename W, typename I>
void
axpy(W* w, const V* val, const I* idx, std::size_t nnz, FixedScalar cs,
     float cf, const DitherBlock& dither, IndexMode mode)
{
    std::size_t cursor = 0;
    for (std::size_t j = 0; j < nnz; ++j) {
        const std::size_t k = detail::decode(mode, cursor, idx[j]);
        if constexpr (std::is_same_v<W, std::int8_t>) {
            if constexpr (std::is_integral_v<V>) {
                w[k] = ref::update_m8(w[k], val[j], cs, dither.dither_fixed(j, cs.shift));
            } else {
                const std::int32_t delta =
                    ref::quantize_delta(cf, val[j], dither.dither_unit(j));
                w[k] = static_cast<std::int8_t>(
                    ref::saturate_model8(w[k] + saturate_i16(delta)));
            }
        } else if constexpr (std::is_same_v<W, std::int16_t>) {
            if constexpr (std::is_integral_v<V>) {
                w[k] =
                    ref::update_m16(w[k], val[j], cs, dither.dither_fixed(j, cs.shift));
            } else {
                const std::int32_t delta =
                    ref::quantize_delta(cf, val[j], dither.dither_unit(j));
                w[k] = static_cast<std::int16_t>(
                    ref::saturate_model16(w[k] + saturate_i16(delta)));
            }
        } else {
            static_assert(std::is_same_v<W, float>);
            w[k] += cf * static_cast<float>(val[j]);
        }
    }
}

/**
 * Gather-vectorized sparse dot for float models with 32-bit absolute
 * indices: values widened to float, model rows fetched with
 * vpgatherdps. This is the "fully hand-vectorized" sparse variant the
 * paper warns about (Fig 4b): gathers are slow enough that it often
 * loses to the scalar loop — we provide it so the trade-off is
 * measurable rather than asserted.
 */
float dot_gather_d8mf(const std::int8_t* val, const std::uint32_t* idx,
                      std::size_t nnz, const float* w, float qv);

inline float
dot_gather_d8mf(const std::int8_t* val, const std::uint32_t* idx,
                std::size_t nnz, const float* w, float qv)
{
#ifdef __AVX2__
    __m256 acc = _mm256_setzero_ps();
    std::size_t j = 0;
    for (; j + 8 <= nnz; j += 8) {
        const __m128i v8 =
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(val + j));
        const __m256 vf =
            _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(v8));
        const __m256i iv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(idx + j));
        const __m256 wv = _mm256_i32gather_ps(w, iv, 4);
        acc = _mm256_fmadd_ps(vf, wv, acc);
    }
    __m128 s = _mm_add_ps(_mm256_castps256_ps128(acc),
                          _mm256_extractf128_ps(acc, 1));
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
    float total = _mm_cvtss_f32(s);
    for (; j < nnz; ++j)
        total += static_cast<float>(val[j]) * w[idx[j]];
    return total * qv;
#else
    double acc = 0.0;
    for (std::size_t j = 0; j < nnz; ++j)
        acc += static_cast<double>(val[j]) * w[idx[j]];
    return static_cast<float>(acc * qv);
#endif
}

} // namespace buckwild::simd::sparse

#endif // BUCKWILD_SIMD_SPARSE_KERNELS_H
