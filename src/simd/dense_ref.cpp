#include "simd/dense_ref.h"

namespace buckwild::simd::ref {

namespace {

/// Generic exact fixed-fixed dot.
template <typename Dx, typename Dw>
float
dot_fixed(const Dx* x, const Dw* w, std::size_t n, float scale)
{
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<std::int64_t>(x[i]) * static_cast<std::int64_t>(w[i]);
    return static_cast<float>(acc) * scale;
}

/// Generic mixed dot: fixed x against float w (or vice versa by swapping).
template <typename Dx>
float
dot_fixed_float(const Dx* x, const float* w, std::size_t n, float q)
{
    // Double accumulation: the AVX2 kernels keep 8 float partial sums, so
    // exact float equality is not required here — the tests use relative
    // tolerance for all float-accumulating paths.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(w[i]);
    return static_cast<float>(acc * q);
}

} // namespace

float
dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
         float scale)
{
    return dot_fixed(x, w, n, scale);
}

float
dot_d8m16(const std::int8_t* x, const std::int16_t* w, std::size_t n,
          float scale)
{
    return dot_fixed(x, w, n, scale);
}

float
dot_d16m8(const std::int16_t* x, const std::int8_t* w, std::size_t n,
          float scale)
{
    return dot_fixed(x, w, n, scale);
}

float
dot_d16m16(const std::int16_t* x, const std::int16_t* w, std::size_t n,
           float scale)
{
    return dot_fixed(x, w, n, scale);
}

float
dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx)
{
    return dot_fixed_float(x, w, n, qx);
}

float
dot_d16mf(const std::int16_t* x, const float* w, std::size_t n, float qx)
{
    return dot_fixed_float(x, w, n, qx);
}

float
dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm)
{
    return dot_fixed_float(w, x, n, qm);
}

float
dot_dfm16(const float* x, const std::int16_t* w, std::size_t n, float qm)
{
    return dot_fixed_float(w, x, n, qm);
}

float
dot_dfmf(const float* x, const float* w, std::size_t n)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        acc += static_cast<double>(x[i]) * static_cast<double>(w[i]);
    return static_cast<float>(acc);
}

void
axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n, FixedScalar cs,
          const DitherBlock& dither)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] = update_m8(w[i], x[i], cs, dither.dither_fixed(i, cs.shift));
}

void
axpy_d16m8(std::int8_t* w, const std::int16_t* x, std::size_t n,
           FixedScalar cs, const DitherBlock& dither)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] = update_m8(w[i], x[i], cs, dither.dither_fixed(i, cs.shift));
}

void
axpy_d8m16(std::int16_t* w, const std::int8_t* x, std::size_t n,
           FixedScalar cs, const DitherBlock& dither)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] = update_m16(w[i], x[i], cs, dither.dither_fixed(i, cs.shift));
}

void
axpy_d16m16(std::int16_t* w, const std::int16_t* x, std::size_t n,
            FixedScalar cs, const DitherBlock& dither)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] = update_m16(w[i], x[i], cs, dither.dither_fixed(i, cs.shift));
}

void
axpy_dfm8(std::int8_t* w, const float* x, std::size_t n, float cf,
          const DitherBlock& dither)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t delta =
            quantize_delta(cf, x[i], dither.dither_unit(i));
        w[i] = static_cast<std::int8_t>(
            saturate_model8(w[i] + saturate_i16(delta)));
    }
}

void
axpy_dfm16(std::int16_t* w, const float* x, std::size_t n, float cf,
           const DitherBlock& dither)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t delta =
            quantize_delta(cf, x[i], dither.dither_unit(i));
        w[i] = static_cast<std::int16_t>(
            saturate_model16(w[i] + saturate_i16(delta)));
    }
}

void
axpy_d8mf(float* w, const std::int8_t* x, std::size_t n, float cf)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] += cf * static_cast<float>(x[i]);
}

void
axpy_d16mf(float* w, const std::int16_t* x, std::size_t n, float cf)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] += cf * static_cast<float>(x[i]);
}

void
axpy_dfmf(float* w, const float* x, std::size_t n, float cf)
{
    for (std::size_t i = 0; i < n; ++i)
        w[i] += cf * x[i];
}

} // namespace buckwild::simd::ref
