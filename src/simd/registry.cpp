#include "simd/registry.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace buckwild::simd {

const char*
to_string(Impl impl)
{
    switch (impl) {
      case Impl::kReference: return "reference";
      case Impl::kNaive: return "naive";
      case Impl::kAvx2: return "avx2";
      case Impl::kFma: return "fma";
      case Impl::kAvx512: return "avx512";
    }
    throw std::invalid_argument("unknown Impl");
}

std::optional<Impl>
parse_impl(std::string_view name)
{
    for (Impl impl : kAllImpls)
        if (name == to_string(impl)) return impl;
    return std::nullopt;
}

// ---------------------------------------------------------------- override

namespace {

// The override is read by every ambient dispatch (best_impl() sits on
// the dot/AXPY hot path), so reads must be one atomic load — no mutex.
// It is packed into an int: kUninit until the env is consumed, kNone for
// "no override", otherwise 1 + impl_index. Writers (force_impl and the
// one-time env parse) still serialize on the mutex.
constexpr int kOverrideUninit = -1;
constexpr int kOverrideNone = 0;

std::mutex g_override_mu;
std::atomic<int> g_override{kOverrideUninit};
std::atomic<std::uint64_t> g_generation{1};

int
encode_override(std::optional<Impl> impl)
{
    return impl ? 1 + impl_index(*impl) : kOverrideNone;
}

std::optional<Impl>
decode_override(int code)
{
    if (code <= kOverrideNone) return std::nullopt;
    return kAllImpls[code - 1];
}

/// Parses BUCKWILD_KERNEL_IMPL once. Unknown values warn and are
/// ignored — a fleet-wide env typo must not silently change kernels, and
/// must not kill the process either.
std::optional<Impl>
override_from_env()
{
    const char* env = std::getenv("BUCKWILD_KERNEL_IMPL");
    if (env == nullptr || *env == '\0') return std::nullopt;
    const std::optional<Impl> impl = parse_impl(env);
    if (!impl) {
        std::fprintf(stderr,
                     "buckwild: ignoring unknown BUCKWILD_KERNEL_IMPL "
                     "\"%s\" (want reference|naive|avx2|fma|avx512)\n",
                     env);
    }
    return impl;
}

/// Consumes the env under the mutex; returns the now-initialized code.
int
override_init_slow()
{
    std::lock_guard<std::mutex> lock(g_override_mu);
    int code = g_override.load(std::memory_order_relaxed);
    if (code == kOverrideUninit) {
        code = encode_override(override_from_env());
        g_override.store(code, std::memory_order_release);
    }
    return code;
}

} // namespace

std::optional<Impl>
forced_impl()
{
    int code = g_override.load(std::memory_order_acquire);
    if (code == kOverrideUninit) code = override_init_slow();
    return decode_override(code);
}

std::optional<Impl>
force_impl(std::optional<Impl> impl)
{
    (void)forced_impl(); // make sure the env was consumed first
    std::lock_guard<std::mutex> lock(g_override_mu);
    const std::optional<Impl> prev =
        decode_override(g_override.load(std::memory_order_relaxed));
    g_override.store(encode_override(impl), std::memory_order_release);
    g_generation.fetch_add(1, std::memory_order_release);
    return prev;
}

std::uint64_t
kernel_generation()
{
    return g_generation.load(std::memory_order_acquire);
}

// ----------------------------------------------------------- the registry

namespace {

/// Fallback order per requested Impl. Naive is a measurement baseline,
/// never an implicit fallback target; everything else degrades toward
/// the scalar reference.
const Impl*
fallback_chain(Impl impl, int* len)
{
    static constexpr Impl kRef[] = {Impl::kReference};
    static constexpr Impl kNai[] = {Impl::kNaive, Impl::kReference};
    static constexpr Impl kA2[] = {Impl::kAvx2, Impl::kReference};
    static constexpr Impl kFm[] = {Impl::kFma, Impl::kAvx2,
                                   Impl::kReference};
    static constexpr Impl k512[] = {Impl::kAvx512, Impl::kFma, Impl::kAvx2,
                                    Impl::kReference};
    switch (impl) {
      case Impl::kReference: *len = 1; return kRef;
      case Impl::kNaive: *len = 2; return kNai;
      case Impl::kAvx2: *len = 2; return kA2;
      case Impl::kFma: *len = 3; return kFm;
      case Impl::kAvx512: *len = 4; return k512;
    }
    throw std::invalid_argument("unknown Impl");
}

bool
variant_runnable(const KernelLibrary::Variant& v)
{
    return v.supported == nullptr || v.supported();
}

} // namespace

void
KernelLibrary::add(std::string op, Impl impl, void* fn,
                   bool (*supported)())
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, variants] : ops_) {
        if (name != op) continue;
        for (auto& v : variants) {
            if (v.impl != impl) continue;
            v.fn = fn; // idempotent re-registration
            v.supported = supported;
            return;
        }
        variants.push_back(Variant{impl, fn, supported});
        return;
    }
    ops_.emplace_back(std::move(op),
                      std::vector<Variant>{Variant{impl, fn, supported}});
}

const std::vector<KernelLibrary::Variant>*
KernelLibrary::find(std::string_view op) const
{
    for (const auto& [name, variants] : ops_)
        if (name == op) return &variants;
    return nullptr;
}

KernelLibrary::Resolved
KernelLibrary::resolve(std::string_view op, Impl impl) const
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto* variants = find(op);
    if (variants == nullptr)
        throw std::invalid_argument("unknown kernel op: " + std::string(op));
    int len = 0;
    const Impl* chain = fallback_chain(impl, &len);
    for (int c = 0; c < len; ++c) {
        for (const auto& v : *variants) {
            if (v.impl == chain[c] && variant_runnable(v))
                return Resolved{v.impl, v.fn};
        }
    }
    throw std::invalid_argument("kernel op has no runnable variant: " +
                                std::string(op));
}

KernelLibrary::Resolved
KernelLibrary::resolve_auto(std::string_view op) const
{
    const std::optional<Impl> forced = forced_impl();
    return resolve(op, forced.value_or(Impl::kAvx512));
}

std::vector<std::string>
KernelLibrary::ops() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> names;
    names.reserve(ops_.size());
    for (const auto& [name, variants] : ops_) names.push_back(name);
    std::sort(names.begin(), names.end());
    return names;
}

std::vector<Impl>
KernelLibrary::registered(std::string_view op) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Impl> impls;
    if (const auto* variants = find(op)) {
        for (const auto& v : *variants) impls.push_back(v.impl);
        std::sort(impls.begin(), impls.end(),
                  [](Impl a, Impl b) { return impl_index(a) < impl_index(b); });
    }
    return impls;
}

bool
KernelLibrary::runnable(std::string_view op, Impl impl) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (const auto* variants = find(op)) {
        for (const auto& v : *variants)
            if (v.impl == impl) return variant_runnable(v);
    }
    return false;
}

KernelLibrary&
KernelLibrary::instance()
{
    static KernelLibrary library;
    return library;
}

} // namespace buckwild::simd
