/**
 * @file
 * KernelLibrary: runtime-dispatched registry of named kernel variants.
 *
 * Every array op in the tree — the nine Table-2 dense dot/AXPY pairs and
 * the lowp rounding/quantize kernels — registers its implementations
 * under a stable op name ("simd.dot_d8m8", "lowp.quantize_biased_i8",
 * ...) as `Impl`-tagged variants with a support predicate over the
 * cached CPU features (cpu.h). A resolver picks the fastest supported
 * variant per op; call sites cache the resolved function pointer (per
 * (D, M) vtable in simd/ops, generation-checked statics in lowp/round)
 * so the hot path stays one indirect call.
 *
 * Selection is overridable for tests, benches, and fleet debugging:
 *  - `BUCKWILD_KERNEL_IMPL=reference|naive|avx2|fma|avx512` (env), read
 *    once at first resolution;
 *  - `force_impl()` / `ForcedImplGuard` (programmatic), which bump a
 *    generation counter so generation-checked caches re-resolve.
 *
 * An unsupported or unregistered request falls down a fixed chain
 * (avx512 -> fma -> avx2 -> reference; naive -> reference), so every
 * resolution is total: one binary runs on any fleet host and simply
 * narrows to what the CPU can execute.
 */
#ifndef BUCKWILD_SIMD_REGISTRY_H
#define BUCKWILD_SIMD_REGISTRY_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace buckwild::simd {

/// Which kernel implementation executes the linear algebra.
enum class Impl {
    kReference, ///< exact-contract scalar loops
    kNaive,     ///< Figure-1-style code, compiler-vectorized at -Ofast
    kAvx2,      ///< hand-optimized AVX2 intrinsics (§5.1)
    kFma,       ///< FMA-unrolled float paths (integer paths via AVX2)
    kAvx512,    ///< 512-bit kernels (D8M8 + float native; rest via AVX2)
};

inline constexpr int kImplCount = 5;

inline constexpr Impl kAllImpls[kImplCount] = {
    Impl::kReference, Impl::kNaive, Impl::kAvx2, Impl::kFma, Impl::kAvx512,
};

constexpr int
impl_index(Impl impl)
{
    return static_cast<int>(impl);
}

/// "reference" / "naive" / "avx2" / "fma" / "avx512".
const char* to_string(Impl impl);

/// Inverse of to_string; nullopt for unknown names.
std::optional<Impl> parse_impl(std::string_view name);

/// True for the hand-vectorized implementations (AVX2 and wider) — the
/// ones that pair with the unrolled sparse kernels.
constexpr bool
is_vectorized(Impl impl)
{
    return impl == Impl::kAvx2 || impl == Impl::kFma ||
           impl == Impl::kAvx512;
}

// ---------------------------------------------------------------- override

/// The current selection override: the BUCKWILD_KERNEL_IMPL env value
/// (parsed once) unless force_impl() replaced it.
std::optional<Impl> forced_impl();

/// Replaces the override (nullopt clears it) and bumps the resolution
/// generation; returns the previous override.
std::optional<Impl> force_impl(std::optional<Impl> impl);

/// Monotone counter bumped by force_impl(); caches of resolved kernel
/// pointers revalidate against it.
std::uint64_t kernel_generation();

/// RAII variant forcing for tests: swaps the override in, restores the
/// previous one on destruction.
class ForcedImplGuard
{
  public:
    explicit ForcedImplGuard(std::optional<Impl> impl)
        : prev_(force_impl(impl))
    {}
    ~ForcedImplGuard() { force_impl(prev_); }
    ForcedImplGuard(const ForcedImplGuard&) = delete;
    ForcedImplGuard& operator=(const ForcedImplGuard&) = delete;

  private:
    std::optional<Impl> prev_;
};

// ----------------------------------------------------------- the registry

class KernelLibrary
{
  public:
    /// A registered implementation of one op. `supported` may be null
    /// (always runnable — the scalar variants).
    struct Variant
    {
        Impl impl;
        void* fn;
        bool (*supported)();
    };

    /// A resolution result: which variant actually backs the request.
    struct Resolved
    {
        Impl impl;
        void* fn;
    };

    void add(std::string op, Impl impl, void* fn,
             bool (*supported)() = nullptr);

    /// The variant that serves `impl` for `op`, following the fallback
    /// chain past unsupported/unregistered entries. Every op registers a
    /// reference variant, so resolution is total; throws
    /// std::invalid_argument for unknown op names.
    Resolved resolve(std::string_view op, Impl impl) const;

    /// The variant the per-process resolver picks: the override if one
    /// is set, else the fastest supported variant.
    Resolved resolve_auto(std::string_view op) const;

    /// Typed accessor over resolve().
    template <typename Fn>
    Fn
    get(std::string_view op, Impl impl) const
    {
        return reinterpret_cast<Fn>(resolve(op, impl).fn);
    }

    template <typename Fn>
    Fn
    get_auto(std::string_view op) const
    {
        return reinterpret_cast<Fn>(resolve_auto(op).fn);
    }

    /// All registered op names, sorted (for sweeps and gauges).
    std::vector<std::string> ops() const;

    /// The Impl tags registered for one op, in rank order.
    std::vector<Impl> registered(std::string_view op) const;

    /// True when `op`'s variant for `impl` is registered AND its
    /// predicate passes on this host (no fallback considered).
    bool runnable(std::string_view op, Impl impl) const;

    /// The process-wide library. Kernel families self-register on first
    /// use (register_dense_kernels / lowp's ensure hook); sweeps should
    /// call those registration hooks before enumerating.
    static KernelLibrary& instance();

  private:
    mutable std::mutex mu_;
    std::vector<std::pair<std::string, std::vector<Variant>>> ops_;

    const std::vector<Variant>* find(std::string_view op) const;
};

// Defined in ops.cpp (needs the kernel families' predicates):

/// Idempotent registration of the nine dense (D, M) families. Called by
/// the DenseOps vtables; sweeps call it before enumerating the library.
void register_dense_kernels();

/// True when `impl` can execute on this host in this build.
bool impl_supported(Impl impl);

/// The implementation the per-process resolver hands out: the override
/// (clamped to supported) if set, else the fastest supported variant.
Impl best_impl();

/// `requested` clamped down the fallback chain to a supported Impl.
Impl resolve_impl(Impl requested);

} // namespace buckwild::simd

#endif // BUCKWILD_SIMD_REGISTRY_H
