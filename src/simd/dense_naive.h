/**
 * @file
 * "Generic code" dense kernels — the compiler-vectorized baseline of §5.1.
 *
 * These loops are written exactly the way the paper's Figure 1 writes SGD:
 * every low-precision element is cast up to float, the arithmetic happens
 * in float, and the result is cast back down with rounding. The C++
 * language semantics force this structure (an int8*int8 multiply would
 * overflow), and — as §5.1 explains — GCC cannot rediscover the fused
 * low-precision instructions from it, so even at -Ofast (which this
 * translation unit is compiled with, matching the paper) these run up to
 * ~11x slower than the hand kernels in dense_avx2.h.
 *
 * Rounding semantics intentionally match the reference kernels so that
 * Fig 4's comparison is apples-to-apples: same dither block, same
 * saturation, only the instruction selection differs.
 */
#ifndef BUCKWILD_SIMD_DENSE_NAIVE_H
#define BUCKWILD_SIMD_DENSE_NAIVE_H

#include <cstddef>
#include <cstdint>

#include "simd/fixed_scalar.h"

namespace buckwild::simd::naive {

// dot: float-cast element products, float accumulation (what Figure 1's
// `xi_dot_w += x[i] * w[i]` does after type promotion).
float dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
               float scale);
float dot_d8m16(const std::int8_t* x, const std::int16_t* w, std::size_t n,
                float scale);
float dot_d16m8(const std::int16_t* x, const std::int8_t* w, std::size_t n,
                float scale);
float dot_d16m16(const std::int16_t* x, const std::int16_t* w, std::size_t n,
                 float scale);
float dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx);
float dot_d16mf(const std::int16_t* x, const float* w, std::size_t n,
                float qx);
float dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm);
float dot_dfm16(const float* x, const std::int16_t* w, std::size_t n,
                float qm);
float dot_dfmf(const float* x, const float* w, std::size_t n);

// AXPY: float-cast update then quantize back (Figure 1's
// `w[i] += scale_a * x[i]` with the cast-to-low-precision store).
void axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
               FixedScalar cs, const DitherBlock& dither);
void axpy_d16m8(std::int8_t* w, const std::int16_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& dither);
void axpy_d8m16(std::int16_t* w, const std::int8_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& dither);
void axpy_d16m16(std::int16_t* w, const std::int16_t* x, std::size_t n,
                 FixedScalar cs, const DitherBlock& dither);
void axpy_dfm8(std::int8_t* w, const float* x, std::size_t n, float cf,
               const DitherBlock& dither);
void axpy_dfm16(std::int16_t* w, const float* x, std::size_t n, float cf,
                const DitherBlock& dither);
void axpy_d8mf(float* w, const std::int8_t* x, std::size_t n, float cf);
void axpy_d16mf(float* w, const std::int16_t* x, std::size_t n, float cf);
void axpy_dfmf(float* w, const float* x, std::size_t n, float cf);

} // namespace buckwild::simd::naive

#endif // BUCKWILD_SIMD_DENSE_NAIVE_H
