#include "simd/ops.h"

#include <stdexcept>

namespace buckwild::simd {

const char*
to_string(Impl impl)
{
    switch (impl) {
      case Impl::kReference: return "reference";
      case Impl::kNaive: return "naive";
      case Impl::kAvx2: return "avx2";
      case Impl::kAvx512: return "avx512";
    }
    throw std::invalid_argument("unknown Impl");
}

Impl
best_impl()
{
    if (avx512::available()) return Impl::kAvx512;
    return avx2::available() ? Impl::kAvx2 : Impl::kReference;
}

} // namespace buckwild::simd
