/**
 * @file
 * Dense kernel registration and per-(D, M) vtable resolution.
 *
 * Five backends (reference, naive, avx2, fma, avx512) x nine Table-2
 * pairs x {dot, axpy} register into the KernelLibrary under stable op
 * names. Each registered function is an adapter with the normalized
 * registry signature that performs the pair's scale conversion (the
 * logic the old BUCKWILD_DENSE_OPS switch pyramids inlined) and calls
 * the backend kernel. Vtables resolve every Impl slot once per process,
 * applying the support predicates and fallback chain, so Impl::kAvx512
 * on a host without AVX-512 lands on the AVX2 adapter with no per-call
 * probe.
 */
#include "simd/ops.h"

#include "simd/cpu.h"
#include "simd/dense_avx2.h"
#include "simd/dense_avx512.h"
#include "simd/dense_fma.h"
#include "simd/dense_naive.h"
#include "simd/dense_ref.h"

namespace buckwild::simd {

namespace {

// Backend tags: compile-time handles over each variant namespace, so the
// adapters below can be stamped once and instantiated per backend.
#define BUCKWILD_BACKEND(TAG, NS, IMPL, SUPPORTED)                         \
    struct TAG                                                             \
    {                                                                      \
        static constexpr Impl impl = IMPL;                                 \
        static constexpr bool (*supported)() = SUPPORTED;                  \
        static constexpr auto dot_d8m8 = NS::dot_d8m8;                     \
        static constexpr auto dot_d16m8 = NS::dot_d16m8;                   \
        static constexpr auto dot_d8m16 = NS::dot_d8m16;                   \
        static constexpr auto dot_d16m16 = NS::dot_d16m16;                 \
        static constexpr auto dot_dfm8 = NS::dot_dfm8;                     \
        static constexpr auto dot_dfm16 = NS::dot_dfm16;                   \
        static constexpr auto dot_d8mf = NS::dot_d8mf;                     \
        static constexpr auto dot_d16mf = NS::dot_d16mf;                   \
        static constexpr auto dot_dfmf = NS::dot_dfmf;                     \
        static constexpr auto axpy_d8m8 = NS::axpy_d8m8;                   \
        static constexpr auto axpy_d16m8 = NS::axpy_d16m8;                 \
        static constexpr auto axpy_d8m16 = NS::axpy_d8m16;                 \
        static constexpr auto axpy_d16m16 = NS::axpy_d16m16;               \
        static constexpr auto axpy_dfm8 = NS::axpy_dfm8;                   \
        static constexpr auto axpy_dfm16 = NS::axpy_dfm16;                 \
        static constexpr auto axpy_d8mf = NS::axpy_d8mf;                   \
        static constexpr auto axpy_d16mf = NS::axpy_d16mf;                 \
        static constexpr auto axpy_dfmf = NS::axpy_dfmf;                   \
    };

BUCKWILD_BACKEND(RefBackend, ref, Impl::kReference, nullptr)
BUCKWILD_BACKEND(NaiveBackend, naive, Impl::kNaive, nullptr)
BUCKWILD_BACKEND(Avx2Backend, avx2, Impl::kAvx2, &avx2::available)
BUCKWILD_BACKEND(FmaBackend, fma, Impl::kFma, &fma::available)
BUCKWILD_BACKEND(Avx512Backend, avx512, Impl::kAvx512,
                 &avx512::available)

#undef BUCKWILD_BACKEND

// Adapters: normalized (qx, qm, real-valued c) signatures -> the native
// kernel parameterization. One adapter struct per pair shape.

// Fixed-model pairs: dot scale = qx*qm; the AXPY coefficient converts to
// model quanta per raw x unit and quantizes into a FixedScalar.
#define BUCKWILD_FIXED_ADAPTER(D, M, SUFFIX)                               \
    template <typename B>                                                  \
    struct Adapt_##SUFFIX                                                  \
    {                                                                      \
        static float                                                       \
        dot(const D* x, const M* w, std::size_t n, float qx, float qm)     \
        {                                                                  \
            return B::dot_##SUFFIX(x, w, n, qx * qm);                      \
        }                                                                  \
        static void                                                        \
        axpy(M* w, const D* x, std::size_t n, float c, float qx, float qm, \
             const DitherBlock& dither)                                    \
        {                                                                  \
            B::axpy_##SUFFIX(w, x, n, make_scalar_##SUFFIX(c * qx / qm),   \
                             dither);                                      \
        }                                                                  \
    };

BUCKWILD_FIXED_ADAPTER(std::int8_t, std::int8_t, d8m8)
BUCKWILD_FIXED_ADAPTER(std::int16_t, std::int8_t, d16m8)
BUCKWILD_FIXED_ADAPTER(std::int8_t, std::int16_t, d8m16)
BUCKWILD_FIXED_ADAPTER(std::int16_t, std::int16_t, d16m16)

#undef BUCKWILD_FIXED_ADAPTER

// Float dataset, fixed model: dot scales by qm; AXPY writes quantized
// deltas of c/qm model quanta with unit dither.
#define BUCKWILD_DFMFIXED_ADAPTER(M, SUFFIX)                               \
    template <typename B>                                                  \
    struct Adapt_##SUFFIX                                                  \
    {                                                                      \
        static float                                                       \
        dot(const float* x, const M* w, std::size_t n, float /*qx*/,       \
            float qm)                                                      \
        {                                                                  \
            return B::dot_##SUFFIX(x, w, n, qm);                           \
        }                                                                  \
        static void                                                        \
        axpy(M* w, const float* x, std::size_t n, float c, float /*qx*/,   \
             float qm, const DitherBlock& dither)                          \
        {                                                                  \
            B::axpy_##SUFFIX(w, x, n, c / qm, dither);                     \
        }                                                                  \
    };

BUCKWILD_DFMFIXED_ADAPTER(std::int8_t, dfm8)
BUCKWILD_DFMFIXED_ADAPTER(std::int16_t, dfm16)

#undef BUCKWILD_DFMFIXED_ADAPTER

// Fixed dataset, float model: dot scales by qx; AXPY adds c*qx per raw x
// unit, no dither (float writes round nothing).
#define BUCKWILD_DFIXEDMF_ADAPTER(D, SUFFIX)                               \
    template <typename B>                                                  \
    struct Adapt_##SUFFIX                                                  \
    {                                                                      \
        static float                                                       \
        dot(const D* x, const float* w, std::size_t n, float qx,           \
            float /*qm*/)                                                  \
        {                                                                  \
            return B::dot_##SUFFIX(x, w, n, qx);                           \
        }                                                                  \
        static void                                                        \
        axpy(float* w, const D* x, std::size_t n, float c, float qx,       \
             float /*qm*/, const DitherBlock& /*dither*/)                  \
        {                                                                  \
            B::axpy_##SUFFIX(w, x, n, c * qx);                             \
        }                                                                  \
    };

BUCKWILD_DFIXEDMF_ADAPTER(std::int8_t, d8mf)
BUCKWILD_DFIXEDMF_ADAPTER(std::int16_t, d16mf)

#undef BUCKWILD_DFIXEDMF_ADAPTER

template <typename B>
struct Adapt_dfmf
{
    static float
    dot(const float* x, const float* w, std::size_t n, float /*qx*/,
        float /*qm*/)
    {
        return B::dot_dfmf(x, w, n);
    }
    static void
    axpy(float* w, const float* x, std::size_t n, float c, float /*qx*/,
         float /*qm*/, const DitherBlock& /*dither*/)
    {
        B::axpy_dfmf(w, x, n, c);
    }
};

template <template <typename> class Adapter, typename D, typename M>
void
register_pair(KernelLibrary& lib)
{
    const auto add_backend = [&lib](auto tag) {
        using B = decltype(tag);
        lib.add(DensePairNames<D, M>::dot, B::impl,
                reinterpret_cast<void*>(&Adapter<B>::dot), B::supported);
        lib.add(DensePairNames<D, M>::axpy, B::impl,
                reinterpret_cast<void*>(&Adapter<B>::axpy), B::supported);
    };
    add_backend(RefBackend{});
    add_backend(NaiveBackend{});
    add_backend(Avx2Backend{});
    add_backend(FmaBackend{});
    add_backend(Avx512Backend{});
}

void
do_register(KernelLibrary& lib)
{
    register_pair<Adapt_d8m8, std::int8_t, std::int8_t>(lib);
    register_pair<Adapt_d16m8, std::int16_t, std::int8_t>(lib);
    register_pair<Adapt_d8m16, std::int8_t, std::int16_t>(lib);
    register_pair<Adapt_d16m16, std::int16_t, std::int16_t>(lib);
    register_pair<Adapt_dfm8, float, std::int8_t>(lib);
    register_pair<Adapt_dfm16, float, std::int16_t>(lib);
    register_pair<Adapt_d8mf, std::int8_t, float>(lib);
    register_pair<Adapt_d16mf, std::int16_t, float>(lib);
    register_pair<Adapt_dfmf, float, float>(lib);
}

} // namespace

void
register_dense_kernels()
{
    static const bool once = [] {
        do_register(KernelLibrary::instance());
        return true;
    }();
    (void)once;
}

bool
impl_supported(Impl impl)
{
    switch (impl) {
      case Impl::kReference:
      case Impl::kNaive: return true;
      case Impl::kAvx2: return avx2::available();
      case Impl::kFma: return fma::available();
      case Impl::kAvx512: return avx512::available();
    }
    return false;
}

Impl
resolve_impl(Impl requested)
{
    switch (requested) {
      case Impl::kAvx512:
        if (impl_supported(Impl::kAvx512)) return Impl::kAvx512;
        [[fallthrough]];
      case Impl::kFma:
        if (impl_supported(Impl::kFma)) return Impl::kFma;
        [[fallthrough]];
      case Impl::kAvx2:
        if (impl_supported(Impl::kAvx2)) return Impl::kAvx2;
        return Impl::kReference;
      case Impl::kNaive: return Impl::kNaive;
      case Impl::kReference:
      default: return Impl::kReference;
    }
}

Impl
best_impl()
{
    const std::optional<Impl> forced = forced_impl();
    return resolve_impl(forced.value_or(Impl::kAvx512));
}

template <typename D, typename M>
const typename DenseOps<D, M>::Vtable&
DenseOps<D, M>::vtable()
{
    static const Vtable vt = [] {
        register_dense_kernels();
        const KernelLibrary& lib = KernelLibrary::instance();
        Vtable t;
        for (Impl impl : kAllImpls) {
            t.dot[impl_index(impl)] =
                lib.get<DotFn>(DensePairNames<D, M>::dot, impl);
            t.axpy[impl_index(impl)] =
                lib.get<AxpyFn>(DensePairNames<D, M>::axpy, impl);
        }
        return t;
    }();
    return vt;
}

// The nine Table-2 signatures.
template const DenseOps<std::int8_t, std::int8_t>::Vtable&
DenseOps<std::int8_t, std::int8_t>::vtable();
template const DenseOps<std::int16_t, std::int8_t>::Vtable&
DenseOps<std::int16_t, std::int8_t>::vtable();
template const DenseOps<std::int8_t, std::int16_t>::Vtable&
DenseOps<std::int8_t, std::int16_t>::vtable();
template const DenseOps<std::int16_t, std::int16_t>::Vtable&
DenseOps<std::int16_t, std::int16_t>::vtable();
template const DenseOps<float, std::int8_t>::Vtable&
DenseOps<float, std::int8_t>::vtable();
template const DenseOps<float, std::int16_t>::Vtable&
DenseOps<float, std::int16_t>::vtable();
template const DenseOps<std::int8_t, float>::Vtable&
DenseOps<std::int8_t, float>::vtable();
template const DenseOps<std::int16_t, float>::Vtable&
DenseOps<std::int16_t, float>::vtable();
template const DenseOps<float, float>::Vtable&
DenseOps<float, float>::vtable();

void
warm_dense_kernels()
{
    (void)DenseOps<std::int8_t, std::int8_t>::vtable();
    (void)DenseOps<std::int16_t, std::int8_t>::vtable();
    (void)DenseOps<std::int8_t, std::int16_t>::vtable();
    (void)DenseOps<std::int16_t, std::int16_t>::vtable();
    (void)DenseOps<float, std::int8_t>::vtable();
    (void)DenseOps<float, std::int16_t>::vtable();
    (void)DenseOps<std::int8_t, float>::vtable();
    (void)DenseOps<std::int16_t, float>::vtable();
    (void)DenseOps<float, float>::vtable();
}

} // namespace buckwild::simd
