/**
 * @file
 * AVX-512 dense kernels — the "ever-widening SIMD capabilities" the paper
 * motivates low precision with (§5.1), one generation further than its
 * AVX2 target.
 *
 * Implemented natively at 512-bit width for the flagship D8M8 pair (dot
 * and AXPY, bit-identical to the reference contract) and the float-float
 * pair; every other (D, M) combination forwards to the AVX2 kernels.
 * AVX-512 has no vpsignb, so the D8M8 dot widens to 16-bit lanes and uses
 * vpmaddwd — two 512-bit madds per 64 elements, exact.
 *
 * All entry points are safe to call on any CPU: they check for AVX-512BW
 * support once at runtime and fall back to AVX2 otherwise.
 */
#ifndef BUCKWILD_SIMD_DENSE_AVX512_H
#define BUCKWILD_SIMD_DENSE_AVX512_H

#include <cstddef>
#include <cstdint>

#include "simd/dense_avx2.h"
#include "simd/fixed_scalar.h"

namespace buckwild::simd::avx512 {

/// True when this build has AVX-512 kernels AND the CPU supports them.
bool available();

float dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
               float scale);
void axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
               FixedScalar cs, const DitherBlock& dither);
float dot_dfmf(const float* x, const float* w, std::size_t n);
void axpy_dfmf(float* w, const float* x, std::size_t n, float cf);

// Pairs without native 512-bit kernels forward to the AVX2 versions so
// Impl::kAvx512 is usable with every signature.
inline float dot_d8m16(const std::int8_t* x, const std::int16_t* w,
                       std::size_t n, float scale)
{ return avx2::dot_d8m16(x, w, n, scale); }
inline float dot_d16m8(const std::int16_t* x, const std::int8_t* w,
                       std::size_t n, float scale)
{ return avx2::dot_d16m8(x, w, n, scale); }
inline float dot_d16m16(const std::int16_t* x, const std::int16_t* w,
                        std::size_t n, float scale)
{ return avx2::dot_d16m16(x, w, n, scale); }
inline float dot_d8mf(const std::int8_t* x, const float* w, std::size_t n,
                      float qx)
{ return avx2::dot_d8mf(x, w, n, qx); }
inline float dot_d16mf(const std::int16_t* x, const float* w,
                       std::size_t n, float qx)
{ return avx2::dot_d16mf(x, w, n, qx); }
inline float dot_dfm8(const float* x, const std::int8_t* w, std::size_t n,
                      float qm)
{ return avx2::dot_dfm8(x, w, n, qm); }
inline float dot_dfm16(const float* x, const std::int16_t* w,
                       std::size_t n, float qm)
{ return avx2::dot_dfm16(x, w, n, qm); }
inline void axpy_d16m8(std::int8_t* w, const std::int16_t* x,
                       std::size_t n, FixedScalar cs,
                       const DitherBlock& d)
{ avx2::axpy_d16m8(w, x, n, cs, d); }
inline void axpy_d8m16(std::int16_t* w, const std::int8_t* x,
                       std::size_t n, FixedScalar cs,
                       const DitherBlock& d)
{ avx2::axpy_d8m16(w, x, n, cs, d); }
inline void axpy_d16m16(std::int16_t* w, const std::int16_t* x,
                        std::size_t n, FixedScalar cs,
                        const DitherBlock& d)
{ avx2::axpy_d16m16(w, x, n, cs, d); }
inline void axpy_dfm8(std::int8_t* w, const float* x, std::size_t n,
                      float cf, const DitherBlock& d)
{ avx2::axpy_dfm8(w, x, n, cf, d); }
inline void axpy_dfm16(std::int16_t* w, const float* x, std::size_t n,
                       float cf, const DitherBlock& d)
{ avx2::axpy_dfm16(w, x, n, cf, d); }
inline void axpy_d8mf(float* w, const std::int8_t* x, std::size_t n,
                      float cf)
{ avx2::axpy_d8mf(w, x, n, cf); }
inline void axpy_d16mf(float* w, const std::int16_t* x, std::size_t n,
                       float cf)
{ avx2::axpy_d16mf(w, x, n, cf); }

} // namespace buckwild::simd::avx512

#endif // BUCKWILD_SIMD_DENSE_AVX512_H
