/**
 * @file
 * Registry facade for the sparse gradient kernels.
 *
 * The sparse path of the cluster tier (worker minibatch dots, shard
 * gather-scatter applies, serve-side sparse scoring) works on float
 * values against a float model, with the *index stream* stored at one of
 * the lowp index precisions (i8 / i16 / i32, absolute or delta-encoded —
 * paper §3 + footnote 6). SparseOps<I> mirrors DenseOps: per-index-rep
 * vtables of registry-resolved function pointers, one slot per `Impl`,
 * resolved once per process, so the hot path is a single indirect call.
 *
 * Variant tiers (sparse kernels are gather/scatter bound, so the ladder
 * is short — Fig 4b is exactly the warning that wide SIMD can lose here):
 *   - kReference: the scalar loops from simd/sparse_kernels.h (the
 *     semantic contract; double accumulation for dot);
 *   - kAvx2: the "hand-optimized" tier — 4-way unrolled independent
 *     accumulators for absolute indices, falling back to the scalar loop
 *     for delta streams (gap decoding carries a loop dependence).
 * Both tiers are portable C++; the kAvx2 registration exists so the
 * forced-tier comparator and fuzz sweeps exercise the unrolled path like
 * every dense op, and so a genuinely vectorized gather variant can slot
 * in later without touching callers.
 */
#ifndef BUCKWILD_SIMD_SPARSE_OPS_H
#define BUCKWILD_SIMD_SPARSE_OPS_H

#include <cstddef>
#include <cstdint>

#include "simd/registry.h"
#include "simd/sparse_kernels.h"

namespace buckwild::simd {

template <typename I>
struct SparseOps
{
    /// Registry-normalized signatures. `scale` multiplies the dot result
    /// (1.0 for plain float gradients); `c` is the AXPY coefficient in
    /// w[k] += c * val[j]. The index stream decodes per `mode`.
    using DotFn = float (*)(const float*, const I*, std::size_t,
                            const float*, float, sparse::IndexMode);
    using AxpyFn = void (*)(float*, const float*, const I*, std::size_t,
                            float, sparse::IndexMode);

    struct Vtable
    {
        DotFn dot[kImplCount];
        AxpyFn axpy[kImplCount];
    };

    /// The per-index-rep kernel table, resolved once per process from
    /// the KernelLibrary (defined in sparse_ops.cpp for i8/i16/i32).
    static const Vtable& vtable();

    static float
    dot(Impl impl, const float* val, const I* idx, std::size_t nnz,
        const float* w, float scale, sparse::IndexMode mode)
    {
        return vtable().dot[impl_index(impl)](val, idx, nnz, w, scale,
                                              mode);
    }

    static void
    axpy(Impl impl, float* w, const float* val, const I* idx,
         std::size_t nnz, float c, sparse::IndexMode mode)
    {
        vtable().axpy[impl_index(impl)](w, val, idx, nnz, c, mode);
    }

    // Ambient dispatch: the per-process resolver's pick, honoring the
    // BUCKWILD_KERNEL_IMPL / force_impl() override at call time.
    static float
    dot(const float* val, const I* idx, std::size_t nnz, const float* w,
        float scale, sparse::IndexMode mode)
    {
        return dot(best_impl(), val, idx, nnz, w, scale, mode);
    }

    static void
    axpy(float* w, const float* val, const I* idx, std::size_t nnz,
         float c, sparse::IndexMode mode)
    {
        axpy(best_impl(), w, val, idx, nnz, c, mode);
    }
};

/// Registers the sparse op family ("simd.sparse.dot_i8", ...) into the
/// KernelLibrary. Idempotent, called implicitly by vtable resolution.
void register_sparse_kernels();

/// Resolves every SparseOps<I> vtable now — same rationale as
/// warm_dense_kernels(): keep one-time registration out of RPC deadlines.
void warm_sparse_kernels();

/// Registry op names per index rep ("simd.sparse.dot_i8", ...), for
/// sweeps that pair a vtable with its library entries.
template <typename I>
struct SparseIndexNames;

#define BUCKWILD_SPARSE_INDEX_NAMES(I, SUFFIX)                             \
    template <>                                                            \
    struct SparseIndexNames<I>                                             \
    {                                                                      \
        static constexpr const char* suffix = #SUFFIX;                     \
        static constexpr const char* dot = "simd.sparse.dot_" #SUFFIX;     \
        static constexpr const char* axpy = "simd.sparse.axpy_" #SUFFIX;   \
    };

BUCKWILD_SPARSE_INDEX_NAMES(std::uint8_t, i8)
BUCKWILD_SPARSE_INDEX_NAMES(std::uint16_t, i16)
BUCKWILD_SPARSE_INDEX_NAMES(std::uint32_t, i32)

#undef BUCKWILD_SPARSE_INDEX_NAMES

} // namespace buckwild::simd

#endif // BUCKWILD_SIMD_SPARSE_OPS_H
