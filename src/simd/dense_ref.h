/**
 * @file
 * Reference scalar implementations of the dense dot and AXPY kernels.
 *
 * These define the *exact semantic contract* of the library's dense
 * operations: the hand-optimized AVX2 kernels (dense_avx2.h) must produce
 * bit-identical results for every fixed-point path, and the unit tests
 * enforce this. They are deliberately straightforward, unoptimized loops.
 *
 * Naming: `dot_d8m16` is the dot product of an 8-bit fixed dataset vector
 * with a 16-bit fixed model vector; `f` denotes 32-bit float (so `dfm8` is
 * a float dataset against an 8-bit model). AXPY kernels update the model
 * in place: w <- saturate(w + round(c * x)).
 *
 * Conventions (see fixed_scalar.h for the rounding machinery):
 *  - fixed x fixed dots accumulate exactly in int64 and scale once at the
 *    end: result = scale * sum(x_i * w_i), scale = qx * qm;
 *  - 8-bit model values are saturated *symmetrically* to [-127, 127] (the
 *    vpmaddubsw sign-trick in the AVX2 dot requires the model to avoid
 *    -128), 16-bit model values to [-32767, 32767] (vpmaddwd overflow);
 *  - float-dataset AXPYs quantize  delta = floor(cf*x + u)  with the dither
 *    u read from the shared DitherBlock, after clamping into int16 range.
 */
#ifndef BUCKWILD_SIMD_DENSE_REF_H
#define BUCKWILD_SIMD_DENSE_REF_H

#include <cstddef>
#include <cstdint>

#include "simd/fixed_scalar.h"

namespace buckwild::simd::ref {

// ------------------------------------------------------------------- dot

/// Exact int64-accumulated dot of fixed vectors, times `scale` (= qx*qm).
float dot_d8m8(const std::int8_t* x, const std::int8_t* w, std::size_t n,
               float scale);
float dot_d8m16(const std::int8_t* x, const std::int16_t* w, std::size_t n,
                float scale);
float dot_d16m8(const std::int16_t* x, const std::int8_t* w, std::size_t n,
                float scale);
float dot_d16m16(const std::int16_t* x, const std::int16_t* w, std::size_t n,
                 float scale);

/// Mixed fixed/float dots: float accumulation, times the fixed quantum.
float dot_d8mf(const std::int8_t* x, const float* w, std::size_t n, float qx);
float dot_d16mf(const std::int16_t* x, const float* w, std::size_t n,
                float qx);
float dot_dfm8(const float* x, const std::int8_t* w, std::size_t n, float qm);
float dot_dfm16(const float* x, const std::int16_t* w, std::size_t n,
                float qm);

/// Full-precision dot.
float dot_dfmf(const float* x, const float* w, std::size_t n);

// ------------------------------------------------------------------ AXPY
//
// Fixed-model AXPYs: cs = FixedScalar for c expressed in (model quanta per
// dataset raw unit), i.e. cs.value() ~= c_real * qx / qm. The dither block
// supplies the rounding randomness (or the deterministic biased dither).

void axpy_d8m8(std::int8_t* w, const std::int8_t* x, std::size_t n,
               FixedScalar cs, const DitherBlock& dither);
void axpy_d16m8(std::int8_t* w, const std::int16_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& dither);
void axpy_d8m16(std::int16_t* w, const std::int8_t* x, std::size_t n,
                FixedScalar cs, const DitherBlock& dither);
void axpy_d16m16(std::int16_t* w, const std::int16_t* x, std::size_t n,
                 FixedScalar cs, const DitherBlock& dither);

/// Float-dataset, fixed-model: cf = c_real / qm (model quanta per x unit).
void axpy_dfm8(std::int8_t* w, const float* x, std::size_t n, float cf,
               const DitherBlock& dither);
void axpy_dfm16(std::int16_t* w, const float* x, std::size_t n, float cf,
                const DitherBlock& dither);

/// Float-model AXPYs need no rounding: cf = c_real * qx (or c_real for
/// float datasets).
void axpy_d8mf(float* w, const std::int8_t* x, std::size_t n, float cf);
void axpy_d16mf(float* w, const std::int16_t* x, std::size_t n, float cf);
void axpy_dfmf(float* w, const float* x, std::size_t n, float cf);

// ------------------------------------------------- shared scalar helpers

/// Symmetric int8 model saturation, [-127, 127].
inline std::int32_t
saturate_model8(std::int32_t v)
{
    return v < -127 ? -127 : (v > 127 ? 127 : v);
}

/// Symmetric int16 model saturation, [-32767, 32767].
inline std::int32_t
saturate_model16(std::int32_t v)
{
    return v < -32767 ? -32767 : (v > 32767 ? 32767 : v);
}

/// The exact per-element fixed-AXPY update for an 8-bit model.
inline std::int8_t
update_m8(std::int8_t w, std::int32_t x, FixedScalar cs, std::uint32_t dither)
{
    const std::int32_t delta =
        (cs.mult * x + static_cast<std::int32_t>(dither)) >> cs.shift;
    return static_cast<std::int8_t>(saturate_model8(w + saturate_i16(delta)));
}

/// The exact per-element fixed-AXPY update for a 16-bit model.
inline std::int16_t
update_m16(std::int16_t w, std::int32_t x, FixedScalar cs,
           std::uint32_t dither)
{
    const std::int32_t delta =
        (cs.mult * x + static_cast<std::int32_t>(dither)) >> cs.shift;
    return static_cast<std::int16_t>(
        saturate_model16(w + saturate_i16(delta)));
}

/// The exact float-dataset delta quantization: floor(fma(cf, x, u)),
/// clamped into int16 range. The fused multiply-add is explicit so the
/// scalar contract matches the AVX2 kernel's vfmadd exactly.
inline std::int32_t
quantize_delta(float cf, float x, float u)
{
    float v = __builtin_fmaf(cf, x, u);
    if (v > 32767.0f) v = 32767.0f;
    if (v < -32768.0f) v = -32768.0f;
    return static_cast<std::int32_t>(__builtin_floorf(v));
}

} // namespace buckwild::simd::ref

#endif // BUCKWILD_SIMD_DENSE_REF_H
