/**
 * @file
 * Small statistics helpers: running moments, histograms, and summary
 * aggregation used by the statistical-efficiency experiments (Fig 5a, 6e,
 * 6f, 7b, 7d/e).
 */
#ifndef BUCKWILD_UTIL_STATS_H
#define BUCKWILD_UTIL_STATS_H

#include <cstddef>
#include <limits>
#include <vector>

namespace buckwild {

/**
 * Online mean / variance / extrema accumulator (Welford's algorithm).
 *
 * Numerically stable for the long loss traces produced by the convergence
 * experiments.
 */
class RunningStats
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    /// Sample variance (n-1 denominator); 0 when fewer than two samples.
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

    /// Merges another accumulator into this one (parallel reduction).
    void merge(const RunningStats& other);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation of a vector; 0 when fewer than two samples.
double stddev_of(const std::vector<double>& xs);

/// Geometric mean; all inputs must be positive.
double geomean_of(const std::vector<double>& xs);

/**
 * The p-th percentile (p in [0, 100]) of a sample by linear interpolation
 * between order statistics. Takes the sample by value because selection
 * reorders it. Used for serving-latency summaries (p50/p95/p99) and the
 * obs registry's histogram summaries.
 *
 * Edge cases (pinned by test_util):
 *  - empty sample -> 0; single sample -> that sample for every p;
 *  - p <= 0 -> min, p >= 100 -> max (clamped, not extrapolated);
 *  - NaN samples are ignored (all-NaN behaves as empty); NaN p -> NaN.
 */
double percentile_of(std::vector<double> xs, double p);

/**
 * A fixed-width histogram over [lo, hi); samples outside are clamped into
 * the first / last bin. Used by the PRNG uniformity tests.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t total() const { return total_; }
    const std::vector<std::size_t>& bins() const { return counts_; }

    /**
     * Pearson chi-squared statistic against the uniform distribution.
     * For a uniform source with b bins this is ~chi2(b-1); a value below
     * roughly b + 3*sqrt(2b) passes at ~99.8% confidence.
     */
    double chi_squared_uniform() const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

} // namespace buckwild

#endif // BUCKWILD_UTIL_STATS_H
