/**
 * @file
 * Minimal status-message helpers in the gem5 style: inform / warn for user
 * status, fatal for unusable configuration, panic for internal invariant
 * violations.
 */
#ifndef BUCKWILD_UTIL_LOGGING_H
#define BUCKWILD_UTIL_LOGGING_H

#include <string>

namespace buckwild {

/// Normal operating status, printed to stderr as "info: ...".
void inform(const std::string& msg);

/// Something suspicious but survivable, printed as "warn: ...".
void warn(const std::string& msg);

/// User error (bad configuration / arguments): throws std::runtime_error.
[[noreturn]] void fatal(const std::string& msg);

/// Internal bug: throws std::logic_error.
[[noreturn]] void panic(const std::string& msg);

} // namespace buckwild

#endif // BUCKWILD_UTIL_LOGGING_H
