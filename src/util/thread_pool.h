/**
 * @file
 * Worker-thread utilities for Hogwild!-style execution.
 *
 * The Hogwild! training loop launches one long-lived worker per thread; the
 * workers synchronize only at epoch boundaries (never inside the update
 * loop, which is the whole point of the algorithm). SpinBarrier provides
 * the epoch-boundary rendezvous, and ParallelRunner owns the threads.
 */
#ifndef BUCKWILD_UTIL_THREAD_POOL_H
#define BUCKWILD_UTIL_THREAD_POOL_H

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace buckwild {

/**
 * A reusable spinning barrier.
 *
 * Spinning (rather than a condition variable) keeps the epoch-boundary cost
 * low enough that short benchmark epochs are not dominated by wakeup
 * latency.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::size_t parties)
        : parties_(parties), waiting_(0), generation_(0)
    {}

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    /// Blocks (spins) until `parties` threads have arrived.
    void
    arrive_and_wait()
    {
        const std::size_t gen = generation_.load(std::memory_order_acquire);
        if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
            waiting_.store(0, std::memory_order_relaxed);
            generation_.fetch_add(1, std::memory_order_release);
        } else {
            while (generation_.load(std::memory_order_acquire) == gen)
                std::this_thread::yield();
        }
    }

  private:
    const std::size_t parties_;
    std::atomic<std::size_t> waiting_;
    std::atomic<std::size_t> generation_;
};

/**
 * Runs `fn(thread_index)` on `threads` concurrent std::threads and joins
 * them all. Thread index 0 runs on a spawned thread as well, so the caller
 * observes a clean fork/join.
 */
void run_parallel(std::size_t threads,
                  const std::function<void(std::size_t)>& fn);

/**
 * A detachable fork/join group for long-lived workers (the serving loop's
 * thread primitive, as run_parallel is the training loop's).
 *
 * Unlike run_parallel the caller keeps control after start(): the workers
 * run until their function returns (typically when a request queue is
 * closed), and join() — or the destructor — reaps them. start() may be
 * called again after join() to reuse the group.
 */
class WorkerGroup
{
  public:
    WorkerGroup() = default;
    ~WorkerGroup() { join(); }

    WorkerGroup(const WorkerGroup&) = delete;
    WorkerGroup& operator=(const WorkerGroup&) = delete;

    /// Launches `threads` workers running `fn(worker_index)`.
    /// @throws std::logic_error if the group is already running.
    void start(std::size_t threads, std::function<void(std::size_t)> fn);

    /// Joins all workers; idempotent (a no-op when none are running).
    void join();

    std::size_t size() const { return threads_.size(); }

  private:
    std::vector<std::thread> threads_;
};

} // namespace buckwild

#endif // BUCKWILD_UTIL_THREAD_POOL_H
