/**
 * @file
 * Wall-clock timing utilities used by the benchmark harnesses.
 */
#ifndef BUCKWILD_UTIL_STOPWATCH_H
#define BUCKWILD_UTIL_STOPWATCH_H

#include <chrono>
#include <cstddef>
#include <functional>

namespace buckwild {

/// A simple steady-clock stopwatch.
class Stopwatch
{
  public:
    Stopwatch() : start_(Clock::now()) {}

    /// Restarts the stopwatch.
    void restart() { start_ = Clock::now(); }

    /// Seconds elapsed since construction or the last restart().
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double nanoseconds() const { return seconds() * 1e9; }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Runs `body` repeatedly until at least `min_seconds` of wall time has been
 * consumed, and returns the average seconds per call.
 *
 * Benchmarks in this repo are time-bounded rather than iteration-bounded so
 * a single harness works across model sizes spanning 2^8..2^22 elements.
 *
 * @param body         the workload; called with the repetition index.
 * @param min_seconds  minimum total measurement time.
 * @param min_reps     minimum number of calls regardless of time.
 */
double measure_seconds_per_call(const std::function<void(std::size_t)>& body,
                                double min_seconds = 0.05,
                                std::size_t min_reps = 3);

} // namespace buckwild

#endif // BUCKWILD_UTIL_STOPWATCH_H
