#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace buckwild {

void
RunningStats::add(double x)
{
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStats::merge(const RunningStats& other)
{
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += other.m2_ + delta * delta * na * nb / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
percentile_of(std::vector<double> xs, double p)
{
    // NaN samples would poison nth_element's ordering (strict weak
    // ordering is violated), so drop them up front; a NaN percentile
    // request has no defined order statistic and maps to NaN.
    if (std::isnan(p)) return std::numeric_limits<double>::quiet_NaN();
    xs.erase(std::remove_if(xs.begin(), xs.end(),
                            [](double x) { return std::isnan(x); }),
             xs.end());
    if (xs.empty()) return 0.0;
    if (xs.size() == 1) return xs.front();
    if (p <= 0.0) return *std::min_element(xs.begin(), xs.end());
    if (p >= 100.0) return *std::max_element(xs.begin(), xs.end());
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    std::nth_element(xs.begin(), xs.begin() + lo, xs.end());
    const double below = xs[lo];
    if (lo + 1 == xs.size()) return below;
    const double above =
        *std::min_element(xs.begin() + lo + 1, xs.end());
    const double frac = rank - static_cast<double>(lo);
    return below + (above - below) * frac;
}

double
mean_of(const std::vector<double>& xs)
{
    if (xs.empty()) return 0.0;
    double sum = 0.0;
    for (double x : xs) sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev_of(const std::vector<double>& xs)
{
    if (xs.size() < 2) return 0.0;
    const double m = mean_of(xs);
    double ss = 0.0;
    for (double x : xs) ss += (x - m) * (x - m);
    return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double
geomean_of(const std::vector<double>& xs)
{
    if (xs.empty()) return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            throw std::invalid_argument("geomean_of requires positive inputs");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    if (bins == 0 || !(lo < hi))
        throw std::invalid_argument("Histogram requires lo < hi and bins > 0");
}

void
Histogram::add(double x)
{
    const double frac = (x - lo_) / (hi_ - lo_);
    auto bin = static_cast<long>(frac * static_cast<double>(counts_.size()));
    bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(bin)];
    ++total_;
}

double
Histogram::chi_squared_uniform() const
{
    if (total_ == 0) return 0.0;
    const double expected =
        static_cast<double>(total_) / static_cast<double>(counts_.size());
    double chi2 = 0.0;
    for (std::size_t c : counts_) {
        const double diff = static_cast<double>(c) - expected;
        chi2 += diff * diff / expected;
    }
    return chi2;
}

} // namespace buckwild
