/**
 * @file
 * Cache-line / SIMD-register aligned storage.
 *
 * The hand-optimized AVX2 kernels in src/simd issue aligned 256-bit loads,
 * and the Hogwild! model vector must not straddle false-sharing-prone
 * allocations, so all numeric arrays in the library are allocated through
 * AlignedBuffer.
 */
#ifndef BUCKWILD_UTIL_ALIGNED_BUFFER_H
#define BUCKWILD_UTIL_ALIGNED_BUFFER_H

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace buckwild {

/// Alignment used for every numeric array: one cache line, which is also
/// enough for 256-bit (AVX2) and 512-bit vector loads.
inline constexpr std::size_t kCacheLineBytes = 64;

/**
 * A fixed-capacity, cache-line-aligned array of trivially-copyable T.
 *
 * Unlike std::vector, the allocation is guaranteed 64-byte aligned and the
 * buffer is padded up to a whole number of cache lines so vector kernels may
 * safely load a full register at the tail.
 */
template <typename T>
class AlignedBuffer
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "AlignedBuffer only holds trivially copyable types");

  public:
    AlignedBuffer() = default;

    /// Allocates `count` elements, zero-initialized.
    explicit AlignedBuffer(std::size_t count) { reset(count); }

    AlignedBuffer(const AlignedBuffer& other) { copy_from(other); }

    AlignedBuffer&
    operator=(const AlignedBuffer& other)
    {
        if (this != &other) copy_from(other);
        return *this;
    }

    AlignedBuffer(AlignedBuffer&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          size_(std::exchange(other.size_, 0))
    {}

    AlignedBuffer&
    operator=(AlignedBuffer&& other) noexcept
    {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }

    ~AlignedBuffer() { release(); }

    /// Re-allocates to `count` elements and zero-fills (old contents lost).
    void
    reset(std::size_t count)
    {
        release();
        size_ = count;
        if (count == 0) return;
        const std::size_t bytes = padded_bytes(count);
        data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
        if (data_ == nullptr) throw std::bad_alloc{};
        std::memset(data_, 0, bytes);
    }

    T* data() { return data_; }
    const T* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T& operator[](std::size_t i) { return data_[i]; }
    const T& operator[](std::size_t i) const { return data_[i]; }

    T* begin() { return data_; }
    T* end() { return data_ + size_; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }

    /// Zero-fills the buffer (including tail padding).
    void
    clear()
    {
        if (data_ != nullptr) std::memset(data_, 0, padded_bytes(size_));
    }

  private:
    static std::size_t
    padded_bytes(std::size_t count)
    {
        const std::size_t raw = count * sizeof(T);
        return (raw + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
    }

    void
    release()
    {
        std::free(data_);
        data_ = nullptr;
        size_ = 0;
    }

    void
    copy_from(const AlignedBuffer& other)
    {
        reset(other.size_);
        if (other.size_ != 0)
            std::memcpy(data_, other.data_, padded_bytes(other.size_));
    }

    T* data_ = nullptr;
    std::size_t size_ = 0;
};

} // namespace buckwild

#endif // BUCKWILD_UTIL_ALIGNED_BUFFER_H
