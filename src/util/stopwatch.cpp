#include "util/stopwatch.h"

namespace buckwild {

double
measure_seconds_per_call(const std::function<void(std::size_t)>& body,
                         double min_seconds, std::size_t min_reps)
{
    // Warm-up call: touches the data once so the first timed repetition is
    // not dominated by cold caches / page faults.
    body(0);

    Stopwatch watch;
    std::size_t reps = 0;
    do {
        body(reps);
        ++reps;
    } while (watch.seconds() < min_seconds || reps < min_reps);
    return watch.seconds() / static_cast<double>(reps);
}

} // namespace buckwild
