#include "util/logging.h"

#include <iostream>
#include <stdexcept>

namespace buckwild {

void
inform(const std::string& msg)
{
    std::cerr << "info: " << msg << '\n';
}

void
warn(const std::string& msg)
{
    std::cerr << "warn: " << msg << '\n';
}

void
fatal(const std::string& msg)
{
    throw std::runtime_error("fatal: " + msg);
}

void
panic(const std::string& msg)
{
    throw std::logic_error("panic: " + msg);
}

} // namespace buckwild
