#include "util/thread_pool.h"

#include <stdexcept>

namespace buckwild {

void
run_parallel(std::size_t threads, const std::function<void(std::size_t)>& fn)
{
    if (threads == 0)
        throw std::invalid_argument("run_parallel requires threads >= 1");
    if (threads == 1) {
        fn(0);
        return;
    }
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        pool.emplace_back([&fn, t] { fn(t); });
    for (auto& th : pool) th.join();
}

void
WorkerGroup::start(std::size_t threads, std::function<void(std::size_t)> fn)
{
    if (!threads_.empty())
        throw std::logic_error("WorkerGroup already running; join() first");
    if (threads == 0)
        throw std::invalid_argument("WorkerGroup requires threads >= 1");
    threads_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
        threads_.emplace_back([fn, t] { fn(t); });
}

void
WorkerGroup::join()
{
    for (auto& th : threads_)
        if (th.joinable()) th.join();
    threads_.clear();
}

} // namespace buckwild
