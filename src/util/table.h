/**
 * @file
 * Plain-text table / CSV printer.
 *
 * Every bench binary regenerates one of the paper's tables or figure data
 * series; TablePrinter renders them in an aligned, human-readable form and
 * can also emit CSV for plotting.
 */
#ifndef BUCKWILD_UTIL_TABLE_H
#define BUCKWILD_UTIL_TABLE_H

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace buckwild {

/// Collects rows of string cells and pretty-prints them with aligned columns.
class TablePrinter
{
  public:
    /// @param title   heading printed above the table.
    /// @param headers column names.
    TablePrinter(std::string title, std::vector<std::string> headers);

    /// Appends a row; must have the same arity as the headers.
    void add_row(std::vector<std::string> cells);

    std::size_t rows() const { return rows_.size(); }

    /// Renders with box-drawing alignment to `os`.
    void print(std::ostream& os) const;

    /// Renders as CSV (headers first) to `os`.
    void print_csv(std::ostream& os) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (helper for rows).
std::string format_num(double value, int digits = 4);

/// Formats e.g. 1234567 as "1.23M" / 2048 as "2.00K" for model-size axes.
std::string format_si(double value);

} // namespace buckwild

#endif // BUCKWILD_UTIL_TABLE_H
