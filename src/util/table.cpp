#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace buckwild {

TablePrinter::TablePrinter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
    if (headers_.empty())
        throw std::invalid_argument("TablePrinter needs at least one column");
}

void
TablePrinter::add_row(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("row arity does not match headers");
    rows_.push_back(std::move(cells));
}

void
TablePrinter::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << ' ' << row[c];
            for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad)
                os << ' ';
            os << " |";
        }
        os << '\n';
    };
    auto print_rule = [&] {
        os << "+";
        for (std::size_t w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i) os << '-';
            os << '+';
        }
        os << '\n';
    };

    os << "\n== " << title_ << " ==\n";
    print_rule();
    print_row(headers_);
    print_rule();
    for (const auto& row : rows_) print_row(row);
    print_rule();
}

void
TablePrinter::print_csv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0) os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
}

std::string
format_num(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
    return buf;
}

std::string
format_si(double value)
{
    char buf[64];
    const double av = std::fabs(value);
    if (av >= 1e9)
        std::snprintf(buf, sizeof(buf), "%.2fG", value / 1e9);
    else if (av >= 1e6)
        std::snprintf(buf, sizeof(buf), "%.2fM", value / 1e6);
    else if (av >= 1e3)
        std::snprintf(buf, sizeof(buf), "%.2fK", value / 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
}

} // namespace buckwild
