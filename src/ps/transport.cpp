#include "ps/transport.h"

#include <thread>

#include "obs/obs.h"
#include "util/logging.h"

namespace buckwild::ps {

// --------------------------------------------------------------- Mailbox

void
Mailbox::push(Message&& message)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (closed_) return; // late delivery after shutdown: drop
        items_.push_back(std::move(message));
    }
    not_empty_.notify_one();
}

bool
Mailbox::pop(Message& out, std::chrono::microseconds timeout)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_empty_.wait_for(lock, timeout,
                             [&] { return !items_.empty() || closed_; }))
        return false;
    if (items_.empty()) return false; // closed and drained
    std::size_t pick = 0;
    if (reorder_window_ > 1 && items_.size() > 1) {
        const std::size_t window =
            std::min(reorder_window_, items_.size());
        pick = static_cast<std::size_t>(rng_() % window);
    }
    out = std::move(items_[pick]);
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(pick));
    return true;
}

void
Mailbox::close()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        closed_ = true;
    }
    not_empty_.notify_all();
}

std::size_t
Mailbox::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
}

// ------------------------------------------------- InProcTransport

InProcTransport::InProcTransport(std::size_t endpoints, FaultModel faults)
    : faults_(faults), fault_rng_(faults.seed)
{
    if (endpoints == 0) fatal("transport needs at least one endpoint");
    if (faults_.drop_prob < 0.0 || faults_.drop_prob >= 1.0)
        fatal("drop_prob must be in [0, 1)");
    mailboxes_.reserve(endpoints);
    std::uint64_t seed = faults.seed;
    for (std::size_t e = 0; e < endpoints; ++e)
        mailboxes_.push_back(std::make_unique<Mailbox>(
            faults.reorder_window, rng::splitmix64(seed)));
}

void
InProcTransport::send(std::size_t to, Message&& message)
{
    if (to >= mailboxes_.size()) panic("send to unknown endpoint");
    sent_.fetch_add(1, std::memory_order_relaxed);
    sent_bytes_.fetch_add(message.wire_bytes(), std::memory_order_relaxed);
    BUCKWILD_OBS_COUNT("ps.transport.sent", 1);
    BUCKWILD_OBS_COUNT("ps.transport.sent_bytes", message.wire_bytes());
    if (faults_.any()) {
        std::size_t delay_us = 0;
        bool drop = false;
        {
            std::lock_guard<std::mutex> lock(fault_mutex_);
            if (faults_.drop_prob > 0.0) {
                const double u =
                    static_cast<double>(fault_rng_() >> 11) * 0x1.0p-53;
                drop = u < faults_.drop_prob;
            }
            if (!drop && faults_.jitter_us > 0)
                delay_us = static_cast<std::size_t>(
                    fault_rng_() % (faults_.jitter_us + 1));
        }
        if (drop) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            BUCKWILD_OBS_COUNT("ps.transport.dropped", 1);
            BUCKWILD_OBS_INSTANT("ps", "transport.drop");
            return;
        }
        if (delay_us > 0)
            std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    // Delivery timestamp for hop decomposition and clock-offset echoes.
    // In-proc "delivery" is this push; the socket fabric stamps in its
    // reader loop instead.
    message.recv_ts_ns = obs::trace_now_ns();
    mailboxes_[to]->push(std::move(message));
}

bool
InProcTransport::recv(std::size_t at, Message& out,
                      std::chrono::microseconds timeout)
{
    if (at >= mailboxes_.size()) panic("recv at unknown endpoint");
    if (!mailboxes_[at]->pop(out, timeout)) return false;
    recv_bytes_.fetch_add(out.wire_bytes(), std::memory_order_relaxed);
    return true;
}

void
InProcTransport::close()
{
    closed_.store(true, std::memory_order_release);
    for (auto& mailbox : mailboxes_) mailbox->close();
}

// ------------------------------------------------------------- RpcClient

Message
RpcClient::call(std::size_t to, Message request)
{
    request.sender = static_cast<std::uint32_t>(self_);
    request.token = next_token_++;

    // Mint the distributed-trace identity at the RPC origin. The root
    // context (or one the caller pre-attached) rides the wire with each
    // attempt; the responder's spans and the clock-offset sample from
    // its reply all carry the same trace id.
    if (obs::Tracer::global().enabled() && !request.trace.ctx.valid())
        request.trace.ctx = obs::make_root_context();
    const std::int64_t call_start_ns =
        request.trace.ctx.valid() ? obs::trace_now_ns() : 0;

    // The per-attempt reply timeout must comfortably exceed both the
    // fabric's latency floor and the injected jitter (both directions),
    // or healthy-but-slow messages would be retransmitted forever.
    const auto base = std::max(
        transport_.rpc_base_timeout(),
        std::chrono::microseconds(8 * transport_.faults().jitter_us));
    constexpr int kMaxAttempts = 400;

    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        if (attempt > 0) {
            ++retries_;
            BUCKWILD_OBS_COUNT("ps.rpc.retransmits", 1);
            BUCKWILD_OBS_INSTANT("ps", "rpc.retransmit");
        }
        Message copy = request;
        // Stamp per attempt: the responder echoes the send_ts of the
        // transmission it actually answered, keeping the NTP sample
        // honest across retransmits.
        if (copy.trace.ctx.valid())
            copy.trace.send_ts_ns = obs::trace_now_ns();
        transport_.send(to, std::move(copy));

        const auto deadline = std::chrono::steady_clock::now() +
            base * (attempt < 8 ? (1 << attempt) : 256);
        for (;;) {
            const auto now = std::chrono::steady_clock::now();
            if (now >= deadline) break; // retransmit
            Message reply;
            if (!transport_.recv(
                    self_, reply,
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        deadline - now))) {
                if (transport_.closed())
                    fatal("rpc: transport closed mid-call");
                break; // timeout: retransmit
            }
            if (reply.token == request.token) {
                if (reply.trace.ctx.valid()) {
                    const std::int64_t recv_ns = reply.recv_ts_ns != 0
                                                     ? reply.recv_ts_ns
                                                     : obs::trace_now_ns();
                    const obs::ClockSample sample =
                        obs::clock_sample_from_reply(reply.trace, recv_ns);
                    if (sample.valid)
                        obs::Tracer::global().clocksync(
                            "ps", reply.trace.ctx, sample.offset_ns,
                            sample.rtt_ns);
                    obs::Tracer::global().complete(
                        "ps", "rpc.call", call_start_ns,
                        obs::trace_now_ns() - call_start_ns,
                        request.trace.ctx);
                }
                return reply;
            }
            // Stale duplicate from an earlier retransmission: discard.
        }
    }
    fatal("rpc: no reply after " + std::to_string(kMaxAttempts) +
          " attempts (drop_prob too high or peer gone)");
}

} // namespace buckwild::ps
