/**
 * @file
 * Parameter-server metrics — what a training-cluster operator watches.
 *
 * Each ServerShard owns a ShardMetrics and mutates it from its own
 * thread only (no locks on the hot path); the ParameterServer collects
 * them into a PsMetrics snapshot once the shards have stopped, and adds
 * the transport's fabric counters plus the workers' compute totals. The
 * structure mirrors serve::ServeMetrics: plain value types, derived
 * quantities as methods, a histogram for the distribution that matters —
 * there it was batch sizes, here it is push staleness.
 */
#ifndef BUCKWILD_PS_METRICS_H
#define BUCKWILD_PS_METRICS_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/registry.h"

namespace buckwild::ps {

/// Counters one server shard accumulates while serving its slice.
struct ShardMetrics
{
    std::uint64_t pushes = 0;     ///< gradients applied
    std::uint64_t duplicates = 0; ///< retransmitted pushes deduplicated
    std::uint64_t gated = 0;      ///< pushes bounced by the staleness bound
    std::uint64_t pulls = 0;      ///< slice snapshots served
    std::uint64_t push_bytes = 0; ///< wire bytes of applied pushes
    std::uint64_t pull_bytes = 0; ///< wire bytes of served kModel replies
    double apply_seconds = 0.0;   ///< time inside the update kernel
    double numbers = 0.0;         ///< gradient numbers applied (GNPS numerator)
    std::uint64_t sparse_nnz = 0;   ///< nonzeros applied via sparse pushes
    std::uint64_t sparse_bytes = 0; ///< wire bytes of applied sparse pushes
    /// staleness_counts[s] = applied pushes whose worker was s rounds
    /// ahead of the slowest live worker at apply time.
    std::vector<std::uint64_t> staleness_counts;

    std::size_t
    max_staleness() const
    {
        for (std::size_t s = staleness_counts.size(); s > 0; --s)
            if (staleness_counts[s - 1] > 0) return s - 1;
        return 0;
    }
};

/// Flattens shard counters into the kStats reply vector — how a shard
/// process reports its metrics to the control endpoint over the wire.
/// Layout: [pushes, duplicates, gated, pulls, push_bytes, pull_bytes,
/// apply_seconds, numbers, sparse_nnz, sparse_bytes,
/// staleness_counts...].
inline std::vector<double>
shard_metrics_to_stats(const ShardMetrics& metrics)
{
    std::vector<double> stats = {
        static_cast<double>(metrics.pushes),
        static_cast<double>(metrics.duplicates),
        static_cast<double>(metrics.gated),
        static_cast<double>(metrics.pulls),
        static_cast<double>(metrics.push_bytes),
        static_cast<double>(metrics.pull_bytes),
        metrics.apply_seconds,
        metrics.numbers,
        static_cast<double>(metrics.sparse_nnz),
        static_cast<double>(metrics.sparse_bytes),
    };
    for (const std::uint64_t count : metrics.staleness_counts)
        stats.push_back(static_cast<double>(count));
    return stats;
}

/// Inverse of shard_metrics_to_stats (tolerates a short vector: missing
/// fields stay zero).
inline ShardMetrics
shard_metrics_from_stats(const std::vector<double>& stats)
{
    ShardMetrics metrics;
    const auto u64 = [&](std::size_t i) {
        return i < stats.size() ? static_cast<std::uint64_t>(stats[i]) : 0;
    };
    metrics.pushes = u64(0);
    metrics.duplicates = u64(1);
    metrics.gated = u64(2);
    metrics.pulls = u64(3);
    metrics.push_bytes = u64(4);
    metrics.pull_bytes = u64(5);
    metrics.apply_seconds = 6 < stats.size() ? stats[6] : 0.0;
    metrics.numbers = 7 < stats.size() ? stats[7] : 0.0;
    metrics.sparse_nnz = u64(8);
    metrics.sparse_bytes = u64(9);
    for (std::size_t i = 10; i < stats.size(); ++i)
        metrics.staleness_counts.push_back(
            static_cast<std::uint64_t>(stats[i]));
    return metrics;
}

/// A consistent snapshot of the whole cluster's counters.
struct PsMetrics
{
    std::vector<ShardMetrics> shards;
    // Fabric (transport) totals.
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_dropped = 0;
    std::uint64_t wire_bytes_sent = 0;
    std::uint64_t rpc_retries = 0; ///< worker + control retransmissions
    // Worker compute totals.
    double worker_seconds = 0.0; ///< summed worker wall time
    double numbers = 0.0;        ///< gradient numbers computed

    std::uint64_t
    total_pushes() const
    {
        std::uint64_t total = 0;
        for (const auto& s : shards) total += s.pushes;
        return total;
    }

    std::uint64_t
    total_push_bytes() const
    {
        std::uint64_t total = 0;
        for (const auto& s : shards) total += s.push_bytes;
        return total;
    }

    std::uint64_t
    total_pull_bytes() const
    {
        std::uint64_t total = 0;
        for (const auto& s : shards) total += s.pull_bytes;
        return total;
    }

    std::uint64_t
    total_gated() const
    {
        std::uint64_t total = 0;
        for (const auto& s : shards) total += s.gated;
        return total;
    }

    std::uint64_t
    total_sparse_nnz() const
    {
        std::uint64_t total = 0;
        for (const auto& s : shards) total += s.sparse_nnz;
        return total;
    }

    std::uint64_t
    total_sparse_bytes() const
    {
        std::uint64_t total = 0;
        for (const auto& s : shards) total += s.sparse_bytes;
        return total;
    }

    std::size_t
    max_staleness() const
    {
        std::size_t worst = 0;
        for (const auto& s : shards)
            worst = std::max(worst, s.max_staleness());
        return worst;
    }

    /// Merged staleness histogram across shards.
    std::vector<std::uint64_t>
    staleness_histogram() const
    {
        std::vector<std::uint64_t> merged;
        for (const auto& s : shards) {
            if (s.staleness_counts.size() > merged.size())
                merged.resize(s.staleness_counts.size(), 0);
            for (std::size_t i = 0; i < s.staleness_counts.size(); ++i)
                merged[i] += s.staleness_counts[i];
        }
        return merged;
    }

    /// Training throughput in giga-numbers-per-second of worker time.
    double
    gnps() const
    {
        return worker_seconds > 0.0 ? numbers / worker_seconds / 1e9 : 0.0;
    }

    /// Copies the snapshot into `registry` under `prefix` (e.g. "ps.")
    /// so CLI runs can export it as flat metrics JSON next to the
    /// hot-path instrumentation counters. The authoritative store stays
    /// thread-owned ShardMetrics — shards count lock-free and exactly,
    /// and this bridge runs once after stop().
    void
    publish(obs::MetricsRegistry& registry, const std::string& prefix) const
    {
        registry.counter(prefix + "pushes_applied").add(total_pushes());
        registry.counter(prefix + "push_bytes").add(total_push_bytes());
        registry.counter(prefix + "pull_bytes").add(total_pull_bytes());
        registry.counter(prefix + "gated").add(total_gated());
        registry.counter(prefix + "sparse_nnz").add(total_sparse_nnz());
        registry.counter(prefix + "sparse_bytes").add(total_sparse_bytes());
        registry.counter(prefix + "messages_sent").add(messages_sent);
        registry.counter(prefix + "messages_dropped").add(messages_dropped);
        registry.counter(prefix + "wire_bytes_sent").add(wire_bytes_sent);
        registry.counter(prefix + "rpc_retries").add(rpc_retries);
        registry.gauge(prefix + "worker_seconds").add(worker_seconds);
        registry.gauge(prefix + "numbers").add(numbers);
        registry.gauge(prefix + "gnps").set(gnps());
        obs::Histo& staleness = registry.histogram(prefix + "staleness");
        const std::vector<std::uint64_t> merged = staleness_histogram();
        for (std::size_t s = 0; s < merged.size(); ++s)
            for (std::uint64_t i = 0; i < merged[s]; ++i)
                staleness.record(static_cast<double>(s));
    }
};

} // namespace buckwild::ps

#endif // BUCKWILD_PS_METRICS_H
