/**
 * @file
 * ParameterServer — S range-partitioned shards behind one Transport.
 *
 * Endpoint layout: shards own endpoints [0, S), workers reply-receive at
 * [S, S+W), and one control endpoint S+W serves the snapshot/publish
 * path. start() launches one thread per shard (util::WorkerGroup);
 * stop() closes the transport, which drains and joins them.
 *
 * snapshot() assembles the full model by pulling every shard over the
 * same message path the workers use — so a checkpoint taken mid-training
 * observes each shard atomically (a shard answers a pull between
 * pushes, never inside one) though shards may sit at different versions,
 * exactly like any other asynchronous reader.
 *
 * publish() closes the train-to-serve loop: checkpoint the shards,
 * re-quantize to a serving precision, and hot-swap the result into a
 * serve::ModelRegistry — a serving cluster scoring from that registry
 * picks up the training cluster's progress on its next batch, with no
 * file in between.
 */
#ifndef BUCKWILD_PS_SERVER_H
#define BUCKWILD_PS_SERVER_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/loss.h"
#include "core/model_io.h"
#include "ps/metrics.h"
#include "ps/shard.h"
#include "ps/transport.h"
#include "serve/model_registry.h"
#include "serve/precision.h"
#include "util/thread_pool.h"

namespace buckwild::ps {

/// Cluster-wide parameter-server knobs.
struct PsConfig
{
    std::size_t shards = 2;
    std::size_t workers = 1; ///< worker endpoints / clock-table size
    std::size_t tau = 16;    ///< staleness bound (rounds)
    float step_size = 0.25f;
    std::size_t batch = 16; ///< examples per pushed gradient
    Codec codec;            ///< Cs32 / Cs8 / Cs1 / CsQ<b> wire codec
    core::Loss loss = core::Loss::kLogistic;
    simd::Impl impl = simd::best_impl();
    FaultModel faults;
};

class ParameterServer
{
  public:
    /// Partitions a dim-coordinate model across config.shards shards.
    /// @throws std::runtime_error on an invalid configuration.
    ParameterServer(std::size_t dim, const PsConfig& config);
    ~ParameterServer();

    ParameterServer(const ParameterServer&) = delete;
    ParameterServer& operator=(const ParameterServer&) = delete;

    void start();
    /// Closes the transport and joins the shard threads. Idempotent.
    void stop();

    std::size_t dim() const { return dim_; }
    std::size_t shards() const { return shards_.size(); }
    const PsConfig& config() const { return config_; }
    Transport& transport() { return transport_; }

    std::size_t shard_begin(std::size_t s) const;
    std::size_t shard_end(std::size_t s) const;
    /// Endpoint of worker w's reply mailbox.
    std::size_t worker_endpoint(std::size_t w) const;

    /// Total applied pushes across shards (any thread, any time).
    std::uint64_t version() const;

    /// Assembles the full model by pulling every shard; safe while
    /// training is running (serialized on the control endpoint).
    std::vector<float> snapshot();

    /// snapshot() wrapped in provenance: the async-C DMGC signature at
    /// the configured wire precision plus the training loss.
    core::SavedModel checkpoint();

    /// checkpoint() published into `registry` at `precision`; returns
    /// the registry version — the train-to-serve hot-swap.
    std::uint64_t publish(serve::ModelRegistry& registry,
                          serve::Precision precision);

    /// Shard + fabric counters. Shard entries are only filled in once
    /// stop() has run (they are owned by the shard threads until then).
    PsMetrics metrics() const;

  private:
    const std::size_t dim_;
    const PsConfig config_;
    InProcTransport transport_;
    std::vector<std::unique_ptr<ServerShard>> shards_;
    WorkerGroup threads_;
    mutable std::mutex control_mutex_; ///< serializes snapshot()/publish()
    std::uint64_t control_retries_ = 0; ///< guarded by control_mutex_
    bool running_ = false;
    bool stopped_ = false;
};

} // namespace buckwild::ps

#endif // BUCKWILD_PS_SERVER_H
