/**
 * @file
 * GradientView — the one gradient currency of the cluster tier.
 *
 * Every layer that moves a gradient (comm_sgd worker accumulation, the
 * ps/quantize codecs, the shard apply, error feedback) used to assume a
 * dense `float*`. A GradientView is either that dense span, or a sparse
 * (index, value) stream whose index rep is one of the lowp index widths
 * (i8 / i16 / i32), stored absolute or delta-encoded — exactly the
 * paper's index-precision axis (§3: low-precision indices "incur no loss
 * of statistical efficiency"; footnote 6: delta-encoded gaps, with
 * explicit zero-valued padding entries when a gap overflows the delta
 * type).
 *
 * The view does not own its storage; it is the argument type the codecs
 * and kernels take, so the dense path keeps its zero-copy `float*`
 * behaviour while the sparse path threads typed index streams through
 * the same entry points.
 */
#ifndef BUCKWILD_PS_GRADIENT_VIEW_H
#define BUCKWILD_PS_GRADIENT_VIEW_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "lowp/dispatch.h"
#include "simd/sparse_kernels.h"
#include "util/logging.h"

namespace buckwild::ps {

struct GradientView
{
    /// Per-entry values: dense -> one per coordinate; sparse -> one per
    /// stored entry (padding entries carry 0).
    const float* values = nullptr;
    /// Dense: the dimension. Sparse: stored entry count (nnz, including
    /// any delta padding entries).
    std::size_t count = 0;
    /// Logical coordinate span [0, dim). For a dense view dim == count.
    std::uint32_t dim = 0;
    /// Stored index stream, or nullptr for a dense view. Points at an
    /// array of count uint{index_bits}_t entries.
    const void* index = nullptr;
    /// 8, 16, or 32 — the lowp index rep of `index`.
    int index_bits = 32;
    simd::sparse::IndexMode mode = simd::sparse::IndexMode::kAbsolute;

    bool sparse() const { return index != nullptr; }

    static GradientView
    dense(const float* g, std::size_t n)
    {
        GradientView v;
        v.values = g;
        v.count = n;
        v.dim = static_cast<std::uint32_t>(n);
        return v;
    }

    template <typename I>
    static GradientView
    sparse_view(const float* val, const I* idx, std::size_t nnz,
                std::uint32_t dim, simd::sparse::IndexMode mode)
    {
        static_assert(std::is_same_v<I, std::uint8_t> ||
                      std::is_same_v<I, std::uint16_t> ||
                      std::is_same_v<I, std::uint32_t>);
        GradientView v;
        v.values = val;
        v.count = nnz;
        v.dim = dim;
        v.index = idx;
        v.index_bits = static_cast<int>(sizeof(I)) * 8;
        v.mode = mode;
        return v;
    }

    /// Visits f(coordinate, value) for every stored entry in order
    /// (padding entries visit their resolved coordinate with value 0).
    template <typename F>
    void
    for_each(F&& f) const
    {
        if (!sparse()) {
            for (std::size_t k = 0; k < count; ++k) f(k, values[k]);
            return;
        }
        lowp::with_index_rep(index_bits, [&](auto tag) {
            using I = typename decltype(tag)::type;
            const I* idx = static_cast<const I*>(index);
            std::size_t cursor = 0;
            for (std::size_t j = 0; j < count; ++j) {
                const std::size_t k =
                    simd::sparse::detail::decode(mode, cursor, idx[j]);
                if (k >= dim)
                    fatal("sparse gradient index out of range");
                f(k, values[j]);
            }
        });
    }

    /// The view as a dense vector of `dim` coordinates (sparse entries
    /// scattered, everything else zero).
    std::vector<float>
    densify() const
    {
        std::vector<float> g(dim, 0.0f);
        for_each([&](std::size_t k, float v) { g[k] += v; });
        return g;
    }
};

} // namespace buckwild::ps

#endif // BUCKWILD_PS_GRADIENT_VIEW_H
