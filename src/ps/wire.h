/**
 * @file
 * Byte-level serialization of ps::Message — what actually crosses the
 * socket between cluster processes.
 *
 * Little-endian throughout, fixed field order, no padding:
 *
 *     offset  size  field
 *     0       1     message kind (Message::Kind)
 *     1       1     flags (bit0 = accepted, bit1 = sparse gradient;
 *                   any other bit set fails the parse, versioning the
 *                   format against silent reinterpretation)
 *     2       1     gradient codec kind (CodecKind)
 *     3       1     gradient codec bits
 *     4       4     sender endpoint
 *     8       4     worker id
 *     12      8     token
 *     20      8     clock
 *     28      8     version
 *     36      4     gradient count (dimension when dense, nnz when
 *                   sparse)
 *     40      4     gradient scale (IEEE-754 float bits)
 *     44      4     norm count N, then N * 4 bytes of float norms
 *     ...     4     payload size P, then P payload bytes
 *     ...     4     weight count W, then W * 4 bytes of float weights
 *     ...     4     stats count K, then K * 8 bytes of double stats
 *     ...     8+X   ONLY when flags bit1 is set (the sparse-push
 *                   extension): gradient dimension (u32, non-zero),
 *                   then index payload size X (u32) and X bytes of the
 *                   Elias-gamma index-gap stream (ps/quantize.h). A
 *                   dense message emits nothing here, so every
 *                   pre-sparse frame is byte-identical and parses in
 *                   old binaries; sparse frames are rejected by old
 *                   parsers (unknown flag) rather than misread.
 *     ...     58    OPTIONAL trailing trace block (obs/tracectx.h):
 *                   present only when the message carries a valid
 *                   TraceContext, so tracing-off frames are
 *                   byte-identical to the pre-trace format and parse in
 *                   old code; old-format frames (no block) parse in new
 *                   code as "no context". Trailing bytes that are not
 *                   exactly one well-formed block still fail the parse.
 *
 * Floats and doubles travel as their IEEE-754 bit patterns, so the CsQ /
 * Cs8 / Cs1 codec output a worker encoded in one process decodes
 * bit-identically in another — the cross-process bit-identity the golden
 * tests in tests/test_net.cpp pin down.
 *
 * deserialize_message() is defensive: every length is bounds-checked
 * against the buffer before reading, and a malformed buffer returns
 * false rather than throwing — the socket transport drops the frame and
 * lets the RPC layer's retransmit recover.
 */
#ifndef BUCKWILD_PS_WIRE_H
#define BUCKWILD_PS_WIRE_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ps/transport.h"

namespace buckwild::ps {

/// Serialized size of `message` in bytes (what serialize_message emits).
std::size_t serialized_bytes(const Message& message);

/// Flattens `message` into the layout above.
std::vector<std::uint8_t> serialize_message(const Message& message);

/// Parses `data[0..n)` into `out`. False (out unspecified) on a
/// truncated, oversized, or otherwise malformed buffer.
bool deserialize_message(const std::uint8_t* data, std::size_t n,
                         Message& out);

} // namespace buckwild::ps

#endif // BUCKWILD_PS_WIRE_H
