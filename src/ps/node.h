/**
 * @file
 * Cluster node roles — the pieces a multi-process parameter-server
 * deployment is assembled from, and the fork-based assembler itself.
 *
 * The endpoint layout is the ParameterServer's, shared cluster-wide:
 * shards at [0, S), workers at [S, S+W), control at S+W. In-process,
 * ParameterServer hosts everything behind one InProcTransport; across
 * processes, each role hosts its own endpoint(s) behind a
 * SocketTransport:
 *
 *  - run_shard_node(): a listening shard process — serves its slice
 *    until a kShutdown arrives, then returns its metrics;
 *  - run_worker_node(): a worker process — dials the shard addresses,
 *    runs its training rounds, returns its WorkerStats;
 *  - ControlClient: snapshot / stats / shutdown against remote shards
 *    from the control endpoint (what `buckwild_cluster --control` and
 *    the --spawn parent use);
 *  - train_cluster_multiprocess(): the --spawn convenience — binds every
 *    shard listener up front (race-free port assignment), forks S shard
 *    and W worker processes, collects worker stats over pipes, then
 *    snapshots, gathers shard metrics, and shuts the shards down as the
 *    control client. Call it before spawning any threads in the parent
 *    (fork() and threads do not mix).
 *
 * run_worker_rounds() is the one worker training loop, shared verbatim
 * by the in-process trainer (ps/cluster.cpp) and the socket worker — so
 * the two execution modes differ only in the fabric underneath.
 *
 * Fault injection in multi-process mode is sender-side at the clients:
 * worker and control processes apply the configured FaultModel to their
 * sends, shard processes drop/delay nothing (their reorder window still
 * applies). This keeps teardown deliverable — a shard that drops its own
 * kShutdown ack would exit while the controller retransmits into a dead
 * connection forever.
 */
#ifndef BUCKWILD_PS_NODE_H
#define BUCKWILD_PS_NODE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "ps/cluster.h"
#include "ps/socket_transport.h"

namespace buckwild::ps {

// ------------------------------------------------- endpoint geometry

/// First coordinate of shard s's slice (identical to
/// ParameterServer::shard_begin).
inline std::size_t
slice_begin(std::size_t dim, std::size_t shards, std::size_t s)
{
    return s * dim / shards;
}

/// One past the last coordinate of shard s's slice.
inline std::size_t
slice_end(std::size_t dim, std::size_t shards, std::size_t s)
{
    return (s + 1) * dim / shards;
}

/// Total transport endpoints of a cluster: S shards + W workers + 1
/// control.
inline std::size_t
cluster_endpoints(const ClusterConfig& config)
{
    return config.shards + config.workers + 1;
}

/// Endpoint of worker w's reply mailbox.
inline std::size_t
worker_endpoint_of(const ClusterConfig& config, std::size_t w)
{
    return config.shards + w;
}

/// The control endpoint (snapshot / stats / shutdown traffic).
inline std::size_t
control_endpoint_of(const ClusterConfig& config)
{
    return config.shards + config.workers;
}

// ------------------------------------------------------ worker rounds

/// What one worker reports when its rounds are done — plain values so a
/// forked worker process can ship them to the parent through a pipe.
struct WorkerStats
{
    double seconds = 0.0;          ///< wall time inside the round loop
    std::uint64_t retries = 0;     ///< RPC retransmissions
    std::uint64_t rounds = 0;      ///< rounds completed
    std::uint64_t encoded_bytes = 0; ///< wire bytes of pushed gradients
    std::uint64_t encoded_nnz = 0;   ///< nonzeros pushed (sparse rounds)
};

/**
 * Runs worker `worker`'s full training loop (pull, mini-batch gradient,
 * error feedback, encode per shard slice, push with SSP-nack backoff,
 * retire) over `transport` — any fabric. Increments `*rounds_done`
 * (when non-null) after each round, for an external publisher loop.
 */
WorkerStats run_worker_rounds(const ClusterConfig& config,
                              const dataset::DenseProblem& problem,
                              std::size_t worker, Transport& transport,
                              std::atomic<std::uint64_t>* rounds_done);

/**
 * The sparse sibling of run_worker_rounds(): minibatch gradients are
 * accumulated over only the touched coordinates (CSR rows through the
 * registered sparse dot kernels), error feedback is a sparse residual,
 * and each shard receives the nnz run falling inside its range as a
 * sparse push (encode_sparse_gradient) — including an empty push when
 * no coordinate landed there, so the SSP clocks advance uniformly.
 * Shared by the in-process trainer and the socket worker, like the
 * dense loop.
 */
WorkerStats run_worker_rounds(const ClusterConfig& config,
                              const dataset::SparseProblem& problem,
                              std::size_t worker, Transport& transport,
                              std::atomic<std::uint64_t>* rounds_done);

// ------------------------------------------------------- node roles

/// How a shard process binds its endpoint.
struct ShardNodeOptions
{
    std::size_t index = 0; ///< shard index == transport endpoint
    std::string bind_address = "127.0.0.1";
    std::uint16_t port = 0; ///< 0 = ephemeral
    /// Pre-bound listener inherited from the --spawn parent (takes
    /// ownership; overrides bind_address/port).
    int adopt_listen_fd = -1;
    /// When non-null, receives the actually bound port before serving.
    std::uint16_t* bound_port = nullptr;
};

/// Serves shard `options.index` over TCP until a kShutdown arrives;
/// returns the shard's counters. Blocks the calling thread.
ShardMetrics run_shard_node(const ClusterConfig& config, std::size_t dim,
                            const ShardNodeOptions& options);

/// Runs worker `worker` against remote shards at `shard_addresses`
/// (index s = shard s). Blocks until the rounds are done.
WorkerStats run_worker_node(const ClusterConfig& config,
                            const dataset::DenseProblem& problem,
                            std::size_t worker,
                            const std::vector<net::Address>& shard_addresses);

/// Sparse-workload worker process (same fabric, sparse round loop).
WorkerStats run_worker_node(const ClusterConfig& config,
                            const dataset::SparseProblem& problem,
                            std::size_t worker,
                            const std::vector<net::Address>& shard_addresses);

/// The control endpoint's view of a remote cluster.
class ControlClient
{
  public:
    ControlClient(const ClusterConfig& config,
                  const std::vector<net::Address>& shard_addresses);

    /// Assembles the full model by pulling every shard.
    std::vector<float> snapshot(std::size_t dim);

    /// Per-shard counters (kStats round-trip to every shard).
    std::vector<ShardMetrics> stats();

    /// Tells every shard to exit its message loop.
    void shutdown();

    std::uint64_t retries() const { return rpc_.retries(); }

  private:
    const ClusterConfig config_;
    SocketTransport transport_;
    RpcClient rpc_;
};

// --------------------------------------------------------- assembly

/// Average loss and accuracy of `model` over the whole problem, with
/// the same scalar evaluation loop the emulated trainer uses.
void evaluate_model(const dataset::DenseProblem& problem, core::Loss loss,
                    const std::vector<float>& model, double* out_loss,
                    double* out_accuracy);

/// Sparse evaluation: per-example dots through the registered sparse
/// kernels over the CSR rows.
void evaluate_model(const dataset::SparseProblem& problem, core::Loss loss,
                    const std::vector<float>& model, double* out_loss,
                    double* out_accuracy);

/// Wraps final weights in the async-C DMGC provenance signature at the
/// configured wire codec (what ParameterServer::checkpoint does, without
/// needing a live server). `sparse` selects the sparse signature row
/// (D32f i32 M32f with the async C term) for sparse-workload runs.
core::SavedModel make_cluster_checkpoint(const ClusterConfig& config,
                                         std::vector<float> weights,
                                         bool sparse = false);

/// Static per-round push bytes (header + payload per shard slice) for
/// the fixed-size codecs; 0 for the variable-bit CsQ tiers, whose
/// traffic is measured from WorkerStats::encoded_bytes instead.
double fixed_bytes_per_round(const ClusterConfig& config, std::size_t dim);

/**
 * train_cluster over real processes: forks config.shards shard processes
 * and config.workers worker processes on this machine, connected over
 * loopback TCP, and drives teardown as the control client. The returned
 * result mirrors train_cluster()'s, with two caveats: fabric counters
 * (messages_sent/dropped) are per-process and not aggregated, and
 * registry publishing is unavailable (no shared address space).
 *
 * Must be called while this process is single-threaded (it forks).
 * @throws std::runtime_error on invalid config or a failed child.
 */
ClusterResult train_cluster_multiprocess(const dataset::DenseProblem& problem,
                                         const ClusterConfig& config);

/// Multi-process training on a sparse (RCV1-style) workload: worker
/// children run the sparse round loop and every push on the wire is a
/// quantized sparse gradient. bytes_per_round is always measured from
/// the encoded traffic (sparse payloads are nnz-dependent even at the
/// fixed tiers).
ClusterResult train_cluster_multiprocess(const dataset::SparseProblem& problem,
                                         const ClusterConfig& config);

} // namespace buckwild::ps

#endif // BUCKWILD_PS_NODE_H
