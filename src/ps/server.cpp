#include "ps/server.h"

#include <algorithm>

#include "util/logging.h"

namespace buckwild::ps {

namespace {

PsConfig
validated(std::size_t dim, PsConfig config)
{
    if (dim == 0) fatal("model dimension must be >= 1");
    if (config.workers == 0) fatal("workers must be >= 1");
    if (config.shards == 0) fatal("shards must be >= 1");
    if (config.shards > dim)
        fatal("cannot partition " + std::to_string(dim) +
              " coordinates across " + std::to_string(config.shards) +
              " shards");
    validate_codec(config.codec);
    if (!(config.step_size > 0.0f)) fatal("step_size must be positive");
    if (config.batch == 0) fatal("batch must be >= 1");
    return config;
}

} // namespace

ParameterServer::ParameterServer(std::size_t dim, const PsConfig& config)
    : dim_(dim), config_(validated(dim, config)),
      transport_(config_.shards + config_.workers + 1, config_.faults)
{
    ShardConfig shard_cfg;
    shard_cfg.workers = config_.workers;
    shard_cfg.tau = config_.tau;
    shard_cfg.step_size = config_.step_size;
    shard_cfg.batch = config_.batch;
    shard_cfg.impl = config_.impl;
    for (std::size_t s = 0; s < config_.shards; ++s)
        shards_.push_back(std::make_unique<ServerShard>(
            s, shard_begin(s), shard_end(s), shard_cfg, transport_));
}

ParameterServer::~ParameterServer() { stop(); }

std::size_t
ParameterServer::shard_begin(std::size_t s) const
{
    return s * dim_ / config_.shards;
}

std::size_t
ParameterServer::shard_end(std::size_t s) const
{
    return (s + 1) * dim_ / config_.shards;
}

std::size_t
ParameterServer::worker_endpoint(std::size_t w) const
{
    if (w >= config_.workers) panic("worker endpoint out of range");
    return config_.shards + w;
}

void
ParameterServer::start()
{
    if (running_) panic("parameter server already started");
    if (stopped_) panic("parameter server cannot restart after stop");
    running_ = true;
    threads_.start(shards_.size(),
                   [this](std::size_t s) { shards_[s]->run(); });
}

void
ParameterServer::stop()
{
    if (!running_ || stopped_) return;
    stopped_ = true;
    transport_.close();
    threads_.join();
}

std::uint64_t
ParameterServer::version() const
{
    std::uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->version();
    return total;
}

std::vector<float>
ParameterServer::snapshot()
{
    std::lock_guard<std::mutex> lock(control_mutex_);
    if (!running_ || stopped_)
        panic("snapshot needs a running parameter server");
    const std::size_t control = config_.shards + config_.workers;
    RpcClient rpc(transport_, control);
    std::vector<float> model(dim_);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Message pull;
        pull.kind = Message::Kind::kPull;
        const Message reply = rpc.call(s, std::move(pull));
        if (reply.weights.size() != shard_end(s) - shard_begin(s))
            panic("pull reply does not match the shard slice");
        std::copy(reply.weights.begin(), reply.weights.end(),
                  model.begin() + static_cast<std::ptrdiff_t>(
                                      shard_begin(s)));
    }
    control_retries_ += rpc.retries();
    return model;
}

core::SavedModel
ParameterServer::checkpoint()
{
    core::SavedModel model;
    model.signature = dmgc::Signature::dense_hogwild();
    model.signature.communication = dmgc::Communication::kAsynchronous;
    model.signature.comm_precision = config_.codec.kind == CodecKind::kDense
        ? dmgc::Precision::full()
        : dmgc::Precision::fixed(config_.codec.bits);
    model.loss = config_.loss;
    model.weights = snapshot();
    return model;
}

std::uint64_t
ParameterServer::publish(serve::ModelRegistry& registry,
                         serve::Precision precision)
{
    return registry.publish(checkpoint(), precision);
}

PsMetrics
ParameterServer::metrics() const
{
    PsMetrics metrics;
    if (stopped_)
        for (const auto& shard : shards_)
            metrics.shards.push_back(shard->metrics());
    metrics.messages_sent = transport_.sent();
    metrics.messages_dropped = transport_.dropped();
    metrics.wire_bytes_sent = transport_.sent_bytes();
    {
        std::lock_guard<std::mutex> lock(control_mutex_);
        metrics.rpc_retries = control_retries_;
    }
    return metrics;
}

} // namespace buckwild::ps
