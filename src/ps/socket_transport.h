/**
 * @file
 * SocketTransport — the Transport interface over real TCP.
 *
 * One process hosts a subset of the cluster's endpoints (its `local`
 * set); every other endpoint is remote, reached either by dialing a
 * configured peer address or by replying over the connection a request
 * arrived on. The wire unit is a net/frame.h frame whose payload is a
 * 4-byte destination endpoint followed by a ps/wire.h serialized
 * Message.
 *
 * Topology conventions (matching the ParameterServer endpoint layout —
 * shards [0, S), workers [S, S+W), control S+W):
 *
 *  - a *shard* process listens and hosts its shard endpoint; it dials
 *    nobody. Reply routes to workers are *learned*: when a request kind
 *    (kPush/kPull/kRetire/kStats/kShutdown) arrives on a connection, its
 *    `sender` endpoint is bound to that connection, so the shard's acks
 *    and models flow back over the TCP connection the worker opened —
 *    workers need no listening port of their own.
 *  - a *worker* or *control* process hosts its own endpoint, does not
 *    listen, and dials the shard addresses it was configured with
 *    (lazily, with connect-retry — processes start in any order).
 *
 * Reliability stays the protocol's job: a send onto a dead or
 * unreachable connection is counted in dropped() and otherwise silent —
 * exactly like a FaultModel drop — and RpcClient's timeout-retransmit
 * recovers (the retransmit re-dials). The FaultModel itself also still
 * applies (drop/jitter on send, bounded reorder in the local
 * mailboxes), so the fault-injection convergence tests run unchanged
 * over real sockets.
 *
 * Byte accounting: sent_bytes()/recv_bytes() use the same idealized
 * Message::wire_bytes() the in-process fabric counts, so Cs-tier
 * traffic comparisons hold across fabrics; the *actual* framed TCP
 * bytes are exported to the obs registry as net.sent_bytes /
 * net.recv_bytes (with net.frames_sent / net.frames_recv / net.drops).
 */
#ifndef BUCKWILD_PS_SOCKET_TRANSPORT_H
#define BUCKWILD_PS_SOCKET_TRANSPORT_H

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "ps/transport.h"

namespace buckwild::ps {

/// Where this process sits in the cluster and how to reach the rest.
struct SocketTransportConfig
{
    /// Total endpoints in the cluster (the shared index space).
    std::size_t endpoints = 0;
    /// Endpoints hosted by this process (each gets a mailbox).
    std::vector<std::size_t> local;
    /// Remote endpoint -> address to dial (shards, from a worker's view).
    std::map<std::size_t, net::Address> peers;
    /// Listen for inbound connections (shard processes).
    bool listen = false;
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral; the bound port is readable via port().
    std::uint16_t listen_port = 0;
    /// A pre-bound listening socket inherited from a parent process
    /// (fork-based --spawn: the parent binds every shard's listener
    /// before forking, so advertised ports are race-free). Takes
    /// ownership; overrides bind_address/listen_port.
    int adopt_listen_fd = -1;
    /// How long a dial retries before the send counts as dropped.
    std::chrono::milliseconds connect_timeout{5000};
    std::size_t max_frame_bytes = net::kDefaultMaxFrameBytes;
    FaultModel faults;
};

class SocketTransport final : public Transport
{
  public:
    /// @throws std::runtime_error on a bad config or un-bindable listener.
    explicit SocketTransport(SocketTransportConfig config);
    ~SocketTransport() override;

    SocketTransport(const SocketTransport&) = delete;
    SocketTransport& operator=(const SocketTransport&) = delete;

    std::size_t endpoints() const override { return config_.endpoints; }
    const FaultModel& faults() const override { return config_.faults; }

    void send(std::size_t to, Message&& message) override;
    bool recv(std::size_t at, Message& out,
              std::chrono::microseconds timeout) override;

    /// Stops the accept/reader threads, closes every connection, and
    /// closes the local mailboxes (receivers drain, then see closed).
    void close() override;
    bool closed() const override
    {
        return closed_.load(std::memory_order_acquire);
    }

    /// A loopback TCP round trip plus shard service time sits in the
    /// low milliseconds; retransmitting on the in-proc 200us clock
    /// would duplicate nearly every healthy call.
    std::chrono::microseconds rpc_base_timeout() const override
    {
        return std::chrono::milliseconds(2);
    }

    std::uint64_t sent() const override { return sent_.load(); }
    std::uint64_t dropped() const override { return dropped_.load(); }
    std::uint64_t sent_bytes() const override { return sent_bytes_.load(); }
    std::uint64_t recv_bytes() const override { return recv_bytes_.load(); }

    /// The port this transport listens on (0 when not listening).
    std::uint16_t port() const { return port_; }

  private:
    /// One TCP connection: writes serialized under the mutex, reads
    /// demultiplexed to mailboxes by a dedicated thread.
    struct Connection
    {
        net::Fd fd;
        std::mutex write_mutex;
        std::thread reader;
        std::atomic<bool> dead{false};
        /// True when accept_loop produced this connection. Only inbound
        /// connections carry requests, so only they teach reply routes;
        /// everything read on a dialed connection is a reply, and a
        /// reply whose kind overlaps a request kind (kStats) must not
        /// overwrite the dialer's routing table.
        bool accepted = false;
    };

    Mailbox* local_mailbox(std::size_t endpoint) const;
    std::shared_ptr<Connection> route_for(std::size_t to);
    std::shared_ptr<Connection> adopt_connection(net::Fd fd);
    void reader_loop(const std::shared_ptr<Connection>& connection);
    void accept_loop();
    bool write_message(Connection& connection, std::size_t to,
                       const Message& message);

    const SocketTransportConfig config_;
    std::map<std::size_t, std::unique_ptr<Mailbox>> mailboxes_;
    net::Fd listen_fd_;
    std::uint16_t port_ = 0;
    std::thread acceptor_;

    std::mutex conn_mutex_; ///< guards connections_, routes_, dialed_
    std::vector<std::shared_ptr<Connection>> connections_;
    /// endpoint -> connection, learned from inbound requests or dialing.
    std::map<std::size_t, std::shared_ptr<Connection>> routes_;
    /// address -> connection, so endpoints co-hosted by one peer process
    /// share a single TCP connection.
    std::map<std::string, std::shared_ptr<Connection>> dialed_;

    std::mutex fault_mutex_; ///< guards fault_rng_
    rng::Xorshift128Plus fault_rng_;

    std::atomic<bool> closed_{false};
    std::atomic<std::uint64_t> sent_{0};
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> sent_bytes_{0};
    std::atomic<std::uint64_t> recv_bytes_{0};
};

} // namespace buckwild::ps

#endif // BUCKWILD_PS_SOCKET_TRANSPORT_H
