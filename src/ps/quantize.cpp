#include "ps/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "lowp/round.h"
#include "util/logging.h"

namespace buckwild::ps {

void
validate_comm_bits(int bits)
{
    if (bits != 1 && bits != 8 && bits != 32)
        fatal("comm_bits must be 1, 8, or 32");
}

std::size_t
payload_bytes(std::size_t count, int bits)
{
    validate_comm_bits(bits);
    if (bits >= 32) return count * sizeof(float);
    if (bits == 8) return count;
    return (count + 7) / 8;
}

namespace {

/**
 * The shared quantization core: writes the transmitted values into
 * q[0..n), the error into residual[0..n) (when non-null), and the packed
 * wire payload into `payload` (when non-null, sized by payload_bytes and
 * zeroed), exactly as the seed emulation computed them. Packing happens
 * here — not from the already-rounded q — so the stored Cs8 level is the
 * very nearbyintf() result whose product with the scale IS q[k], keeping
 * decode bit-identical. Returns the per-message scale.
 */
float
quantize_into(const float* g, std::size_t n, int bits, float* q,
              float* residual, std::uint8_t* payload)
{
    float scale = 0.0f;
    if (bits >= 32) {
        std::copy(g, g + n, q);
        if (residual != nullptr)
            for (std::size_t k = 0; k < n; ++k) residual[k] = 0.0f;
        if (payload != nullptr)
            std::memcpy(payload, g, n * sizeof(float));
        return scale;
    }

    if (bits == 1) {
        // Seide-style 1-bit: transmit sign(g) and one shared magnitude
        // (the mean absolute value); the untransmitted remainder stays in
        // the residual. The magnitude sum stays sequential (its double
        // accumulation order is part of the wire format); the sign pass,
        // residual, and bit packing take the substrate's vectorized path.
        double mag = 0.0;
        for (std::size_t k = 0; k < n; ++k) mag += std::fabs(g[k]);
        scale =
            n > 0 ? static_cast<float>(mag / static_cast<double>(n)) : 0.0f;
        lowp::quantize_sign_1bit(g, n, scale, q, residual, payload);
    } else {
        // k-bit linear quantization with a per-round scale; level
        // rounding, packing, and the error-feedback residual run in the
        // substrate's vectorized kernel.
        const float maxabs = lowp::max_abs(g, n);
        const float levels = static_cast<float>((1 << (bits - 1)) - 1);
        scale = maxabs > 0.0f ? maxabs / levels : 1.0f;
        lowp::round_levels_i8(g, n, scale,
                              reinterpret_cast<std::int8_t*>(payload), q,
                              residual);
    }
    return scale;
}

} // namespace

std::vector<float>
quantize_gradient(const std::vector<float>& g, int bits,
                  std::vector<float>* residual)
{
    validate_comm_bits(bits);
    std::vector<float> q(g.size());
    quantize_into(g.data(), g.size(), bits, q.data(),
                  residual != nullptr ? residual->data() : nullptr, nullptr);
    return q;
}

WireGradient
encode_gradient(const float* g, std::size_t n, int bits, float* residual)
{
    validate_comm_bits(bits);
    std::vector<float> q(n);
    WireGradient wire;
    wire.bits = bits;
    wire.count = static_cast<std::uint32_t>(n);
    wire.payload.assign(payload_bytes(n, bits), 0);
    wire.scale = quantize_into(g, n, bits, q.data(), residual,
                               wire.payload.data());
    return wire;
}

std::vector<float>
decode_gradient(const WireGradient& wire)
{
    validate_comm_bits(wire.bits);
    const std::size_t n = wire.count;
    if (wire.payload.size() != payload_bytes(n, wire.bits))
        fatal("wire gradient payload size does not match its count");
    std::vector<float> g(n);
    if (wire.bits >= 32) {
        std::memcpy(g.data(), wire.payload.data(), n * sizeof(float));
    } else if (wire.bits == 8) {
        for (std::size_t k = 0; k < n; ++k)
            g[k] = static_cast<float>(
                       static_cast<std::int8_t>(wire.payload[k])) *
                   wire.scale;
    } else {
        for (std::size_t k = 0; k < n; ++k)
            g[k] = (wire.payload[k / 8] >> (k % 8)) & 1u ? -wire.scale
                                                         : wire.scale;
    }
    return g;
}

} // namespace buckwild::ps
