#include "ps/quantize.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "lowp/round.h"
#include "util/logging.h"

namespace buckwild::ps {

void
validate_comm_bits(int bits)
{
    if (bits != 1 && bits != 8 && bits != 32)
        fatal("comm_bits must be 1, 8, or 32");
}

Codec
Codec::from_bits(int bits)
{
    validate_comm_bits(bits);
    Codec codec;
    codec.bits = bits;
    codec.kind = bits >= 32  ? CodecKind::kDense
                 : bits == 8 ? CodecKind::kLinear
                             : CodecKind::kSign;
    return codec;
}

Codec
Codec::qsgd(int bits)
{
    if (bits < 2 || bits > 8) fatal("CsQ bits must be in [2, 8]");
    return {CodecKind::kQsgd, bits};
}

namespace {

int
parse_tier_int(const std::string& text, const std::string& whole)
{
    char* end = nullptr;
    const long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || value < 0 || value > 64)
        fatal("unknown codec tier '" + whole + "'");
    return static_cast<int>(value);
}

} // namespace

Codec
Codec::parse(const std::string& text)
{
    std::string tail = text;
    if (tail.size() >= 2 && (tail[0] == 'C' || tail[0] == 'c') &&
        (tail[1] == 's' || tail[1] == 'S'))
        tail = tail.substr(2);
    if (!tail.empty() && (tail[0] == 'Q' || tail[0] == 'q'))
        return qsgd(parse_tier_int(tail.substr(1), text));
    return from_bits(parse_tier_int(tail, text));
}

std::string
Codec::name() const
{
    if (kind == CodecKind::kQsgd) return "CsQ" + std::to_string(bits);
    return "Cs" + std::to_string(bits);
}

void
validate_codec(const Codec& codec)
{
    switch (codec.kind) {
        case CodecKind::kDense:
            if (codec.bits == 32) return;
            break;
        case CodecKind::kLinear:
            if (codec.bits == 8) return;
            break;
        case CodecKind::kSign:
            if (codec.bits == 1) return;
            break;
        case CodecKind::kQsgd:
            if (codec.bits >= 2 && codec.bits <= 8) return;
            break;
    }
    fatal("invalid codec: kind " +
          std::to_string(static_cast<int>(codec.kind)) + " at " +
          std::to_string(codec.bits) + " bits");
}

std::size_t
payload_bytes(std::size_t count, int bits)
{
    validate_comm_bits(bits);
    if (bits >= 32) return count * sizeof(float);
    if (bits == 8) return count;
    return (count + 7) / 8;
}

namespace {

/**
 * The shared quantization core: writes the transmitted values into
 * q[0..n), the error into residual[0..n) (when non-null), and the packed
 * wire payload into `payload` (when non-null, sized by payload_bytes and
 * zeroed), exactly as the seed emulation computed them. Packing happens
 * here — not from the already-rounded q — so the stored Cs8 level is the
 * very nearbyintf() result whose product with the scale IS q[k], keeping
 * decode bit-identical. Returns the per-message scale.
 */
float
quantize_into(const float* g, std::size_t n, int bits, float* q,
              float* residual, std::uint8_t* payload)
{
    float scale = 0.0f;
    if (bits >= 32) {
        std::copy(g, g + n, q);
        if (residual != nullptr)
            for (std::size_t k = 0; k < n; ++k) residual[k] = 0.0f;
        if (payload != nullptr)
            std::memcpy(payload, g, n * sizeof(float));
        return scale;
    }

    if (bits == 1) {
        // Seide-style 1-bit: transmit sign(g) and one shared magnitude
        // (the mean absolute value); the untransmitted remainder stays in
        // the residual. The magnitude sum stays sequential (its double
        // accumulation order is part of the wire format); the sign pass,
        // residual, and bit packing take the substrate's vectorized path.
        double mag = 0.0;
        for (std::size_t k = 0; k < n; ++k) mag += std::fabs(g[k]);
        scale =
            n > 0 ? static_cast<float>(mag / static_cast<double>(n)) : 0.0f;
        lowp::quantize_sign_1bit(g, n, scale, q, residual, payload);
    } else {
        // k-bit linear quantization with a per-round scale; level
        // rounding, packing, and the error-feedback residual run in the
        // substrate's vectorized kernel.
        const float maxabs = lowp::max_abs(g, n);
        const float levels = static_cast<float>((1 << (bits - 1)) - 1);
        scale = maxabs > 0.0f ? maxabs / levels : 1.0f;
        lowp::round_levels_i8(g, n, scale,
                              reinterpret_cast<std::int8_t*>(payload), q,
                              residual);
    }
    return scale;
}

// ---------------------------------------------------------------------
// QSGD (CsQ<b>): bucketed L2 norm + stochastic Elias-gamma levels
// ---------------------------------------------------------------------

/// The grid point a (norm, level) pair decodes to. One definition used by
/// both encode (for the error-feedback residual) and decode, so the
/// residual is computed against bit-identically what the receiver applies.
inline float
qsgd_point(float norm, long level, float inv_s)
{
    return norm * (static_cast<float>(level) * inv_s);
}

/// MSB-first bit appender over a byte vector (the gamma bitstream region
/// of a CsQ payload, following the sign bitmap).
class BitWriter
{
  public:
    explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

    void
    put(bool bit)
    {
        if (used_ == 0) out_.push_back(0);
        if (bit) out_.back() |= static_cast<std::uint8_t>(0x80u >> used_);
        used_ = (used_ + 1) % 8;
    }

    /// Elias gamma: for v >= 1 of bit-width w, w-1 zero bits then v
    /// MSB-first (w bits, leading 1 included).
    void
    put_gamma(std::uint32_t v)
    {
        const int width = std::bit_width(v);
        for (int i = 0; i < width - 1; ++i) put(false);
        for (int i = width - 1; i >= 0; --i) put(((v >> i) & 1u) != 0);
    }

  private:
    std::vector<std::uint8_t>& out_;
    int used_ = 0;
};

/// Bounds-checked MSB-first bit reader over the gamma region of a CsQ
/// payload. Truncation is a wire-format violation, not a soft error.
class BitReader
{
  public:
    BitReader(const std::uint8_t* data, std::size_t total_bytes,
              std::size_t start_byte)
        : data_(data), bit_(start_byte * 8), end_(total_bytes * 8)
    {}

    bool
    get()
    {
        if (bit_ >= end_) fatal("CsQ payload truncated mid-bitstream");
        const bool bit = (data_[bit_ / 8] >> (7 - bit_ % 8)) & 1u;
        ++bit_;
        return bit;
    }

    std::uint32_t
    get_gamma()
    {
        int zeros = 0;
        while (!get())
            if (++zeros > 31) fatal("CsQ gamma code overlong");
        std::uint32_t v = 1;
        for (int i = 0; i < zeros; ++i)
            v = (v << 1) | static_cast<std::uint32_t>(get());
        return v;
    }

    std::size_t bit_position() const { return bit_; }

  private:
    const std::uint8_t* data_;
    std::size_t bit_;
    std::size_t end_;
};

WireGradient
encode_qsgd(const float* g, std::size_t n, int bits, float* residual,
            rng::Xorshift128Plus* rng)
{
    // A null rng falls back to a default-seeded local stream so golden
    // tests (and emulation comparisons) stay reproducible.
    rng::Xorshift128Plus fallback;
    if (rng == nullptr) rng = &fallback;

    const long s = (1L << (bits - 1)) - 1;
    const float inv_s = 1.0f / static_cast<float>(s);
    // QSGD levels on the lowp grid: quantum 1/s over raw range [0, s]
    // of the normalized magnitude |g|/norm — stochastic rounding is
    // exactly Eq. (4) on that grid.
    const lowp::GridSpec grid{1.0 / static_cast<double>(s), 0, s};

    WireGradient wire;
    wire.kind = CodecKind::kQsgd;
    wire.bits = bits;
    wire.count = static_cast<std::uint32_t>(n);
    const std::size_t buckets = (n + kQsgdBucket - 1) / kQsgdBucket;
    wire.norms.resize(buckets);
    const std::size_t sign_bytes = (n + 7) / 8;
    wire.payload.assign(sign_bytes, 0);
    BitWriter writer(wire.payload);

    for (std::size_t b = 0; b < buckets; ++b) {
        const std::size_t begin = b * kQsgdBucket;
        const std::size_t end = std::min(n, begin + kQsgdBucket);
        double sumsq = 0.0;
        for (std::size_t k = begin; k < end; ++k)
            sumsq += static_cast<double>(g[k]) * static_cast<double>(g[k]);
        const float norm = static_cast<float>(std::sqrt(sumsq));
        wire.norms[b] = norm;

        for (std::size_t k = begin; k < end; ++k) {
            // Same sign convention as Cs1: bit set = negative, and NaN
            // counts as negative (matching !(g >= 0)).
            const bool negative = !(g[k] >= 0.0f);
            if (negative)
                wire.payload[k / 8] |=
                    static_cast<std::uint8_t>(1u << (k % 8));
            const double ratio =
                norm > 0.0f ? static_cast<double>(std::fabs(g[k])) /
                                  static_cast<double>(norm)
                            : 0.0;
            const float u = rng::to_unit_float(
                static_cast<std::uint32_t>((*rng)() >> 32));
            const long level = lowp::round_unbiased_raw(ratio, grid, u);
            writer.put_gamma(static_cast<std::uint32_t>(level) + 1);
            const float point = qsgd_point(norm, level, inv_s);
            const float q = negative ? -point : point;
            if (residual != nullptr) residual[k] = g[k] - q;
        }
    }
    return wire;
}

std::vector<float>
decode_qsgd(const WireGradient& wire)
{
    const std::size_t n = wire.count;
    const std::size_t buckets = (n + kQsgdBucket - 1) / kQsgdBucket;
    if (wire.norms.size() != buckets)
        fatal("CsQ norm count does not match the coordinate count");
    const std::size_t sign_bytes = (n + 7) / 8;
    if (wire.payload.size() < sign_bytes)
        fatal("CsQ payload shorter than its sign bitmap");

    const long s = (1L << (wire.bits - 1)) - 1;
    const float inv_s = 1.0f / static_cast<float>(s);
    BitReader reader(wire.payload.data(), wire.payload.size(), sign_bytes);
    std::vector<float> g(n);
    for (std::size_t k = 0; k < n; ++k) {
        const long level = static_cast<long>(reader.get_gamma()) - 1;
        if (level > s) fatal("CsQ level exceeds the codec's level count");
        const float point =
            qsgd_point(wire.norms[k / kQsgdBucket], level, inv_s);
        const bool negative = (wire.payload[k / 8] >> (k % 8)) & 1u;
        g[k] = negative ? -point : point;
    }
    return g;
}

/// Decodes the packed value run of `wire` — `count` values, which is the
/// dimension for a dense gradient and the nnz for a sparse one. The
/// value codecs are identical either way; only index decoding differs.
std::vector<float>
decode_values(const WireGradient& wire)
{
    validate_codec({wire.kind, wire.bits});
    if (wire.kind == CodecKind::kQsgd) return decode_qsgd(wire);

    if (!wire.norms.empty())
        fatal("only CsQ wire gradients carry per-bucket norms");
    const std::size_t n = wire.count;
    if (wire.payload.size() != payload_bytes(n, wire.bits))
        fatal("wire gradient payload size does not match its count");
    std::vector<float> g(n);
    if (wire.bits >= 32) {
        if (n != 0) // empty sparse pushes have no payload to copy
            std::memcpy(g.data(), wire.payload.data(), n * sizeof(float));
    } else if (wire.bits == 8) {
        for (std::size_t k = 0; k < n; ++k)
            g[k] = static_cast<float>(
                       static_cast<std::int8_t>(wire.payload[k])) *
                   wire.scale;
    } else {
        for (std::size_t k = 0; k < n; ++k)
            g[k] = (wire.payload[k / 8] >> (k % 8)) & 1u ? -wire.scale
                                                         : wire.scale;
    }
    return g;
}

} // namespace

std::vector<float>
quantize_gradient(const std::vector<float>& g, int bits,
                  std::vector<float>* residual)
{
    validate_comm_bits(bits);
    std::vector<float> q(g.size());
    quantize_into(g.data(), g.size(), bits, q.data(),
                  residual != nullptr ? residual->data() : nullptr, nullptr);
    return q;
}

WireGradient
encode_gradient(const float* g, std::size_t n, const Codec& codec,
                float* residual, rng::Xorshift128Plus* rng)
{
    validate_codec(codec);
    if (codec.kind == CodecKind::kQsgd)
        return encode_qsgd(g, n, codec.bits, residual, rng);
    return encode_gradient(g, n, codec.bits, residual);
}

WireGradient
encode_gradient(const float* g, std::size_t n, int bits, float* residual)
{
    validate_comm_bits(bits);
    std::vector<float> q(n);
    WireGradient wire;
    wire.kind = Codec::from_bits(bits).kind;
    wire.bits = bits;
    wire.count = static_cast<std::uint32_t>(n);
    wire.payload.assign(payload_bytes(n, bits), 0);
    wire.scale = quantize_into(g, n, bits, q.data(), residual,
                               wire.payload.data());
    return wire;
}

std::vector<float>
decode_gradient(const WireGradient& wire)
{
    if (wire.sparse()) {
        const SparseGradient s = decode_sparse_gradient(wire);
        std::vector<float> g(s.dim, 0.0f);
        for (std::size_t j = 0; j < s.nnz(); ++j)
            g[s.index[j]] = s.value[j];
        return g;
    }
    return decode_values(wire);
}

WireGradient
encode_sparse_gradient(const GradientView& view, const Codec& codec,
                       float* residual, rng::Xorshift128Plus* rng)
{
    validate_codec(codec);
    if (view.dim == 0)
        fatal("sparse gradient dimension must be non-zero");
    if (view.count == 0) {
        // The empty push a sparse worker still sends per shard per round
        // (its SSP clock must advance): a zero-length value run and no
        // index stream. Built directly — an empty view's spans may be
        // null, and the value codecs assume valid pointers. The scale
        // matches what the codecs emit for a zero-length run.
        WireGradient wire;
        wire.kind = codec.kind;
        wire.bits = codec.bits;
        wire.count = 0;
        wire.dim = view.dim;
        if (codec.kind == CodecKind::kLinear) wire.scale = 1.0f;
        return wire;
    }
    if (!view.sparse())
        fatal("encode_sparse_gradient requires a sparse view");

    // Normalize the view's index rep/mode to absolute u32 coordinates —
    // the wire form is index-rep independent (always the gamma stream).
    std::vector<std::uint32_t> index(view.count);
    std::size_t j = 0;
    view.for_each([&](std::size_t k, float) {
        index[j++] = static_cast<std::uint32_t>(k);
    });
    for (std::size_t i = 1; i < index.size(); ++i)
        if (index[i] <= index[i - 1])
            fatal("sparse gradient indices must be strictly ascending");

    // Value run: the same codec machinery as a dense gradient of length
    // nnz — CsQ buckets norms over nnz runs, Cs8 scales over the nnz max.
    WireGradient wire = encode_gradient(view.values, view.count, codec,
                                        residual, rng);
    wire.dim = view.dim;
    BitWriter writer(wire.index_payload);
    for (std::size_t i = 0; i < index.size(); ++i) {
        const std::uint32_t gap =
            i == 0 ? index[0] + 1 : index[i] - index[i - 1];
        writer.put_gamma(gap);
    }
    return wire;
}

SparseGradient
decode_sparse_gradient(const WireGradient& wire)
{
    if (!wire.sparse())
        fatal("decode_sparse_gradient requires a sparse wire gradient");
    SparseGradient s;
    s.dim = wire.dim;
    s.value = decode_values(wire);

    const std::size_t nnz = wire.count;
    s.index.resize(nnz);
    if (nnz == 0) {
        if (!wire.index_payload.empty())
            fatal("empty sparse gradient carries index bytes");
        return s;
    }
    BitReader reader(wire.index_payload.data(), wire.index_payload.size(),
                     0);
    std::uint64_t cursor = 0;
    for (std::size_t i = 0; i < nnz; ++i) {
        const std::uint32_t gap = reader.get_gamma(); // >= 1 by gamma
        cursor = i == 0 ? static_cast<std::uint64_t>(gap) - 1
                        : cursor + gap;
        if (cursor >= s.dim)
            fatal("sparse gradient index exceeds its dimension");
        s.index[i] = static_cast<std::uint32_t>(cursor);
    }
    // The stream must fill the payload to its last byte — anything past
    // bit padding is a wire-format violation, same as a truncated run.
    if ((reader.bit_position() + 7) / 8 != wire.index_payload.size())
        fatal("sparse gradient index payload has trailing bytes");
    return s;
}

} // namespace buckwild::ps
