#include "ps/wire.h"

#include <cstring>

namespace buckwild::ps {

namespace {

constexpr std::size_t kFixedBytes = 44; // through the gradient scale

void
put_u32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void
put_u64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    put_u32(out, static_cast<std::uint32_t>(v));
    put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void
put_f32(std::vector<std::uint8_t>& out, float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u32(out, bits);
}

void
put_f64(std::vector<std::uint8_t>& out, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(out, bits);
}

/// Cursor over the receive buffer; every read is bounds-checked.
class Reader
{
  public:
    Reader(const std::uint8_t* data, std::size_t n) : data_(data), n_(n) {}

    bool
    u8(std::uint8_t* out)
    {
        if (pos_ + 1 > n_) return false;
        *out = data_[pos_++];
        return true;
    }

    bool
    u32(std::uint32_t* out)
    {
        if (pos_ + 4 > n_) return false;
        *out = static_cast<std::uint32_t>(data_[pos_]) |
               (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
               (static_cast<std::uint32_t>(data_[pos_ + 2]) << 16) |
               (static_cast<std::uint32_t>(data_[pos_ + 3]) << 24);
        pos_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t* out)
    {
        std::uint32_t lo = 0;
        std::uint32_t hi = 0;
        if (!u32(&lo) || !u32(&hi)) return false;
        *out = static_cast<std::uint64_t>(lo) |
               (static_cast<std::uint64_t>(hi) << 32);
        return true;
    }

    bool
    f32(float* out)
    {
        std::uint32_t bits = 0;
        if (!u32(&bits)) return false;
        std::memcpy(out, &bits, sizeof(*out));
        return true;
    }

    bool
    f64(double* out)
    {
        std::uint64_t bits = 0;
        if (!u64(&bits)) return false;
        std::memcpy(out, &bits, sizeof(*out));
        return true;
    }

    bool
    bytes(std::vector<std::uint8_t>* out, std::size_t count)
    {
        if (pos_ + count > n_ || pos_ + count < pos_) return false;
        out->assign(data_ + pos_, data_ + pos_ + count);
        pos_ += count;
        return true;
    }

    bool done() const { return pos_ == n_; }
    std::size_t remaining() const { return n_ - pos_; }
    const std::uint8_t* cursor() const { return data_ + pos_; }

  private:
    const std::uint8_t* data_;
    std::size_t n_;
    std::size_t pos_ = 0;
};

/// A length prefix cannot exceed the remaining buffer — cheap guard
/// against a corrupt count making the loops below spin.
template <typename T>
bool
read_array(Reader& reader, std::vector<T>& out,
           bool (Reader::*element)(T*))
{
    std::uint32_t count = 0;
    if (!reader.u32(&count)) return false;
    out.resize(count);
    for (std::uint32_t i = 0; i < count; ++i)
        if (!(reader.*element)(&out[i])) return false;
    return true;
}

} // namespace

std::size_t
serialized_bytes(const Message& message)
{
    return kFixedBytes + 4 + message.gradient.norms.size() * 4 + 4 +
           message.gradient.payload.size() + 4 +
           message.weights.size() * 4 + 4 + message.stats.size() * 8 +
           (message.gradient.sparse()
                ? 8 + message.gradient.index_payload.size()
                : 0) +
           (message.trace.ctx.valid() ? obs::kTraceBlockBytes : 0);
}

std::vector<std::uint8_t>
serialize_message(const Message& message)
{
    std::vector<std::uint8_t> out;
    out.reserve(serialized_bytes(message));
    out.push_back(static_cast<std::uint8_t>(message.kind));
    out.push_back(static_cast<std::uint8_t>(
        (message.accepted ? 1u : 0u) |
        (message.gradient.sparse() ? 2u : 0u)));
    out.push_back(static_cast<std::uint8_t>(message.gradient.kind));
    out.push_back(static_cast<std::uint8_t>(message.gradient.bits));
    put_u32(out, message.sender);
    put_u32(out, message.worker);
    put_u64(out, message.token);
    put_u64(out, message.clock);
    put_u64(out, message.version);
    put_u32(out, message.gradient.count);
    put_f32(out, message.gradient.scale);
    put_u32(out, static_cast<std::uint32_t>(message.gradient.norms.size()));
    for (const float norm : message.gradient.norms) put_f32(out, norm);
    put_u32(out,
            static_cast<std::uint32_t>(message.gradient.payload.size()));
    out.insert(out.end(), message.gradient.payload.begin(),
               message.gradient.payload.end());
    put_u32(out, static_cast<std::uint32_t>(message.weights.size()));
    for (const float w : message.weights) put_f32(out, w);
    put_u32(out, static_cast<std::uint32_t>(message.stats.size()));
    for (const double s : message.stats) put_f64(out, s);
    // The sparse extension is flag-gated, so dense frames stay
    // byte-identical to the pre-sparse wire format.
    if (message.gradient.sparse()) {
        put_u32(out, message.gradient.dim);
        put_u32(out, static_cast<std::uint32_t>(
                         message.gradient.index_payload.size()));
        out.insert(out.end(), message.gradient.index_payload.begin(),
                   message.gradient.index_payload.end());
    }
    // The optional trace block rides strictly last and only when a
    // context exists, so tracing-off output is byte-identical to the
    // pre-trace wire format.
    if (message.trace.ctx.valid()) obs::append_trace_block(out, message.trace);
    return out;
}

bool
deserialize_message(const std::uint8_t* data, std::size_t n, Message& out)
{
    Reader reader(data, n);
    std::uint8_t kind = 0;
    std::uint8_t flags = 0;
    std::uint8_t codec_kind = 0;
    std::uint8_t codec_bits = 0;
    if (!reader.u8(&kind) || !reader.u8(&flags) ||
        !reader.u8(&codec_kind) || !reader.u8(&codec_bits))
        return false;
    if (kind > static_cast<std::uint8_t>(Message::Kind::kShutdown))
        return false;
    if (codec_kind > static_cast<std::uint8_t>(CodecKind::kQsgd))
        return false;
    // Unknown flag bits fail the parse — a frame from a future format
    // revision must not be silently misread as today's layout.
    if ((flags & ~0x3u) != 0) return false;
    const bool sparse = (flags & 2u) != 0;
    out.kind = static_cast<Message::Kind>(kind);
    out.accepted = (flags & 1u) != 0;
    out.gradient.kind = static_cast<CodecKind>(codec_kind);
    out.gradient.bits = codec_bits;
    if (!reader.u32(&out.sender) || !reader.u32(&out.worker) ||
        !reader.u64(&out.token) || !reader.u64(&out.clock) ||
        !reader.u64(&out.version) || !reader.u32(&out.gradient.count) ||
        !reader.f32(&out.gradient.scale))
        return false;
    if (!read_array(reader, out.gradient.norms, &Reader::f32)) return false;
    {
        std::uint32_t payload_size = 0;
        if (!reader.u32(&payload_size)) return false;
        if (!reader.bytes(&out.gradient.payload, payload_size))
            return false;
    }
    if (!read_array(reader, out.weights, &Reader::f32)) return false;
    if (!read_array(reader, out.stats, &Reader::f64)) return false;
    out.gradient.dim = 0;
    out.gradient.index_payload.clear();
    if (sparse) {
        std::uint32_t index_size = 0;
        if (!reader.u32(&out.gradient.dim)) return false;
        if (out.gradient.dim == 0) return false;
        if (!reader.u32(&index_size)) return false;
        if (!reader.bytes(&out.gradient.index_payload, index_size))
            return false;
    }
    // Trailing bytes are legal in exactly one shape: one well-formed
    // trace block. An old-format frame ends here (no context); anything
    // else — truncation, a lone pad byte, a corrupt block — stays a
    // parse failure.
    out.trace = obs::WireTrace{};
    if (reader.done()) return true;
    if (reader.remaining() != obs::kTraceBlockBytes) return false;
    return obs::parse_trace_block(reader.cursor(), reader.remaining(),
                                  out.trace);
}

} // namespace buckwild::ps
