#include "ps/cluster.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/obs.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace buckwild::ps {

namespace {

/// Average loss and accuracy of `model` over the whole problem, with the
/// same scalar evaluation loop the emulated trainer uses.
void
evaluate(const dataset::DenseProblem& problem, core::Loss loss,
         const std::vector<float>& model, double* out_loss,
         double* out_accuracy)
{
    double total = 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < problem.examples; ++i) {
        float z = 0.0f;
        const float* x = problem.row(i);
        for (std::size_t k = 0; k < problem.dim; ++k) z += model[k] * x[k];
        total += core::loss_value(loss, z, problem.y[i]);
        if (core::loss_correct(loss, z, problem.y[i])) ++correct;
    }
    *out_loss = total / static_cast<double>(problem.examples);
    *out_accuracy =
        static_cast<double>(correct) / static_cast<double>(problem.examples);
}

} // namespace

ClusterResult
train_cluster(const dataset::DenseProblem& problem,
              const ClusterConfig& config, serve::ModelRegistry* registry)
{
    if (config.rounds == 0) fatal("rounds must be >= 1");
    if (problem.examples < config.workers)
        fatal("need at least one example per worker");

    PsConfig ps_cfg;
    ps_cfg.shards = config.shards;
    ps_cfg.workers = config.workers;
    ps_cfg.tau = config.tau;
    ps_cfg.step_size = config.step_size;
    ps_cfg.batch = config.batch;
    ps_cfg.comm_bits = config.comm_bits;
    ps_cfg.loss = config.loss;
    ps_cfg.impl = config.impl;
    ps_cfg.faults = config.faults;

    // Construction validates the whole configuration (throws on bad
    // shards / comm_bits / step_size / batch).
    ParameterServer server(problem.dim, ps_cfg);

    const std::size_t dim = problem.dim;
    const std::size_t shards = server.shards();
    const std::size_t workers = config.workers;

    ClusterResult result;
    result.comm = "Cs" + std::to_string(config.comm_bits);
    for (std::size_t s = 0; s < shards; ++s)
        result.bytes_per_round += static_cast<double>(
            kWireHeaderBytes +
            payload_bytes(server.shard_end(s) - server.shard_begin(s),
                          config.comm_bits));

    std::atomic<std::uint64_t> rounds_done{0};
    std::vector<double> worker_seconds(workers, 0.0);
    std::vector<std::uint64_t> worker_retries(workers, 0);

    Stopwatch wall;
    server.start();

    WorkerGroup group;
    group.start(workers, [&](std::size_t w) {
        Stopwatch clock;
        RpcClient rpc(server.transport(), server.worker_endpoint(w));

        // Worker w trains on its own contiguous slice of the examples —
        // the data-parallel D partition — cycling through it in
        // mini-batches of config.batch.
        const std::size_t ex_begin = w * problem.examples / workers;
        const std::size_t ex_end = (w + 1) * problem.examples / workers;
        const std::size_t ex_count = ex_end - ex_begin;

        std::vector<float> model(dim, 0.0f);
        std::vector<float> gradient(dim);
        std::vector<float> residual;
        const bool feedback =
            config.error_feedback && config.comm_bits < 32;
        if (feedback) residual.assign(dim, 0.0f);

        for (std::uint64_t round = 1; round <= config.rounds; ++round) {
            BUCKWILD_OBS_SPAN("ps", "worker.round");
            // Pull every shard's slice into the local replica. Slices may
            // sit at different versions — that inconsistency is the
            // asynchrony the C-term error feedback has to absorb.
            for (std::size_t s = 0; s < shards; ++s) {
                Message pull;
                pull.kind = Message::Kind::kPull;
                pull.worker = static_cast<std::uint32_t>(w);
                const Message reply = rpc.call(s, std::move(pull));
                std::copy(reply.weights.begin(), reply.weights.end(),
                          model.begin() + static_cast<std::ptrdiff_t>(
                                              server.shard_begin(s)));
            }

            {
                // Mini-batch gradient on this worker's data slice.
                BUCKWILD_OBS_SPAN("ps", "worker.minibatch");
                Stopwatch minibatch_clock;
                std::fill(gradient.begin(), gradient.end(), 0.0f);
                for (std::size_t b = 0; b < config.batch; ++b) {
                    const std::size_t i =
                        ex_begin +
                        ((round - 1) * config.batch + b) % ex_count;
                    const float* x = problem.row(i);
                    float z = 0.0f;
                    for (std::size_t k = 0; k < dim; ++k)
                        z += model[k] * x[k];
                    const float g = core::loss_gradient_coefficient(
                        config.loss, z, problem.y[i]);
                    if (g == 0.0f) continue;
                    for (std::size_t k = 0; k < dim; ++k)
                        gradient[k] += g * x[k];
                }
                if (feedback)
                    for (std::size_t k = 0; k < dim; ++k)
                        gradient[k] += residual[k];
                // Cumulative GNPS inputs for the live conformance
                // watchdog: numbers touched / seconds busy in compute.
                BUCKWILD_OBS_GAUGE_ADD("ps.worker.numbers",
                                       static_cast<double>(config.batch) *
                                           static_cast<double>(dim));
                BUCKWILD_OBS_GAUGE_ADD("ps.worker.seconds",
                                       minibatch_clock.seconds());
            }

            // Quantize and push each shard's slice; a staleness-gated
            // nack means this worker ran too far ahead — back off and
            // retry (the shard's gate opens as the slow workers apply).
            for (std::size_t s = 0; s < shards; ++s) {
                const std::size_t begin = server.shard_begin(s);
                const WireGradient wire = encode_gradient(
                    gradient.data() + begin,
                    server.shard_end(s) - begin, config.comm_bits,
                    feedback ? residual.data() + begin : nullptr);
                BUCKWILD_OBS_COUNT("ps.worker.encoded_bytes",
                                   wire.wire_bytes());
                for (;;) {
                    Message push;
                    push.kind = Message::Kind::kPush;
                    push.worker = static_cast<std::uint32_t>(w);
                    push.clock = round;
                    push.gradient = wire;
                    const Message ack = rpc.call(s, std::move(push));
                    if (ack.accepted) break;
                    std::this_thread::sleep_for(
                        std::chrono::microseconds(100));
                }
            }
            rounds_done.fetch_add(1, std::memory_order_acq_rel);
        }

        // Leave the SSP gate so the remaining workers are not held to
        // this worker's final clock.
        for (std::size_t s = 0; s < shards; ++s) {
            Message retire;
            retire.kind = Message::Kind::kRetire;
            retire.worker = static_cast<std::uint32_t>(w);
            rpc.call(s, std::move(retire));
        }

        worker_seconds[w] = clock.seconds();
        worker_retries[w] = rpc.retries();
    });

    // The caller's thread doubles as the publisher: every publish_every
    // applied worker rounds, checkpoint the shards into the registry —
    // serving hot-swaps onto training progress mid-run.
    const std::uint64_t total_rounds =
        static_cast<std::uint64_t>(workers) * config.rounds;
    std::uint64_t next_publish =
        registry != nullptr && config.publish_every > 0
            ? config.publish_every
            : total_rounds + 1;
    while (rounds_done.load(std::memory_order_acquire) < total_rounds) {
        if (rounds_done.load(std::memory_order_acquire) >= next_publish) {
            result.published_versions.push_back(
                server.publish(*registry, config.publish_precision));
            while (next_publish <=
                   rounds_done.load(std::memory_order_acquire))
                next_publish += config.publish_every;
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
    group.join();

    // Final state: snapshot it once, publish that exact version (the one
    // a serving cluster ends on), evaluate it, then stop the shards.
    result.checkpoint = server.checkpoint();
    if (registry != nullptr)
        result.published_versions.push_back(
            registry->publish(result.checkpoint, config.publish_precision));
    result.wall_seconds = wall.seconds();
    server.stop();

    evaluate(problem, config.loss, result.checkpoint.weights,
             &result.final_loss, &result.accuracy);
    result.rounds = rounds_done.load(std::memory_order_acquire);

    result.metrics = server.metrics();
    for (std::size_t w = 0; w < workers; ++w) {
        result.metrics.worker_seconds += worker_seconds[w];
        result.metrics.rpc_retries += worker_retries[w];
    }
    result.metrics.numbers = static_cast<double>(result.rounds) *
                             static_cast<double>(config.batch) *
                             static_cast<double>(dim);
    return result;
}

} // namespace buckwild::ps
