#include "ps/cluster.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "ps/node.h"
#include "ps/workload.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace buckwild::ps {

namespace {

template <typename Problem>
ClusterResult
train_cluster_impl(const Problem& problem, const ClusterConfig& config,
                   serve::ModelRegistry* registry)
{
    if (config.rounds == 0) fatal("rounds must be >= 1");
    if (detail::example_count(problem) < config.workers)
        fatal("need at least one example per worker");

    PsConfig ps_cfg;
    ps_cfg.shards = config.shards;
    ps_cfg.workers = config.workers;
    ps_cfg.tau = config.tau;
    ps_cfg.step_size = config.step_size;
    ps_cfg.batch = config.batch;
    ps_cfg.codec = config.codec;
    ps_cfg.loss = config.loss;
    ps_cfg.impl = config.impl;
    ps_cfg.faults = config.faults;

    // Construction validates the whole configuration (throws on bad
    // shards / codec / step_size / batch).
    ParameterServer server(problem.dim, ps_cfg);

    const std::size_t workers = config.workers;

    ClusterResult result;
    result.comm = config.codec.name();

    std::atomic<std::uint64_t> rounds_done{0};
    std::vector<WorkerStats> worker_stats(workers);

    Stopwatch wall;
    server.start();

    // The worker round loop itself lives in ps/node.cpp — shared
    // verbatim with the multi-process socket workers, so both execution
    // modes train identically and differ only in the fabric.
    WorkerGroup group;
    group.start(workers, [&](std::size_t w) {
        worker_stats[w] = run_worker_rounds(config, problem, w,
                                            server.transport(),
                                            &rounds_done);
    });

    // The caller's thread doubles as the publisher: every publish_every
    // applied worker rounds, checkpoint the shards into the registry —
    // serving hot-swaps onto training progress mid-run.
    const std::uint64_t total_rounds =
        static_cast<std::uint64_t>(workers) * config.rounds;
    std::uint64_t next_publish =
        registry != nullptr && config.publish_every > 0
            ? config.publish_every
            : total_rounds + 1;
    while (rounds_done.load(std::memory_order_acquire) < total_rounds) {
        if (rounds_done.load(std::memory_order_acquire) >= next_publish) {
            result.published_versions.push_back(
                server.publish(*registry, config.publish_precision));
            while (next_publish <=
                   rounds_done.load(std::memory_order_acquire))
                next_publish += config.publish_every;
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
    group.join();

    // Final state: snapshot it once, publish that exact version (the one
    // a serving cluster ends on), evaluate it, then stop the shards.
    result.checkpoint = detail::is_sparse_workload(problem)
        ? make_cluster_checkpoint(config, server.snapshot(), true)
        : server.checkpoint();
    if (registry != nullptr)
        result.published_versions.push_back(
            registry->publish(result.checkpoint, config.publish_precision));
    result.wall_seconds = wall.seconds();
    server.stop();

    evaluate_model(problem, config.loss, result.checkpoint.weights,
                   &result.final_loss, &result.accuracy);
    result.rounds = rounds_done.load(std::memory_order_acquire);

    result.metrics = server.metrics();
    std::uint64_t encoded_total = 0;
    for (std::size_t w = 0; w < workers; ++w) {
        result.metrics.worker_seconds += worker_stats[w].seconds;
        result.metrics.rpc_retries += worker_stats[w].retries;
        encoded_total += worker_stats[w].encoded_bytes;
    }
    result.metrics.numbers = static_cast<double>(result.rounds) *
                             static_cast<double>(config.batch) *
                             detail::numbers_per_example(problem);
    // Sparse pushes are nnz-dependent at every tier, so their traffic is
    // always measured; dense fixed-size codecs stay statically computed.
    const bool measured = config.codec.kind == CodecKind::kQsgd ||
                          detail::is_sparse_workload(problem);
    result.bytes_per_round =
        measured ? (result.rounds > 0
                        ? static_cast<double>(encoded_total) /
                              static_cast<double>(result.rounds)
                        : 0.0)
                 : fixed_bytes_per_round(config, problem.dim);
    return result;
}

} // namespace

ClusterResult
train_cluster(const dataset::DenseProblem& problem,
              const ClusterConfig& config, serve::ModelRegistry* registry)
{
    return train_cluster_impl(problem, config, registry);
}

ClusterResult
train_cluster(const dataset::SparseProblem& problem,
              const ClusterConfig& config, serve::ModelRegistry* registry)
{
    return train_cluster_impl(problem, config, registry);
}

} // namespace buckwild::ps
