#include "ps/shard.h"

#include <algorithm>
#include <limits>

#include "obs/obs.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace buckwild::ps {

ServerShard::ServerShard(std::size_t index, std::size_t begin,
                         std::size_t end, const ShardConfig& config,
                         Transport& transport)
    : index_(index), begin_(begin), end_(end), config_(config),
      transport_(transport), weights_(end - begin, 0.0f),
      clocks_(config.workers, 0), retired_(config.workers, false)
{
    if (end <= begin) fatal("shard range must be non-empty");
    if (config.workers == 0) fatal("shard needs at least one worker");
    if (!(config.step_size > 0.0f)) fatal("step_size must be positive");
    if (config.batch == 0) fatal("batch must be >= 1");
    // The first push is acked under the RPC retransmit timeout; pay the
    // one-time kernel-registry resolution here, not on that deadline.
    simd::warm_dense_kernels();
}

void
ServerShard::run()
{
    Message message;
    for (;;) {
        if (!transport_.recv(index_, message,
                             std::chrono::microseconds(1000))) {
            // recv fails on an idle timeout or once closed-and-drained;
            // a closed mailbox returns its backlog before failing.
            if (transport_.closed()) break;
            continue;
        }
        switch (message.kind) {
          case Message::Kind::kPush: handle_push(std::move(message)); break;
          case Message::Kind::kPull: handle_pull(std::move(message)); break;
          case Message::Kind::kRetire:
            handle_retire(std::move(message));
            break;
          case Message::Kind::kStats: handle_stats(std::move(message)); break;
          case Message::Kind::kShutdown: {
            // Ack first, then leave the loop: the shard process exits
            // while the controller still gets its confirmation.
            Message ack;
            ack.kind = Message::Kind::kAck;
            ack.token = message.token;
            ack.worker = message.worker;
            ack.accepted = true;
            ack.version = version_.load(std::memory_order_relaxed);
            transport_.send(message.sender, std::move(ack));
            return;
          }
          default: panic("shard received a reply-kind message");
        }
    }
}

std::uint64_t
ServerShard::min_live_clock() const
{
    std::uint64_t lowest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t w = 0; w < clocks_.size(); ++w)
        if (!retired_[w]) lowest = std::min(lowest, clocks_[w]);
    return lowest == std::numeric_limits<std::uint64_t>::max() ? 0 : lowest;
}

void
ServerShard::handle_push(Message&& push)
{
    if (push.worker >= clocks_.size()) panic("push from unknown worker");
    Message ack;
    ack.kind = Message::Kind::kAck;
    ack.token = push.token;
    ack.worker = push.worker;

    // Exactly-once over a lossy fabric: a retransmission of an
    // already-applied push (its ack was dropped) is acked, not re-applied.
    if (push.clock <= clocks_[push.worker]) {
        ++metrics_.duplicates;
        ack.accepted = true;
        ack.version = version_.load(std::memory_order_relaxed);
        transport_.send(push.sender, std::move(ack));
        return;
    }

    // The SSP gate: admitting this push would put the worker
    // `lead` rounds ahead of the slowest live worker.
    const std::uint64_t lead = clocks_[push.worker] - min_live_clock();
    if (lead > config_.tau) {
        ++metrics_.gated;
        BUCKWILD_OBS_COUNT("ps.shard.gated", 1);
        BUCKWILD_OBS_INSTANT("ps", "shard.gate_nack");
        ack.accepted = false;
        ack.version = version_.load(std::memory_order_relaxed);
        transport_.send(push.sender, std::move(ack));
        return;
    }

    if (push.gradient.count != size())
        panic("push gradient does not match the shard slice");
    const std::vector<float> gradient = decode_gradient(push.gradient);

    // Apply through the same float AXPY kernel the Hogwild! trainer
    // uses: w -= (eta / batch) * g.
    Stopwatch apply;
    {
        BUCKWILD_OBS_SPAN("ps", "shard.apply");
        const float c =
            -config_.step_size / static_cast<float>(config_.batch);
        simd::DenseOps<float, float>::axpy(config_.impl, weights_.data(),
                                           gradient.data(), size(), c, 1.0f,
                                           1.0f, simd::biased_unit());
    }
    metrics_.apply_seconds += apply.seconds();
    BUCKWILD_OBS_COUNT("ps.shard.pushes_applied", 1);
    BUCKWILD_OBS_COUNT("ps.shard.push_bytes", push.gradient.wire_bytes());

    clocks_[push.worker] = push.clock;
    ++metrics_.pushes;
    metrics_.push_bytes += push.gradient.wire_bytes();
    metrics_.numbers += static_cast<double>(size());
    if (metrics_.staleness_counts.size() <= lead)
        metrics_.staleness_counts.resize(lead + 1, 0);
    ++metrics_.staleness_counts[lead];
    const std::uint64_t version =
        version_.fetch_add(1, std::memory_order_acq_rel) + 1;

    ack.accepted = true;
    ack.version = version;
    transport_.send(push.sender, std::move(ack));
}

void
ServerShard::handle_pull(Message&& pull)
{
    Message reply;
    reply.kind = Message::Kind::kModel;
    reply.token = pull.token;
    reply.worker = pull.worker;
    reply.version = version_.load(std::memory_order_relaxed);
    reply.weights = weights_;
    ++metrics_.pulls;
    metrics_.pull_bytes += reply.wire_bytes();
    transport_.send(pull.sender, std::move(reply));
}

void
ServerShard::handle_stats(Message&& request)
{
    Message reply;
    reply.kind = Message::Kind::kStats;
    // The reply shares its request's kind, so stamp the true sender:
    // a default 0 would read as "reply to shard 0" anywhere it leaks.
    reply.sender = static_cast<std::uint32_t>(index_);
    reply.token = request.token;
    reply.worker = request.worker;
    reply.version = version_.load(std::memory_order_relaxed);
    reply.stats = shard_metrics_to_stats(metrics_);
    transport_.send(request.sender, std::move(reply));
}

void
ServerShard::handle_retire(Message&& retire)
{
    if (retire.worker >= retired_.size()) panic("retire of unknown worker");
    retired_[retire.worker] = true;
    Message ack;
    ack.kind = Message::Kind::kAck;
    ack.token = retire.token;
    ack.worker = retire.worker;
    ack.accepted = true;
    ack.version = version_.load(std::memory_order_relaxed);
    transport_.send(retire.sender, std::move(ack));
}

} // namespace buckwild::ps
