#include "ps/shard.h"

#include <algorithm>
#include <limits>

#include "obs/obs.h"
#include "obs/prom.h"
#include "simd/sparse_ops.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace buckwild::ps {

ServerShard::ServerShard(std::size_t index, std::size_t begin,
                         std::size_t end, const ShardConfig& config,
                         Transport& transport)
    : index_(index), begin_(begin), end_(end), config_(config),
      transport_(transport), weights_(end - begin, 0.0f),
      clocks_(config.workers, 0), retired_(config.workers, false),
      staleness_histo_(
          obs::MetricsRegistry::global().histogram("ps.staleness")),
      hop_push_wire_(obs::MetricsRegistry::global().histogram(
          obs::labeled("ps.hop_seconds", {{"hop", "push_wire"}}))),
      hop_apply_(obs::MetricsRegistry::global().histogram(
          obs::labeled("ps.hop_seconds", {{"hop", "apply"}}))),
      ssp_bounce_rate_(
          obs::MetricsRegistry::global().gauge("ps.ssp.bounce_rate"))
{
    if (end <= begin) fatal("shard range must be non-empty");
    if (config.workers == 0) fatal("shard needs at least one worker");
    if (!(config.step_size > 0.0f)) fatal("step_size must be positive");
    if (config.batch == 0) fatal("batch must be >= 1");
    // The first push is acked under the RPC retransmit timeout; pay the
    // one-time kernel-registry resolution here, not on that deadline.
    simd::warm_dense_kernels();
    simd::warm_sparse_kernels();
}

void
ServerShard::run()
{
    Message message;
    for (;;) {
        if (!transport_.recv(index_, message,
                             std::chrono::microseconds(1000))) {
            // recv fails on an idle timeout or once closed-and-drained;
            // a closed mailbox returns its backlog before failing.
            if (transport_.closed()) break;
            continue;
        }
        switch (message.kind) {
          case Message::Kind::kPush: handle_push(std::move(message)); break;
          case Message::Kind::kPull: handle_pull(std::move(message)); break;
          case Message::Kind::kRetire:
            handle_retire(std::move(message));
            break;
          case Message::Kind::kStats: handle_stats(std::move(message)); break;
          case Message::Kind::kShutdown: {
            // Ack first, then leave the loop: the shard process exits
            // while the controller still gets its confirmation.
            Message ack;
            ack.kind = Message::Kind::kAck;
            ack.token = message.token;
            ack.worker = message.worker;
            ack.accepted = true;
            ack.version = version_.load(std::memory_order_relaxed);
            stamp_reply_trace(message, ack);
            transport_.send(message.sender, std::move(ack));
            return;
          }
          default: panic("shard received a reply-kind message");
        }
    }
}

std::uint64_t
ServerShard::min_live_clock() const
{
    std::uint64_t lowest = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t w = 0; w < clocks_.size(); ++w)
        if (!retired_[w]) lowest = std::min(lowest, clocks_[w]);
    return lowest == std::numeric_limits<std::uint64_t>::max() ? 0 : lowest;
}

void
ServerShard::handle_push(Message&& push)
{
    if (push.worker >= clocks_.size()) panic("push from unknown worker");
    // Records a child span of the worker's push RPC — the server half
    // of the cross-process trace (no-op unless tracing is on and the
    // push carried a context).
    obs::TracedSpan handler_span("ps", "shard.push", push.trace.ctx);
    // Wire hop: worker send -> shard arrival. Exact on one host (forked
    // cluster, shared CLOCK_MONOTONIC); cross-host it is offset-skewed
    // online and corrected offline by buckwild_tracemerge.
    if (push.trace.ctx.valid() && push.trace.send_ts_ns != 0 &&
        push.recv_ts_ns != 0)
        hop_push_wire_.record(
            static_cast<double>(push.recv_ts_ns - push.trace.send_ts_ns) *
            1e-9);
    Message ack;
    ack.kind = Message::Kind::kAck;
    ack.token = push.token;
    ack.worker = push.worker;
    stamp_reply_trace(push, ack);

    // Exactly-once over a lossy fabric: a retransmission of an
    // already-applied push (its ack was dropped) is acked, not re-applied.
    if (push.clock <= clocks_[push.worker]) {
        ++metrics_.duplicates;
        ack.accepted = true;
        ack.version = version_.load(std::memory_order_relaxed);
        transport_.send(push.sender, std::move(ack));
        return;
    }

    // The SSP gate: admitting this push would put the worker
    // `lead` rounds ahead of the slowest live worker.
    const std::uint64_t lead = clocks_[push.worker] - min_live_clock();
    if (lead > config_.tau) {
        ++metrics_.gated;
        BUCKWILD_OBS_COUNT("ps.shard.gated", 1);
        BUCKWILD_OBS_COUNT("ps.ssp.bounces", 1);
        BUCKWILD_OBS_INSTANT("ps", "shard.gate_nack");
        update_bounce_rate();
        ack.accepted = false;
        ack.version = version_.load(std::memory_order_relaxed);
        transport_.send(push.sender, std::move(ack));
        return;
    }

    const bool sparse = push.gradient.sparse();
    if (sparse ? push.gradient.dim != size()
               : push.gradient.count != size())
        panic("push gradient does not match the shard slice");

    // Apply through the registered kernels: the dense float AXPY the
    // Hogwild! trainer uses, or — for a sparse push — the gather-scatter
    // sparse AXPY over only the pushed coordinates: w -= (eta/batch) * g.
    Stopwatch apply;
    const float c = -config_.step_size / static_cast<float>(config_.batch);
    std::size_t applied_numbers = size();
    if (sparse) {
        const SparseGradient gradient =
            decode_sparse_gradient(push.gradient);
        {
            obs::TracedSpan apply_span("ps", "shard.apply",
                                       handler_span.ctx());
            BUCKWILD_OBS_SPAN("ps", "shard.apply");
            simd::SparseOps<std::uint32_t>::axpy(
                config_.impl, weights_.data(), gradient.value.data(),
                gradient.index.data(), gradient.nnz(), c,
                simd::sparse::IndexMode::kAbsolute);
        }
        applied_numbers = gradient.nnz();
        metrics_.sparse_nnz += gradient.nnz();
        metrics_.sparse_bytes += push.gradient.wire_bytes();
        BUCKWILD_OBS_COUNT("ps.sparse_nnz", gradient.nnz());
        BUCKWILD_OBS_COUNT("ps.sparse_bytes", push.gradient.wire_bytes());
    } else {
        const std::vector<float> gradient = decode_gradient(push.gradient);
        obs::TracedSpan apply_span("ps", "shard.apply",
                                   handler_span.ctx());
        BUCKWILD_OBS_SPAN("ps", "shard.apply");
        simd::DenseOps<float, float>::axpy(config_.impl, weights_.data(),
                                           gradient.data(), size(), c, 1.0f,
                                           1.0f, simd::biased_unit());
    }
    metrics_.apply_seconds += apply.seconds();
    hop_apply_.record(apply.seconds());
    BUCKWILD_OBS_COUNT("ps.shard.pushes_applied", 1);
    BUCKWILD_OBS_COUNT("ps.shard.push_bytes", push.gradient.wire_bytes());

    clocks_[push.worker] = push.clock;
    ++metrics_.pushes;
    metrics_.push_bytes += push.gradient.wire_bytes();
    metrics_.numbers += static_cast<double>(applied_numbers);
    if (metrics_.staleness_counts.size() <= lead)
        metrics_.staleness_counts.resize(lead + 1, 0);
    ++metrics_.staleness_counts[lead];
    // The measured-staleness exposition: the exact per-(worker, lead)
    // counter and a summary histogram, live on /metrics while the run
    // is still going — PsMetrics::staleness_counts only surfaces after
    // the final stats RPC.
    staleness_counter(push.worker, lead).add(1);
    staleness_histo_.record(static_cast<double>(lead));
    update_bounce_rate();
    const std::uint64_t version =
        version_.fetch_add(1, std::memory_order_acq_rel) + 1;

    ack.accepted = true;
    ack.version = version;
    transport_.send(push.sender, std::move(ack));
}

void
ServerShard::stamp_reply_trace(const Message& request, Message& reply) const
{
    if (!request.trace.ctx.valid()) return;
    reply.trace.ctx = obs::child_of(request.trace.ctx);
    reply.trace.echo_send_ts_ns = request.trace.send_ts_ns;
    reply.trace.echo_recv_ts_ns = request.recv_ts_ns;
    reply.trace.send_ts_ns = obs::trace_now_ns();
}

void
ServerShard::update_bounce_rate()
{
    const double bounced = static_cast<double>(metrics_.gated);
    const double applied = static_cast<double>(metrics_.pushes);
    if (bounced + applied > 0.0)
        ssp_bounce_rate_.set(bounced / (bounced + applied));
}

obs::Counter&
ServerShard::staleness_counter(std::uint32_t worker,
                               std::uint64_t staleness)
{
    const auto key = std::make_pair(worker, staleness);
    const auto it = staleness_counters_.find(key);
    if (it != staleness_counters_.end()) return *it->second;
    obs::Counter& counter = obs::MetricsRegistry::global().counter(
        obs::labeled("ps.staleness",
                     {{"staleness", std::to_string(staleness)},
                      {"worker", std::to_string(worker)}}));
    staleness_counters_.emplace(key, &counter);
    return counter;
}

void
ServerShard::handle_pull(Message&& pull)
{
    obs::TracedSpan handler_span("ps", "shard.pull", pull.trace.ctx);
    Message reply;
    reply.kind = Message::Kind::kModel;
    reply.token = pull.token;
    reply.worker = pull.worker;
    reply.version = version_.load(std::memory_order_relaxed);
    reply.weights = weights_;
    ++metrics_.pulls;
    metrics_.pull_bytes += reply.wire_bytes();
    stamp_reply_trace(pull, reply);
    transport_.send(pull.sender, std::move(reply));
}

void
ServerShard::handle_stats(Message&& request)
{
    Message reply;
    reply.kind = Message::Kind::kStats;
    // The reply shares its request's kind, so stamp the true sender:
    // a default 0 would read as "reply to shard 0" anywhere it leaks.
    reply.sender = static_cast<std::uint32_t>(index_);
    reply.token = request.token;
    reply.worker = request.worker;
    reply.version = version_.load(std::memory_order_relaxed);
    reply.stats = shard_metrics_to_stats(metrics_);
    stamp_reply_trace(request, reply);
    transport_.send(request.sender, std::move(reply));
}

void
ServerShard::handle_retire(Message&& retire)
{
    if (retire.worker >= retired_.size()) panic("retire of unknown worker");
    retired_[retire.worker] = true;
    Message ack;
    ack.kind = Message::Kind::kAck;
    ack.token = retire.token;
    ack.worker = retire.worker;
    ack.accepted = true;
    ack.version = version_.load(std::memory_order_relaxed);
    stamp_reply_trace(retire, ack);
    transport_.send(retire.sender, std::move(ack));
}

} // namespace buckwild::ps
